#!/usr/bin/env python3
"""Compare two bench_micro JSON files and fail on headline regressions.

CI machines differ from the reference box that produced the committed
BENCH_micro.json, so raw nanoseconds do not transfer. What does transfer is
the *pair ratio*: every headline kernel ships as an optimized/baseline pair
measured on identical workloads in the same process (compiled vs legacy
evaluation, batched vs sequential oracle rounds, worklist vs fixpoint
closure). The ratio baseline_time / optimized_time is a machine-independent
speedup; this tool fails when a candidate run's speedup falls more than
--threshold below the reference's.

    tools/bench_compare.py BENCH_micro.json BENCH_micro.ci.json

The reference argument may instead be a *manifest* — a JSON file with a
"references" list, each entry naming the runner class it was recorded on:

    {"references": [
        {"num_cpus": 1, "simd": "avx512", "path": "BENCH_micro.json"},
        {"num_cpus": 4, "simd": "avx512", "path": "BENCH_micro.4cpu.json"}
    ]}

    tools/bench_compare.py BENCH_refs.json BENCH_micro.ci.json

The entry matching the candidate's (num_cpus, qhorn_simd) context is used;
recording paths resolve relative to the manifest. No matching entry is a
hard failure — falling back to a mismatched recording would skip every
concurrency-dependent pair and gate nothing while pretending to.

For same-machine comparisons (e.g. regenerating the committed baseline)
--absolute additionally diffs raw cpu_time of identically named benchmarks.

Exit status: 0 clean, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import os
import statistics
import sys

# (optimized, baseline) benchmark pairs; the second column is the in-tree
# reference implementation measured on the identical workload.
HEADLINE_PAIRS = [
    ("BM_EvaluateQuery/16", "BM_EvaluateQueryLegacy/16"),
    ("BM_EvaluateQuery/64", "BM_EvaluateQueryLegacy/64"),
    ("BM_HornClosureChain/16", "BM_HornClosureChainLegacy/16"),
    ("BM_HornClosureChain/64", "BM_HornClosureChainLegacy/64"),
    ("BM_OracleBatchBatched/16", "BM_OracleBatchSequential/16"),
    ("BM_OracleBatchBatched/256", "BM_OracleBatchSequential/256"),
    # One-question rounds must stay within noise of a plain IsAnswer — the
    # contract that let the learners drop their singleton short-circuits.
    ("BM_OracleBatchBatched/1", "BM_OracleBatchSequential/1"),
    # Concurrency pairs: the identical round / fleet on the executor vs one
    # lane, compared on *wall-clock* (the work runs on pool threads, so the
    # benchmark thread's cpu_time under-counts — these benchmarks use
    # UseRealTime and load_times() reads real_time for them). The upside is
    # machine-dependent (a 1-core runner measures ~1.0×), so the ratio gate
    # only guards against the parallel path *regressing* relative to the
    # committed reference machine's ratio.
    ("BM_OracleBatchParallel/4096/real_time", "BM_OracleBatchBatched/4096"),
    ("BM_ServiceThroughput/16/real_time", "BM_ServiceSequential/16/real_time"),
    # Open-sessions-vs-lanes: 64 pending (suspend/replay) sessions vs the
    # identical direct fleet on the same 4 lanes. The ratio is *below* 1x
    # by design — it prices the continuation machinery — and the gate only
    # guards it against regressing further.
    ("BM_ServiceOpenSessions/64/real_time",
     "BM_ServiceOpenSessionsDirect/64/real_time"),
    # Resume-protocol pair: snapshot restore (O(rounds) questions re-served
    # across a session's resumes) vs the retired full-prefix replay
    # (O(rounds²)). Both run one session on one lane, so the ratio is
    # machine-independent; it widens with depth, hence both arms. Not
    # concurrency-dependent: a single lane is a single lane everywhere.
    ("BM_SessionResumeSnapshot/8/real_time",
     "BM_SessionResumeReplay/8/real_time"),
    ("BM_SessionResumeSnapshot/64/real_time",
     "BM_SessionResumeReplay/64/real_time"),
    # The default protocol: fiber resume switches into the parked frame
    # (O(1) compute per resume, nothing re-served) vs the same full-prefix
    # replay baseline.
    ("BM_SessionResumeFiber/8/real_time",
     "BM_SessionResumeReplay/8/real_time"),
    ("BM_SessionResumeFiber/64/real_time",
     "BM_SessionResumeReplay/64/real_time"),
    # Canonical-form dedup: hashed CanonicalForm keys vs ToString() keys.
    ("BM_CanonicalDedup/64", "BM_CanonicalDedupLegacy/64"),
    # Router sharding: four driver threads hammering a mixed
    # open/provide/poll workload over 4096 sessions behind an 8-shard
    # facade vs the identical workload behind the 1-shard (global-mutex)
    # facade. The upside needs real cores — on a 1-cpu runner the ratio
    # sits near 1.0× and the gate only pins it there.
    ("BM_RouterContention/4096/8/real_time",
     "BM_RouterContention/4096/1/real_time"),
]

# Benchmarks whose absolute time is also checked under --absolute (the
# end-to-end learner loops the README quotes).
ABSOLUTE_HEADLINES = [
    "BM_EvaluateQuery/64",
    "BM_OracleBatchBatched/256",
    "BM_Qhorn1LearnEndToEnd/64",
    "BM_RpLearnEndToEnd/24",
    "BM_BuildVerificationSet/32",
]


# Pairs whose ratio depends on effective parallelism (the executor can
# only beat one lane when it has more than one). They are compared only
# when reference and candidate agree on both num_cpus and the benchmark's
# own "lanes" counter (which tracks QHORN_THREADS) — otherwise a baseline
# recorded wide would fail a narrower runner spuriously, and a 1-lane
# baseline would gate nothing while pretending to.
CONCURRENCY_DEPENDENT = {
    "BM_OracleBatchParallel/4096/real_time",
    "BM_ServiceThroughput/16/real_time",
    "BM_ServiceOpenSessions/64/real_time",
    "BM_RouterContention/4096/8/real_time",
}


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_reference(path, cand_doc):
    """Resolves the reference document for this candidate.

    Returns (reference_doc, declared_num_cpus). `path` is either a plain
    bench_micro JSON (declared_num_cpus is None — its own context is
    authoritative) or a manifest with a "references" list, in which case
    the entry matching the candidate's (num_cpus, qhorn_simd) context is
    loaded, relative to the manifest's directory. The declared num_cpus is
    returned alongside because a recording can legitimately stand in for a
    runner class it was not measured on (a conservative floor recorded
    elsewhere); the manifest's declaration, not the recording's context,
    says which candidates it gates.
    """
    doc = load_doc(path)
    if "references" not in doc:
        return doc, None
    ctx = cand_doc.get("context", {})
    cand_cpus = ctx.get("num_cpus")
    cand_simd = ctx.get("qhorn_simd")
    for entry in doc["references"]:
        if (
            entry.get("num_cpus") == cand_cpus
            and entry.get("simd") == cand_simd
        ):
            ref_path = os.path.join(
                os.path.dirname(os.path.abspath(path)), entry["path"]
            )
            print(
                f"bench_compare: manifest matched {entry['path']} "
                f"(num_cpus={cand_cpus}, simd={cand_simd})"
            )
            return load_doc(ref_path), entry.get("num_cpus")
    available = ", ".join(
        f"(num_cpus={e.get('num_cpus')}, simd={e.get('simd')})"
        for e in doc["references"]
    )
    print(
        f"bench_compare: FAILED — no manifest entry matches the candidate "
        f"(num_cpus={cand_cpus}, simd={cand_simd}); recorded classes: "
        f"{available}. Record a reference for this runner class instead of "
        f"gating against a mismatched one.",
        file=sys.stderr,
    )
    sys.exit(1)


def load_times(doc):
    """name -> median time over repetitions (robust to a noisy rep)."""
    samples = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # Benchmarks registered with UseRealTime (the concurrency pairs)
        # carry a /real_time name suffix; wall-clock is their meaningful
        # metric — the work happens on pool threads.
        metric = "real_time" if b["name"].endswith("/real_time") else "cpu_time"
        samples.setdefault(b["name"], []).append(float(b[metric]))
    return {name: statistics.median(ts) for name, ts in samples.items()}


def load_lanes(doc):
    """name -> the benchmark's self-reported 'lanes' counter, if any."""
    lanes = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if "lanes" in b:
            lanes[b["name"]] = b["lanes"]
    return lanes


def pair_speedup(times, fast, slow):
    if fast not in times or slow not in times:
        return None
    if times[fast] <= 0:
        return None
    return times[slow] / times[fast]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reference", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when candidate speedup (or --absolute time) regresses by "
        "more than this factor (default 1.25 = 25%%)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also compare raw cpu_time of headline benchmarks "
        "(same-machine runs only)",
    )
    args = parser.parse_args()

    cand_doc = load_doc(args.candidate)
    ref_doc, declared_cpus = load_reference(args.reference, cand_doc)
    ref = load_times(ref_doc)
    cand = load_times(cand_doc)
    ref_lanes = load_lanes(ref_doc)
    cand_lanes = load_lanes(cand_doc)
    ref_cpus = (
        declared_cpus
        if declared_cpus is not None
        else ref_doc.get("context", {}).get("num_cpus")
    )
    cand_cpus = cand_doc.get("context", {}).get("num_cpus")
    failures = []
    checked = 0
    checked_pairs = 0
    skipped_pairs = []

    for fast, slow in HEADLINE_PAIRS:
        if fast in CONCURRENCY_DEPENDENT and (
            ref_cpus != cand_cpus
            or ref_lanes.get(fast) != cand_lanes.get(fast)
        ):
            reason = (
                f"reference {ref_cpus} cpus / {ref_lanes.get(fast)} lanes, "
                f"candidate {cand_cpus} / {cand_lanes.get(fast)}"
            )
            print(
                f"{'skipped':>10}  {fast:<34} concurrency-dependent pair "
                f"({reason})"
            )
            skipped_pairs.append((fast, reason))
            continue
        ref_speedup = pair_speedup(ref, fast, slow)
        cand_speedup = pair_speedup(cand, fast, slow)
        if cand_speedup is None:
            # A missing pair in the candidate is itself a regression: the
            # kernel was renamed or dropped without updating the tool.
            failures.append(f"{fast}: pair missing from candidate run")
            continue
        # Pairs newly added to the tree have no committed reference yet;
        # hold them to "the optimized side must not lose to its baseline".
        floor = (ref_speedup / args.threshold) if ref_speedup else 1.0 / args.threshold
        checked += 1
        checked_pairs += 1
        status = "ok" if cand_speedup >= floor else "REGRESSION"
        print(
            f"{status:>10}  {fast:<34} speedup {cand_speedup:6.2f}x "
            f"(reference {ref_speedup:.2f}x, floor {floor:.2f}x)"
            if ref_speedup
            else f"{status:>10}  {fast:<34} speedup {cand_speedup:6.2f}x "
            f"(no reference, floor {floor:.2f}x)"
        )
        if cand_speedup < floor:
            failures.append(
                f"{fast}: speedup {cand_speedup:.2f}x below floor {floor:.2f}x"
            )

    if args.absolute:
        for name in ABSOLUTE_HEADLINES:
            if name not in ref or name not in cand:
                continue
            checked += 1
            ratio = cand[name] / ref[name]
            status = "ok" if ratio <= args.threshold else "REGRESSION"
            print(
                f"{status:>10}  {name:<34} {cand[name]:10.1f} ns "
                f"(reference {ref[name]:.1f} ns, {ratio:.2f}x)"
            )
            if ratio > args.threshold:
                failures.append(f"{name}: {ratio:.2f}x slower than reference")

    # Skips must be loud and can never be total: a gate that skipped every
    # headline pair would "pass" having gated nothing (exactly what happens
    # when reference and candidate disagree on num_cpus across the board).
    if skipped_pairs:
        print(f"\nbench_compare: {len(skipped_pairs)} pair(s) skipped:")
        for name, reason in skipped_pairs:
            print(f"  - {name}: {reason}")
    if not checked_pairs:
        failures.append(
            "every headline pair was skipped — the gate checked nothing "
            "(re-record the reference on a matching runner class)"
        )
    # (There is no separate "nothing comparable" exit path: checked == 0
    # implies checked_pairs == 0, which is already a failure above.)
    if failures:
        print("\nbench_compare: FAILED")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print(f"\nbench_compare: {checked} headline checks clean")


if __name__ == "__main__":
    main()
