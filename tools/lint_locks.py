#!/usr/bin/env python3
"""Lock-discipline lint: forbid raw standard-library lock primitives.

Every mutex in the tree must be a qhorn::Mutex / qhorn::SharedMutex from
src/util/checked_mutex.h — those carry the Clang thread-safety capability
attributes (so -Wthread-safety sees through them) and the runtime
lock-rank checker (so out-of-order acquisition aborts with both lock
names). A raw std::mutex is invisible to both layers, which is exactly
how an unranked, unannotated lock sneaks back into the codebase.

Usage:
    tools/lint_locks.py [--root DIR]     # lint the tree (default: repo root)
    tools/lint_locks.py --self-test      # prove the lint catches a seeded
                                         # raw-mutex fixture, and passes a
                                         # clean one

Exit status: 0 clean, 1 findings (or a failed self-test), 2 usage error.
"""

import argparse
import pathlib
import re
import sys
import tempfile

# Directories scanned, relative to the repo root.
SCAN_DIRS = ("src", "tests", "bench", "examples")

# Forbidden constructs and the checked replacement to name in the finding.
FORBIDDEN = [
    (re.compile(r"\bstd::recursive_mutex\b"),
     "no replacement: recursive locking is a rank-checker violation by "
     "design — restructure so each mutex is acquired once"),
    (re.compile(r"\bstd::recursive_timed_mutex\b"),
     "no replacement: recursive locking is forbidden by the rank checker"),
    (re.compile(r"\bstd::shared_timed_mutex\b"),
     "qhorn::SharedMutex (src/util/checked_mutex.h)"),
    (re.compile(r"\bstd::shared_mutex\b"),
     "qhorn::SharedMutex (src/util/checked_mutex.h)"),
    (re.compile(r"\bstd::timed_mutex\b"),
     "qhorn::Mutex (src/util/checked_mutex.h)"),
    (re.compile(r"\bstd::mutex\b"),
     "qhorn::Mutex (src/util/checked_mutex.h)"),
    (re.compile(r"\bstd::lock_guard\b"),
     "qhorn::MutexLock (src/util/checked_mutex.h)"),
    (re.compile(r"\bstd::unique_lock\b"),
     "qhorn::MutexLock, or qhorn::CondVar::Wait for condition waits"),
    (re.compile(r"\bstd::shared_lock\b"),
     "qhorn::ReaderLock (src/util/checked_mutex.h)"),
    (re.compile(r"\bstd::scoped_lock\b"),
     "qhorn::MutexLock — one lock per scope; multi-lock acquisition must "
     "be explicit and rank-ordered"),
    (re.compile(r"\bstd::condition_variable_any\b"),
     "qhorn::CondVar (src/util/checked_mutex.h)"),
    (re.compile(r"\bstd::condition_variable\b"),
     "qhorn::CondVar (src/util/checked_mutex.h)"),
    (re.compile(r"#\s*include\s*<mutex>"),
     "include src/util/checked_mutex.h instead"),
    (re.compile(r"#\s*include\s*<shared_mutex>"),
     "include src/util/checked_mutex.h instead"),
    (re.compile(r"#\s*include\s*<condition_variable>"),
     "include src/util/checked_mutex.h instead"),
]

# Files allowed to use raw primitives, relative to the repo root.
#
#   * checked_mutex.{h,cc} — the wrappers themselves.
#   * continuation_stress_test.cc / service_router_test.cc — test-local
#     bookkeeping mutexes guarding data owned by the test body, not part
#     of the ranked production lock tree; annotating them would add a fake
#     rank for a lock no production path ever touches.
ALLOWLIST = frozenset({
    "src/util/checked_mutex.h",
    "src/util/checked_mutex.cc",
    "tests/continuation_stress_test.cc",
    "tests/service_router_test.cc",
})

SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

LINE_COMMENT = re.compile(r"//.*$")


def strip_comments(text):
    """Removes // and /* */ comments, preserving line numbers."""
    # Block comments: replace every non-newline character so findings in
    # real code keep their line numbers.
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    return "\n".join(LINE_COMMENT.sub("", line) for line in text.splitlines())


def lint_file(path, rel):
    findings = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"error: cannot read {rel}: {err}", file=sys.stderr)
        return findings
    for lineno, line in enumerate(strip_comments(text).splitlines(), start=1):
        for pattern, replacement in FORBIDDEN:
            match = pattern.search(line)
            if match:
                findings.append((rel, lineno, match.group(0), replacement))
                break  # one finding per line is enough to fail
    return findings


def lint_tree(root):
    findings = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if rel in ALLOWLIST:
                continue
            findings.extend(lint_file(path, rel))
    return findings


def report(findings):
    for rel, lineno, token, replacement in findings:
        print(f"{rel}:{lineno}: forbidden lock primitive `{token}` — "
              f"use {replacement}")
    if findings:
        print(f"\nlint_locks: {len(findings)} finding(s). Raw standard "
              "lock primitives bypass both the Clang thread-safety "
              "annotations and the runtime lock-rank checker; use the "
              "checked types from src/util/checked_mutex.h (new files "
              "needing an exemption must be argued into the allowlist in "
              "tools/lint_locks.py).")


def self_test():
    """The lint must flag a seeded raw-mutex fixture and pass a clean one."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        dirty = root / "src" / "dirty.cc"
        dirty.parent.mkdir(parents=True)
        dirty.write_text(
            "#include <mutex>\n"
            "std::mutex mu;\n"
            "void f() { std::lock_guard<std::mutex> lock(mu); }\n"
            "// std::mutex in a comment must NOT be flagged\n",
            encoding="utf-8")
        clean = root / "src" / "clean.cc"
        clean.write_text(
            '#include "src/util/checked_mutex.h"\n'
            'qhorn::Mutex mu("clean", qhorn::LockRank::kMemo);\n'
            "void f() { qhorn::MutexLock lock(&mu); }\n",
            encoding="utf-8")

        findings = lint_tree(root)
        dirty_lines = sorted(lineno for rel, lineno, _, _ in findings
                             if rel == "src/dirty.cc")
        clean_findings = [f for f in findings if f[0] == "src/clean.cc"]
        ok = dirty_lines == [1, 2, 3] and not clean_findings
        if ok:
            print("lint_locks self-test: ok "
                  "(3 seeded findings flagged, clean file passed)")
            return 0
        print("lint_locks self-test FAILED:", file=sys.stderr)
        print(f"  dirty.cc findings on lines {dirty_lines} "
              "(expected [1, 2, 3])", file=sys.stderr)
        print(f"  clean.cc findings: {clean_findings} (expected none)",
              file=sys.stderr)
        return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root to lint (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the lint against seeded fixtures instead "
                             "of the tree")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if not args.root.is_dir():
        print(f"error: no such directory: {args.root}", file=sys.stderr)
        return 2
    findings = lint_tree(args.root.resolve())
    report(findings)
    if not findings:
        print("lint_locks: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
