#!/usr/bin/env python3
"""Reproduce one hostile-fleet fuzz seed from its logged repro line.

Every workload_fuzz_test failure message ends with a line of the form

    repro: tools/workload_repro.py --seed=1337

This tool re-runs exactly that seed: it finds (or is told) a built
workload_fuzz_test binary and invokes the sweep with QHORN_FUZZ_SEEDS
pinned to the one seed, so the identical fleet, delivery schedule and
noise stream replay under a debugger-friendly single-seed run.

    tools/workload_repro.py --seed=1337
    tools/workload_repro.py --seed=1337 --count=8      # seed..seed+7
    tools/workload_repro.py --seed=1337 --binary=build/asan/tests/workload_fuzz_test

Exit status: the test binary's (0 green, non-zero reproduces the failure),
2 on usage/setup errors.
"""

import argparse
import os
import subprocess
import sys

# Searched relative to the repo root (this file's parent directory) when
# --binary is not given; first hit wins, sanitizer builds first since a
# fuzz failure usually came from one.
DEFAULT_BINARY_CANDIDATES = [
    "build/asan/tests/workload_fuzz_test",
    "build/tsan/tests/workload_fuzz_test",
    "build/release/tests/workload_fuzz_test",
    "build/debug/tests/workload_fuzz_test",
]


def find_binary(repo_root):
    for rel in DEFAULT_BINARY_CANDIDATES:
        path = os.path.join(repo_root, rel)
        if os.access(path, os.X_OK):
            return path
    return None


def main():
    parser = argparse.ArgumentParser(
        description="re-run one workload fuzz seed from its repro line")
    parser.add_argument("--seed", type=int, required=True,
                        help="the seed from the failure's repro line")
    parser.add_argument("--count", type=int, default=1,
                        help="sweep this many consecutive seeds (default 1)")
    parser.add_argument("--binary", default=None,
                        help="path to a built workload_fuzz_test "
                             "(default: search build/*/tests/)")
    args = parser.parse_args()
    if args.seed < 0 or args.count < 1:
        print("workload_repro: --seed must be >= 0 and --count >= 1",
              file=sys.stderr)
        return 2

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = args.binary or find_binary(repo_root)
    if binary is None or not os.access(binary, os.X_OK):
        print("workload_repro: no workload_fuzz_test binary found; build one "
              "(e.g. `cmake --build build/release --target workload_fuzz_test`) "
              "or pass --binary", file=sys.stderr)
        return 2

    env = dict(os.environ)
    env["QHORN_FUZZ_SEEDS"] = f"{args.seed}:{args.count}"
    cmd = [binary,
           "--gtest_filter=WorkloadFuzzTest.HostileFleetSweepIsReplayEquivalent"]
    print(f"workload_repro: QHORN_FUZZ_SEEDS={env['QHORN_FUZZ_SEEDS']} "
          f"{' '.join(cmd)}")
    return subprocess.call(cmd, env=env)


if __name__ == "__main__":
    sys.exit(main())
