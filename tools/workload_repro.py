#!/usr/bin/env python3
"""Reproduce one hostile-fleet or crash-recovery seed from its repro line.

Every workload_fuzz_test and durable_crash_test failure message ends with
a line of the form

    repro: tools/workload_repro.py --seed=1337

This tool re-runs exactly that seed: it finds (or is told) a built sweep
binary and invokes it with the seed-range environment variable pinned to
the one seed, so the identical fleet, delivery schedule, noise stream —
and, for the crash suite, crash schedule — replay under a
debugger-friendly single-seed run.

    tools/workload_repro.py --seed=1337
    tools/workload_repro.py --seed=1337 --suite=crash
    tools/workload_repro.py --seed=1337 --count=8      # seed..seed+7
    tools/workload_repro.py --seed=1337 --build-dir=build/asan
    tools/workload_repro.py --seed=1337 --binary=build/asan/tests/workload_fuzz_test

Exit status: the test binary's (0 green, non-zero reproduces the failure),
2 on usage errors, 3 when no sweep binary could be found.
"""

import argparse
import os
import subprocess
import sys

EXIT_USAGE = 2
EXIT_NO_BINARY = 3

SUITES = {
    "workload": {
        "binary": "workload_fuzz_test",
        "env": "QHORN_FUZZ_SEEDS",
        "filter": "WorkloadFuzzTest.HostileFleetSweepIsReplayEquivalent",
    },
    "crash": {
        "binary": "durable_crash_test",
        "env": "QHORN_CRASH_SEEDS",
        "filter": "DurableCrashTest.CrashedFleetsRecoverBitIdentical",
    },
}

# Searched relative to the repo root (this file's parent directory) when
# neither --binary nor --build-dir is given; first hit wins, sanitizer
# builds first since a sweep failure usually came from one.
DEFAULT_BUILD_DIRS = [
    "build/asan",
    "build/tsan",
    "build/release",
    "build/debug",
    "build",
]


def find_binary(repo_root, build_dir, binary_name):
    if build_dir is not None:
        candidates = [os.path.join(build_dir, "tests", binary_name),
                      os.path.join(build_dir, binary_name)]
    else:
        candidates = [os.path.join(repo_root, d, "tests", binary_name)
                      for d in DEFAULT_BUILD_DIRS]
    for path in candidates:
        if os.access(path, os.X_OK):
            return path
    return None


def main():
    parser = argparse.ArgumentParser(
        description="re-run one workload/crash sweep seed from its repro line")
    parser.add_argument("--seed", type=int, required=True,
                        help="the seed from the failure's repro line")
    parser.add_argument("--count", type=int, default=1,
                        help="sweep this many consecutive seeds (default 1)")
    parser.add_argument("--suite", choices=sorted(SUITES), default="workload",
                        help="which sweep to replay the seed through "
                             "(default: workload)")
    parser.add_argument("--build-dir", default=None,
                        help="build tree to take the binary from "
                             "(its tests/ subdirectory is searched)")
    parser.add_argument("--binary", default=None,
                        help="path to a built sweep binary "
                             "(default: search build trees)")
    args = parser.parse_args()
    if args.seed < 0 or args.count < 1:
        print("workload_repro: --seed must be >= 0 and --count >= 1",
              file=sys.stderr)
        return EXIT_USAGE

    suite = SUITES[args.suite]
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = args.binary or find_binary(repo_root, args.build_dir,
                                        suite["binary"])
    if binary is None or not os.access(binary, os.X_OK):
        print(f"workload_repro: no {suite['binary']} binary found; build one "
              f"(e.g. `cmake --build build/release --target "
              f"{suite['binary']}`) or pass --binary/--build-dir",
              file=sys.stderr)
        return EXIT_NO_BINARY

    env = dict(os.environ)
    env[suite["env"]] = f"{args.seed}:{args.count}"
    cmd = [binary, f"--gtest_filter={suite['filter']}"]
    print(f"workload_repro: {suite['env']}={env[suite['env']]} "
          f"{' '.join(cmd)}")
    return subprocess.call(cmd, env=env)


if __name__ == "__main__":
    sys.exit(main())
