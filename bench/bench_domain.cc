// E1 — Fig. 1 and the §2 counting argument.
//
// Regenerates the Boolean-domain transformation of the paper's chocolate
// boxes and the table behind §2's intractability argument: 2^n Boolean
// tuples, 2^(2^n) objects, and 2^(2^(2^n)) distinguishable Boolean queries
// (so that exact learning of arbitrary queries needs 2^(2^n) membership
// questions).

#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/core/counting.h"
#include "src/relation/chocolate.h"
#include "src/util/table.h"

using namespace qhorn;

int main() {
  PrintHeader("E1 | Fig. 1 + §2 counting",
              "3 propositions → 8 chocolate classes, 256 boxes, ~10^77 "
              "queries; learning arbitrary queries needs 2^(2^n) questions");

  std::printf("\n-- Fig. 1: data domain → Boolean domain --\n");
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  for (size_t i = 0; i < binding.propositions().size(); ++i) {
    std::printf("p%zu = x%zu : %s\n", i + 1, i + 1,
                binding.propositions()[i].label().c_str());
  }
  NestedRelation boxes = Fig1Boxes();
  for (const NestedObject& box : boxes.objects()) {
    TupleSet image = binding.ObjectToBoolean(box);
    std::printf("\n%s:\n%s  → S = %s\n", box.name.c_str(),
                box.tuples.ToString().c_str(), image.ToString(3).c_str());
  }

  std::printf("\n-- §2: why arbitrary Boolean queries are unlearnable --\n");
  TextTable table({"n", "tuples 2^n", "objects 2^(2^n)",
                   "lg(#queries) = questions needed"});
  for (int n = 1; n <= 4; ++n) {
    table.Row()
        .Cell(n)
        .Cell(NumBooleanTuples(n))
        .Cell(NumObjectsString(n))
        .Cell(LgNumQueriesString(n));
  }
  table.Print(std::cout);
  std::printf("for n = 3 the paper quotes ≈10^77 distinguishable queries "
              "(2^256); the required 2^(2^n) = 256 questions already "
              "exceeds any interactive budget.\n");
  return 0;
}
