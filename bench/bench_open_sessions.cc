// E18 — open-session memory: what a parked session actually costs.
//
// The service claim behind the sharded router is lots of *open* sessions,
// not lots of running ones: a fleet where nearly every session sits
// suspended on a pending round awaiting its user. This benchmark prices
// that state per resume protocol. For each mode it opens K pending
// sessions on a 4-lane router, submits one learn job each, drains until
// every session is parked on its first user round, and reports
//
//   * the process RSS delta per session (the ground truth: everything —
//     session object, transcript, parked fiber stack or snapshot,
//     router bookkeeping),
//   * the router's own parked-resume accounting (ServiceStats::
//     snapshot_bytes) per session — in fiber mode this reflects the
//     cold-stack trim (madvise(MADV_DONTNEED) of the parked stack below
//     the suspended frame), which is what makes the fiber protocol's
//     512 KiB stacks affordable at fleet scale,
//   * the extrapolated GiB for one million open sessions.
//
// K defaults to 16384 full / 512 smoke (fiber stacks cost two VMAs each —
// guard page + stack — so K is bounded by vm.max_map_count, not memory);
// QHORN_OPEN_SESSIONS overrides without a rebuild.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_domain.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/session/router.h"
#include "src/util/table.h"

using namespace qhorn;

namespace {

/// Resident-set bytes of this process (/proc/self/statm field 2).
size_t ReadRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size = 0;
  long long resident = 0;
  int got = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<size_t>(resident) *
         static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

int OpenSessionCount() {
  const char* env = std::getenv("QHORN_OPEN_SESSIONS");
  if (env != nullptr && env[0] != '\0') {
    int k = std::atoi(env);
    if (k > 0) return k;
  }
  return SmokeScaled(16384, 512);
}

const char* ModeName(ResumeMode mode) {
  switch (mode) {
    case ResumeMode::kFiber:
      return "fiber";
    case ResumeMode::kSnapshot:
      return "snapshot";
    case ResumeMode::kReplay:
      return "replay";
    default:
      return "?";
  }
}

struct ModeResult {
  size_t rss_delta = 0;
  int64_t accounted = 0;  ///< ServiceStats::snapshot_bytes across the fleet
  int64_t awaiting = 0;
};

ModeResult ParkFleet(ResumeMode mode, int sessions,
                     const std::vector<Query>& targets) {
  ModeResult result;
  size_t before = ReadRssBytes();
  SessionRouter::Options opts;
  opts.threads = 4;
  opts.resume_mode = mode;
  SessionRouter router(opts);
  for (int s = 0; s < sessions; ++s) {
    SessionRouter::SessionId id =
        router.OpenPending(targets[static_cast<size_t>(s) % targets.size()].n());
    router.SubmitLearn(id);
  }
  router.Drain();
  ServiceStats stats = router.stats();
  result.awaiting = stats.awaiting_sessions;
  result.accounted = stats.snapshot_bytes;
  result.rss_delta = ReadRssBytes() - before;
  if (result.awaiting != sessions) {
    std::printf("BENCH FAILED: only %lld/%d sessions parked in %s mode\n",
                static_cast<long long>(result.awaiting), sessions,
                ModeName(mode));
    std::exit(1);
  }
  // The router (and its parked fleet) dies here; the next mode starts
  // from a fresh baseline. Freed pages may stay resident in the
  // allocator, which is why each mode measures its own before/after.
  return result;
}

}  // namespace

int main() {
  const int sessions = OpenSessionCount();
  PrintHeader("E18 | open-session memory",
              "K pending sessions parked on their first user round; "
              "bytes/session per resume protocol");
  std::printf("sessions per mode: %d (QHORN_OPEN_SESSIONS to override)\n\n",
              sessions);

  // A small shared target pool (the compiled-query cache keeps these
  // deduplicated, as in production fleets).
  std::vector<Query> targets;
  for (uint64_t seed = 60; seed < 64; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = 1;
    opts.theta = 2;
    opts.num_conjunctions = 2;
    opts.conj_size_max = 3;
    targets.push_back(RandomRolePreserving(6, rng, opts));
  }

  TextTable table({"mode", "sessions", "rss delta MiB", "rss B/session",
                   "accounted B/session", "GiB @ 1M sessions"});
  for (ResumeMode mode :
       {ResumeMode::kFiber, ResumeMode::kSnapshot, ResumeMode::kReplay}) {
    ModeResult r = ParkFleet(mode, sessions, targets);
    double per_session =
        static_cast<double>(r.rss_delta) / static_cast<double>(sessions);
    table.Row()
        .Cell(std::string(ModeName(mode)))
        .Cell(sessions)
        .Cell(static_cast<double>(r.rss_delta) / (1024.0 * 1024.0), 1)
        .Cell(per_session, 0)
        .Cell(static_cast<double>(r.accounted) /
                  static_cast<double>(sessions),
              0)
        .Cell(per_session * 1e6 / (1024.0 * 1024.0 * 1024.0), 2);
  }
  table.Print(std::cout);
  std::printf(
      "\nrss B/session is ground truth (includes session, transcript and\n"
      "router bookkeeping); accounted B/session is the router's own parked-\n"
      "resume number — in fiber mode the gap vs the 512 KiB mapped stack is\n"
      "the cold-stack trim at work.\n");
  return 0;
}
