// E2 — Theorem 2.1: learning full qhorn (variables repeating r ≥ 2 times)
// needs Ω(2^n) membership questions.
//
// The candidate class is φ = Uni(X) ∧ Alias(Y); the adversary answers
// "non-answer" whenever it can, so each question eliminates exactly one
// candidate and the learner pays for the whole class.

#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/lower_bounds/alias_class.h"
#include "src/util/table.h"

using namespace qhorn;

int main() {
  PrintHeader("E2 | Theorem 2.1 (general qhorn is unlearnable)",
              "the alias adversary forces 2^n − n − 1 questions "
              "(one candidate eliminated per question)");

  TextTable table({"n", "candidates", "questions to pin", "2^n"});
  for (int n : {3, 4, 5, 6, 8, 10, 12, 14}) {
    if (SmokeSkip(n, 8)) continue;
    std::vector<Query> cls = AliasClass(n);
    AdversaryOracle adversary(cls);
    int64_t questions = RunAliasEliminationLearner(n, &adversary);
    table.Row()
        .Cell(n)
        .Cell(static_cast<uint64_t>(cls.size()))
        .Cell(questions)
        .Cell(uint64_t{1} << n);
  }
  table.Print(std::cout);
  std::printf("expected shape: questions track 2^n exactly — compare the "
              "O(n lg n) and poly(n) counts of E4/E6/E8 for the qhorn-1 and "
              "role-preserving subclasses, which is the paper's core "
              "separation.\n");
  return 0;
}
