// E17 — the hostile-fleet macro benchmark.
//
// Reuses the src/workload FleetDriver as a load generator: a seeded
// heterogeneous fleet (mixed query classes, schema sizes, noisy users,
// abandoners) is driven through the pending-round protocol under
// heavy-tailed simulated user latency and adversarial delivery, swept
// across lane counts. The headline number is fleet wall-clock and
// answered-rounds/second per lane count — how much concurrency the
// service extracts when most sessions are parked on slow users — plus
// the hostility counters (malformed/duplicate replies rejected, sessions
// abandoned mid-round). Correctness rides along: the smallest
// configuration is also run through RunDifferential, so the benchmark
// fails loudly if the fleet it timed ever diverges from its synchronous
// replay.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/util/executor.h"
#include "src/util/table.h"
#include "src/workload/fleet_driver.h"
#include "src/workload/workload.h"

using namespace qhorn;

namespace {

/// A macro-sized spec: FromSeed's shape (so the fleet is heterogeneous in
/// exactly the fuzz sweep's axes) scaled up to benchmark session counts,
/// with heavy-tailed latency and every hostile delivery mode live.
WorkloadSpec MacroSpec(uint64_t seed, int sessions) {
  WorkloadSpec spec = WorkloadSpec::FromSeed(seed);
  spec.sessions = sessions;
  spec.noisy_fraction = 0.25;
  spec.abandon_fraction = 0.15;
  spec.malformed_rate = 0.2;
  spec.duplicate_rate = 0.2;
  spec.answer_fraction = 0.6;   // partial sweeps: rounds resume out of order
  spec.latency_alpha = 1.2;     // Pareto-ish tail: a few users are very slow
  spec.latency_cap_ticks = 12;
  return spec;
}

double TimePending(FleetDriver& driver, int lanes, FleetResult* out) {
  auto start = std::chrono::steady_clock::now();
  FleetResult result = driver.RunPending(lanes);
  auto stop = std::chrono::steady_clock::now();
  if (!result.ok) {
    std::printf("BENCH FAILED: %s\n", result.failure.c_str());
    std::exit(1);
  }
  *out = result;
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  PrintHeader("E17 | hostile-fleet workload",
              "seeded heterogeneous fleet under heavy-tailed user latency "
              "and adversarial delivery; rounds/s per lane count");

  int default_lanes = Executor::DefaultConcurrency();
  std::printf("default executor lanes: %d (QHORN_THREADS to override)\n\n",
              default_lanes);

  TextTable table({"seed", "sessions", "lanes", "wall s", "rounds/s",
                   "sweeps", "malformed", "dups", "abandoned"});
  for (uint64_t seed : {11u, 12u}) {
    if (BenchSmoke() && seed != 11u) continue;
    for (int sessions : {SmokeScaled(32, 6), SmokeScaled(96, 10)}) {
      WorkloadSpec spec = MacroSpec(seed, sessions);
      Fleet fleet = GenerateFleet(spec);
      FleetDriver driver(fleet);
      for (int lanes : {1, 2, 4, default_lanes}) {
        if (BenchSmoke() && lanes > 2 && lanes != default_lanes) continue;
        FleetResult result;
        double wall = TimePending(driver, lanes, &result);
        table.Row()
            .Cell(static_cast<int64_t>(seed))
            .Cell(sessions)
            .Cell(lanes)
            .Cell(wall, 3)
            .Cell(static_cast<double>(result.rounds_answered) /
                      (wall > 0.0 ? wall : 1e-9),
                  1)
            .Cell(result.sweeps)
            .Cell(result.malformed_injected)
            .Cell(result.duplicates_injected)
            .Cell(result.abandoned_sessions);
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nrounds/s counts accepted ProvideAnswers resumes; malformed/dups are\n"
      "injected garbage the router must reject without touching state.\n");

  // The correctness rider: the smallest timed configuration must still be
  // bit-identical to its synchronous replay.
  WorkloadSpec check = MacroSpec(11u, SmokeScaled(32, 6));
  DifferentialOutcome out = RunDifferential(check);
  if (!out.ok) {
    std::printf("BENCH FAILED: differential mismatch — %s\n",
                out.failure.c_str());
    return 1;
  }
  std::printf("\ndifferential check: fleet seed 11 replay-equivalent (%lld "
              "rounds, %lld abandoned)\n",
              static_cast<long long>(out.pending.rounds_answered),
              static_cast<long long>(out.pending.abandoned_sessions));
  return 0;
}
