// E15 — micro-benchmarks (google-benchmark): the paper's interactive-
// performance requirements. Question generation must be polynomial (and in
// practice microseconds), evaluation linear in the object, and the full
// learning loops fast enough for a UI.
//
// Evaluation benchmarks come in compiled/legacy pairs over identical
// workloads: BM_EvaluateQuery* drives the CompiledQuery engine (what every
// oracle now runs), BM_EvaluateQuery*Legacy drives the interpreted
// Query::Evaluate it replaced — the in-tree before/after record for
// BENCH_micro.json. The primary workload is a stream of 64 guarantee-
// satisfiable ("answer-shaped") 16-tuple objects: objects that pass the
// guarantee clauses are the ones the interpreter had to re-scan once per
// expression, and they are what learner questions look like (every
// learner question contains the all-true tuple). The Single pair keeps the
// original one-random-object shape, which mostly measures how fast a
// first Horn violation is found.

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_domain.h"
#include "src/core/compiled_query.h"
#include "src/durable/durable_router.h"
#include "src/durable/fs.h"
#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/learn/qhorn1_learner.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"
#include "src/oracle/pipeline.h"
#include "src/relation/chocolate.h"
#include "src/session/router.h"
#include "src/session/sharded_router.h"
#include "src/util/bit_span.h"
#include "src/util/executor.h"
#include "src/verify/verification_set.h"
#include "src/workload/fleet_driver.h"
#include "src/workload/workload.h"

namespace qhorn {
namespace {

Query BenchQuery(int n, Rng& rng) {
  RpOptions opts;
  opts.num_heads = 2;
  opts.theta = 2;
  opts.num_conjunctions = 4;
  return RandomRolePreserving(n, rng, opts);
}

Query BenchQuery(int n) {
  Rng rng(1);
  return BenchQuery(n, rng);
}

// 64 answer-shaped objects: up to 16 random tuples plus the all-true tuple
// (which satisfies every guarantee clause, the way real answers and
// learner questions do).
std::vector<TupleSet> AnswerShapedStream(int n) {
  Rng rng(2);
  std::vector<TupleSet> objects;
  objects.reserve(64);
  for (int i = 0; i < 64; ++i) {
    TupleSet o = RandomObject(n, rng, 16);
    o.Add(AllTrue(n));
    objects.push_back(std::move(o));
  }
  return objects;
}

void BM_EvaluateQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Query q = BenchQuery(n);
  CompiledQuery compiled(q);
  std::vector<TupleSet> objects = AnswerShapedStream(n);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.Evaluate(objects[i]));
    i = (i + 1) & 63;
  }
  state.SetLabel(std::string("answer-shaped stream, ") +
                 CompiledQuery::SimdBackend() + " kernels");
}
BENCHMARK(BM_EvaluateQuery)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EvaluateQueryLegacy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Query q = BenchQuery(n);
  std::vector<TupleSet> objects = AnswerShapedStream(n);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(objects[i]));
    i = (i + 1) & 63;
  }
  state.SetLabel("answer-shaped stream, interpreted Query::Evaluate");
}
BENCHMARK(BM_EvaluateQueryLegacy)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EvaluateQuerySingle(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);  // the pre-PR benchmark's exact query and object
  Query q = BenchQuery(n, rng);
  TupleSet object = RandomObject(n, rng, 16);
  CompiledQuery compiled(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.Evaluate(object));
  }
}
BENCHMARK(BM_EvaluateQuerySingle)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EvaluateQuerySingleLegacy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Query q = BenchQuery(n, rng);
  TupleSet object = RandomObject(n, rng, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(object));
  }
}
BENCHMARK(BM_EvaluateQuerySingleLegacy)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CompileQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Query q = BenchQuery(n);
  for (auto _ : state) {
    CompiledQuery compiled(q);
    benchmark::DoNotOptimize(compiled.num_need_masks());
  }
  state.SetLabel("one-time cost, amortized over a session's questions");
}
BENCHMARK(BM_CompileQuery)->Arg(16)->Arg(64);

// Per-question overhead of the oracle pipeline at different round sizes:
// the Batched variant sends each round through IsAnswerBatch (one virtual
// hop, then CompiledQuery::EvaluateAll), the Sequential variant decomposes
// the identical round into per-question IsAnswer calls via the
// SequentialOracle adapter — the before/after pair for the batched oracle
// seam. Time is per round; read per-question cost off items_per_second.
std::vector<TupleSet> BatchQuestions(int n, size_t count) {
  Rng rng(7);
  std::vector<TupleSet> questions;
  questions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TupleSet q = RandomObject(n, rng, 16);
    q.Add(AllTrue(n));
    questions.push_back(std::move(q));
  }
  return questions;
}

void BM_OracleBatchBatched(benchmark::State& state) {
  int n = 64;
  size_t batch = static_cast<size_t>(state.range(0));
  Query q = BenchQuery(n);
  QueryOracle oracle(q);
  CountingOracle counting(&oracle);
  // Both pair arms call through MembershipOracle* — the learners' actual
  // call shape — so neither arm is flattered by devirtualization.
  MembershipOracle* top = &counting;
  std::vector<TupleSet> questions = BatchQuestions(n, batch);
  BitVec answers;
  for (auto _ : state) {
    top->IsAnswerBatch(questions, answers.Prepare(batch));
    benchmark::DoNotOptimize(answers);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  state.SetLabel("counting → compiled oracle, one round per iteration");
}
BENCHMARK(BM_OracleBatchBatched)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_OracleBatchSequential(benchmark::State& state) {
  int n = 64;
  size_t batch = static_cast<size_t>(state.range(0));
  Query q = BenchQuery(n);
  QueryOracle oracle(q);
  CountingOracle counting(&oracle);
  SequentialOracle sequential(&counting);
  MembershipOracle* top = &sequential;
  std::vector<TupleSet> questions = BatchQuestions(n, batch);
  BitVec answers;
  for (auto _ : state) {
    top->IsAnswerBatch(questions, answers.Prepare(batch));
    benchmark::DoNotOptimize(answers);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  state.SetLabel("same round decomposed into per-question IsAnswer calls");
}
BENCHMARK(BM_OracleBatchSequential)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

// BM_OracleBatchParallel vs BM_OracleBatchBatched at the same width is the
// executor pair: the identical round through the identical decorator,
// evaluated inline (Batched) vs sharded across the executor by the
// AsyncOracle backend (Parallel). Widths straddle
// CompiledQuery::kParallelRoundCutover. Executor sized by
// Executor::DefaultConcurrency() — i.e. QHORN_THREADS-overridable — so the
// recorded number reflects the machine it ran on.
void BM_OracleBatchParallel(benchmark::State& state) {
  int n = 64;
  size_t batch = static_cast<size_t>(state.range(0));
  Query q = BenchQuery(n);
  Executor executor;
  AsyncOracle oracle(std::make_shared<const CompiledQuery>(q), &executor);
  CountingOracle counting(&oracle);
  MembershipOracle* top = &counting;
  std::vector<TupleSet> questions = BatchQuestions(n, batch);
  BitVec answers;
  for (auto _ : state) {
    top->IsAnswerBatch(questions, answers.Prepare(batch));
    benchmark::DoNotOptimize(answers);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  // The lane count (QHORN_THREADS-sensitive) rides along in the JSON so
  // tools/bench_compare.py can refuse to compare runs with different
  // effective parallelism, not just different machines.
  state.counters["lanes"] = static_cast<double>(executor.concurrency());
  state.SetLabel("executor-sharded EvaluateAll, " +
                 std::to_string(executor.concurrency()) + " lanes");
}
// UseRealTime: the work happens on pool threads, so the benchmark
// thread's cpu_time would under-count; the pair ratio is wall-clock
// (tools/bench_compare.py reads real_time for the concurrency pairs).
BENCHMARK(BM_OracleBatchParallel)->Arg(256)->Arg(4096)->UseRealTime();

void BM_CachingOracleHit(benchmark::State& state) {
  int n = 64;
  Query q = BenchQuery(n);
  QueryOracle oracle(q);
  CachingOracle caching(&oracle);
  Rng rng(3);
  TupleSet question = RandomObject(n, rng, 16);
  caching.IsAnswer(question);  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(caching.IsAnswer(question));
  }
  state.SetLabel("repeat question; cached TupleSet hash, no rehash");
}
BENCHMARK(BM_CachingOracleHit);

// The pre-worklist fixpoint re-scan, kept as the in-tree reference the
// worklist closure is measured against (shared by both Legacy closures).
VarSet FixpointClosure(const Query& q, VarSet vars) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const UniversalHorn& u : q.universal()) {
      if (IsSubset(u.body, vars) && !HasVar(vars, u.head)) {
        vars |= VarBit(u.head);
        changed = true;
      }
    }
  }
  return vars;
}

void BM_HornClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(2);
  RpOptions opts;
  opts.num_heads = n / 4;
  opts.theta = 2;
  Query q = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.HornClosure(AllTrue(n / 2)));
  }
  state.SetLabel("worklist closure");
}
BENCHMARK(BM_HornClosure)->Arg(16)->Arg(64);

void BM_HornClosureLegacy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(2);
  RpOptions opts;
  opts.num_heads = n / 4;
  opts.theta = 2;
  Query q = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FixpointClosure(q, AllTrue(n / 2)));
  }
  state.SetLabel("O(k²) fixpoint re-scan");
}
BENCHMARK(BM_HornClosureLegacy)->Arg(16)->Arg(64);

// Worst case for the fixpoint: a reverse-ordered implication chain
// ∀x63→x64, …, ∀x1→x2 closed from {x1} fires one expression per O(k)
// re-scan round — Θ(k²) — where the worklist closure is linear.
Query ReverseChain(int n) {
  Query q(n);
  for (int i = n - 2; i >= 0; --i) q.AddUniversal(VarBit(i), i + 1);
  return q;
}

void BM_HornClosureChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Query q = ReverseChain(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.HornClosure(VarBit(0)));
  }
  state.SetLabel("worklist closure, reverse implication chain");
}
BENCHMARK(BM_HornClosureChain)->Arg(16)->Arg(64);

void BM_HornClosureChainLegacy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Query q = ReverseChain(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FixpointClosure(q, VarBit(0)));
  }
  state.SetLabel("O(k²) fixpoint re-scan, reverse implication chain");
}
BENCHMARK(BM_HornClosureChainLegacy)->Arg(16)->Arg(64);

void BM_Canonicalize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(3);
  RpOptions opts;
  opts.num_heads = 3;
  opts.theta = 2;
  opts.num_conjunctions = 6;
  Query q = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Canonicalize(q));
  }
}
BENCHMARK(BM_Canonicalize)->Arg(16)->Arg(64);

void BM_Qhorn1LearnEndToEnd(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(4);
  Qhorn1Structure target = RandomQhorn1(n, rng);
  Query target_query = target.ToQuery();
  for (auto _ : state) {
    QueryOracle oracle(target_query);
    Qhorn1Learner learner(n, &oracle);
    benchmark::DoNotOptimize(learner.Learn());
  }
  state.SetLabel("full learning loop incl. simulated user");
}
BENCHMARK(BM_Qhorn1LearnEndToEnd)->Arg(16)->Arg(32)->Arg(64);

void BM_RpLearnEndToEnd(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  RpOptions opts;
  opts.num_heads = 2;
  opts.theta = 2;
  opts.num_conjunctions = 3;
  Query target = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    QueryOracle oracle(target);
    benchmark::DoNotOptimize(LearnRolePreserving(n, &oracle));
  }
}
BENCHMARK(BM_RpLearnEndToEnd)->Arg(8)->Arg(16)->Arg(24);

void BM_BuildVerificationSet(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(6);
  RpOptions opts;
  opts.num_heads = 2;
  opts.theta = 2;
  opts.num_conjunctions = 4;
  Query q = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVerificationSet(q));
  }
}
BENCHMARK(BM_BuildVerificationSet)->Arg(8)->Arg(16)->Arg(32);

void BM_SynthesizeQuestion(benchmark::State& state) {
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  TupleSynthesizer synthesizer(&binding);
  TupleSet question = TupleSet::Parse({"111", "011", "100", "010"});
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synthesizer.SynthesizeObject(question, "box-" + std::to_string(++i)));
  }
  state.SetLabel("Boolean question → concrete chocolate box");
}
BENCHMARK(BM_SynthesizeQuestion);

// Aggregate multi-session throughput through the SessionRouter: N
// simulated users, four distinct intended queries shared via the
// compiled-query cache, each session learning end to end. The
// Throughput/Sequential pair is the service-layer headline: the identical
// workload routed across the default executor (QHORN_THREADS-overridable;
// the 4-core reference config targets ≥3× at 16 sessions) vs pinned to one
// lane. Time is per full drain; read sessions/second off items_per_second.
std::vector<Query> ServiceTargets(int n) {
  std::vector<Query> targets;
  for (uint64_t seed = 40; seed < 44; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = 2;
    opts.theta = 2;
    opts.num_conjunctions = 3;
    targets.push_back(RandomRolePreserving(n, rng, opts));
  }
  return targets;
}

void ServiceRound(int threads, int sessions, const std::vector<Query>& targets) {
  SessionRouter::Options opts;
  opts.threads = threads;
  SessionRouter router(opts);
  for (int s = 0; s < sessions; ++s) {
    SessionRouter::SessionId id =
        router.OpenSimulated(targets[static_cast<size_t>(s) % targets.size()]);
    router.SubmitLearn(id);
  }
  router.Drain();
}

void BM_ServiceThroughput(benchmark::State& state) {
  int sessions = static_cast<int>(state.range(0));
  std::vector<Query> targets = ServiceTargets(32);
  for (auto _ : state) {
    ServiceRound(/*threads=*/0, sessions, targets);
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["lanes"] =
      static_cast<double>(Executor::DefaultConcurrency());
  state.SetLabel("router over default executor (" +
                 std::to_string(Executor::DefaultConcurrency()) + " lanes)");
}
// UseRealTime: the sessions run on router lanes while the benchmark
// thread sleeps in Drain(); aggregate throughput is a wall-clock number.
BENCHMARK(BM_ServiceThroughput)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServiceSequential(benchmark::State& state) {
  int sessions = static_cast<int>(state.range(0));
  std::vector<Query> targets = ServiceTargets(32);
  for (auto _ : state) {
    ServiceRound(/*threads=*/1, sessions, targets);
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["lanes"] = 1.0;
  state.SetLabel("identical workload pinned to one lane");
}
BENCHMARK(BM_ServiceSequential)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Open-sessions-vs-lanes: the continuation pair. 64 sessions multiplexed
// over a 4-lane router — 16× more open sessions than lanes. The
// OpenSessions arm runs them as *pending* sessions in the production
// configuration: every user round parks the job's call stack on its fiber
// (yielding the lane), the benchmark thread plays all 64 users through
// the PendingRounds()/ProvideAnswers protocol, and each resume is one
// context switch back into the frame that asked — no rebuild, no replay,
// no re-walk — with the learner's speculative rounds batched wide so a
// whole probe regime costs one suspension instead of one per probe. The
// Direct arm is the identical fleet over synchronous in-process users on
// the same 4 lanes. The ratio prices the remaining continuation machinery
// — stack switches, round staging, protocol bookkeeping — against the
// zero threads it parks; the gate guards the recorded ratio against
// regressing (BM_SessionResume* below prices the three resume protocols
// head to head).
void BM_ServiceOpenSessions(benchmark::State& state) {
  int sessions = static_cast<int>(state.range(0));
  std::vector<Query> targets = ServiceTargets(8);
  std::vector<std::unique_ptr<QueryOracle>> truths;
  truths.reserve(targets.size());
  for (const Query& q : targets) {
    truths.push_back(std::make_unique<QueryOracle>(q));
  }
  for (auto _ : state) {
    SessionRouter::Options opts;
    opts.threads = 4;
    opts.resume_mode = ResumeMode::kFiber;
    opts.session.learner.existential.speculative_batching = true;
    opts.session.learner.universal.speculative_batching = true;
    SessionRouter router(opts);
    std::unordered_map<SessionRouter::SessionId, QueryOracle*> truth_of;
    for (int s = 0; s < sessions; ++s) {
      SessionRouter::SessionId id = router.OpenPending(8);
      truth_of[id] = truths[static_cast<size_t>(s) % truths.size()].get();
      router.SubmitLearn(id);
    }
    int64_t rounds = DrivePendingSessions(router, truth_of);
    benchmark::DoNotOptimize(rounds);
    state.counters["rounds"] = static_cast<double>(rounds);
    state.counters["replayed_questions"] =
        static_cast<double>(router.stats().replayed_questions);
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["lanes"] = 4.0;
  state.SetLabel("pending sessions: parked fibers, zero blocked threads");
}
// UseRealTime: the resumed jobs run on router lanes while the benchmark
// thread alternates between Drain() and playing the users.
BENCHMARK(BM_ServiceOpenSessions)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServiceOpenSessionsDirect(benchmark::State& state) {
  int sessions = static_cast<int>(state.range(0));
  std::vector<Query> targets = ServiceTargets(8);
  // One private synchronous user per session (Open's contract); compiled
  // once, reused across iterations.
  std::vector<std::unique_ptr<QueryOracle>> users;
  users.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    users.push_back(std::make_unique<QueryOracle>(
        targets[static_cast<size_t>(s) % targets.size()]));
  }
  for (auto _ : state) {
    SessionRouter::Options opts;
    opts.threads = 4;
    SessionRouter router(opts);
    for (int s = 0; s < sessions; ++s) {
      SessionRouter::SessionId id =
          router.Open(8, users[static_cast<size_t>(s)].get());
      router.SubmitLearn(id);
    }
    router.Drain();
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["lanes"] = 4.0;
  state.SetLabel("identical fleet, synchronous in-process users");
}
BENCHMARK(BM_ServiceOpenSessionsDirect)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Multi-core router contention: the PR 9 headline. Four driver threads
// hammer one router facade with a mixed open/submit/provide/poll workload
// over disjoint session ranges — 3/4 pending sessions (every round
// crosses the announcement queue and a provide), 1/4 simulated sessions
// (pure open/drain traffic through the shared striped compiled-query
// cache). Every session verifies the same tiny target, so per-session
// compute is a few microseconds and the time is dominated by router
// bookkeeping: shard mutexes, cache stripes, announcement drains. The
// shards argument is the contended-vs-striped knob — at 1 shard this is
// the old global-mutex SessionRouter reached through the identity facade;
// the gate pair (4096 sessions, 8 shards vs 1 shard) records what the
// sharding bought on the reference box.
void BM_RouterContention(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  constexpr int kDrivers = 4;
  Rng rng(47);
  RpOptions qopts;
  qopts.num_heads = 1;
  qopts.theta = 1;
  qopts.num_conjunctions = 1;
  qopts.conj_size_max = 2;
  const Query target = RandomRolePreserving(4, rng, qopts);
  for (auto _ : state) {
    ShardedRouter::Options opts;
    opts.shards = shards;
    opts.threads = 4;
    ShardedRouter router(opts);
    std::vector<std::thread> drivers;
    drivers.reserve(kDrivers);
    for (int d = 0; d < kDrivers; ++d) {
      drivers.emplace_back([&router, &target, sessions, d] {
        const int begin = d * sessions / kDrivers;
        const int end = (d + 1) * sessions / kDrivers;
        std::vector<ShardedRouter::SessionId> pending;
        for (int s = begin; s < end; ++s) {
          if (s % 4 == 0) {
            // Simulated: answers itself on a lane; open + cache traffic.
            router.SubmitVerify(router.OpenSimulated(target), target);
          } else {
            ShardedRouter::SessionId id = router.OpenPending(4);
            router.SubmitVerify(id, target);
            pending.push_back(id);
          }
        }
        // Play this driver's users: per-id polls (four pollers hitting
        // the per-shard announcement state concurrently), all-no answers
        // (verification's question set is fixed, so arbitrary labels
        // terminate deterministically).
        BitVec bits;
        bool done = false;
        while (!done) {
          done = true;
          for (ShardedRouter::SessionId id : pending) {
            std::optional<PendingRound> round = router.pending_round(id);
            if (round.has_value()) {
              BitSpan span = bits.Prepare(round->questions.size());
              for (size_t i = 0; i < span.size(); ++i) span.Set(i, false);
              router.ProvideAnswers(id, round->round_id, span);
              done = false;
            } else if (router.status(id) != SessionStatus::kIdle) {
              done = false;
            }
          }
          if (!done) std::this_thread::yield();
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    router.Drain();
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["lanes"] = 4.0;
  state.counters["shards"] = static_cast<double>(shards);
  state.SetLabel("4 drivers, mixed open/provide/poll, " +
                 std::to_string(shards) + "-shard facade");
}
// UseRealTime: the drivers and the router lanes all run off-thread; the
// contention cost is a wall-clock number.
BENCHMARK(BM_RouterContention)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({1024, 8})
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Session-resume protocol trio: one pending session, R verify jobs against
// R distinct candidates, every round suspending and resuming on a single
// lane. Fiber resume (the default) parks the call stack and each resume is
// one switch back — O(1) compute, zero questions re-served. Snapshot
// resume restores the suspended decorator state and replays only the newly
// answered round — O(R) questions re-served in total, but each resume
// still re-walks the suspended job's prefix against the restored cache.
// Full-prefix replay (the retired protocol, kept as the differential
// oracle behind QHORN_RESUME_MODE=replay) rebuilds every resume from job 0
// and re-serves the whole answered prefix — O(R²) questions. These are the
// in-tree before/after records for the continuation-resume rework; the
// gaps widen with R, which is why both depths are headline-gated.
void SessionResumeRounds(benchmark::State& state, ResumeMode mode) {
  int rounds = static_cast<int>(state.range(0));
  const int n = 6;
  Rng rng(41);
  RpOptions qopts;
  qopts.num_heads = 1;
  qopts.theta = 2;
  qopts.num_conjunctions = 2;
  QueryOracle truth(RandomRolePreserving(n, rng, qopts));
  std::vector<Query> candidates;
  candidates.reserve(static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    candidates.push_back(RandomRolePreserving(n, rng, qopts));
  }
  int64_t replayed = 0;
  for (auto _ : state) {
    SessionRouter::Options opts;
    opts.threads = 1;
    opts.resume_mode = mode;
    SessionRouter router(opts);
    SessionRouter::SessionId id = router.OpenPending(n);
    for (const Query& c : candidates) router.SubmitVerify(id, c);
    std::unordered_map<SessionRouter::SessionId, QueryOracle*> truth_of;
    truth_of[id] = &truth;
    benchmark::DoNotOptimize(DrivePendingSessions(router, truth_of));
    replayed = router.stats().replayed_questions;
  }
  state.SetItemsProcessed(state.iterations() * rounds);
  // The protocol's footprint, not a timing: questions re-served to the
  // session's own replaying backends across all resumes of one rep.
  state.counters["replayed_questions"] = static_cast<double>(replayed);
}

void BM_SessionResumeFiber(benchmark::State& state) {
  SessionResumeRounds(state, ResumeMode::kFiber);
  state.SetLabel("parked-stack switch per resume, nothing re-served");
}
BENCHMARK(BM_SessionResumeFiber)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SessionResumeSnapshot(benchmark::State& state) {
  SessionResumeRounds(state, ResumeMode::kSnapshot);
  state.SetLabel("snapshot restore + single-round replay per resume");
}
BENCHMARK(BM_SessionResumeSnapshot)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SessionResumeReplay(benchmark::State& state) {
  SessionResumeRounds(state, ResumeMode::kReplay);
  state.SetLabel("full-prefix replay per resume (retired protocol)");
}
BENCHMARK(BM_SessionResumeReplay)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The canonical-form dedup pair (the enumerate bottleneck): keying on the
// hashed CanonicalForm itself vs rendering ToString() keys into an ordered
// set, over an identical mixed-duplicate query stream.
std::vector<Query> DedupStream(int n) {
  std::vector<Query> queries;
  Rng rng(9);
  RpOptions opts;
  opts.num_heads = 3;
  opts.theta = 2;
  opts.num_conjunctions = 6;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(RandomRolePreserving(n, rng, opts));
  }
  // Every query appears twice: half the probes are dedup hits, as in the
  // enumeration sweeps.
  for (int i = 0; i < 64; ++i) queries.push_back(queries[static_cast<size_t>(i)]);
  return queries;
}

void BM_CanonicalDedup(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Query> stream = DedupStream(n);
  for (auto _ : state) {
    std::unordered_set<CanonicalForm, CanonicalFormHash> seen;
    for (const Query& q : stream) seen.insert(Canonicalize(q));
    benchmark::DoNotOptimize(seen.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel("hashed CanonicalForm keys (cached FNV)");
}
BENCHMARK(BM_CanonicalDedup)->Arg(16)->Arg(64);

void BM_CanonicalDedupLegacy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Query> stream = DedupStream(n);
  for (auto _ : state) {
    std::set<std::string> seen;
    for (const Query& q : stream) seen.insert(Canonicalize(q).ToString());
    benchmark::DoNotOptimize(seen.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel("ToString() keys in an ordered set (the pre-PR scheme)");
}
BENCHMARK(BM_CanonicalDedupLegacy)->Arg(16)->Arg(64);

// The durable pair: one clean generated session driven through the
// pending protocol to completion, with and without the write-ahead log
// (MemFs, fsync-per-append — the full log-before-ack path minus real disk
// latency). The delta is the per-round cost of durability: encode, CRC,
// append, simulated fsync. Not part of the CI bench gate.
SessionSpec DurableBenchSpec() {
  for (uint64_t seed = 1;; ++seed) {
    for (const SessionSpec& s : GenerateFleet(WorkloadSpec::FromSeed(seed)).sessions) {
      if (!s.noisy() && !s.abandon && !s.jobs.empty()) return s;
    }
  }
}

template <typename Endpoint>
int64_t DriveDurableBenchSession(Endpoint& endpoint, const SessionSpec& spec,
                                 int64_t id) {
  QueryOracle truth(spec.target);
  BitVec bits;
  int64_t rounds = 0;
  for (;;) {
    endpoint.Drain();
    std::vector<PendingRound> pending = endpoint.PendingRounds();
    const PendingRound* mine = nullptr;
    for (const PendingRound& r : pending) {
      if (r.session_id == id) mine = &r;
    }
    if (mine == nullptr) return rounds;
    BitSpan span = bits.Prepare(mine->questions.size());
    truth.IsAnswerBatch(mine->questions, span);
    endpoint.ProvideAnswers(id, mine->round_id, span);
    ++rounds;
  }
}

void BM_DurableProvideAnswers(benchmark::State& state) {
  SessionSpec spec = DurableBenchSpec();
  DurableRouterOptions opts;
  opts.router.threads = 1;
  opts.log.fsync_policy = FsyncPolicy::kEveryAppend;
  int64_t rounds = 0;
  std::string error;
  for (auto _ : state) {
    MemFs mem;
    auto dr = DurableRouter::Create(&mem, "qlog", opts, &error);
    int64_t id = dr->OpenPending(spec);
    rounds += DriveDurableBenchSession(*dr, spec, id);
  }
  state.SetItemsProcessed(rounds);
  state.SetLabel("WAL per round: encode + CRC + append + fsync (MemFs)");
}
BENCHMARK(BM_DurableProvideAnswers)->Unit(benchmark::kMillisecond);

void BM_DurableProvideAnswersInMemory(benchmark::State& state) {
  SessionSpec spec = DurableBenchSpec();
  SessionRouter::Options opts;
  opts.threads = 1;
  int64_t rounds = 0;
  for (auto _ : state) {
    SessionRouter router(opts);
    int64_t id = router.OpenPending(spec.n);
    SubmitSpecJobs(router, id, spec);
    rounds += DriveDurableBenchSession(router, spec, id);
  }
  state.SetItemsProcessed(rounds);
  state.SetLabel("identical session, no durability layer");
}
BENCHMARK(BM_DurableProvideAnswersInMemory)->Unit(benchmark::kMillisecond);

void BM_BruteForceEquivalence(benchmark::State& state) {
  Query a = Query::Parse("∀x1→x2 ∃x3x4", 4);
  Query b = Query::Parse("∀x1→x2 ∃x3x4 ∃x1x2", 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceEquivalent(a, b));
  }
  state.SetLabel("2^(2^4) objects enumerated");
}
BENCHMARK(BM_BruteForceEquivalence);

}  // namespace
}  // namespace qhorn

int main(int argc, char** argv) {
  benchmark::AddCustomContext("qhorn_simd",
                              qhorn::CompiledQuery::SimdBackend());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
