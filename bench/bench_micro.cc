// E15 — micro-benchmarks (google-benchmark): the paper's interactive-
// performance requirements. Question generation must be polynomial (and in
// practice microseconds), evaluation linear in the object, and the full
// learning loops fast enough for a UI.

#include <benchmark/benchmark.h>

#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/learn/qhorn1_learner.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"
#include "src/relation/chocolate.h"
#include "src/verify/verification_set.h"

namespace qhorn {
namespace {

void BM_EvaluateQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  RpOptions opts;
  opts.num_heads = 2;
  opts.theta = 2;
  opts.num_conjunctions = 4;
  Query q = RandomRolePreserving(n, rng, opts);
  TupleSet object = RandomObject(n, rng, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(object));
  }
}
BENCHMARK(BM_EvaluateQuery)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_HornClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(2);
  RpOptions opts;
  opts.num_heads = n / 4;
  opts.theta = 2;
  Query q = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.HornClosure(AllTrue(n / 2)));
  }
}
BENCHMARK(BM_HornClosure)->Arg(16)->Arg(64);

void BM_Canonicalize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(3);
  RpOptions opts;
  opts.num_heads = 3;
  opts.theta = 2;
  opts.num_conjunctions = 6;
  Query q = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Canonicalize(q));
  }
}
BENCHMARK(BM_Canonicalize)->Arg(16)->Arg(64);

void BM_Qhorn1LearnEndToEnd(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(4);
  Qhorn1Structure target = RandomQhorn1(n, rng);
  Query target_query = target.ToQuery();
  for (auto _ : state) {
    QueryOracle oracle(target_query);
    Qhorn1Learner learner(n, &oracle);
    benchmark::DoNotOptimize(learner.Learn());
  }
  state.SetLabel("full learning loop incl. simulated user");
}
BENCHMARK(BM_Qhorn1LearnEndToEnd)->Arg(16)->Arg(32)->Arg(64);

void BM_RpLearnEndToEnd(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  RpOptions opts;
  opts.num_heads = 2;
  opts.theta = 2;
  opts.num_conjunctions = 3;
  Query target = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    QueryOracle oracle(target);
    benchmark::DoNotOptimize(LearnRolePreserving(n, &oracle));
  }
}
BENCHMARK(BM_RpLearnEndToEnd)->Arg(8)->Arg(16)->Arg(24);

void BM_BuildVerificationSet(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(6);
  RpOptions opts;
  opts.num_heads = 2;
  opts.theta = 2;
  opts.num_conjunctions = 4;
  Query q = RandomRolePreserving(n, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildVerificationSet(q));
  }
}
BENCHMARK(BM_BuildVerificationSet)->Arg(8)->Arg(16)->Arg(32);

void BM_SynthesizeQuestion(benchmark::State& state) {
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  TupleSynthesizer synthesizer(&binding);
  TupleSet question = TupleSet::Parse({"111", "011", "100", "010"});
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synthesizer.SynthesizeObject(question, "box-" + std::to_string(++i)));
  }
  state.SetLabel("Boolean question → concrete chocolate box");
}
BENCHMARK(BM_SynthesizeQuestion);

void BM_BruteForceEquivalence(benchmark::State& state) {
  Query a = Query::Parse("∀x1→x2 ∃x3x4", 4);
  Query b = Query::Parse("∀x1→x2 ∃x3x4 ∃x1x2", 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceEquivalent(a, b));
  }
  state.SetLabel("2^(2^4) objects enumerated");
}
BENCHMARK(BM_BruteForceEquivalence);

}  // namespace
}  // namespace qhorn

BENCHMARK_MAIN();
