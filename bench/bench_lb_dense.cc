// E7 — Theorem 3.6: for a head of causal density θ, isolating the last
// body takes Ω((n/θ)^{θ−1}) questions.
//
// The family fixes θ−1 disjoint bodies of width n/(θ−1) and hides one more
// body assembled from all-but-one variable of each; the adversary keeps
// the product alive as long as possible. We run our own §3.2.1 learner
// against it and report the forced question counts.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/lower_bounds/dense_bodies.h"
#include "src/util/table.h"

using namespace qhorn;

int main() {
  PrintHeader("E7 | Theorem 3.6 (causal-density lower bound)",
              "the adversary forces ≈ (n/(θ−1))^{θ−1} questions for the "
              "hidden θ-th body");

  TextTable table({"n(bodies)", "θ", "width n/(θ−1)", "candidates",
                   "questions", "width^{θ−1}", "ratio"});
  struct Config {
    int width;
    int theta;
  };
  for (Config cfg : {Config{4, 2}, Config{8, 2}, Config{16, 2}, Config{3, 3},
                     Config{5, 3}, Config{7, 3}, Config{3, 4}, Config{4, 4}}) {
    if (SmokeSkip(cfg.width, 8)) continue;
    int n = cfg.width * (cfg.theta - 1);
    DenseBodyFamily family = MakeDenseBodyFamily(n, cfg.theta);
    std::vector<Query> cls = DenseBodyClass(family);
    AdversaryOracle adversary(cls);
    int64_t questions = RunDenseBodyLearner(family, &adversary);
    double product = std::pow(cfg.width, cfg.theta - 1);
    table.Row()
        .Cell(n)
        .Cell(cfg.theta)
        .Cell(cfg.width)
        .Cell(static_cast<uint64_t>(cls.size()))
        .Cell(questions)
        .Cell(product, 0)
        .Cell(static_cast<double>(questions) / product, 2);
  }
  table.Print(std::cout);
  std::printf("expected shape: questions ≥ width^{θ−1} with a small "
              "constant — matching the Theorem 3.5 upper bound's n^θ "
              "search-root product and showing it is not slack.\n");
  return 0;
}
