// Shared helpers for the experiment binaries.

#ifndef QHORN_BENCH_BENCH_DOMAIN_H_
#define QHORN_BENCH_BENCH_DOMAIN_H_

#include <cstdio>
#include <string>

namespace qhorn {

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace qhorn

#endif  // QHORN_BENCH_BENCH_DOMAIN_H_
