// Shared helpers for the experiment binaries.

#ifndef QHORN_BENCH_BENCH_DOMAIN_H_
#define QHORN_BENCH_BENCH_DOMAIN_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace qhorn {

/// True when QHORN_BENCH_SMOKE is set in the environment (the ctest
/// `bench_smoke` label sets it): experiment binaries shrink their seed
/// counts and problem sizes so CI keeps them runnable, not just compiling.
inline bool BenchSmoke() {
  const char* env = std::getenv("QHORN_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// `full` in a normal run, `smoke` under QHORN_BENCH_SMOKE=1.
inline int SmokeScaled(int full, int smoke) {
  return BenchSmoke() ? smoke : full;
}

/// Smoke-mode size cap for problem-size loops: true when `n` should be
/// skipped in a smoke run.
inline bool SmokeSkip(int n, int max_smoke_n) {
  return BenchSmoke() && n > max_smoke_n;
}

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace qhorn

#endif  // QHORN_BENCH_BENCH_DOMAIN_H_
