// Shared helpers for the experiment binaries.

#ifndef QHORN_BENCH_BENCH_DOMAIN_H_
#define QHORN_BENCH_BENCH_DOMAIN_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/session/router.h"
#include "src/util/bit_span.h"

namespace qhorn {

/// True when QHORN_BENCH_SMOKE is set in the environment (the ctest
/// `bench_smoke` label sets it): experiment binaries shrink their seed
/// counts and problem sizes so CI keeps them runnable, not just compiling.
inline bool BenchSmoke() {
  const char* env = std::getenv("QHORN_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// `full` in a normal run, `smoke` under QHORN_BENCH_SMOKE=1.
inline int SmokeScaled(int full, int smoke) {
  return BenchSmoke() ? smoke : full;
}

/// Smoke-mode size cap for problem-size loops: true when `n` should be
/// skipped in a smoke run.
inline bool SmokeSkip(int n, int max_smoke_n) {
  return BenchSmoke() && n > max_smoke_n;
}

/// The embedding-server loop the pending-round benchmarks drive: answer
/// every pending round from the per-session ground truth until no session
/// is awaiting (Drain → PendingRounds → ProvideAnswers, repeated). One
/// definition so the gated BM_ServiceOpenSessions pair and the
/// bench_service fleet table exercise the identical protocol. Returns the
/// number of rounds answered.
inline int64_t DrivePendingSessions(
    SessionRouter& router,
    const std::unordered_map<SessionRouter::SessionId, QueryOracle*>&
        truth_of) {
  int64_t answered = 0;
  BitVec bits;
  for (;;) {
    router.Drain();
    std::vector<PendingRound> rounds = router.PendingRounds();
    if (rounds.empty()) return answered;
    for (PendingRound& round : rounds) {
      BitSpan span = bits.Prepare(round.questions.size());
      truth_of.at(round.session_id)->IsAnswerBatch(round.questions, span);
      if (router.ProvideAnswers(round.session_id, round.round_id, span) !=
          ProvideOutcome::kResumed) {
        std::printf("BENCH FAILED: ProvideAnswers rejected a live round\n");
        std::exit(1);
      }
      ++answered;
    }
  }
}

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace qhorn

#endif  // QHORN_BENCH_BENCH_DOMAIN_H_
