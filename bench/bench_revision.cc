// E16 — §6 (future work): query revision cost versus lattice distance.
//
// Starting from a given query at increasing distance from the intended
// one, revision (verify + seeded lattice descent) is compared with
// learning from scratch. The paper conjectures revision can be polynomial
// in the distance; the seeded descent realizes that for conjunction edits.

#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/revision.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace qhorn;

namespace {

// Shrinks `edits` conjunctions of q by one variable each (distance grows
// by one per edit; the revision seed still dominates).
Query ShrinkConjunctions(const Query& q, int edits, Rng& rng) {
  Query out(q.n());
  for (const UniversalHorn& u : q.universal()) out.AddUniversal(u.body, u.head);
  int done = 0;
  for (const ExistentialConj& e : q.existential()) {
    VarSet vars = e.vars;
    if (done < edits && Popcount(vars) >= 2) {
      std::vector<int> members = VarsOf(vars);
      vars &= ~VarBit(rng.Pick(members));
      ++done;
    }
    out.AddExistential(vars);
  }
  return out;
}

}  // namespace

int main() {
  PrintHeader("E16 | §6 query revision (extension)",
              "revision questions should track the distance between the "
              "queries, not the full learning cost");

  const uint64_t kSeeds = SmokeScaled(10, 2);
  const int n = 12;
  TextTable table({"distance", "revise-q(mean)", "scratch-q(mean)",
                   "savings", "seed-hit-rate"});
  for (int edits : {0, 1, 2, 3, 4}) {
    Accumulator revise_q, scratch_q, seeded;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 101 + static_cast<uint64_t>(edits));
      RpOptions opts;
      opts.num_heads = 1;
      opts.theta = 1;
      opts.num_conjunctions = 4;
      opts.conj_size_max = 6;
      // given = generated; intended = given with `edits` shrunken
      // conjunctions (the seeded fast path applies: old tuples dominate).
      Query given = RandomRolePreserving(n, rng, opts);
      Query intended = ShrinkConjunctions(given, edits, rng);

      QueryOracle user1(intended);
      RevisionResult revised = ReviseQuery(given, &user1);
      if (!Equivalent(revised.query, intended)) return 1;
      revise_q.Add(static_cast<double>(revised.total_questions()));
      seeded.Add(revised.used_seed || revised.verified_unchanged ? 1.0 : 0.0);

      QueryOracle user2(intended);
      CountingOracle scratch(&user2);
      LearnRolePreserving(n, &scratch);
      scratch_q.Add(static_cast<double>(scratch.stats().questions));
    }
    table.Row()
        .Cell(edits)
        .Cell(revise_q.mean(), 1)
        .Cell(scratch_q.mean(), 1)
        .Cell(scratch_q.mean() / revise_q.mean(), 2)
        .Cell(seeded.mean(), 2);
  }
  table.Print(std::cout);
  std::printf("expected shape: revise-q grows gently with distance and "
              "stays below scratch-q; distance 0 costs only the O(k) "
              "verification set.\n");
  return 0;
}
