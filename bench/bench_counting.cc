// E3 — §2.1.3: the size of qhorn-1 is 2^Θ(n lg n).
//
// Lower bound: the Bell number B_n (one distinct query per set partition).
// Upper bound: 2^n · 2^n · 2^(n lg n). We count the exact number of
// semantically distinct qhorn-1 queries for small n by exhaustive
// enumeration + canonicalization, and tabulate lg(B_n) against n lg n for
// large n.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/core/counting.h"
#include "src/core/enumerate.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace qhorn;

int main() {
  PrintHeader("E3 | §2.1.3 class size",
              "B_n ≤ |qhorn-1| ≤ 2^n·2^n·2^(n lg n), so |qhorn-1| = "
              "2^Θ(n lg n)");

  std::printf("\n-- exact counts by exhaustive enumeration --\n");
  TextTable exact({"n", "syntactic qhorn-1", "distinct (canonical)",
                   "Bell(n) lower bound", "lg(distinct)", "2n + n·lg n"});
  for (int n = 1; n <= SmokeScaled(5, 4); ++n) {
    uint64_t syntactic = EnumerateQhorn1(n).size();
    uint64_t distinct = CountDistinctQhorn1(n);
    exact.Row()
        .Cell(n)
        .Cell(syntactic)
        .Cell(distinct)
        .Cell(BellNumber(n))
        .Cell(std::log2(static_cast<double>(distinct)), 2)
        .Cell(LgQhorn1UpperBound(n), 2);
  }
  exact.Print(std::cout);

  std::printf("\n-- asymptotics: lg(B_n) vs n·lg n --\n");
  TextTable asym({"n", "lg Bell(n)", "n lg n", "ratio"});
  for (int n : {10, 20, 40, 80, 160}) {
    if (SmokeSkip(n, 40)) continue;
    double lgb = LgBellNumber(n);
    double nlgn = n * Lg(n);
    asym.Row().Cell(n).Cell(lgb, 1).Cell(nlgn, 1).Cell(lgb / nlgn, 3);
  }
  asym.Print(std::cout);
  std::printf("the ratio settles to a constant → lg|qhorn-1| = Θ(n lg n), "
              "hence the Ω(n lg n) information-theoretic floor on questions "
              "that Theorem 3.1 meets.\n");
  return 0;
}
