// E4 — Theorem 3.1 / Lemmas 3.2–3.3: the qhorn-1 learner asks O(n lg n)
// membership questions.
//
// Sweeps n over random qhorn-1 targets (several seeds and part-size
// profiles), reporting mean/max questions, the per-phase breakdown (head
// classification, universal bodies, existential expressions), and the
// ratio to n·lg n — which must stay bounded while questions/n² vanishes.

#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/qhorn1_learner.h"
#include "src/oracle/oracle.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace qhorn;

int main() {
  PrintHeader("E4 | Theorem 3.1 (qhorn-1 learning)",
              "O(n lg n) questions; phases: heads O(n), universal bodies "
              "O(n lg n) [Lemma 3.2], existential O(n lg n) [Lemma 3.3]");

  const uint64_t kSeeds = SmokeScaled(20, 3);
  TextTable table({"n", "questions(mean)", "max", "heads", "uni-bodies",
                   "existential", "q / n lg n", "q / n^2"});
  for (int n : {4, 8, 12, 16, 24, 32, 48, 64}) {
    if (SmokeSkip(n, 16)) continue;
    Accumulator total, heads, bodies, exist;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 7919 + static_cast<uint64_t>(n));
      Qhorn1Options opts;
      opts.max_part_size = 1 + static_cast<int>(seed % 5);
      Qhorn1Structure target = RandomQhorn1(n, rng, opts);

      QueryOracle oracle(target.ToQuery());
      CountingOracle counting(&oracle);
      Qhorn1Learner learner(n, &counting);
      Qhorn1Structure learned = learner.Learn();
      if (!Equivalent(learned.ToQuery(), target.ToQuery())) {
        std::printf("LEARNING FAILED for seed %llu\n",
                    static_cast<unsigned long long>(seed));
        return 1;
      }
      total.Add(static_cast<double>(counting.stats().questions));
      heads.Add(static_cast<double>(learner.trace().head_questions));
      bodies.Add(static_cast<double>(learner.trace().universal_body_questions));
      exist.Add(static_cast<double>(learner.trace().existential_questions));
    }
    table.Row()
        .Cell(n)
        .Cell(total.mean(), 1)
        .Cell(static_cast<int64_t>(total.max()))
        .Cell(heads.mean(), 1)
        .Cell(bodies.mean(), 1)
        .Cell(exist.mean(), 1)
        .Cell(total.mean() / (n * Lg(n)), 3)
        .Cell(total.mean() / (static_cast<double>(n) * n), 4);
  }
  table.Print(std::cout);
  std::printf("expected shape: q/(n lg n) flat (the Theorem 3.1 bound is "
              "tight), q/n² → 0 (the learner beats the naive O(n²) serial "
              "dependence probing of §3.1.2).\n");
  return 0;
}
