// E16 — the concurrent session service end to end.
//
// Simulates a fleet of users against the SessionRouter: each session
// learns its intended query (drawn from a small catalogue, so the shared
// compiled-query cache is exercised), a fraction then verifies a candidate
// or revises a close guess — the DataPlay workflow at service scale. The
// sweep reports aggregate sessions/second at 1 lane vs the default
// executor (QHORN_THREADS-overridable), wall-clock per drain, and the
// service counters (questions, rounds, question-cache hits, compile
// sharing). Correctness is asserted inline: every learned/verified query
// must be equivalent to its session's target, whatever the lane count.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_domain.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/session/router.h"
#include "src/util/executor.h"
#include "src/util/table.h"

using namespace qhorn;

namespace {

std::vector<Query> Catalogue(int n, int distinct) {
  std::vector<Query> targets;
  for (int i = 0; i < distinct; ++i) {
    Rng rng(100 + static_cast<uint64_t>(i));
    RpOptions opts;
    opts.num_heads = 1 + i % 2;
    opts.theta = 2;
    opts.num_conjunctions = 2 + i % 3;
    targets.push_back(RandomRolePreserving(n, rng, opts));
  }
  return targets;
}

double RunFleet(int lanes, int sessions, const std::vector<Query>& catalogue,
                ServiceStats* stats_out) {
  SessionRouter::Options opts;
  opts.threads = lanes;
  SessionRouter router(opts);
  std::vector<SessionRouter::SessionId> ids;
  std::vector<const Query*> targets;
  for (int s = 0; s < sessions; ++s) {
    const Query& target = catalogue[static_cast<size_t>(s) % catalogue.size()];
    ids.push_back(router.OpenSimulated(target));
    targets.push_back(&target);
  }
  auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    router.SubmitLearn(ids[static_cast<size_t>(s)]);
    if (s % 3 == 1) router.SubmitVerify(ids[static_cast<size_t>(s)], *targets[static_cast<size_t>(s)]);
    if (s % 3 == 2) router.SubmitRevise(ids[static_cast<size_t>(s)], *targets[static_cast<size_t>(s)]);
  }
  router.Drain();
  auto stop = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    QuerySession& session = router.session(ids[static_cast<size_t>(s)]);
    if (!session.current_query().has_value() ||
        !Equivalent(*session.current_query(), *targets[static_cast<size_t>(s)])) {
      std::printf("SERVICE FAILED: session %d diverged from its target\n", s);
      std::exit(1);
    }
  }
  if (stats_out != nullptr) *stats_out = router.stats();
  return std::chrono::duration<double>(stop - start).count();
}

// The pending-round continuation fleet: the same learn workload, but every
// session runs over a PendingOracle — each user round suspends the job and
// yields its lane, and this thread plays all the users through the
// PendingRounds()/ProvideAnswers protocol. Far more open sessions than
// lanes, zero parked threads.
double RunPendingFleet(int lanes, int sessions,
                       const std::vector<Query>& catalogue,
                       ServiceStats* stats_out) {
  std::vector<std::unique_ptr<QueryOracle>> truths;
  truths.reserve(catalogue.size());
  for (const Query& q : catalogue) {
    truths.push_back(std::make_unique<QueryOracle>(q));
  }
  SessionRouter::Options opts;
  opts.threads = lanes;
  SessionRouter router(opts);
  std::vector<SessionRouter::SessionId> ids;
  std::vector<const Query*> targets;
  std::unordered_map<SessionRouter::SessionId, QueryOracle*> truth_of;
  int n = catalogue.front().n();
  for (int s = 0; s < sessions; ++s) {
    size_t c = static_cast<size_t>(s) % catalogue.size();
    SessionRouter::SessionId id = router.OpenPending(n);
    ids.push_back(id);
    targets.push_back(&catalogue[c]);
    truth_of[id] = truths[c].get();
  }
  auto start = std::chrono::steady_clock::now();
  for (SessionRouter::SessionId id : ids) router.SubmitLearn(id);
  DrivePendingSessions(router, truth_of);
  auto stop = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    QuerySession& session = router.session(ids[static_cast<size_t>(s)]);
    if (!session.current_query().has_value() ||
        !Equivalent(*session.current_query(), *targets[static_cast<size_t>(s)])) {
      std::printf("SERVICE FAILED: pending session %d diverged\n", s);
      std::exit(1);
    }
  }
  if (stats_out != nullptr) *stats_out = router.stats();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  PrintHeader("E16 | concurrent session service",
              "SessionRouter + AsyncOracle + shared compiled-query cache; "
              "sessions/s at 1 lane vs the default executor");

  const int kDistinct = 4;
  int default_lanes = Executor::DefaultConcurrency();
  std::printf("default executor lanes: %d (QHORN_THREADS to override)\n\n",
              default_lanes);

  TextTable table({"n", "sessions", "1-lane s/s", "multi s/s", "speedup",
                   "questions", "rounds", "q-cache hits", "compiles"});
  for (int n : {16, 32}) {
    if (SmokeSkip(n, 16)) continue;
    for (int sessions : {SmokeScaled(16, 4), SmokeScaled(64, 8)}) {
      std::vector<Query> catalogue = Catalogue(n, kDistinct);
      ServiceStats stats;
      double seq = RunFleet(1, sessions, catalogue, nullptr);
      double par = RunFleet(default_lanes, sessions, catalogue, &stats);
      table.Row()
          .Cell(n)
          .Cell(sessions)
          .Cell(sessions / seq, 1)
          .Cell(sessions / par, 1)
          .Cell(seq / par, 2)
          .Cell(stats.questions)
          .Cell(stats.rounds)
          .Cell(stats.cache_hits)
          .Cell(stats.compiled_misses);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nspeedup is wall-clock 1-lane / multi-lane for the identical fleet;\n"
      "compiles counts distinct compiled forms (sessions share the rest).\n");

  std::printf(
      "\npending-round continuations: N open sessions on 4 lanes, every\n"
      "user round suspending its job (this thread plays the users via\n"
      "PendingRounds/ProvideAnswers); 'suspensions' counts yielded lanes.\n\n");
  TextTable pending({"n", "sessions", "lanes", "s/s", "suspensions",
                     "questions", "wall s"});
  for (int n : {8, 16}) {
    if (SmokeSkip(n, 8)) continue;
    for (int sessions : {SmokeScaled(64, 4), SmokeScaled(256, 8)}) {
      std::vector<Query> catalogue = Catalogue(n, kDistinct);
      ServiceStats stats;
      double wall = RunPendingFleet(4, sessions, catalogue, &stats);
      pending.Row()
          .Cell(n)
          .Cell(sessions)
          .Cell(4)
          .Cell(sessions / wall, 1)
          .Cell(stats.suspensions)
          .Cell(stats.questions)
          .Cell(wall, 3);
    }
  }
  pending.Print(std::cout);
  return 0;
}
