// E17 — ablations of the design choices DESIGN.md calls out:
//   1. the §3.2.2 guarantee-downset optimization (on/off),
//   2. the caching oracle in front of the universal-body root search,
//   3. question width: binary-search (Find) vs serial probing for qhorn-1
//      universal bodies (§3.1.2 discusses the naive O(n²) alternative).

#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/interaction.h"
#include "src/learn/qhorn1_learner.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace qhorn;

namespace {

// The naive §3.1.2 alternative: test each candidate variable serially with
// one universal dependence question each, for every universal head.
int64_t SerialBodyProbeCount(const Qhorn1Structure& target) {
  // One question per (head, existential variable) pair plus the n head
  // tests — what the paper calls the O(n²) strategy.
  int64_t heads = 0;
  for (const Qhorn1Part& p : target.parts()) {
    heads += Popcount(p.universal_heads);
  }
  int64_t n = target.n();
  return n + heads * n;
}

}  // namespace

int main() {
  PrintHeader("E17 | ablations",
              "guarantee-downset pruning, question caching, binary search "
              "vs serial probing");

  const uint64_t kSeeds = SmokeScaled(12, 2);

  std::printf("\n-- ablation 1: guarantee-downset optimization (§3.2.2) --\n");
  TextTable opt({"n", "questions (on)", "questions (off)", "saved"});
  for (int n : {8, 12, 16, 20}) {
    if (SmokeSkip(n, 12)) continue;
    Accumulator on_q, off_q;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 3 + static_cast<uint64_t>(n));
      RpOptions gen;
      gen.num_heads = 2;
      gen.theta = 1;
      gen.body_size = 3;
      gen.num_conjunctions = 2;
      Query target = RandomRolePreserving(n, rng, gen);

      for (bool skip : {true, false}) {
        QueryOracle oracle(target);
        CountingOracle counting(&oracle);
        RpLearnerOptions opts;
        opts.existential.skip_guarantee_downsets = skip;
        RpLearnerResult r = LearnRolePreserving(n, &counting, opts);
        if (!Equivalent(r.query, target)) return 1;
        (skip ? on_q : off_q)
            .Add(static_cast<double>(counting.stats().questions));
      }
    }
    opt.Row()
        .Cell(n)
        .Cell(on_q.mean(), 1)
        .Cell(off_q.mean(), 1)
        .Cell(off_q.mean() - on_q.mean(), 1);
  }
  opt.Print(std::cout);

  std::printf("\n-- ablation 2: caching the universal-body root search --\n");
  TextTable cache_table({"n", "θ", "user-q (no cache)", "user-q (cache)",
                         "cache hits"});
  for (int theta : {2, 3}) {
    int n = 14;
    Accumulator raw_q, cached_q, hits;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 7 + static_cast<uint64_t>(theta));
      RpOptions gen;
      gen.num_heads = 1;
      gen.theta = theta;
      gen.body_size = 3;
      gen.num_conjunctions = 0;
      Query target = RandomRolePreserving(n, rng, gen);

      QueryOracle o1(target);
      CountingOracle c1(&o1);
      LearnUniversalHorns(n, &c1);
      raw_q.Add(static_cast<double>(c1.stats().questions));

      QueryOracle o2(target);
      CountingOracle c2(&o2);
      CachingOracle cache(&c2);
      LearnUniversalHorns(n, &cache);
      cached_q.Add(static_cast<double>(c2.stats().questions));
      hits.Add(static_cast<double>(cache.hits()));
    }
    cache_table.Row()
        .Cell(n)
        .Cell(theta)
        .Cell(raw_q.mean(), 1)
        .Cell(cached_q.mean(), 1)
        .Cell(hits.mean(), 1);
  }
  cache_table.Print(std::cout);

  std::printf("\n-- ablation 3: binary search vs serial probing (§3.1.2) --\n");
  TextTable serial({"n", "binary-search q", "serial q (naive)", "speedup"});
  for (int n : {8, 16, 32, 64}) {
    if (SmokeSkip(n, 16)) continue;
    Accumulator bin_q, ser_q;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 11 + static_cast<uint64_t>(n));
      Qhorn1Structure target = RandomQhorn1(n, rng);
      QueryOracle oracle(target.ToQuery());
      CountingOracle counting(&oracle);
      Qhorn1Learner learner(n, &counting);
      learner.Learn();
      bin_q.Add(static_cast<double>(counting.stats().questions));
      ser_q.Add(static_cast<double>(SerialBodyProbeCount(target)));
    }
    serial.Row()
        .Cell(n)
        .Cell(bin_q.mean(), 1)
        .Cell(ser_q.mean(), 1)
        .Cell(ser_q.mean() / bin_q.mean(), 2);
  }
  serial.Print(std::cout);

  std::printf("\n-- ablation 4: membership vs interaction questions (§6) --\n");
  TextTable inter({"n", "membership q (1 bit each)", "interaction q",
                   "  roles/shares/causes"});
  for (int n : {8, 16, 32}) {
    if (SmokeSkip(n, 16)) continue;
    Accumulator mem_q, int_q;
    std::string split;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 13 + static_cast<uint64_t>(n));
      Qhorn1Structure target = RandomQhorn1(n, rng);

      QueryOracle oracle(target.ToQuery());
      CountingOracle counting(&oracle);
      Qhorn1Learner learner(n, &counting);
      learner.Learn();
      mem_q.Add(static_cast<double>(counting.stats().questions));

      InteractionOracle interaction(target);
      InteractionTrace trace;
      LearnQhorn1ByInteraction(n, &interaction, &trace);
      int_q.Add(static_cast<double>(trace.total()));
      split = std::to_string(trace.role_questions) + "/" +
              std::to_string(trace.share_questions) + "/" +
              std::to_string(trace.cause_questions);
    }
    inter.Row().Cell(n).Cell(mem_q.mean(), 1).Cell(int_q.mean(), 1).Cell(split);
  }
  inter.Print(std::cout);
  std::printf("expected shape: optimization saves a few questions per "
              "guarantee clause; caching removes the re-asked roots; the "
              "binary-search advantage grows with n (n lg n vs n²); "
              "interaction questions trade O(n lg n) object labellings for "
              "O(n²) yes/no structure questions — the paper's usability "
              "trade-off, quantified.\n");
  return 0;
}
