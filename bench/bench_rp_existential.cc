// E8/E9 — Theorems 3.8 and 3.9: the lattice learner finds the k dominant
// existential conjunctions with O(k·n·lg n) questions, against the
// information-theoretic floor of ≈ nk/2 − k·lg k.
//
// Sweeps n at fixed k and k at fixed n; reports the measured questions,
// the normalized ratio q/(k·n·lg n) (bounded ⇒ Theorem 3.8's shape), and
// the floor (measured must exceed it).

#include <cstdio>
#include <iostream>
#include <set>

#include "bench/bench_domain.h"
#include "src/core/classify.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace qhorn;

namespace {

// Generates a target with exactly k incomparable conjunctions of width
// n/2 (the densest lattice level, as in Theorem 3.9's argument).
Query MidLevelTarget(int n, int k, Rng& rng) {
  Query q(n);
  std::set<VarSet> used;
  int attempts = 0;
  while (static_cast<int>(used.size()) < k && attempts < 10000) {
    ++attempts;
    std::vector<int> vars = rng.Sample(n, n / 2);
    used.insert(MaskOf(vars));
  }
  for (VarSet c : used) q.AddExistential(c);
  return q;
}

}  // namespace

int main() {
  PrintHeader("E8/E9 | Theorems 3.8 & 3.9 (existential conjunctions)",
              "O(k·n·lg n) questions, info floor lg C(C(n,n/2), k) ≈ "
              "nk/2 − k·lg k");

  const uint64_t kSeeds = SmokeScaled(10, 2);

  std::printf("\n-- sweep n at k = 4 (mid-level conjunctions) --\n");
  TextTable by_n({"n", "k", "questions(mean)", "q/(k n lg n)", "floor nk/2-klgk"});
  for (int n : {8, 12, 16, 20, 24}) {
    if (SmokeSkip(n, 16)) continue;
    Accumulator total;
    int k = 4;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 13 + static_cast<uint64_t>(n));
      Query target = MidLevelTarget(n, k, rng);
      QueryOracle oracle(target);
      CountingOracle counting(&oracle);
      RpLearnerResult result = LearnRolePreserving(n, &counting);
      if (!Equivalent(result.query, target)) return 1;
      total.Add(static_cast<double>(counting.stats().questions));
    }
    double floor = n * k / 2.0 - k * Lg(k);
    by_n.Row()
        .Cell(n)
        .Cell(k)
        .Cell(total.mean(), 1)
        .Cell(total.mean() / (k * n * Lg(n)), 3)
        .Cell(floor, 1);
  }
  by_n.Print(std::cout);

  std::printf("\n-- sweep k at n = 16 --\n");
  TextTable by_k({"n", "k", "questions(mean)", "q/(k n lg n)", "floor"});
  for (int k : {1, 2, 4, 8, 12}) {
    Accumulator total;
    int n = 16;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 17 + static_cast<uint64_t>(k));
      Query target = MidLevelTarget(n, k, rng);
      QueryOracle oracle(target);
      CountingOracle counting(&oracle);
      RpLearnerResult result = LearnRolePreserving(n, &counting);
      if (!Equivalent(result.query, target)) return 1;
      total.Add(static_cast<double>(counting.stats().questions));
    }
    double floor = n * k / 2.0 - k * Lg(k);
    by_k.Row()
        .Cell(n)
        .Cell(k)
        .Cell(total.mean(), 1)
        .Cell(total.mean() / (k * n * Lg(n)), 3)
        .Cell(floor, 1);
  }
  by_k.Print(std::cout);
  std::printf("expected shape: the ratio stays bounded (Theorem 3.8) and "
              "measured questions sit above the Theorem 3.9 floor — the "
              "algorithm is within a lg-n factor of optimal.\n");
  return 0;
}
