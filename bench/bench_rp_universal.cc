// E6 — Theorem 3.5: learning the universal Horn expressions of a
// role-preserving query costs O(n^θ) questions per head, O(n^{θ+1}) total.
//
// Sweeps n × θ on single-head targets (isolating the per-head cost) and
// reports questions against n^θ; then sweeps the head count at fixed θ.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/rp_universal.h"
#include "src/oracle/oracle.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace qhorn;

int main() {
  PrintHeader("E6 | Theorem 3.5 (universal Horn learning)",
              "O(n^θ) questions per head variable; O(n^{θ+1}) overall");

  const uint64_t kSeeds = SmokeScaled(10, 2);

  std::printf("\n-- one head, θ bodies: questions vs n^θ --\n");
  TextTable per_head({"n", "θ", "questions(mean)", "max", "q / n^θ"});
  for (int theta : {1, 2, 3}) {
    for (int n : {8, 12, 16, 24}) {
      if (SmokeSkip(n, 16)) continue;
      Accumulator total;
      for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        Rng rng(seed * 104729 + static_cast<uint64_t>(n * 31 + theta));
        RpOptions opts;
        opts.num_heads = 1;
        opts.theta = theta;
        // Bodies scale with n so the search-root product really exercises
        // the n^θ term (Theorem 3.6's family has bodies of width n/(θ−1)).
        opts.body_size = std::max(2, n / 4);
        opts.num_conjunctions = 0;
        Query target = RandomRolePreserving(n, rng, opts);

        QueryOracle oracle(target);
        CountingOracle counting(&oracle);
        LearnUniversalHorns(n, &counting);
        total.Add(static_cast<double>(counting.stats().questions));
      }
      per_head.Row()
          .Cell(n)
          .Cell(theta)
          .Cell(total.mean(), 1)
          .Cell(static_cast<int64_t>(total.max()))
          .Cell(total.mean() / std::pow(n, theta), 4);
    }
  }
  per_head.Print(std::cout);

  std::printf("\n-- many heads at θ = 2: total cost O(#heads · n^θ) --\n");
  TextTable total_table({"n", "#heads", "questions(mean)", "q/(heads·n^2)"});
  for (int heads : {1, 2, 4}) {
    int n = 16;
    Accumulator total;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 31 + static_cast<uint64_t>(heads));
      RpOptions opts;
      opts.num_heads = heads;
      opts.theta = 2;
      opts.body_size = 3;
      opts.num_conjunctions = 0;
      Query target = RandomRolePreserving(n, rng, opts);
      QueryOracle oracle(target);
      CountingOracle counting(&oracle);
      LearnUniversalHorns(n, &counting);
      total.Add(static_cast<double>(counting.stats().questions));
    }
    total_table.Row()
        .Cell(n)
        .Cell(heads)
        .Cell(total.mean(), 1)
        .Cell(total.mean() / (heads * std::pow(n, 2)), 4);
  }
  total_table.Print(std::cout);
  std::printf("expected shape: q/n^θ bounded for each θ; growing θ by one "
              "multiplies the cost by ≈n (the search-root product).\n");
  return 0;
}
