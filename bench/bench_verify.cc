// E10 — §4 / Fig. 6: verification sets have O(k) membership questions
// (versus the O(n^{θ+1} + k·n·lg n) questions learning would cost).
//
// Sweeps k, n and θ; reports questions per family, total tuples, and the
// ratio questions/k, alongside the question count of a full learn for the
// same target — verification must be dramatically cheaper.

#include <cstdio>
#include <iostream>
#include <set>

#include "bench/bench_domain.h"
#include "src/core/classify.h"
#include "src/core/random_query.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/verify/verification_set.h"

using namespace qhorn;

int main() {
  PrintHeader("E10 | §4 verification sets",
              "O(k) membership questions verify a query; learning costs "
              "O(n^{θ+1} + k·n·lg n)");

  const uint64_t kSeeds = SmokeScaled(10, 2);
  TextTable table({"n", "θ", "k(dominant)", "verify-q(mean)", "q/k",
                   "tuples/question", "learn-q(mean)", "learn/verify"});
  for (int n : {8, 16, 24}) {
    if (SmokeSkip(n, 16)) continue;
    for (int theta : {1, 2}) {
      Accumulator vq, ratio, tuples, lq;
      Accumulator ks;
      for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        Rng rng(seed * 37 + static_cast<uint64_t>(n * 5 + theta));
        RpOptions opts;
        opts.num_heads = 2;
        opts.theta = theta;
        opts.body_size = 2;
        opts.num_conjunctions = 3;
        opts.conj_size_max = 4;
        Query target = RandomRolePreserving(n, rng, opts);
        int k = DominantSize(target);

        VerificationSet set = BuildVerificationSet(target);
        vq.Add(static_cast<double>(set.questions.size()));
        ratio.Add(static_cast<double>(set.questions.size()) / k);
        tuples.Add(static_cast<double>(set.total_tuples()) /
                   static_cast<double>(set.questions.size()));
        ks.Add(k);

        QueryOracle oracle(target);
        CountingOracle counting(&oracle);
        LearnRolePreserving(n, &counting);
        lq.Add(static_cast<double>(counting.stats().questions));
      }
      table.Row()
          .Cell(n)
          .Cell(theta)
          .Cell(ks.mean(), 1)
          .Cell(vq.mean(), 1)
          .Cell(ratio.mean(), 2)
          .Cell(tuples.mean(), 1)
          .Cell(lq.mean(), 1)
          .Cell(lq.mean() / vq.mean(), 1);
    }
  }
  table.Print(std::cout);

  std::printf("\n-- family breakdown for the §4.2 example --\n");
  Query example = Query::Parse(
      "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  VerificationSet set = BuildVerificationSet(example);
  int counts[6] = {0, 0, 0, 0, 0, 0};
  for (const VerificationQuestion& q : set.questions) {
    ++counts[static_cast<int>(q.family)];
  }
  TextTable families({"family", "questions"});
  const char* names[6] = {"A1", "N1", "A2", "N2", "A3", "A4"};
  for (int f = 0; f < 6; ++f) families.Row().Cell(names[f]).Cell(counts[f]);
  families.Print(std::cout);
  std::printf("expected shape: q/k is a small constant; learn/verify grows "
              "with n — verification is the cheap path the paper argues "
              "for.\n");
  return 0;
}
