// E11/E12 — Figures 7 and 8: the complete two-variable world.
//
// Fig. 7: the verification set (tuple sets per question family) for every
// role-preserving qhorn query on two variables — the paper finds exactly 7
// queries. Fig. 8: the 7×7 matrix of (intended, given) pairs, marking
// which question family detects each discrepancy (diagonal: accepted).
// An n = 3 extension reports the same detection statistics at scale.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "bench/bench_domain.h"
#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/oracle/oracle.h"
#include "src/util/table.h"
#include "src/verify/verifier.h"

using namespace qhorn;

int main() {
  PrintHeader("E11/E12 | Figures 7 & 8",
              "7 role-preserving queries on two variables; every unequal "
              "(intended, given) pair is detected by some question family");

  std::vector<Query> world = EnumerateRolePreserving(2);
  std::printf("\nenumerated %zu canonical queries (paper: 7)\n\n",
              world.size());

  std::printf("-- Fig. 7: verification sets --\n");
  std::vector<VerificationSet> sets;
  for (const Query& q : world) {
    VerificationSet set = BuildVerificationSet(q);
    std::printf("%s\n", set.ToString().c_str());
    sets.push_back(std::move(set));
  }

  std::printf("-- Fig. 8: which family detects intended ≠ given --\n");
  std::vector<std::string> header = {"intended \\ given"};
  for (const Query& q : world) header.push_back(q.ToString());
  TextTable matrix(header);
  for (const Query& intended : world) {
    std::vector<std::string> row = {intended.ToString()};
    for (size_t g = 0; g < world.size(); ++g) {
      QueryOracle user(intended);
      VerificationReport report = RunVerification(sets[g], &user);
      if (report.accepted) {
        row.push_back(Equivalent(intended, world[g]) ? "=" : "MISSED");
      } else {
        std::string families;
        std::map<QuestionFamily, bool> seen;
        for (const Discrepancy& d : report.discrepancies) {
          if (!seen[d.family]) {
            if (!families.empty()) families += ",";
            families += FamilyName(d.family);
            seen[d.family] = true;
          }
        }
        row.push_back(families);
      }
    }
    matrix.AddRow(row);
  }
  matrix.Print(std::cout);

  std::printf("\n-- n = 3 extension: exhaustive detection statistics --\n");
  std::vector<Query> world3 = EnumerateRolePreserving(3);
  int64_t pairs = 0;
  int64_t detected = 0;
  int64_t missed = 0;
  std::map<QuestionFamily, int64_t> first_detector;
  for (const Query& given : world3) {
    VerificationSet set = BuildVerificationSet(given);
    for (const Query& intended : world3) {
      if (Equivalent(given, intended)) continue;
      ++pairs;
      QueryOracle user(intended);
      VerificationReport report = RunVerification(set, &user);
      if (report.accepted) {
        ++missed;
      } else {
        ++detected;
        ++first_detector[report.discrepancies.front().family];
      }
    }
  }
  std::printf("queries: %zu   unequal pairs: %lld   detected: %lld   "
              "missed: %lld\n",
              world3.size(), static_cast<long long>(pairs),
              static_cast<long long>(detected),
              static_cast<long long>(missed));
  TextTable detectors({"first detecting family", "pairs"});
  for (const auto& [family, count] : first_detector) {
    detectors.Row().Cell(FamilyName(family)).Cell(count);
  }
  detectors.Print(std::cout);
  std::printf("expected shape: missed = 0 (empirical Theorem 4.2).\n");
  return 0;
}
