// E5 — Lemma 3.4: with at most c tuples per question, learning existential
// expressions needs Ω(n²/c²) questions.
//
// The pair-head class hides two head variables among n; the width-limited
// learner probes pair-covering batches of class-2 tuples. Against the
// adversary it pays ≈ (n/(c/2))²/2 batch questions; unrestricted questions
// (the matrix questions of Lemma 3.3) find the pair in O(lg n).

#include <cstdio>
#include <iostream>

#include "bench/bench_domain.h"
#include "src/lower_bounds/pairhead_class.h"
#include "src/oracle/adversary.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace qhorn;

int main() {
  PrintHeader("E5 | Lemma 3.4 (constant-width questions)",
              "c tuples per question ⇒ ≈ n²/c² questions to find the "
              "hidden head pair");

  TextTable table({"n", "c", "questions (adversary)", "n²/c²", "ratio"});
  for (int n : {8, 16, 24, 32, 48}) {
    if (SmokeSkip(n, 16)) continue;
    for (int c : {2, 4, 8}) {
      AdversaryOracle adversary(PairHeadClass(n));
      PairHeadResult r = LearnPairHeads(n, c, &adversary);
      double floor = static_cast<double>(n) * n / (c * c);
      table.Row()
          .Cell(n)
          .Cell(c)
          .Cell(r.questions)
          .Cell(floor, 1)
          .Cell(static_cast<double>(r.questions) / floor, 2);
    }
  }
  table.Print(std::cout);
  std::printf("expected shape: the ratio is a constant ≈ 0.5–2.5 for every "
              "(n, c) — question counts scale as n²/c², confirming that "
              "the large (matrix) questions of §3.1.3 are essential to the "
              "O(n lg n) learner.\n");
  return 0;
}
