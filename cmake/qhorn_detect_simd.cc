// Build-host SIMD probe for QHORN_SIMD=auto (see the top-level
// CMakeLists.txt). Exit code: 52 = AVX-512F, 2 = AVX2, 0 = neither.
int main() {
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return 52;
  if (__builtin_cpu_supports("avx2")) return 2;
  return 0;
}
