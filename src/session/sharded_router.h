// ShardedRouter — N independent SessionRouter shards behind one facade.
//
// One SessionRouter serializes every protocol call on a single mutex —
// fine at 64 sessions, a wall at millions. The facade splits the session
// space across N shards, each a complete SessionRouter with its own mutex,
// session map and announcement queue, so protocol calls against different
// shards never touch a shared line. What *is* shared is deliberately the
// cheap-to-share part:
//
//   * one Executor: lanes are a machine-wide resource; every shard posts
//     its runner tasks to the same work-stealing pool (Options.threads is
//     the TOTAL lane count, not per-shard).
//   * one CompiledQueryCache: a query compiled once is compiled once
//     service-wide. The cache is striped internally, so sharing it does
//     not reintroduce the lock the shards just removed.
//
// Session ids are encoded so the facade is stateless about placement:
//
//     external = internal * shards + shard_index
//
// ShardOf() is a modulo, the shard's own id comes back from a division,
// and — the property the differential suites pin — at shards == 1 the
// encoding is the identity, so a 1-shard facade is bit-identical to a bare
// SessionRouter (same ids, same rounds, same stats). DurableRouter maps
// its per-WAL shards 1:1 onto router shards via OpenPendingOnShard, so a
// durable commit on one WAL contends only with its own router shard.
//
// Determinism contract (inherited): a session's observable history depends
// only on its own job and answer sequence, never on which shard hosts it
// or how many shards exist. The facade adds no cross-shard coordination —
// Drain() drains shard by shard (jobs never create work on another
// shard), PendingRounds() concatenates per-shard lock-free drains, and
// stats() sums.
//
// Scaling model: throughput ≈ min(lanes, shards × per-shard capacity).
// Shards bound protocol-call parallelism (mutex acquisitions spread
// across N locks); lanes bound compute parallelism; pending sessions are
// bounded by memory alone (a parked session holds no lane on any shard).
//
// Lock order (enforced at runtime by the rank checker, src/util/
// lock_ranks.h): the facade itself holds no mutex — placement is one
// atomic counter — so the order through this layer is exactly one
// shard's: DurableRouter (kDurableRouter) → that shard's SessionRouter
// (kRouterShard) → its WAL shard (kWalShard) → the filesystem (kFaultFs/
// kFs). Same-rank nesting is forbidden, so no call path may hold two
// shard mutexes at once — cross-shard deadlock is structurally
// impossible, and a DurableRouter commit hook runs under exactly one
// shard mutex (asserted in SessionRouter::ProvideAnswersInternal).

#ifndef QHORN_SESSION_SHARDED_ROUTER_H_
#define QHORN_SESSION_SHARDED_ROUTER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "src/session/router.h"

namespace qhorn {

/// Facade over N SessionRouter shards sharing one executor and one
/// compiled-query cache. Mirrors the SessionRouter protocol surface
/// method for method; every id-taking call is tolerant of garbage ids
/// (unknown session / false / nullopt, never a crash).
class ShardedRouter {
 public:
  using SessionId = SessionRouter::SessionId;
  using Job = SessionRouter::Job;
  using CommitHook = SessionRouter::CommitHook;

  struct Options {
    /// Router shards. 1 is the differential baseline (bit-identical to a
    /// bare SessionRouter, identity id encoding); production wants a
    /// small multiple of the lane count.
    int shards = 4;
    /// TOTAL concurrent session lanes across all shards; ≤ 0 means
    /// Executor::DefaultConcurrency() (honours QHORN_THREADS). 1 degrades
    /// to synchronous in-caller execution — the differential baseline.
    int threads = 0;
    QuerySession::Options session;
    /// Resume protocol, resolved identically by every shard (see
    /// SessionRouter::Options::resume_mode).
    ResumeMode resume_mode = ResumeMode::kDefault;
  };

  ShardedRouter() : ShardedRouter(Options()) {}
  explicit ShardedRouter(Options options);
  /// Drains every shard, joins the shared executor, then destroys the
  /// shards — the canonical teardown order for borrowed executors (a
  /// shard must not unwind parked fibers while another shard's runner
  /// could still be in flight).
  ~ShardedRouter();

  ShardedRouter(const ShardedRouter&) = delete;
  ShardedRouter& operator=(const ShardedRouter&) = delete;

  /// Session opens place round-robin across shards (placement does not
  /// affect observables; round-robin keeps shards balanced without
  /// coordination beyond one atomic counter).
  SessionId Open(int n, MembershipOracle* user);
  SessionId OpenSimulated(const Query& intended,
                          EvalOptions opts = EvalOptions());
  SessionId OpenPending(int n);

  /// Pinned-placement open: the durable layer maps WAL shard i onto
  /// router shard i so one WAL's commit hooks contend with exactly one
  /// router mutex. `shard` must be in [0, shards()).
  SessionId OpenPendingOnShard(int shard, int n);

  bool Submit(SessionId id, Job job);
  bool SubmitLearn(SessionId id);
  bool SubmitVerify(SessionId id, Query candidate);
  bool SubmitRevise(SessionId id, Query candidate);

  /// Concatenation of every shard's lock-free drain, session ids
  /// re-encoded to external form, ordered by session id.
  std::vector<PendingRound> PendingRounds();

  ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                BitSpan answers);
  ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                BitSpan answers, CommitHook commit);
  ProvideOutcome CorrectAnswer(SessionId id, size_t entry_index);

  /// The round the session is blocked on (external id form), if any.
  std::optional<PendingRound> pending_round(SessionId id);

  bool Close(SessionId id);
  std::optional<SessionStatus> status(SessionId id);
  int64_t suspensions(SessionId id);

  /// Blocks until no session on any shard can progress without input.
  /// One pass suffices: a job never creates work on another shard.
  void Drain();

  QuerySession& session(SessionId id);

  /// Aggregate counters summed across shards; the shared compiled-query
  /// cache is counted once (not once per shard). Requires no runnable
  /// job, like SessionRouter::stats().
  ServiceStats stats();

  ResumeMode resume_mode() const { return shards_.front()->resume_mode(); }
  int shards() const { return static_cast<int>(shards_.size()); }
  int ShardOf(SessionId id) const {
    return static_cast<int>(id % static_cast<SessionId>(shards_.size()));
  }

  Executor* executor() { return executor_.get(); }
  CompiledQueryCache& compiled_cache() { return cache_; }

 private:
  SessionId Encode(SessionId internal, int shard) const {
    return internal * static_cast<SessionId>(shards_.size()) + shard;
  }
  SessionId Internal(SessionId external) const {
    return external / static_cast<SessionId>(shards_.size());
  }
  /// The shard hosting `external`, or nullptr for ids no shard can host
  /// (≤ 0, or an encoding whose internal part is below the first id).
  SessionRouter* Route(SessionId external);
  int NextShard() {
    return static_cast<int>(next_shard_.fetch_add(1, std::memory_order_relaxed) %
                            shards_.size());
  }

  CompiledQueryCache cache_;
  std::unique_ptr<Executor> executor_;
  std::vector<std::unique_ptr<SessionRouter>> shards_;
  std::atomic<uint64_t> next_shard_{0};
};

}  // namespace qhorn

#endif  // QHORN_SESSION_SHARDED_ROUTER_H_
