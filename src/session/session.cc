#include "src/session/session.h"

#include "src/util/check.h"

namespace qhorn {

QuerySession::QuerySession(int n, MembershipOracle* user)
    : QuerySession(n, user, Options()) {}

QuerySession::QuerySession(int n, MembershipOracle* user, Options options)
    : n_(n), user_(user), options_(options) {
  QHORN_CHECK(user != nullptr);
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  BuildPipeline({}, {});
}

void QuerySession::BuildPipeline(std::vector<TranscriptEntry> replay_prefix,
                                 std::vector<TranscriptEntry> user_prefix) {
  OraclePipeline pipeline(user_);
  if (!user_prefix.empty()) {
    pipeline.Push<ReplayOracle>(std::move(user_prefix));
  }
  counting_ = pipeline.Push<CountingOracle>();
  cache_ = options_.cache_questions ? pipeline.Push<CachingOracle>() : nullptr;
  if (!replay_prefix.empty()) {
    pipeline.Push<ReplayOracle>(std::move(replay_prefix));
  }
  transcript_ = pipeline.Push<TranscriptOracle>();
  pipeline_ = std::move(pipeline);
  top_ = pipeline_.top();
}

void QuerySession::ResetWithUserReplay(
    std::vector<TranscriptEntry> user_prefix) {
  continuation_mode_ = true;
  BuildPipeline({}, std::move(user_prefix));
  current_.reset();
}

const Query& QuerySession::Learn() {
  RpLearnerResult result = LearnRolePreserving(n_, top_, options_.learner);
  current_ = std::move(result.query);
  return *current_;
}

VerificationReport QuerySession::Verify(const Query& candidate) {
  QHORN_CHECK_MSG(candidate.n() == n_, "candidate arity mismatch");
  VerificationReport report = VerifyQuery(candidate, top_);
  if (report.accepted) current_ = candidate;
  return report;
}

RevisionResult QuerySession::Revise(const Query& candidate) {
  QHORN_CHECK_MSG(candidate.n() == n_, "candidate arity mismatch");
  RevisionResult result = ReviseQuery(candidate, top_, options_.learner);
  current_ = result.query;
  return result;
}

const Query& QuerySession::CorrectAndRelearn(size_t index) {
  // A correction invalidates the suffix of the answered user rounds a
  // continuation resume replays; the re-run's question stream could never
  // re-align with the stored prefix and the session would re-suspend on
  // the same question forever. Fail loudly instead of looping.
  QHORN_CHECK_MSG(!continuation_mode_,
                  "CorrectAndRelearn is not supported on pending-round "
                  "continuation sessions; close the session and re-learn");
  transcript_->Correct(index);
  // Rebuild the chain with the corrected prefix behind a replay stage;
  // fresh questions flow to the user through a fresh cache (the old cache
  // holds the wrong answer) and the new transcript re-records the whole
  // corrected run.
  BuildPipeline(transcript_->entries(), {});
  RpLearnerResult result = LearnRolePreserving(n_, top_, options_.learner);
  current_ = std::move(result.query);
  return *current_;
}

}  // namespace qhorn
