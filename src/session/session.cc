#include "src/session/session.h"

#include "src/util/check.h"

namespace qhorn {

QuerySession::QuerySession(int n, MembershipOracle* user)
    : QuerySession(n, user, Options()) {}

QuerySession::QuerySession(int n, MembershipOracle* user, Options options)
    : n_(n), user_(user), options_(options) {
  QHORN_CHECK(user != nullptr);
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  counting_ = std::make_unique<CountingOracle>(user_);
  MembershipOracle* below = counting_.get();
  if (options_.cache_questions) {
    cache_ = std::make_unique<CachingOracle>(below);
    below = cache_.get();
  }
  transcript_ = std::make_unique<TranscriptOracle>(below);
  top_ = transcript_.get();
}

const Query& QuerySession::Learn() {
  RpLearnerResult result = LearnRolePreserving(n_, top_, options_.learner);
  current_ = std::move(result.query);
  return *current_;
}

VerificationReport QuerySession::Verify(const Query& candidate) {
  QHORN_CHECK_MSG(candidate.n() == n_, "candidate arity mismatch");
  VerificationReport report = VerifyQuery(candidate, top_);
  if (report.accepted) current_ = candidate;
  return report;
}

RevisionResult QuerySession::Revise(const Query& candidate) {
  QHORN_CHECK_MSG(candidate.n() == n_, "candidate arity mismatch");
  RevisionResult result = ReviseQuery(candidate, top_, options_.learner);
  current_ = result.query;
  return result;
}

const Query& QuerySession::CorrectAndRelearn(size_t index) {
  transcript_->Correct(index);
  // Replay the corrected prefix; fresh questions flow to the user through
  // a fresh cache (the old cache holds the wrong answer).
  std::vector<TranscriptEntry> prefix = transcript_->entries();
  counting_ = std::make_unique<CountingOracle>(user_);
  MembershipOracle* below = counting_.get();
  if (options_.cache_questions) {
    cache_ = std::make_unique<CachingOracle>(below);
    below = cache_.get();
  }
  auto replay = std::make_unique<ReplayOracle>(std::move(prefix), below);
  // The transcript re-records the whole corrected run.
  auto transcript = std::make_unique<TranscriptOracle>(replay.get());
  RpLearnerResult result =
      LearnRolePreserving(n_, transcript.get(), options_.learner);
  current_ = std::move(result.query);
  // Keep the replay oracle alive alongside the new transcript.
  replay_keepalive_ = std::move(replay);
  transcript_ = std::move(transcript);
  top_ = transcript_.get();
  return *current_;
}

}  // namespace qhorn
