#include "src/session/session.h"

#include "src/util/check.h"

namespace qhorn {

namespace {

size_t TupleSetBytes(const TupleSet& question) {
  return sizeof(TupleSet) + question.size() * sizeof(Tuple);
}

size_t QueryBytes(const std::optional<Query>& query) {
  if (!query.has_value()) return 0;
  return sizeof(Query) + query->universal().size() * sizeof(UniversalHorn) +
         query->existential().size() * sizeof(ExistentialConj);
}

}  // namespace

size_t SessionSnapshot::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const TranscriptEntry& entry : transcript) {
    bytes += sizeof(TranscriptEntry) - sizeof(TupleSet) +
             TupleSetBytes(entry.question);
  }
  // Per-node overhead of the unordered_map buckets: one forward pointer
  // and the cached hash per node, plus the bucket array — approximated as
  // three words per entry.
  for (const auto& [question, answer] : cache) {
    bytes += TupleSetBytes(question) + sizeof(bool) + 3 * sizeof(void*);
  }
  bytes += QueryBytes(current);
  return bytes;
}

QuerySession::QuerySession(int n, MembershipOracle* user)
    : QuerySession(n, user, Options()) {}

QuerySession::QuerySession(int n, MembershipOracle* user, Options options)
    : n_(n), user_(user), options_(options) {
  QHORN_CHECK(user != nullptr);
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  BuildPipeline({}, {});
}

void QuerySession::BuildPipeline(std::vector<TranscriptEntry> replay_prefix,
                                 std::vector<TranscriptEntry> user_prefix) {
  // The live user-boundary replay stage dies with the old pipeline; bank
  // its served-question count first so user_questions_replayed() stays
  // cumulative across resume attempts.
  if (user_replay_ != nullptr) user_replayed_total_ += user_replay_->replayed();
  user_replay_ = nullptr;
  OraclePipeline pipeline(user_);
  if (!user_prefix.empty()) {
    user_replay_ = pipeline.Push<ReplayOracle>(std::move(user_prefix));
  }
  counting_ = pipeline.Push<CountingOracle>();
  cache_ = options_.cache_questions ? pipeline.Push<CachingOracle>() : nullptr;
  if (!replay_prefix.empty()) {
    pipeline.Push<ReplayOracle>(std::move(replay_prefix));
  }
  transcript_ = pipeline.Push<TranscriptOracle>();
  pipeline_ = std::move(pipeline);
  top_ = pipeline_.top();
}

void QuerySession::ResetWithUserReplay(
    std::vector<TranscriptEntry> user_prefix) {
  continuation_mode_ = true;
  BuildPipeline({}, std::move(user_prefix));
  current_.reset();
  MarkJobBoundary();
}

void QuerySession::MarkJobBoundary() {
  boundary_entries_ = transcript_->entries().size();
  boundary_rounds_ = transcript_->rounds();
  boundary_current_ = current_;
}

SessionSnapshot QuerySession::CapturePreRound() const {
  QHORN_CHECK_MSG(cache_ != nullptr,
                  "snapshot capture requires question caching (the restored "
                  "attempt's re-walk is served from the cache)");
  const std::vector<TranscriptEntry>& entries = transcript_->entries();
  QHORN_CHECK(boundary_entries_ <= entries.size());
  SessionSnapshot snap;
  snap.transcript.assign(entries.begin(),
                         entries.begin() + static_cast<ptrdiff_t>(boundary_entries_));
  snap.transcript_rounds = boundary_rounds_;
  snap.current = boundary_current_;
  snap.cache = cache_->entries();
  snap.cache_hits = cache_->hits();
  snap.cache_misses = cache_->misses();
  snap.counting = counting_->stats();
  snap.replay_hits =
      static_cast<int64_t>(entries.size() - boundary_entries_);
  snap.valid = true;
  return snap;
}

void QuerySession::RestoreSnapshot(const SessionSnapshot& snap,
                                   std::vector<TranscriptEntry> user_suffix) {
  QHORN_CHECK_MSG(options_.cache_questions,
                  "snapshot restore requires question caching");
  QHORN_CHECK(snap.valid);
  continuation_mode_ = true;
  BuildPipeline({}, std::move(user_suffix));
  transcript_->Restore(snap.transcript, snap.transcript_rounds);
  // The suspended job's re-walk re-probes its whole question prefix; every
  // probe is a hit on the restored cache, so starting the counter
  // `replay_hits` low lands it exactly on the captured value once the
  // re-walk reaches the suspension point — the same count a synchronous run
  // would show.
  cache_->Restore(snap.cache, snap.cache_hits - snap.replay_hits,
                  snap.cache_misses);
  counting_->RestoreStats(snap.counting);
  current_ = snap.current;
  MarkJobBoundary();
}

const Query& QuerySession::Learn() {
  RpLearnerResult result = LearnRolePreserving(n_, top_, options_.learner);
  current_ = std::move(result.query);
  return *current_;
}

VerificationReport QuerySession::Verify(const Query& candidate) {
  QHORN_CHECK_MSG(candidate.n() == n_, "candidate arity mismatch");
  VerificationReport report = VerifyQuery(candidate, top_);
  if (report.accepted) current_ = candidate;
  return report;
}

RevisionResult QuerySession::Revise(const Query& candidate) {
  QHORN_CHECK_MSG(candidate.n() == n_, "candidate arity mismatch");
  RevisionResult result = ReviseQuery(candidate, top_, options_.learner);
  current_ = result.query;
  return result;
}

const Query& QuerySession::CorrectAndRelearn(size_t index) {
  // A correction invalidates the suffix of the answered user rounds a
  // continuation resume replays; the re-run's question stream could never
  // re-align with the stored prefix and the session would re-suspend on
  // the same question forever. Fail loudly instead of looping.
  QHORN_CHECK_MSG(!continuation_mode_,
                  "CorrectAndRelearn is not supported on pending-round "
                  "continuation sessions; close the session and re-learn");
  transcript_->Correct(index);
  // Rebuild the chain with the corrected prefix behind a replay stage;
  // fresh questions flow to the user through a fresh cache (the old cache
  // holds the wrong answer) and the new transcript re-records the whole
  // corrected run.
  BuildPipeline(transcript_->entries(), {});
  RpLearnerResult result = LearnRolePreserving(n_, top_, options_.learner);
  current_ = std::move(result.query);
  return *current_;
}

}  // namespace qhorn
