#include "src/session/sharded_router.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace qhorn {

ShardedRouter::ShardedRouter(Options options) {
  QHORN_CHECK_MSG(options.shards >= 1, "ShardedRouter needs >= 1 shard");
  // Same lane arithmetic as SessionRouter: `threads` counts session lanes,
  // the pool gets one extra worker because the submitting thread sleeps in
  // Drain() rather than running jobs, and 1 stays the synchronous inline
  // executor (the differential baseline — even with many shards, every
  // runner then executes in the caller).
  int lanes = options.threads <= 0 ? Executor::DefaultConcurrency()
                                   : options.threads;
  executor_ = std::make_unique<Executor>(lanes == 1 ? 1 : lanes + 1);
  shards_.reserve(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    SessionRouter::Options shard;
    shard.session = options.session;
    shard.resume_mode = options.resume_mode;
    shard.executor = executor_.get();
    shard.compiled_cache = &cache_;
    shards_.push_back(std::make_unique<SessionRouter>(std::move(shard)));
  }
}

ShardedRouter::~ShardedRouter() {
  // Quiesce every shard before joining the pool: Drain() on each returns
  // only when its runnable count hits zero, and joining the executor
  // afterwards guarantees no runner task is still in flight anywhere.
  // Only then may shards unwind their parked fibers and destruct.
  for (auto& shard : shards_) shard->Drain();
  executor_.reset();
  shards_.clear();
}

ShardedRouter::SessionId ShardedRouter::Open(int n, MembershipOracle* user) {
  const int shard = NextShard();
  return Encode(shards_[static_cast<size_t>(shard)]->Open(n, user), shard);
}

ShardedRouter::SessionId ShardedRouter::OpenSimulated(const Query& intended,
                                                      EvalOptions opts) {
  const int shard = NextShard();
  return Encode(
      shards_[static_cast<size_t>(shard)]->OpenSimulated(intended, opts),
      shard);
}

ShardedRouter::SessionId ShardedRouter::OpenPending(int n) {
  return OpenPendingOnShard(NextShard(), n);
}

ShardedRouter::SessionId ShardedRouter::OpenPendingOnShard(int shard, int n) {
  QHORN_CHECK_MSG(shard >= 0 && shard < shards(),
                  "shard " << shard << " out of range");
  return Encode(shards_[static_cast<size_t>(shard)]->OpenPending(n), shard);
}

SessionRouter* ShardedRouter::Route(SessionId external) {
  if (external <= 0) return nullptr;
  const SessionId internal = Internal(external);
  if (internal <= 0) return nullptr;
  return shards_[static_cast<size_t>(ShardOf(external))].get();
}

bool ShardedRouter::Submit(SessionId id, Job job) {
  SessionRouter* shard = Route(id);
  return shard != nullptr && shard->Submit(Internal(id), std::move(job));
}

bool ShardedRouter::SubmitLearn(SessionId id) {
  SessionRouter* shard = Route(id);
  return shard != nullptr && shard->SubmitLearn(Internal(id));
}

bool ShardedRouter::SubmitVerify(SessionId id, Query candidate) {
  SessionRouter* shard = Route(id);
  return shard != nullptr &&
         shard->SubmitVerify(Internal(id), std::move(candidate));
}

bool ShardedRouter::SubmitRevise(SessionId id, Query candidate) {
  SessionRouter* shard = Route(id);
  return shard != nullptr &&
         shard->SubmitRevise(Internal(id), std::move(candidate));
}

std::vector<PendingRound> ShardedRouter::PendingRounds() {
  std::vector<PendingRound> rounds;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::vector<PendingRound> batch = shards_[i]->PendingRounds();
    for (PendingRound& round : batch) {
      // Shards stamp rounds with their own (internal) ids; the facade
      // speaks external ids everywhere.
      round.session_id = Encode(round.session_id, static_cast<int>(i));
      rounds.push_back(std::move(round));
    }
  }
  std::sort(rounds.begin(), rounds.end(),
            [](const PendingRound& a, const PendingRound& b) {
              return a.session_id < b.session_id;
            });
  return rounds;
}

ProvideOutcome ShardedRouter::ProvideAnswers(SessionId id, int64_t round_id,
                                             BitSpan answers) {
  SessionRouter* shard = Route(id);
  if (shard == nullptr) return ProvideOutcome::kUnknownSession;
  return shard->ProvideAnswers(Internal(id), round_id, answers);
}

ProvideOutcome ShardedRouter::ProvideAnswers(SessionId id, int64_t round_id,
                                             BitSpan answers,
                                             CommitHook commit) {
  SessionRouter* shard = Route(id);
  if (shard == nullptr) return ProvideOutcome::kUnknownSession;
  return shard->ProvideAnswers(Internal(id), round_id, answers, commit);
}

ProvideOutcome ShardedRouter::CorrectAnswer(SessionId id, size_t entry_index) {
  SessionRouter* shard = Route(id);
  if (shard == nullptr) return ProvideOutcome::kUnknownSession;
  return shard->CorrectAnswer(Internal(id), entry_index);
}

std::optional<PendingRound> ShardedRouter::pending_round(SessionId id) {
  SessionRouter* shard = Route(id);
  if (shard == nullptr) return std::nullopt;
  std::optional<PendingRound> round = shard->pending_round(Internal(id));
  if (round.has_value()) round->session_id = id;  // external id form
  return round;
}

bool ShardedRouter::Close(SessionId id) {
  SessionRouter* shard = Route(id);
  return shard != nullptr && shard->Close(Internal(id));
}

std::optional<SessionStatus> ShardedRouter::status(SessionId id) {
  SessionRouter* shard = Route(id);
  if (shard == nullptr) return std::nullopt;
  return shard->status(Internal(id));
}

int64_t ShardedRouter::suspensions(SessionId id) {
  SessionRouter* shard = Route(id);
  return shard == nullptr ? -1 : shard->suspensions(Internal(id));
}

void ShardedRouter::Drain() {
  for (auto& shard : shards_) shard->Drain();
}

QuerySession& ShardedRouter::session(SessionId id) {
  SessionRouter* shard = Route(id);
  QHORN_CHECK_MSG(shard != nullptr, "no session " << id);
  return shard->session(Internal(id));
}

ServiceStats ShardedRouter::stats() {
  ServiceStats total;
  for (auto& shard : shards_) {
    ServiceStats s = shard->stats();
    total.sessions += s.sessions;
    total.jobs += s.jobs;
    total.learns += s.learns;
    total.verifies += s.verifies;
    total.revisions += s.revisions;
    total.questions += s.questions;
    total.rounds += s.rounds;
    total.batched_questions += s.batched_questions;
    total.cache_hits += s.cache_hits;
    total.suspensions += s.suspensions;
    total.awaiting_sessions += s.awaiting_sessions;
    total.replayed_questions += s.replayed_questions;
    total.snapshot_bytes += s.snapshot_bytes;
    total.corrections += s.corrections;
  }
  // Every shard reports the *shared* cache's counters; take them once.
  total.compiled_hits = cache_.hits();
  total.compiled_misses = cache_.misses();
  return total;
}

}  // namespace qhorn
