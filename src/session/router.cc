#include "src/session/router.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/suspend.h"

namespace qhorn {

std::shared_ptr<const CompiledQuery> CompiledQueryCache::Get(
    const Query& query, const EvalOptions& opts) {
  // The key captures exactly what evaluation under `opts` depends on
  // (CanonicalizeForEvaluation shares the R1/R2/R3 pipeline with
  // Canonicalize, so the cache can never drift from Equivalent()).
  Key key;
  key.require_guarantees = opts.require_guarantees;
  key.form = CanonicalizeForEvaluation(query, opts);
  key.form.Hash();  // fill the cached hash before sharing the key

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Compile outside the lock so concurrent opens compile distinct queries
  // in parallel and cache hits never stall behind a compile. Two threads
  // racing on the same new key both compile (both counted as misses); the
  // first insert wins and the loser's copy is dropped — compiles are
  // idempotent µs-scale work, not worth a per-key latch.
  auto compiled = std::make_shared<const CompiledQuery>(query, opts);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.try_emplace(std::move(key), std::move(compiled));
  return it->second;
}

int64_t CompiledQueryCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t CompiledQueryCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

const char* ToString(ProvideOutcome o) {
  switch (o) {
    case ProvideOutcome::kResumed:
      return "resumed";
    case ProvideOutcome::kUnknownSession:
      return "unknown-session";
    case ProvideOutcome::kSessionClosed:
      return "session-closed";
    case ProvideOutcome::kNotAwaiting:
      return "not-awaiting";
    case ProvideOutcome::kStaleRound:
      return "stale-round";
    case ProvideOutcome::kAnswerCountMismatch:
      return "answer-count-mismatch";
    case ProvideOutcome::kLogWriteFailed:
      return "log-write-failed";
  }
  return "?";
}

SessionRouter::SessionRouter() : SessionRouter(Options()) {}

SessionRouter::SessionRouter(Options options) : options_(std::move(options)) {
  // Options.threads counts *session lanes*. Session jobs are Post()ed and
  // the submitting thread sleeps in Drain(), so only the executor's
  // workers (concurrency - 1 of them) ever run jobs — ask for one more
  // lane so `threads` sessions really do run concurrently. threads == 1
  // stays the synchronous inline executor (the differential baseline).
  int lanes = options_.threads <= 0 ? Executor::DefaultConcurrency()
                                    : options_.threads;
  executor_ = std::make_unique<Executor>(lanes == 1 ? 1 : lanes + 1);
}

SessionRouter::~SessionRouter() {
  Drain();
  // Join the executor before any member is destroyed: Drain() returning
  // only proves the last runnable job *completed* — its runner task may
  // still be between the completion bookkeeping and its final empty-queue
  // check, touching session state, mutex_ and idle_cv_. ~Executor joins
  // the workers, so after this line no runner code is in flight.
  executor_.reset();
}

SessionRouter::SessionId SessionRouter::OpenInternal(
    int n, MembershipOracle* user,
    std::unique_ptr<MembershipOracle> owned_backend,
    PendingOracle* pending_backend) {
  auto state = std::make_unique<SessionState>();
  state->session = std::make_unique<QuerySession>(n, user, options_.session);
  state->owned_backend = std::move(owned_backend);
  state->pending_backend = pending_backend;
  std::lock_guard<std::mutex> lock(mutex_);
  SessionId id = next_id_++;
  sessions_.emplace(id, std::move(state));
  return id;
}

SessionRouter::SessionId SessionRouter::Open(int n, MembershipOracle* user) {
  QHORN_CHECK(user != nullptr);
  return OpenInternal(n, user, nullptr, nullptr);
}

SessionRouter::SessionId SessionRouter::OpenSimulated(const Query& intended,
                                                      EvalOptions opts) {
  auto backend = std::make_unique<AsyncOracle>(
      compiled_cache_.Get(intended, opts), executor_.get());
  MembershipOracle* user = backend.get();
  return OpenInternal(intended.n(), user, std::move(backend), nullptr);
}

SessionRouter::SessionId SessionRouter::OpenPending(int n) {
  auto backend = std::make_unique<PendingOracle>();
  PendingOracle* pending = backend.get();
  SessionId id = OpenInternal(n, pending, std::move(backend), pending);
  // Safe after the fact: the caller cannot Submit before OpenPending
  // returns, so no round can suspend carrying the unset id.
  pending->set_session_id(id);
  return id;
}

SessionRouter::SessionState* SessionRouter::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  QHORN_CHECK_MSG(it != sessions_.end(), "no session " << id);
  return it->second.get();
}

void SessionRouter::CompleteJob(JobKind kind) {
  ++jobs_done_;
  switch (kind) {
    case JobKind::kLearn:
      ++learns_;
      break;
    case JobKind::kVerify:
      ++verifies_;
      break;
    case JobKind::kRevise:
      ++revisions_;
      break;
    case JobKind::kOther:
      break;
  }
}

bool SessionRouter::Submit(SessionId id, Job job) {
  return SubmitInternal(id, std::move(job), JobKind::kOther);
}

bool SessionRouter::SubmitInternal(SessionId id, Job job, JobKind kind) {
  QHORN_CHECK(job != nullptr);
  SessionState* state = nullptr;
  bool start_runner = false;
  bool pending = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    state = it->second.get();
    if (state->closed) return false;
    pending = state->pending_backend != nullptr;
    if (pending) {
      state->job_log.push_back(JobRecord{std::move(job), kind});
      // A session blocked on its user cannot progress: the job waits in
      // the log, uncounted, until ProvideAnswers makes it runnable.
      if (!state->awaiting) {
        ++runnable_jobs_;
        if (!state->running) {
          state->running = true;
          start_runner = true;
        }
      }
    } else {
      state->queue.push_back(JobRecord{std::move(job), kind});
      ++runnable_jobs_;
      if (!state->running) {
        state->running = true;
        start_runner = true;
      }
    }
  }
  // Post outside the lock: at concurrency 1 the executor runs the task
  // inline, and the runner re-acquires the mutex.
  if (start_runner) {
    if (pending) {
      executor_->Post([this, state] { RunPendingSession(state); });
    } else {
      executor_->Post([this, state] { RunSession(state); });
    }
  }
  return true;
}

void SessionRouter::RunSession(SessionState* state) {
  // The runner owns the session until its queue drains; other sessions'
  // runners proceed in parallel on other lanes.
  for (;;) {
    JobRecord job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (state->queue.empty()) {
        state->running = false;
        return;
      }
      job = std::move(state->queue.front());
      state->queue.pop_front();
    }
    job.fn(*state->session);
    bool idle = false;
    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      CompleteJob(job.kind);
      // Release ownership in the same critical section that lets Drain
      // return: a drained router must already report every session idle.
      if (state->queue.empty()) {
        state->running = false;
        finished = true;
      }
      idle = --runnable_jobs_ == 0;
    }
    if (idle) idle_cv_.notify_all();
    if (finished) return;
  }
}

void SessionRouter::RunPendingSession(SessionState* state) {
  // One iteration = one *attempt*: rebuild the session's pipeline with the
  // answered rounds replayed at the user boundary, then re-run the job log
  // from the start. Fresh decorators re-record everything, so the attempt
  // that finally completes a job leaves observables bit-identical to a
  // synchronous run; learners ask the identical question sequence, the
  // replay stage serves the answered prefix, and the first unanswered
  // round suspends the attempt. The replayed compute is µs-scale against
  // the human latency that forced the suspension.
  for (;;) {
    int64_t next_round = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (state->jobs_completed >= state->job_log.size()) {
        state->running = false;
        return;
      }
      next_round = state->answered_rounds;
    }
    // Copying the answered transcript can be O(session lifetime); do it
    // outside the router-wide mutex. Safe unlocked: answered_entries only
    // mutates in ProvideAnswers, which requires awaiting == true, and
    // this runner owns the session (awaiting stays false) until it
    // suspends — the lock above orders this read after the resume's
    // writes.
    std::vector<TranscriptEntry> prefix = state->answered_entries;
    state->session->ResetWithUserReplay(std::move(prefix));
    state->pending_backend->BeginAttempt(next_round);
    bool suspended = false;
    try {
      for (size_t i = 0;; ++i) {
        JobRecord job;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (i >= state->job_log.size()) break;
          job = state->job_log[i];  // copy: re-runs reuse the log
        }
        job.fn(*state->session);
        bool idle = false;
        bool finished = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          // Jobs below jobs_completed are replays of already-counted
          // completions; only the frontier job completes for the first
          // time here.
          if (i == state->jobs_completed) {
            ++state->jobs_completed;
            CompleteJob(job.kind);
            // Release ownership in the same critical section that lets
            // Drain return, so a drained router reports the session idle.
            if (state->jobs_completed >= state->job_log.size()) {
              state->running = false;
              finished = true;
            }
            idle = --runnable_jobs_ == 0;
          }
        }
        if (idle) idle_cv_.notify_all();
        if (finished) return;
      }
    } catch (const JobSuspended&) {
      suspended = true;
    }
    if (suspended) {
      bool idle = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++state->suspensions;
        ++suspensions_;
        // Everything this session still owes can no longer progress
        // without the user; Drain must not wait for it.
        runnable_jobs_ -= static_cast<int64_t>(state->job_log.size() -
                                               state->jobs_completed);
        idle = runnable_jobs_ == 0;
        if (state->closed) {
          // Closed mid-run: abandon the round; the session never resumes.
          (void)state->pending_backend->TakePending();
        } else {
          state->pending_round = state->pending_backend->TakePending();
          state->awaiting = true;
        }
        state->running = false;
      }
      if (idle) idle_cv_.notify_all();
      return;  // ← the lane is free while the user thinks
    }
  }
}

bool SessionRouter::SubmitLearn(SessionId id) {
  return SubmitInternal(
      id, [](QuerySession& session) { session.Learn(); }, JobKind::kLearn);
}

bool SessionRouter::SubmitVerify(SessionId id, Query candidate) {
  return SubmitInternal(
      id,
      [candidate = std::move(candidate)](QuerySession& session) {
        session.Verify(candidate);
      },
      JobKind::kVerify);
}

bool SessionRouter::SubmitRevise(SessionId id, Query candidate) {
  return SubmitInternal(
      id,
      [candidate = std::move(candidate)](QuerySession& session) {
        session.Revise(candidate);
      },
      JobKind::kRevise);
}

std::vector<PendingRound> SessionRouter::PendingRounds() {
  std::vector<PendingRound> rounds;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, state] : sessions_) {
      if (state->awaiting) rounds.push_back(*state->pending_round);
    }
  }
  std::sort(rounds.begin(), rounds.end(),
            [](const PendingRound& a, const PendingRound& b) {
              return a.session_id < b.session_id;
            });
  return rounds;
}

ProvideOutcome SessionRouter::ProvideAnswers(SessionId id, int64_t round_id,
                                             BitSpan answers) {
  return ProvideAnswersInternal(id, round_id, answers, nullptr);
}

ProvideOutcome SessionRouter::ProvideAnswers(SessionId id, int64_t round_id,
                                             BitSpan answers,
                                             CommitHook commit) {
  return ProvideAnswersInternal(id, round_id, answers, &commit);
}

ProvideOutcome SessionRouter::ProvideAnswersInternal(SessionId id,
                                                     int64_t round_id,
                                                     BitSpan answers,
                                                     CommitHook* commit) {
  SessionState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return ProvideOutcome::kUnknownSession;
    state = it->second.get();
    if (state->closed) return ProvideOutcome::kSessionClosed;
    if (!state->awaiting) return ProvideOutcome::kNotAwaiting;
    PendingRound& round = *state->pending_round;
    if (round_id != round.round_id) return ProvideOutcome::kStaleRound;
    if (answers.size() != round.questions.size()) {
      return ProvideOutcome::kAnswerCountMismatch;
    }
    // Validations passed — the write-ahead barrier runs here, under the
    // lock, so the logged record and the fold it authorizes are one
    // atomic step as seen by every other router call. A veto leaves the
    // session exactly as it was (the round stays pending, the same call
    // can be retried once the log is healthy).
    if (commit != nullptr && !(*commit)()) {
      return ProvideOutcome::kLogWriteFailed;
    }
    // Accepted: fold the answered round into the user-boundary transcript
    // and make the session runnable again.
    for (size_t i = 0; i < round.questions.size(); ++i) {
      state->answered_entries.push_back(TranscriptEntry{
          std::move(round.questions[i]), answers.Get(i), round.round_id});
    }
    ++state->answered_rounds;
    state->pending_round.reset();
    state->awaiting = false;
    runnable_jobs_ += static_cast<int64_t>(state->job_log.size() -
                                           state->jobs_completed);
    state->running = true;
  }
  executor_->Post([this, state] { RunPendingSession(state); });
  return ProvideOutcome::kResumed;
}

std::optional<PendingRound> SessionRouter::pending_round(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  const SessionState* state = it->second.get();
  if (!state->awaiting) return std::nullopt;
  return state->pending_round;
}

bool SessionRouter::Close(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  SessionState* state = it->second.get();
  if (state->closed) return false;
  state->closed = true;
  if (state->awaiting) {
    // The user will never answer; abandon the round. The session's
    // uncompleted jobs were uncounted at suspension, so nothing waits.
    state->pending_round.reset();
    state->awaiting = false;
  }
  return true;
}

std::optional<SessionStatus> SessionRouter::status(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  const SessionState* state = it->second.get();
  if (state->awaiting) return SessionStatus::kAwaitingUser;
  if (state->running || !state->queue.empty()) return SessionStatus::kRunning;
  return SessionStatus::kIdle;
}

int64_t SessionRouter::suspensions(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? -1 : it->second->suspensions;
}

void SessionRouter::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return runnable_jobs_ == 0; });
}

QuerySession& SessionRouter::session(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *FindSession(id)->session;
}

ServiceStats SessionRouter::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  QHORN_CHECK_MSG(runnable_jobs_ == 0, "stats() requires an idle router");
  ServiceStats stats;
  stats.sessions = static_cast<int64_t>(sessions_.size());
  stats.jobs = jobs_done_;
  stats.learns = learns_;
  stats.verifies = verifies_;
  stats.revisions = revisions_;
  stats.suspensions = suspensions_;
  for (const auto& [id, state] : sessions_) {
    const OracleStats& os = state->session->oracle_stats();
    stats.questions += os.questions;
    stats.batched_questions += os.batched_questions;
    stats.rounds += state->session->rounds();
    stats.cache_hits += state->session->cache_hits();
    if (state->awaiting) ++stats.awaiting_sessions;
  }
  stats.compiled_hits = compiled_cache_.hits();
  stats.compiled_misses = compiled_cache_.misses();
  return stats;
}

}  // namespace qhorn
