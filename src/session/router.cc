#include "src/session/router.h"

#include <utility>

#include "src/util/check.h"

namespace qhorn {

std::shared_ptr<const CompiledQuery> CompiledQueryCache::Get(
    const Query& query, const EvalOptions& opts) {
  // The key captures exactly what evaluation under `opts` depends on
  // (CanonicalizeForEvaluation shares the R1/R2/R3 pipeline with
  // Canonicalize, so the cache can never drift from Equivalent()).
  Key key;
  key.require_guarantees = opts.require_guarantees;
  key.form = CanonicalizeForEvaluation(query, opts);
  key.form.Hash();  // fill the cached hash before sharing the key

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Compile outside the lock so concurrent opens compile distinct queries
  // in parallel and cache hits never stall behind a compile. Two threads
  // racing on the same new key both compile (both counted as misses); the
  // first insert wins and the loser's copy is dropped — compiles are
  // idempotent µs-scale work, not worth a per-key latch.
  auto compiled = std::make_shared<const CompiledQuery>(query, opts);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.try_emplace(std::move(key), std::move(compiled));
  return it->second;
}

int64_t CompiledQueryCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t CompiledQueryCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

SessionRouter::SessionRouter() : SessionRouter(Options()) {}

SessionRouter::SessionRouter(Options options) : options_(std::move(options)) {
  // Options.threads counts *session lanes*. Session jobs are Post()ed and
  // the submitting thread sleeps in Drain(), so only the executor's
  // workers (concurrency - 1 of them) ever run jobs — ask for one more
  // lane so `threads` sessions really do run concurrently. threads == 1
  // stays the synchronous inline executor (the differential baseline).
  int lanes = options_.threads <= 0 ? Executor::DefaultConcurrency()
                                    : options_.threads;
  executor_ = std::make_unique<Executor>(lanes == 1 ? 1 : lanes + 1);
}

SessionRouter::~SessionRouter() {
  Drain();
  // Join the executor before any member is destroyed: Drain() returning
  // only proves the last job *completed* — its runner task may still be
  // between the completion bookkeeping and its final empty-queue check,
  // touching session state, mutex_ and idle_cv_. ~Executor joins the
  // workers, so after this line no runner code is in flight.
  executor_.reset();
}

SessionRouter::SessionId SessionRouter::OpenInternal(
    int n, MembershipOracle* user,
    std::unique_ptr<MembershipOracle> owned_backend) {
  auto state = std::make_unique<SessionState>();
  state->session = std::make_unique<QuerySession>(n, user, options_.session);
  state->owned_backend = std::move(owned_backend);
  std::lock_guard<std::mutex> lock(mutex_);
  SessionId id = next_id_++;
  sessions_.emplace(id, std::move(state));
  return id;
}

SessionRouter::SessionId SessionRouter::Open(int n, MembershipOracle* user) {
  QHORN_CHECK(user != nullptr);
  return OpenInternal(n, user, nullptr);
}

SessionRouter::SessionId SessionRouter::OpenSimulated(const Query& intended,
                                                      EvalOptions opts) {
  auto backend = std::make_unique<AsyncOracle>(
      compiled_cache_.Get(intended, opts), executor_.get());
  MembershipOracle* user = backend.get();
  return OpenInternal(intended.n(), user, std::move(backend));
}

SessionRouter::SessionState* SessionRouter::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  QHORN_CHECK_MSG(it != sessions_.end(), "no session " << id);
  return it->second.get();
}

void SessionRouter::Submit(SessionId id, Job job) {
  QHORN_CHECK(job != nullptr);
  SessionState* state = nullptr;
  bool start_runner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state = FindSession(id);
    state->queue.push_back(std::move(job));
    ++active_jobs_;
    if (!state->running) {
      state->running = true;
      start_runner = true;
    }
  }
  // Post outside the lock: at concurrency 1 the executor runs the task
  // inline, and the runner re-acquires the mutex.
  if (start_runner) {
    executor_->Post([this, state] { RunSession(state); });
  }
}

void SessionRouter::RunSession(SessionState* state) {
  // The runner owns the session until its queue drains; other sessions'
  // runners proceed in parallel on other lanes.
  for (;;) {
    Job job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (state->queue.empty()) {
        state->running = false;
        return;
      }
      job = std::move(state->queue.front());
      state->queue.pop_front();
    }
    job(*state->session);
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++jobs_done_;
      idle = --active_jobs_ == 0;
    }
    if (idle) idle_cv_.notify_all();
  }
}

void SessionRouter::SubmitLearn(SessionId id) {
  Submit(id, [this](QuerySession& session) {
    session.Learn();
    std::lock_guard<std::mutex> lock(mutex_);
    ++learns_;
  });
}

void SessionRouter::SubmitVerify(SessionId id, Query candidate) {
  Submit(id, [this, candidate = std::move(candidate)](QuerySession& session) {
    session.Verify(candidate);
    std::lock_guard<std::mutex> lock(mutex_);
    ++verifies_;
  });
}

void SessionRouter::SubmitRevise(SessionId id, Query candidate) {
  Submit(id, [this, candidate = std::move(candidate)](QuerySession& session) {
    session.Revise(candidate);
    std::lock_guard<std::mutex> lock(mutex_);
    ++revisions_;
  });
}

void SessionRouter::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return active_jobs_ == 0; });
}

QuerySession& SessionRouter::session(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *FindSession(id)->session;
}

ServiceStats SessionRouter::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  QHORN_CHECK_MSG(active_jobs_ == 0, "stats() requires an idle router");
  ServiceStats stats;
  stats.sessions = static_cast<int64_t>(sessions_.size());
  stats.jobs = jobs_done_;
  stats.learns = learns_;
  stats.verifies = verifies_;
  stats.revisions = revisions_;
  for (const auto& [id, state] : sessions_) {
    const OracleStats& os = state->session->oracle_stats();
    stats.questions += os.questions;
    stats.batched_questions += os.batched_questions;
    stats.rounds += state->session->rounds();
    stats.cache_hits += state->session->cache_hits();
  }
  stats.compiled_hits = compiled_cache_.hits();
  stats.compiled_misses = compiled_cache_.misses();
  return stats;
}

}  // namespace qhorn
