#include "src/session/router.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/util/check.h"
#include "src/util/suspend.h"

namespace qhorn {

std::shared_ptr<const CompiledQuery> CompiledQueryCache::Get(
    const Query& query, const EvalOptions& opts) {
  // The key captures exactly what evaluation under `opts` depends on
  // (CanonicalizeForEvaluation shares the R1/R2/R3 pipeline with
  // Canonicalize, so the cache can never drift from Equivalent()).
  Key key;
  key.require_guarantees = opts.require_guarantees;
  key.form = CanonicalizeForEvaluation(query, opts);
  key.form.Hash();  // fill the cached hash before sharing the key

  Stripe& stripe = StripeFor(KeyHash{}(key));
  {
    ReaderLock lock(&stripe.mutex);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      stripe.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  stripe.misses.fetch_add(1, std::memory_order_relaxed);
  // Compile outside any lock so concurrent opens compile distinct queries
  // in parallel and cache hits never stall behind a compile. Two threads
  // racing on the same new key both compile (both counted as misses); the
  // first insert wins and the loser's copy is dropped — compiles are
  // idempotent µs-scale work, not worth a per-key latch.
  auto compiled = std::make_shared<const CompiledQuery>(query, opts);
  WriterLock lock(&stripe.mutex);
  auto [it, inserted] =
      stripe.map.try_emplace(std::move(key), std::move(compiled));
  return it->second;
}

int64_t CompiledQueryCache::hits() const {
  int64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.hits.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t CompiledQueryCache::misses() const {
  int64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.misses.load(std::memory_order_relaxed);
  }
  return total;
}

const char* ToString(ProvideOutcome o) {
  switch (o) {
    case ProvideOutcome::kResumed:
      return "resumed";
    case ProvideOutcome::kUnknownSession:
      return "unknown-session";
    case ProvideOutcome::kSessionClosed:
      return "session-closed";
    case ProvideOutcome::kNotAwaiting:
      return "not-awaiting";
    case ProvideOutcome::kStaleRound:
      return "stale-round";
    case ProvideOutcome::kAnswerCountMismatch:
      return "answer-count-mismatch";
    case ProvideOutcome::kLogWriteFailed:
      return "log-write-failed";
  }
  return "?";
}

const char* ToString(ResumeMode m) {
  switch (m) {
    case ResumeMode::kDefault:
      return "default";
    case ResumeMode::kFiber:
      return "fiber";
    case ResumeMode::kSnapshot:
      return "snapshot";
    case ResumeMode::kReplay:
      return "replay";
  }
  return "?";
}

SessionRouter::SessionRouter() : SessionRouter(Options()) {}

SessionRouter::SessionRouter(Options options) : options_(std::move(options)) {
  resume_mode_ = options_.resume_mode;
  if (resume_mode_ == ResumeMode::kDefault) {
    const char* env = std::getenv("QHORN_RESUME_MODE");
    if (env != nullptr && std::strcmp(env, "replay") == 0) {
      resume_mode_ = ResumeMode::kReplay;
    } else if (env != nullptr && std::strcmp(env, "snapshot") == 0) {
      resume_mode_ = ResumeMode::kSnapshot;
    } else {
      resume_mode_ = ResumeMode::kFiber;
    }
  }
  // Snapshot resume re-walks the suspended job's question prefix against
  // the restored cache; without the cache those questions would fall
  // through to the user boundary again. Fiber resume never re-walks (the
  // parked frame consumes the answers directly) and replay rebuilds from
  // the user-boundary transcript, so only kSnapshot has the dependency.
  if (!options_.session.cache_questions &&
      resume_mode_ == ResumeMode::kSnapshot) {
    resume_mode_ = ResumeMode::kReplay;
  }
  // Options.threads counts *session lanes*. Session jobs are Post()ed and
  // the submitting thread sleeps in Drain(), so only the executor's
  // workers (concurrency - 1 of them) ever run jobs — ask for one more
  // lane so `threads` sessions really do run concurrently. threads == 1
  // stays the synchronous inline executor (the differential baseline).
  if (options_.executor != nullptr) {
    exec_ = options_.executor;
  } else {
    int lanes = options_.threads <= 0 ? Executor::DefaultConcurrency()
                                      : options_.threads;
    owned_executor_ = std::make_unique<Executor>(lanes == 1 ? 1 : lanes + 1);
    exec_ = owned_executor_.get();
  }
  if (options_.compiled_cache != nullptr) {
    cache_ = options_.compiled_cache;
  } else {
    owned_cache_ = std::make_unique<CompiledQueryCache>();
    cache_ = owned_cache_.get();
  }
}

SessionRouter::~SessionRouter() {
  Drain();
  // Join the executor before any member is destroyed: Drain() returning
  // only proves the last runnable job *completed* — its runner task may
  // still be between the completion bookkeeping and its final empty-queue
  // check, touching session state, mutex_ and idle_cv_. ~Executor joins
  // the workers, so after this line no runner code is in flight. With a
  // *borrowed* executor this reset is a no-op and the owner is responsible
  // for the same guarantee: it must have destroyed (joined) the shared
  // pool before destroying this router (ShardedRouter's teardown order).
  owned_executor_.reset();
  // Unwind continuations still parked on abandoned rounds (sessions
  // awaiting a user who never answered, or closed while parked): the
  // parked stacks hold live learner frames whose destructors must run.
  // Safe on this thread — the workers are joined, so no runner owns any
  // session anymore. Collect under the lock (the locks are uncontended
  // now, but they keep the guarded-field discipline uniform), unwind
  // outside it: UnwindFiber switches into the parked stack, and the rank
  // checker forbids holding a lock across that.
  std::vector<SessionState*> parked;
  {
    MutexLock lock(&mutex_);
    for (auto& [id, state] : sessions_) {
      if (state->fiber != nullptr) parked.push_back(state.get());
    }
  }
  for (SessionState* state : parked) UnwindFiber(state);
  // Free announcement nodes for rounds still pending at teardown — both
  // the batch never popped and the retained poll set. No producer is live
  // (workers joined above), so the pop is race-free.
  for (AnnouncementNode* node = announced_rounds_.PopAll(); node != nullptr;) {
    AnnouncementNode* next = node->next;
    delete node;
    node = next;
  }
  {
    MutexLock poll_lock(&poll_mutex_);
    live_announcements_.clear();
  }
}

void SessionRouter::UnwindFiber(SessionState* state) {
  state->pending_backend->RequestCancel();
  state->fiber->Resume();
  QHORN_CHECK_MSG(state->fiber->finished(),
                  "cancelled fiber parked again instead of unwinding");
  state->fiber.reset();
  state->fiber_cancel = false;
}

SessionRouter::SessionId SessionRouter::OpenInternal(
    int n, MembershipOracle* user,
    std::unique_ptr<MembershipOracle> owned_backend,
    PendingOracle* pending_backend) {
  auto state = std::make_unique<SessionState>();
  state->session = std::make_unique<QuerySession>(n, user, options_.session);
  state->owned_backend = std::move(owned_backend);
  state->pending_backend = pending_backend;
  MutexLock lock(&mutex_);
  SessionId id = next_id_++;
  sessions_.emplace(id, std::move(state));
  return id;
}

SessionRouter::SessionId SessionRouter::Open(int n, MembershipOracle* user) {
  QHORN_CHECK(user != nullptr);
  return OpenInternal(n, user, nullptr, nullptr);
}

SessionRouter::SessionId SessionRouter::OpenSimulated(const Query& intended,
                                                      EvalOptions opts) {
  auto backend = std::make_unique<AsyncOracle>(
      cache_->Get(intended, opts), exec_);
  MembershipOracle* user = backend.get();
  return OpenInternal(intended.n(), user, std::move(backend), nullptr);
}

SessionRouter::SessionId SessionRouter::OpenPending(int n) {
  auto backend = std::make_unique<PendingOracle>();
  PendingOracle* pending = backend.get();
  SessionId id = OpenInternal(n, pending, std::move(backend), pending);
  // Safe after the fact: the caller cannot Submit before OpenPending
  // returns, so no round can suspend carrying the unset id.
  pending->set_session_id(id);
  return id;
}

SessionRouter::SessionState* SessionRouter::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  QHORN_CHECK_MSG(it != sessions_.end(), "no session " << id);
  return it->second.get();
}

void SessionRouter::CompleteJob(JobKind kind) {
  ++jobs_done_;
  switch (kind) {
    case JobKind::kLearn:
      ++learns_;
      break;
    case JobKind::kVerify:
      ++verifies_;
      break;
    case JobKind::kRevise:
      ++revisions_;
      break;
    case JobKind::kOther:
      break;
  }
}

bool SessionRouter::Submit(SessionId id, Job job) {
  return SubmitInternal(id, std::move(job), JobKind::kOther);
}

bool SessionRouter::SubmitInternal(SessionId id, Job job, JobKind kind) {
  QHORN_CHECK(job != nullptr);
  SessionState* state = nullptr;
  bool start_runner = false;
  bool pending = false;
  {
    MutexLock lock(&mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    state = it->second.get();
    if (state->closed) return false;
    pending = state->pending_backend != nullptr;
    if (pending) {
      state->job_log.push_back(JobRecord{std::move(job), kind});
      // A session blocked on its user cannot progress: the job waits in
      // the log, uncounted, until ProvideAnswers makes it runnable.
      if (!state->awaiting) {
        ++runnable_jobs_;
        if (!state->running) {
          state->running = true;
          start_runner = true;
        }
      }
    } else {
      state->queue.push_back(JobRecord{std::move(job), kind});
      ++runnable_jobs_;
      if (!state->running) {
        state->running = true;
        start_runner = true;
      }
    }
  }
  // Post outside the lock: at concurrency 1 the executor runs the task
  // inline, and the runner re-acquires the mutex.
  if (start_runner) {
    if (pending) {
      exec_->Post([this, state] { RunPendingSession(state); });
    } else {
      exec_->Post([this, state] { RunSession(state); });
    }
  }
  return true;
}

void SessionRouter::RunSession(SessionState* state) {
  // The runner owns the session until its queue drains; other sessions'
  // runners proceed in parallel on other lanes.
  for (;;) {
    JobRecord job;
    {
      MutexLock lock(&mutex_);
      if (state->queue.empty()) {
        state->running = false;
        return;
      }
      job = std::move(state->queue.front());
      state->queue.pop_front();
    }
    job.fn(*state->session);
    bool idle = false;
    bool finished = false;
    {
      MutexLock lock(&mutex_);
      CompleteJob(job.kind);
      // Release ownership in the same critical section that lets Drain
      // return: a drained router must already report every session idle.
      if (state->queue.empty()) {
        state->running = false;
        finished = true;
      }
      idle = --runnable_jobs_ == 0;
    }
    if (idle) idle_cv_.NotifyAll();
    if (finished) return;
  }
}

void SessionRouter::RunPendingSession(SessionState* state) {
  if (resume_mode_ == ResumeMode::kFiber) {
    RunPendingSessionFiber(state);
    return;
  }
  // One iteration = one *attempt*. How an attempt re-enters the session is
  // the resolved ResumeMode:
  //
  //   * kReplay: rebuild the pipeline with every answered round replayed
  //     at the user boundary and re-run the job log from the start. Fresh
  //     decorators re-record everything, so the attempt that finally
  //     completes a job leaves observables bit-identical to a synchronous
  //     run. O(prefix) per attempt — the retired quadratic path, kept as
  //     the differential oracle.
  //   * kSnapshot: three re-entry cases. (a) The live pipeline is current
  //     (the previous attempt *completed* the job log and new jobs arrived
  //     later): run the new jobs directly, no rebuild at all. (b) A
  //     suspension snapshot exists: restore it and arm the user boundary
  //     with only the answered rounds the snapshot hasn't absorbed; the
  //     suspended job re-runs from its start, its question prefix served
  //     by the restored cache — no question crosses the user boundary
  //     twice, and completed jobs are skipped via the job cursor. (c)
  //     Neither (first run, or a correction invalidated the snapshot):
  //     fall back to the full-prefix replay attempt.
  //
  // Either way the attempt ends by completing the log or suspending on the
  // first unanswered round; a suspension under kSnapshot captures the next
  // snapshot on the way out. The resumed compute is µs-scale against the
  // human latency that forced the suspension.
  const bool snapshot_mode = resume_mode_ == ResumeMode::kSnapshot;
  for (;;) {
    int64_t next_round = 0;
    size_t start_job = 0;
    size_t suffix_begin = 0;
    bool restore_snapshot = false;
    bool live = false;
    {
      MutexLock lock(&mutex_);
      if (state->jobs_completed >= state->job_log.size()) {
        state->running = false;
        return;
      }
      next_round = state->answered_rounds;
      if (snapshot_mode) {
        live = state->pipeline_live;
        restore_snapshot = !live && state->snapshot.valid;
        if (live || restore_snapshot) start_job = state->jobs_completed;
        suffix_begin = state->entries_cursor;
      }
    }
    // Copying the answered transcript can be O(session lifetime); do it
    // outside the router-wide mutex. Safe unlocked: answered_entries only
    // mutates in ProvideAnswers/CorrectAnswer, which require awaiting ==
    // true, and this runner owns the session (awaiting stays false) until
    // it suspends — the lock above orders this read after the resume's
    // writes. The snapshot is likewise only written by the runner that
    // owns the session and only read here.
    if (live) {
      // Case (a): the session's state already reflects every completed
      // job; just make sure no stale pending state survives.
      state->pending_backend->BeginAttempt(next_round);
    } else if (restore_snapshot) {
      // Case (b): O(1) rounds of user-boundary replay — just the suffix.
      std::vector<TranscriptEntry> suffix(
          state->answered_entries.begin() +
              static_cast<ptrdiff_t>(suffix_begin),
          state->answered_entries.end());
      state->session->RestoreSnapshot(state->snapshot, std::move(suffix));
      state->pending_backend->BeginAttempt(next_round);
    } else {
      // Case (c) / kReplay: full-prefix replay from job 0.
      std::vector<TranscriptEntry> prefix = state->answered_entries;
      state->session->ResetWithUserReplay(std::move(prefix));
      state->pending_backend->BeginAttempt(next_round);
    }
    bool suspended = false;
    try {
      for (size_t i = start_job;; ++i) {
        JobRecord job;
        {
          MutexLock lock(&mutex_);
          if (i >= state->job_log.size()) break;
          job = state->job_log[i];  // copy: re-runs reuse the log
        }
        job.fn(*state->session);
        // The job ran to completion: the next suspension's snapshot must
        // rewind the transcript to *this* boundary (the suspended job
        // re-records its own questions on resume).
        if (snapshot_mode) state->session->MarkJobBoundary();
        bool idle = false;
        bool finished = false;
        {
          MutexLock lock(&mutex_);
          // Jobs below jobs_completed are replays of already-counted
          // completions; only the frontier job completes for the first
          // time here.
          if (i == state->jobs_completed) {
            ++state->jobs_completed;
            CompleteJob(job.kind);
            // Release ownership in the same critical section that lets
            // Drain return, so a drained router reports the session idle.
            if (state->jobs_completed >= state->job_log.size()) {
              state->running = false;
              finished = true;
              // The pipeline now reflects every completed job; jobs
              // submitted later may run on it directly, and the parked
              // snapshot has nothing left to resume.
              state->pipeline_live = true;
              state->snapshot = SessionSnapshot();
              state->snapshot_bytes = 0;
              state->entries_cursor = state->answered_entries.size();
            }
            idle = --runnable_jobs_ == 0;
          }
        }
        if (idle) idle_cv_.NotifyAll();
        if (finished) return;
      }
    } catch (const JobSuspended&) {
      suspended = true;
    }
    if (suspended) {
      // Capture before taking the router lock: the copy is O(session
      // history) and the runner still owns the session.
      SessionSnapshot snap;
      if (snapshot_mode) snap = state->session->CapturePreRound();
      bool idle = false;
      {
        MutexLock lock(&mutex_);
        ++state->suspensions;
        ++suspensions_;
        // Everything this session still owes can no longer progress
        // without the user; Drain must not wait for it.
        runnable_jobs_ -= static_cast<int64_t>(state->job_log.size() -
                                               state->jobs_completed);
        idle = runnable_jobs_ == 0;
        if (state->closed) {
          // Closed mid-run: abandon the round; the session never resumes.
          (void)state->pending_backend->TakePending();
        } else {
          state->pending_round = state->pending_backend->TakePending();
          state->awaiting = true;
          // Publish for the lock-free poll: the atomic id and the pushed
          // node go out in the same critical section as runnable_jobs_'s
          // decrement, so Drain-then-poll observes every parked round.
          state->awaiting_round.store(state->pending_round->round_id,
                                      std::memory_order_release);
          announced_rounds_.Push(new AnnouncementNode(
              RoundAnnouncement{*state->pending_round, state}));
          if (snapshot_mode) {
            state->snapshot = std::move(snap);
            state->snapshot_bytes = state->snapshot.MemoryBytes();
            // Every answer folded so far is baked into this snapshot
            // (absorbed by the attempt that just suspended); the next
            // restore replays only rounds answered beyond this point.
            state->entries_cursor = state->answered_entries.size();
          }
        }
        state->pipeline_live = false;
        state->running = false;
      }
      if (idle) idle_cv_.NotifyAll();
      return;  // ← the lane is free while the user thinks
    }
  }
}

void SessionRouter::RunPendingSessionFiber(SessionState* state) {
  // The kFiber attempt loop. The job log runs inside a Fiber whose
  // suspension hook *parks* (switches back here) instead of throwing, so a
  // resume re-enters the exact frame that asked the question — no rebuild,
  // no replay, no re-walk. The body only fetches jobs and runs them; every
  // piece of completion bookkeeping happens on this (host) side of the
  // switch, after Resume() returns, so counters and the running flag
  // change under the same locking discipline as the unwind-based runners.
  for (;;) {
    bool resume_parked = false;
    bool cancel_parked = false;
    bool live = false;
    int64_t next_round = 0;
    size_t start_job = 0;
    {
      MutexLock lock(&mutex_);
      resume_parked = state->fiber != nullptr;
      cancel_parked = resume_parked && state->fiber_cancel;
      if (!resume_parked && state->jobs_completed >= state->job_log.size()) {
        state->running = false;
        return;
      }
      live = state->pipeline_live;
      if (live) start_job = state->jobs_completed;
      next_round = state->answered_rounds;
    }
    if (cancel_parked) {
      // A correction abandoned this parked stack (it was built over the
      // flipped answer); unwind it and fall through to a fresh attempt
      // that replays the corrected prefix.
      UnwindFiber(state);
      continue;
    }
    if (resume_parked) {
      // O(1) resume: hand the answered round's bits to the parked
      // wait-site and switch back in. staged_answers was written by
      // ProvideAnswers under the lock taken above.
      state->pending_backend->StageResumeAnswers(
          std::move(state->staged_answers));
      state->staged_answers.clear();
      state->fiber->Resume();
    } else {
      // Fresh attempt: over the live pipeline when the previous attempt
      // completed the job log (new jobs run directly), otherwise from a
      // rebuilt pipeline with the full answered prefix replayed (first
      // run, or a correction restart — the only quadratic path left, paid
      // once per correction rather than once per round).
      if (!live) {
        std::vector<TranscriptEntry> prefix = state->answered_entries;
        state->session->ResetWithUserReplay(std::move(prefix));
        start_job = 0;
      }
      state->pending_backend->BeginAttempt(next_round);
      state->fiber_jobs_run = start_job;
      auto fiber = std::make_unique<Fiber>([this, state, start_job] {
        try {
          for (size_t i = start_job;; ++i) {
            JobRecord job;
            {
              MutexLock lock(&mutex_);
              if (i >= state->job_log.size()) return;
              job = state->job_log[i];  // copy: the log outlives the run
            }
            job.fn(*state->session);
            // Runner-owned cursor, read by the host after the switch back
            // (same-thread, or ordered through mutex_ on a lane handoff).
            state->fiber_jobs_run = i + 1;
          }
        } catch (const JobSuspended&) {
          // Cancel unwind: the learner frames above are gone; the restart
          // attempt replays the corrected prefix from scratch.
        }
      });
      state->pending_backend->InstallYieldHook(
          [f = fiber.get()] { f->Yield(); });
      state->fiber = std::move(fiber);
      state->fiber->Resume();
    }
    const size_t jobs_run = state->fiber_jobs_run;
    if (state->fiber->finished()) {
      // The body ran out of jobs (or a racing Submit will re-post). Fold
      // the completed jobs into the counters; release ownership in the
      // same critical section that lets Drain return.
      state->fiber.reset();
      state->pending_backend->InstallYieldHook(nullptr);
      bool idle = false;
      bool done = false;
      {
        MutexLock lock(&mutex_);
        while (state->jobs_completed < jobs_run) {
          CompleteJob(state->job_log[state->jobs_completed].kind);
          ++state->jobs_completed;
          --runnable_jobs_;
        }
        // The pipeline now reflects every completed job; later jobs run
        // on it directly.
        state->pipeline_live = true;
        if (state->jobs_completed >= state->job_log.size()) {
          state->running = false;
          done = true;
          idle = runnable_jobs_ == 0;
        }
      }
      if (idle) idle_cv_.NotifyAll();
      if (done) return;
      continue;  // jobs arrived while the body was finishing
    }
    // Parked on a user round: publish it and free the lane. The parked
    // stack is the session's resume state; trim the cold region below the
    // parked frame back to the kernel (madvise) and report what actually
    // stays resident-able while the user thinks. Safe before the lock:
    // this runner still owns the session and nothing else touches a
    // parked fiber.
    const size_t resident = state->fiber->TrimColdStack();
    bool idle = false;
    bool abandoned = false;
    {
      MutexLock lock(&mutex_);
      while (state->jobs_completed < jobs_run) {
        CompleteJob(state->job_log[state->jobs_completed].kind);
        ++state->jobs_completed;
        --runnable_jobs_;
      }
      ++state->suspensions;
      ++suspensions_;
      // Everything this session still owes can no longer progress
      // without the user; Drain must not wait for it.
      runnable_jobs_ -= static_cast<int64_t>(state->job_log.size() -
                                             state->jobs_completed);
      idle = runnable_jobs_ == 0;
      if (state->closed) {
        // Closed mid-run: abandon the round; the session never resumes.
        (void)state->pending_backend->TakePending();
        abandoned = true;
      } else {
        state->pending_round = state->pending_backend->TakePending();
        state->awaiting = true;
        state->snapshot_bytes = resident;
        // Publish for the lock-free poll (see the unwind runner).
        state->awaiting_round.store(state->pending_round->round_id,
                                    std::memory_order_release);
        announced_rounds_.Push(new AnnouncementNode(
            RoundAnnouncement{*state->pending_round, state}));
      }
      state->pipeline_live = false;
      state->running = false;
    }
    if (idle) idle_cv_.NotifyAll();
    // A closed session's parked stack unwinds right here — no resume can
    // ever come. Safe after releasing ownership: closed sessions reject
    // Submit/ProvideAnswers, so no other runner can be posted.
    if (abandoned) UnwindFiber(state);
    return;  // ← the lane is free while the user thinks
  }
}

bool SessionRouter::SubmitLearn(SessionId id) {
  return SubmitInternal(
      id, [](QuerySession& session) { session.Learn(); }, JobKind::kLearn);
}

bool SessionRouter::SubmitVerify(SessionId id, Query candidate) {
  return SubmitInternal(
      id,
      [candidate = std::move(candidate)](QuerySession& session) {
        session.Verify(candidate);
      },
      JobKind::kVerify);
}

bool SessionRouter::SubmitRevise(SessionId id, Query candidate) {
  return SubmitInternal(
      id,
      [candidate = std::move(candidate)](QuerySession& session) {
        session.Revise(candidate);
      },
      JobKind::kRevise);
}

std::vector<PendingRound> SessionRouter::PendingRounds() {
  std::vector<PendingRound> rounds;
  MutexLock poll_lock(&poll_mutex_);
  // Fold the freshly announced batch into the retained set. Never takes
  // mutex_: the batch pop is one atomic exchange and the filter below
  // reads only per-session atomics.
  for (AnnouncementNode* node = announced_rounds_.PopAll(); node != nullptr;) {
    AnnouncementNode* next = node->next;
    live_announcements_.emplace_back(node);
    node = next;
  }
  // A node is reported while its id is the awaited one, freed once its id
  // retires (answered / corrected away / abandoned by Close), and kept
  // silently in the transient window a racy poll can see between a
  // resume's two atomic stores. Round ids are monotonic per session, so
  // the lower-bound test can never free a live round.
  size_t kept = 0;
  for (auto& node : live_announcements_) {
    const SessionState* state = node->value.state;
    const int64_t id = node->value.round.round_id;
    if (id <= state->retired_round.load(std::memory_order_acquire)) {
      continue;  // dead — drop the node
    }
    if (state->awaiting_round.load(std::memory_order_acquire) == id) {
      rounds.push_back(node->value.round);
    }
    live_announcements_[kept++] = std::move(node);
  }
  live_announcements_.resize(kept);
  std::sort(rounds.begin(), rounds.end(),
            [](const PendingRound& a, const PendingRound& b) {
              return a.session_id < b.session_id;
            });
  return rounds;
}

ProvideOutcome SessionRouter::ProvideAnswers(SessionId id, int64_t round_id,
                                             BitSpan answers) {
  return ProvideAnswersInternal(id, round_id, answers, nullptr);
}

ProvideOutcome SessionRouter::ProvideAnswers(SessionId id, int64_t round_id,
                                             BitSpan answers,
                                             CommitHook commit) {
  return ProvideAnswersInternal(id, round_id, answers, &commit);
}

ProvideOutcome SessionRouter::ProvideAnswersInternal(SessionId id,
                                                     int64_t round_id,
                                                     BitSpan answers,
                                                     CommitHook* commit) {
  SessionState* state = nullptr;
  {
    MutexLock lock(&mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return ProvideOutcome::kUnknownSession;
    state = it->second.get();
    if (state->closed) return ProvideOutcome::kSessionClosed;
    if (!state->awaiting) return ProvideOutcome::kNotAwaiting;
    PendingRound& round = *state->pending_round;
    if (round_id != round.round_id) return ProvideOutcome::kStaleRound;
    if (answers.size() != round.questions.size()) {
      return ProvideOutcome::kAnswerCountMismatch;
    }
    // Validations passed — the write-ahead barrier runs here, under the
    // lock, so the logged record and the fold it authorizes are one
    // atomic step as seen by every other router call. A veto leaves the
    // session exactly as it was (the round stays pending, the same call
    // can be retried once the log is healthy). The PR 9 sharding
    // invariant — a DurableRouter commit hook runs under exactly one
    // shard's mutex — is what lets the hook append to this shard's WAL
    // without cross-shard ordering concerns; the rank checker enforces it
    // (a hook reaching into a second shard dies on the same-rank check).
    if (commit != nullptr) {
      LockRankChecker::AssertHeldCountAtRank(LockRank::kRouterShard, 1,
                                             "a DurableRouter commit hook");
      if (!(*commit)()) {
        return ProvideOutcome::kLogWriteFailed;
      }
    }
    // Accepted: fold the answered round into the user-boundary transcript
    // and make the session runnable again.
    if (state->fiber != nullptr) {
      // Stage the bits for the parked continuation: the runner hands them
      // to the suspended wait-site before switching back in.
      state->staged_answers.assign(answers.size(), false);
      for (size_t i = 0; i < answers.size(); ++i) {
        state->staged_answers[i] = answers.Get(i);
      }
    }
    for (size_t i = 0; i < round.questions.size(); ++i) {
      state->answered_entries.push_back(TranscriptEntry{
          std::move(round.questions[i]), answers.Get(i), round.round_id});
    }
    ++state->answered_rounds;
    // Retire the round for the lock-free poll: its announcement node is
    // dead (freed on the next PendingRounds), and no round is awaited
    // until the next suspension. Order matters for racy readers — retire
    // first, then clear, so a node is never both unreported and unfreed.
    state->retired_round.store(round_id, std::memory_order_release);
    state->awaiting_round.store(-1, std::memory_order_release);
    state->pending_round.reset();
    state->awaiting = false;
    runnable_jobs_ += static_cast<int64_t>(state->job_log.size() -
                                           state->jobs_completed);
    state->running = true;
  }
  exec_->Post([this, state] { RunPendingSession(state); });
  return ProvideOutcome::kResumed;
}

ProvideOutcome SessionRouter::CorrectAnswer(SessionId id, size_t entry_index) {
  SessionState* state = nullptr;
  {
    MutexLock lock(&mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return ProvideOutcome::kUnknownSession;
    state = it->second.get();
    if (state->closed) return ProvideOutcome::kSessionClosed;
    if (!state->awaiting) return ProvideOutcome::kNotAwaiting;
    if (entry_index >= state->answered_entries.size()) {
      return ProvideOutcome::kAnswerCountMismatch;
    }
    // Flip the recorded answer and discard everything after it: the later
    // entries answered a question stream computed from the bad answer.
    // The surviving prefix re-aligns on the restart (questions up to the
    // flipped entry depend only on the unchanged answers before it), so
    // the user re-answers nothing they already answered correctly.
    state->answered_entries[entry_index].response =
        !state->answered_entries[entry_index].response;
    state->answered_entries.resize(entry_index + 1);
    // The parked snapshot and job cursor describe a run over the old
    // answers; restart the whole job log through the ordinary resume path
    // (a full-prefix replay attempt, whatever the resume mode). The
    // abandoned round's id is retired — answered_rounds advances past it —
    // so the restarted session's next round gets a fresh id and a stale
    // ProvideAnswers against the abandoned round reports kStaleRound,
    // never folds old answers into the new question stream.
    ++state->answered_rounds;
    state->snapshot = SessionSnapshot();
    state->snapshot_bytes = 0;
    state->entries_cursor = 0;
    state->pipeline_live = false;
    state->jobs_completed = 0;
    // A parked continuation was built over the old answer; mark it for the
    // runner to unwind before the restart attempt (the unwind runs learner
    // destructors, so it happens on a lane, never under this lock).
    state->fiber_cancel = state->fiber != nullptr;
    state->staged_answers.clear();
    // Retire the abandoned round for the lock-free poll (ids stay
    // monotonic, so the restarted session's next round compares higher).
    state->retired_round.store(state->pending_round->round_id,
                               std::memory_order_release);
    state->awaiting_round.store(-1, std::memory_order_release);
    state->pending_round.reset();
    state->awaiting = false;
    runnable_jobs_ += static_cast<int64_t>(state->job_log.size());
    state->running = true;
    ++corrections_;
  }
  exec_->Post([this, state] { RunPendingSession(state); });
  return ProvideOutcome::kResumed;
}

std::optional<PendingRound> SessionRouter::pending_round(SessionId id) {
  MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  const SessionState* state = it->second.get();
  if (!state->awaiting) return std::nullopt;
  return state->pending_round;
}

bool SessionRouter::Close(SessionId id) {
  MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  SessionState* state = it->second.get();
  if (state->closed) return false;
  state->closed = true;
  if (state->awaiting) {
    // The user will never answer; abandon the round. The session's
    // uncompleted jobs were uncounted at suspension, so nothing waits.
    state->retired_round.store(state->pending_round->round_id,
                               std::memory_order_release);
    state->awaiting_round.store(-1, std::memory_order_release);
    state->pending_round.reset();
    state->awaiting = false;
  }
  return true;
}

std::optional<SessionStatus> SessionRouter::status(SessionId id) {
  MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  const SessionState* state = it->second.get();
  if (state->awaiting) return SessionStatus::kAwaitingUser;
  if (state->running || !state->queue.empty()) return SessionStatus::kRunning;
  return SessionStatus::kIdle;
}

int64_t SessionRouter::suspensions(SessionId id) {
  MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? -1 : it->second->suspensions;
}

void SessionRouter::Drain() {
  MutexLock lock(&mutex_);
  // Explicit predicate loop (not a wait(pred) lambda) so the guarded read
  // of runnable_jobs_ happens in a scope thread-safety analysis can see
  // holds mutex_.
  while (runnable_jobs_ != 0) {
    idle_cv_.Wait(&mutex_);
  }
}

QuerySession& SessionRouter::session(SessionId id) {
  MutexLock lock(&mutex_);
  return *FindSession(id)->session;
}

ServiceStats SessionRouter::stats() {
  MutexLock lock(&mutex_);
  QHORN_CHECK_MSG(runnable_jobs_ == 0, "stats() requires an idle router");
  ServiceStats stats;
  stats.sessions = static_cast<int64_t>(sessions_.size());
  stats.jobs = jobs_done_;
  stats.learns = learns_;
  stats.verifies = verifies_;
  stats.revisions = revisions_;
  stats.suspensions = suspensions_;
  stats.corrections = corrections_;
  for (const auto& [id, state] : sessions_) {
    const OracleStats& os = state->session->oracle_stats();
    stats.questions += os.questions;
    stats.batched_questions += os.batched_questions;
    stats.rounds += state->session->rounds();
    stats.cache_hits += state->session->cache_hits();
    stats.replayed_questions += state->session->user_questions_replayed();
    if (state->awaiting) {
      ++stats.awaiting_sessions;
      stats.snapshot_bytes += static_cast<int64_t>(state->snapshot_bytes);
    }
  }
  stats.compiled_hits = cache_->hits();
  stats.compiled_misses = cache_->misses();
  return stats;
}

}  // namespace qhorn
