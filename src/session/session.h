// QuerySession — the high-level entry point a query interface embeds.
//
// It wires the pieces the paper's DataPlay front-end needs around a single
// user-facing oracle: question caching (never ask the same object twice),
// question counting, a full response history with correction-and-replay
// (§5), learning (§3), verification (§4) and revision (§6). The embedding
// UI implements MembershipOracle (pose the object to the user, return
// their label); everything else is this class.

#ifndef QHORN_SESSION_SESSION_H_
#define QHORN_SESSION_SESSION_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/learn/revision.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/pipeline.h"
#include "src/oracle/transcript.h"
#include "src/verify/verifier.h"

namespace qhorn {

/// One user's query-specification session over n propositions.
class QuerySession {
 public:
  struct Options {
    RpLearnerOptions learner;
    /// Deduplicate identical questions before they reach the user.
    bool cache_questions = true;
  };

  /// `user` must outlive the session.
  QuerySession(int n, MembershipOracle* user);
  QuerySession(int n, MembershipOracle* user, Options options);

  int n() const { return n_; }

  /// Learns the user's query from membership questions (§3.2). The result
  /// is also retained as the session's current query.
  const Query& Learn();

  /// Verifies a user-authored query with the O(k) verification set (§4).
  /// On acceptance it becomes the session's current query.
  VerificationReport Verify(const Query& candidate);

  /// Revises a close-but-wrong query (§6); the result becomes current.
  RevisionResult Revise(const Query& candidate);

  /// The session's current query, if any phase has produced one.
  const std::optional<Query>& current_query() const { return current_; }

  /// Full question/answer history (in the order the user saw them).
  const std::vector<TranscriptEntry>& history() const {
    return transcript_->entries();
  }

  /// The §5 workflow: the user flips their answer to history entry
  /// `index`; learning restarts from that point, replaying the unchanged
  /// prefix so the user only answers genuinely new questions.
  ///
  /// Not supported on pending-round continuation sessions (aborts with a
  /// diagnostic): a correction invalidates the suffix of the answered
  /// user rounds the resume protocol replays, so the question stream and
  /// the stored answer prefix can never re-align — the session would
  /// re-suspend on the same question forever. Close the session and
  /// re-learn with the corrected answer instead.
  ///
  /// Invariant: the refusal is an always-on QHORN_CHECK evaluated before
  /// any session state is touched, so it holds in *every* continuation
  /// state — including a session parked in kAwaitingUser, whose pipeline
  /// is mid-replay and must not be read or rebuilt. The failure mode is a
  /// loud abort, never undefined behaviour on the partial transcript.
  /// (Pinned by ContinuationEdgeTest.CorrectAndRelearnIsRefusedWhileAwaitingUser.)
  const Query& CorrectAndRelearn(size_t index);

  /// Pending-round continuation support (SessionRouter): rebuilds the
  /// whole middleware chain from scratch with `user_prefix` replayed
  /// *at the user boundary* — a ReplayOracle directly above the user
  /// backend, below cache and counting — and forgets the current query.
  ///
  /// This is the re-entry point of the suspend/resume protocol: jobs are
  /// deterministic functions of the user's answers, so re-running them
  /// over fresh decorators with the answered rounds replayed reproduces
  /// the exact state a synchronous run would have reached — transcript,
  /// question counts and cache traffic included — without asking the user
  /// anything twice. (Contrast CorrectAndRelearn, whose replay sits above
  /// the cache precisely so re-asked questions are *not* re-counted.)
  void ResetWithUserReplay(std::vector<TranscriptEntry> user_prefix);

  /// Questions that actually reached the user (cache misses).
  int64_t questions_asked() const { return counting_->stats().questions; }

  /// Full per-question statistics at the user boundary, including how many
  /// questions arrived inside batched rounds.
  const OracleStats& oracle_stats() const { return counting_->stats(); }

  /// Oracle rounds the session issued (a batch counts once): the number of
  /// user interactions, as opposed to the number of questions. Learners
  /// emit whole lattice levels / head sweeps per round, so this is much
  /// smaller than the question count.
  int64_t rounds() const { return transcript_->rounds(); }

  /// Cache traffic: identical questions served without re-asking the user.
  int64_t cache_hits() const { return cache_ ? cache_->hits() : 0; }

 private:
  /// (Re)builds the middleware chain over the user backend, outermost
  /// first: transcript → [replay] → cache → counting → [user replay] →
  /// user. A non-empty `replay_prefix` inserts a ReplayOracle between the
  /// cache and the transcript for the §5 correction workflow (served
  /// questions are not re-counted); a non-empty `user_prefix` inserts one
  /// directly above the user for continuation re-entry (served questions
  /// pass through every decorator, exactly as when first asked).
  void BuildPipeline(std::vector<TranscriptEntry> replay_prefix,
                     std::vector<TranscriptEntry> user_prefix);

  int n_;
  MembershipOracle* user_;
  Options options_;
  bool continuation_mode_ = false;  // ResetWithUserReplay has been used
  // Owning middleware chain; the typed pointers below alias its stages.
  OraclePipeline pipeline_;
  CountingOracle* counting_ = nullptr;
  CachingOracle* cache_ = nullptr;
  TranscriptOracle* transcript_ = nullptr;
  MembershipOracle* top_ = nullptr;
  std::optional<Query> current_;
};

}  // namespace qhorn

#endif  // QHORN_SESSION_SESSION_H_
