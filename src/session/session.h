// QuerySession — the high-level entry point a query interface embeds.
//
// It wires the pieces the paper's DataPlay front-end needs around a single
// user-facing oracle: question caching (never ask the same object twice),
// question counting, a full response history with correction-and-replay
// (§5), learning (§3), verification (§4) and revision (§6). The embedding
// UI implements MembershipOracle (pose the object to the user, return
// their label); everything else is this class.

#ifndef QHORN_SESSION_SESSION_H_
#define QHORN_SESSION_SESSION_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "src/learn/revision.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/pipeline.h"
#include "src/oracle/transcript.h"
#include "src/verify/verifier.h"

namespace qhorn {

/// Copyable decorator state captured at a `JobSuspended` boundary, so a
/// resume can restore the pipeline instead of replaying the whole answered
/// prefix (SessionRouter's snapshot resume mode).
///
/// The snapshot is deliberately *two* slices. The transcript and current
/// query are the **job-boundary** slice: the suspended job re-runs from its
/// start on resume and re-records its own question prefix (with identical
/// round ids — round ids are consumed per completed round), so the history
/// must rewind to where the job began. The cache and counting stats are the
/// **pre-round** slice, exactly as they stood when the unanswered round
/// unwound: the re-walk's questions are all served by the restored cache,
/// so no question reaches the user boundary twice and the counters end the
/// re-walk precisely at their captured values (`replay_hits` corrects the
/// hit counter for the re-walk's extra cache probes).
struct SessionSnapshot {
  // Job-boundary slice.
  std::vector<TranscriptEntry> transcript;
  int64_t transcript_rounds = 0;
  std::optional<Query> current;
  // Pre-round slice.
  CachingOracle::CacheMap cache;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  OracleStats counting;
  /// Questions the suspended job had asked since its start (the re-walk
  /// depth); each re-walked question is one extra cache hit to discount.
  int64_t replay_hits = 0;
  bool valid = false;

  /// Estimated resident size of the snapshot — the bytes a parked session
  /// holds while awaiting the user (the memory the snapshot trades for the
  /// retired replay compute). Counts the tuple storage of every recorded
  /// question plus container-node overhead; an estimate, not an allocator
  /// audit.
  size_t MemoryBytes() const;
};

/// One user's query-specification session over n propositions.
class QuerySession {
 public:
  struct Options {
    RpLearnerOptions learner;
    /// Deduplicate identical questions before they reach the user.
    bool cache_questions = true;
  };

  /// `user` must outlive the session.
  QuerySession(int n, MembershipOracle* user);
  QuerySession(int n, MembershipOracle* user, Options options);

  int n() const { return n_; }

  /// Learns the user's query from membership questions (§3.2). The result
  /// is also retained as the session's current query.
  const Query& Learn();

  /// Verifies a user-authored query with the O(k) verification set (§4).
  /// On acceptance it becomes the session's current query.
  VerificationReport Verify(const Query& candidate);

  /// Revises a close-but-wrong query (§6); the result becomes current.
  RevisionResult Revise(const Query& candidate);

  /// The session's current query, if any phase has produced one.
  const std::optional<Query>& current_query() const { return current_; }

  /// Full question/answer history (in the order the user saw them).
  const std::vector<TranscriptEntry>& history() const {
    return transcript_->entries();
  }

  /// The §5 workflow: the user flips their answer to history entry
  /// `index`; learning restarts from that point, replaying the unchanged
  /// prefix so the user only answers genuinely new questions.
  ///
  /// Not supported on pending-round continuation sessions (aborts with a
  /// diagnostic): this entry point relearns *synchronously inside the
  /// call*, so on a pending backend the relearn would immediately suspend
  /// and unwind out of the correction with the session half-rebuilt. The
  /// router owns the suspend/resume protocol, so mid-suspension corrections
  /// go through `SessionRouter::CorrectAnswer` instead — it truncates the
  /// stored answers at the flipped entry and restarts the job log through
  /// the ordinary resume path, which is allowed to suspend. The invariant
  /// that made the old blanket refusal load-bearing (never touch a
  /// mid-replay pipeline) still holds here: the refusal is an always-on
  /// QHORN_CHECK evaluated before any session state is touched. (Pinned by
  /// ContinuationEdgeTest.CorrectAndRelearnIsRefusedInContinuationMode.)
  const Query& CorrectAndRelearn(size_t index);

  /// Pending-round continuation support (SessionRouter): rebuilds the
  /// whole middleware chain from scratch with `user_prefix` replayed
  /// *at the user boundary* — a ReplayOracle directly above the user
  /// backend, below cache and counting — and forgets the current query.
  ///
  /// This is the re-entry point of the suspend/resume protocol: jobs are
  /// deterministic functions of the user's answers, so re-running them
  /// over fresh decorators with the answered rounds replayed reproduces
  /// the exact state a synchronous run would have reached — transcript,
  /// question counts and cache traffic included — without asking the user
  /// anything twice. (Contrast CorrectAndRelearn, whose replay sits above
  /// the cache precisely so re-asked questions are *not* re-counted.)
  void ResetWithUserReplay(std::vector<TranscriptEntry> user_prefix);

  /// Records the job boundary the next snapshot will rewind the transcript
  /// to. The router calls this after every completed job (and the restore
  /// path re-marks it): a later suspension re-runs the *current* job from
  /// its start, so the snapshot's transcript slice must stop where that job
  /// began.
  void MarkJobBoundary();

  /// Captures the suspended session's state at the `JobSuspended` boundary.
  /// Requires question caching (the restored attempt's re-walk is served
  /// entirely from the captured cache; SessionRouter forces replay resume
  /// when the cache is disabled). The decorators roll themselves back on
  /// suspension, so the captured counters are exactly the last completed
  /// round's — the same values a synchronous run would show there.
  SessionSnapshot CapturePreRound() const;

  /// Restores a captured snapshot and arms a ReplayOracle at the user
  /// boundary with only the newly answered rounds (`user_suffix`) — the
  /// O(1)-per-round half of the resume protocol: completed jobs are never
  /// re-run (the router's job cursor skips them), and the suspended job's
  /// re-walk is answered by the restored cache without a single question
  /// reaching the user boundary again.
  void RestoreSnapshot(const SessionSnapshot& snap,
                       std::vector<TranscriptEntry> user_suffix);

  /// Cumulative questions served by user-boundary replay stages across
  /// every resume attempt of this session's lifetime. Under snapshot
  /// resume each answered question is replayed exactly once (O(rounds)
  /// total); under full-prefix replay resume the whole answered prefix is
  /// replayed per resume (O(rounds²) total). The resume-depth stress test
  /// asserts exactly this split.
  int64_t user_questions_replayed() const {
    return user_replayed_total_ + (user_replay_ ? user_replay_->replayed() : 0);
  }

  /// Questions that actually reached the user (cache misses).
  int64_t questions_asked() const { return counting_->stats().questions; }

  /// Full per-question statistics at the user boundary, including how many
  /// questions arrived inside batched rounds.
  const OracleStats& oracle_stats() const { return counting_->stats(); }

  /// Oracle rounds the session issued (a batch counts once): the number of
  /// user interactions, as opposed to the number of questions. Learners
  /// emit whole lattice levels / head sweeps per round, so this is much
  /// smaller than the question count.
  int64_t rounds() const { return transcript_->rounds(); }

  /// Cache traffic: identical questions served without re-asking the user.
  int64_t cache_hits() const { return cache_ ? cache_->hits() : 0; }

 private:
  /// (Re)builds the middleware chain over the user backend, outermost
  /// first: transcript → [replay] → cache → counting → [user replay] →
  /// user. A non-empty `replay_prefix` inserts a ReplayOracle between the
  /// cache and the transcript for the §5 correction workflow (served
  /// questions are not re-counted); a non-empty `user_prefix` inserts one
  /// directly above the user for continuation re-entry (served questions
  /// pass through every decorator, exactly as when first asked).
  void BuildPipeline(std::vector<TranscriptEntry> replay_prefix,
                     std::vector<TranscriptEntry> user_prefix);

  int n_;
  MembershipOracle* user_;
  Options options_;
  bool continuation_mode_ = false;  // ResetWithUserReplay has been used
  // Owning middleware chain; the typed pointers below alias its stages.
  OraclePipeline pipeline_;
  CountingOracle* counting_ = nullptr;
  CachingOracle* cache_ = nullptr;
  TranscriptOracle* transcript_ = nullptr;
  ReplayOracle* user_replay_ = nullptr;  // user-boundary stage, if armed
  MembershipOracle* top_ = nullptr;
  std::optional<Query> current_;
  // Replayed-question count harvested from retired user-boundary replay
  // stages (each pipeline rebuild discards the live stage).
  int64_t user_replayed_total_ = 0;
  // Job-boundary markers for CapturePreRound (see MarkJobBoundary).
  size_t boundary_entries_ = 0;
  int64_t boundary_rounds_ = 0;
  std::optional<Query> boundary_current_;
};

}  // namespace qhorn

#endif  // QHORN_SESSION_SESSION_H_
