// SessionRouter — the multi-session service layer over QuerySession.
//
// The paper's workflow is one interactive user per learner; the service
// target is heavy traffic from many concurrent users. The router owns the
// executor and multiplexes N live sessions across it:
//
//   * Each session keeps its own oracle pipeline (transcript → cache →
//     counting → user backend), so per-user state never crosses threads.
//   * Jobs against one session run strictly in submission order, one at a
//     time (QuerySession is not thread-safe and the learning protocol is
//     inherently sequential per user); jobs of different sessions run in
//     parallel on the executor's workers.
//   * Simulated users opened through OpenSimulated share compiled queries
//     via a cache keyed by canonical form (Proposition 4.1: equal forms ⇒
//     identical answers), so a thousand sessions against a hundred target
//     queries compile each query once — and their AsyncOracle backends
//     additionally shard large rounds across the same executor.
//
// Determinism contract: a session's observable history depends only on its
// own job sequence, never on scheduling — per-session transcripts are
// bit-identical to a single-threaded replay of the same jobs
// (tests/service_router_test.cc stresses this with 8–64 sessions).
//
// An embedding server plugs a real user in by implementing
// MembershipOracle (pose the round to the user, return their labels) and
// passing it to Open(); everything else is unchanged.

#ifndef QHORN_SESSION_ROUTER_H_
#define QHORN_SESSION_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/core/normalize.h"
#include "src/oracle/pipeline.h"
#include "src/session/session.h"
#include "src/util/executor.h"

namespace qhorn {

/// Shared compiled-query store. Keyed by (canonical form, guarantee mode):
/// equal keys evaluate identically object for object, so sessions sharing
/// an entry are indistinguishable from sessions compiling their own.
/// Thread-safe; the returned compiled forms are immutable.
class CompiledQueryCache {
 public:
  std::shared_ptr<const CompiledQuery> Get(const Query& query,
                                           const EvalOptions& opts);

  int64_t hits() const;
  int64_t misses() const;

 private:
  struct Key {
    CanonicalForm form;
    bool require_guarantees = false;

    friend bool operator==(const Key& a, const Key& b) {
      return a.require_guarantees == b.require_guarantees && a.form == b.form;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return k.form.Hash() ^ (k.require_guarantees ? 0x9e3779b97f4a7c15ULL : 0);
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const CompiledQuery>, KeyHash>
      cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// Aggregate service counters across every session the router has hosted.
struct ServiceStats {
  int64_t sessions = 0;        ///< sessions opened
  int64_t jobs = 0;            ///< jobs completed
  int64_t learns = 0;          ///< SubmitLearn jobs completed
  int64_t verifies = 0;        ///< SubmitVerify jobs completed
  int64_t revisions = 0;       ///< SubmitRevise jobs completed
  int64_t questions = 0;       ///< questions that reached the users
  int64_t rounds = 0;          ///< user interactions (batch = one round)
  int64_t batched_questions = 0;  ///< questions inside batched rounds
  int64_t cache_hits = 0;      ///< per-session question-cache hits
  int64_t compiled_hits = 0;   ///< shared compiled-query cache hits
  int64_t compiled_misses = 0;  ///< … and misses (one compile each)
};

/// Multiplexes concurrent QuerySessions over a shared executor.
class SessionRouter {
 public:
  using SessionId = int64_t;
  /// A unit of session work, run on an executor lane with exclusive
  /// access to the session.
  using Job = std::function<void(QuerySession&)>;

  struct Options {
    /// Concurrent session lanes (worker threads running session jobs);
    /// ≤ 0 means Executor::DefaultConcurrency() (which honours
    /// QHORN_THREADS). 1 degrades to synchronous in-caller execution —
    /// the differential baseline. The router sizes its executor one lane
    /// wider than this, since the thread that submits jobs sleeps in
    /// Drain() rather than running them.
    int threads = 0;
    QuerySession::Options session;
  };

  SessionRouter();
  explicit SessionRouter(Options options);
  /// Drains outstanding jobs before shutting the executor down.
  ~SessionRouter();

  SessionRouter(const SessionRouter&) = delete;
  SessionRouter& operator=(const SessionRouter&) = delete;

  /// Opens a session over a caller-owned user oracle. The oracle must
  /// outlive the router and is used only from this session's jobs (one at
  /// a time), so it need not be thread-safe — but it must not be shared
  /// with another session.
  SessionId Open(int n, MembershipOracle* user);

  /// Opens a session against a simulated user holding `intended`: the
  /// compiled form comes from the shared cache and rounds are sharded
  /// across the router's executor (AsyncOracle backend). The router owns
  /// the backend.
  SessionId OpenSimulated(const Query& intended,
                          EvalOptions opts = EvalOptions());

  /// Enqueues a job for the session. Jobs of one session run in
  /// submission order; jobs of different sessions run concurrently.
  void Submit(SessionId id, Job job);

  /// Typed conveniences (counted in ServiceStats).
  void SubmitLearn(SessionId id);
  void SubmitVerify(SessionId id, Query candidate);
  void SubmitRevise(SessionId id, Query candidate);

  /// Blocks until every submitted job has completed.
  void Drain();

  /// The session, for inspection between jobs. The caller must ensure the
  /// session is idle (e.g. after Drain); the router does not lock it.
  QuerySession& session(SessionId id);

  /// Aggregate counters. Sessions must be idle (call after Drain).
  ServiceStats stats();

  Executor* executor() { return executor_.get(); }
  CompiledQueryCache& compiled_cache() { return compiled_cache_; }

 private:
  struct SessionState {
    std::unique_ptr<QuerySession> session;
    std::unique_ptr<MembershipOracle> owned_backend;  // OpenSimulated only
    std::deque<Job> queue;
    bool running = false;  // a runner task currently owns this session
  };

  SessionId OpenInternal(int n, MembershipOracle* user,
                         std::unique_ptr<MembershipOracle> owned_backend);
  /// Executor task: runs the session's queued jobs until the queue is
  /// empty, then releases ownership.
  void RunSession(SessionState* state);
  SessionState* FindSession(SessionId id);

  Options options_;
  std::unique_ptr<Executor> executor_;
  CompiledQueryCache compiled_cache_;

  std::mutex mutex_;  // guards sessions_ map shape and per-session queues
  std::condition_variable idle_cv_;
  std::unordered_map<SessionId, std::unique_ptr<SessionState>> sessions_;
  SessionId next_id_ = 1;
  int64_t active_jobs_ = 0;  // queued + running
  // Counters bumped at job completion (stats() folds in session counters).
  int64_t jobs_done_ = 0;
  int64_t learns_ = 0;
  int64_t verifies_ = 0;
  int64_t revisions_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_SESSION_ROUTER_H_
