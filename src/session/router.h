// SessionRouter — the multi-session service layer over QuerySession.
//
// The paper's workflow is one interactive user per learner; the service
// target is heavy traffic from many concurrent users. The router owns the
// executor and multiplexes N live sessions across it:
//
//   * Each session keeps its own oracle pipeline (transcript → cache →
//     counting → user backend), so per-user state never crosses threads.
//   * Jobs against one session run strictly in submission order, one at a
//     time (QuerySession is not thread-safe and the learning protocol is
//     inherently sequential per user); jobs of different sessions run in
//     parallel on the executor's workers.
//   * Simulated users opened through OpenSimulated share compiled queries
//     via a cache keyed by canonical form (Proposition 4.1: equal forms ⇒
//     identical answers), so a thousand sessions against a hundred target
//     queries compile each query once — and their AsyncOracle backends
//     additionally shard large rounds across the same executor.
//
// Pending-round continuations (OpenPending): a *real* user answers with
// seconds-to-minutes latency, so a session blocked on one must not pin a
// lane. Sessions opened with OpenPending run over a PendingOracle backend:
// the first round that needs the user records a PendingRound and unwinds
// the job (JobSuspended, src/util/suspend.h) — the lane is released the
// moment the unwind reaches the runner, so 256 sessions all blocked on
// users occupy zero threads. The embedding server polls PendingRounds()
// (or renders them as they appear), collects the user's labels, and calls
// ProvideAnswers(id, round_id, answers); the router then resumes the
// session's jobs. How it resumes is the ResumeMode:
//
//   * kFiber (default): the job runs on a Fiber (src/util/fiber.h) and a
//     suspension *parks* instead of unwinding — the whole call stack stays
//     alive on its own mmap'd stack and the lane is released by a context
//     switch. A resume stages the answered round's bits and switches back
//     into the exact frame that asked: O(1) compute per resume, O(rounds)
//     per session, nothing re-run and nothing replayed. The memory traded
//     for that compute is the parked stack (reported as the session's
//     snapshot_bytes while it awaits). Corrections and crash recovery
//     cannot resume a parked stack built over the old answers, so they
//     unwind it (cancel + one last resume) and restart through the
//     full-prefix replay attempt below.
//   * kSnapshot: suspension captured a SessionSnapshot — the
//     copyable decorator state (transcript at the job boundary, cache and
//     counters at the pre-round boundary) — so the resume restores the
//     snapshot, arms a ReplayOracle with *only the newly answered round*,
//     and re-runs just the suspended job; its question prefix is served
//     entirely by the restored cache, so each answered question crosses
//     the user boundary exactly once over the session's whole lifetime
//     (O(rounds) total replay, though the re-walk itself is O(prefix)
//     compute per resume). Completed jobs are never re-run: the job
//     cursor skips them, and a snapshot trades bytes for that compute
//     (ServiceStats.snapshot_bytes; the state is dominated by the
//     transcript + cache, i.e. by questions actually asked). The
//     memory-lean fallback when parked stacks are too dear.
//   * kReplay: the original full-prefix protocol — rebuild fresh
//     decorators, replay *every* answered round at the user boundary and
//     re-run the job log from the start, O(prefix) per resume and
//     O(rounds²) per session. Kept alive as the differential oracle: all
//     three modes are bit-identical in every observable (the workload fuzz
//     and durable crash suites assert fingerprint equality across modes),
//     and replay needs no question cache (snapshot mode requires it — with
//     cache_questions off a kSnapshot request degrades to kReplay; kFiber
//     never re-walks, so it has no cache dependency).
//
// Learners are deterministic functions of the transcript, so either resume
// reaches the next live round without asking anything twice.
//
// Determinism contract (unchanged by continuations): a session's
// observable history depends only on its own job sequence and answer
// sequence, never on scheduling or on how often it suspended — after the
// final resume, per-session transcripts, statistics and learned queries
// are bit-identical to a fully synchronous single-threaded run of the
// same jobs over the same answers (tests/service_router_test.cc and
// tests/continuation_stress_test.cc stress this with up to 256 sessions).
//
// An embedding server has two ways to plug a real user in: synchronously,
// by implementing MembershipOracle (pose the round, block for the labels)
// and passing it to Open(); or asynchronously via OpenPending and the
// PendingRounds()/ProvideAnswers protocol above — the only choice that
// scales past one blocked thread per waiting user.

#ifndef QHORN_SESSION_ROUTER_H_
#define QHORN_SESSION_ROUTER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/normalize.h"
#include "src/oracle/pending.h"
#include "src/oracle/pipeline.h"
#include "src/session/session.h"
#include "src/util/checked_mutex.h"
#include "src/util/executor.h"
#include "src/util/fiber.h"
#include "src/util/function_ref.h"
#include "src/util/mpsc.h"

namespace qhorn {

/// Shared compiled-query store. Keyed by (canonical form, guarantee mode):
/// equal keys evaluate identically object for object, so sessions sharing
/// an entry are indistinguishable from sessions compiling their own.
/// Thread-safe; the returned compiled forms are immutable.
///
/// Striped read-mostly layout: the key hash picks one of kStripes
/// independent (shared_mutex, map) pairs, so a hit takes only a shared
/// lock on 1/kStripes of the keyspace — concurrent hits on different
/// stripes never touch the same cache line, concurrent hits on the same
/// stripe share the reader lock, and only a first-time compile of a key
/// briefly writes its own stripe. Sessions across every router shard
/// share one instance (a query compiled once is compiled once service-
/// wide); the hit/miss counters are relaxed atomics folded on read.
class CompiledQueryCache {
 public:
  std::shared_ptr<const CompiledQuery> Get(const Query& query,
                                           const EvalOptions& opts);

  int64_t hits() const;
  int64_t misses() const;

 private:
  struct Key {
    CanonicalForm form;
    bool require_guarantees = false;

    friend bool operator==(const Key& a, const Key& b) {
      return a.require_guarantees == b.require_guarantees && a.form == b.form;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return k.form.Hash() ^ (k.require_guarantees ? 0x9e3779b97f4a7c15ULL : 0);
    }
  };

  static constexpr size_t kStripes = 16;  // power of two; see StripeFor

  struct alignas(64) Stripe {
    // A stripe is a leaf lock (LockRank::kCacheStripe): compiles happen
    // outside it, so nothing is ever acquired while it is held.
    mutable SharedMutex mutex{"cache-stripe", LockRank::kCacheStripe};
    std::unordered_map<Key, std::shared_ptr<const CompiledQuery>, KeyHash> map
        QHORN_GUARDED_BY(mutex);
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
  };

  /// Remix the (already cached) key hash and take the top bits: the map
  /// inside the stripe consumes the low bits, so stripe choice and bucket
  /// choice stay independent.
  Stripe& StripeFor(size_t hash) {
    static_assert(kStripes == 16, "the >> 60 below selects log2(16) bits");
    return stripes_[(hash * 0x9e3779b97f4a7c15ULL) >> 60];
  }

  std::array<Stripe, kStripes> stripes_;
};

/// Aggregate service counters across every session the router has hosted.
struct ServiceStats {
  int64_t sessions = 0;        ///< sessions opened
  int64_t jobs = 0;            ///< jobs completed
  int64_t learns = 0;          ///< SubmitLearn jobs completed
  int64_t verifies = 0;        ///< SubmitVerify jobs completed
  int64_t revisions = 0;       ///< SubmitRevise jobs completed
  int64_t questions = 0;       ///< questions that reached the users
  int64_t rounds = 0;          ///< user interactions (batch = one round)
  int64_t batched_questions = 0;  ///< questions inside batched rounds
  int64_t cache_hits = 0;      ///< per-session question-cache hits
  int64_t compiled_hits = 0;   ///< shared compiled-query cache hits
  int64_t compiled_misses = 0;  ///< … and misses (one compile each)
  int64_t suspensions = 0;     ///< pending rounds that yielded a lane
  int64_t awaiting_sessions = 0;  ///< sessions currently blocked on a user
  /// Questions served by user-boundary replay stages across all resume
  /// attempts. Fiber resume replays nothing (answers feed the parked
  /// frame directly); snapshot resume replays each answered question
  /// exactly once (== questions answered through the pending protocol);
  /// full-prefix replay resume re-serves the whole prefix per resume
  /// (quadratic). The resume-depth stress test gates on this split.
  int64_t replayed_questions = 0;
  /// Resident parked-resume bytes across sessions currently awaiting a
  /// user — the memory resume trades for the retired replay compute. In
  /// snapshot mode this is SessionSnapshot::MemoryBytes (transcript +
  /// cache); in fiber mode it is the parked stack's mapped size (lazily
  /// committed, so resident use is typically far smaller).
  int64_t snapshot_bytes = 0;
  int64_t corrections = 0;  ///< CorrectAnswer calls accepted
};

/// How a suspended pending session resumes after ProvideAnswers. See the
/// file comment; kDefault resolves to kFiber unless the QHORN_RESUME_MODE
/// environment variable says "snapshot" or "replay" (the differential
/// escape hatches).
enum class ResumeMode {
  kDefault,   ///< resolve from QHORN_RESUME_MODE, else kFiber
  kFiber,     ///< park the live call stack; O(1) switch back per resume
  kSnapshot,  ///< restore the suspension snapshot; replay only new rounds
  kReplay,    ///< rebuild from scratch; replay the full answered prefix
};

const char* ToString(ResumeMode m);

/// Where a session is in its lifecycle, as seen between router calls.
enum class SessionStatus {
  kIdle,         ///< no job queued or running
  kRunning,      ///< a job owns (or is queued for) an executor lane
  kAwaitingUser  ///< suspended on a pending round; occupies no lane
};

/// Result of a ProvideAnswers call. Anything but kResumed leaves the
/// session — pending round included — exactly as it was.
enum class ProvideOutcome {
  kResumed,              ///< answers accepted; the session is re-running
  kUnknownSession,       ///< no such session id
  kSessionClosed,        ///< session was closed
  kNotAwaiting,          ///< session has no pending round
  kStaleRound,           ///< round_id is not the currently pending round
  kAnswerCountMismatch,  ///< answers.size() != pending questions
  kLogWriteFailed,       ///< durable commit hook refused; nothing mutated
};

const char* ToString(ProvideOutcome o);

/// Multiplexes concurrent QuerySessions over a shared executor.
class SessionRouter {
 public:
  using SessionId = int64_t;
  /// A unit of session work, run on an executor lane with exclusive
  /// access to the session. For sessions opened with OpenPending, a job
  /// may be run *multiple times* (each resume replays the job sequence
  /// from the start), so raw Submit jobs on pending sessions must be
  /// idempotent in their external effects; the typed submits are.
  using Job = std::function<void(QuerySession&)>;

  struct Options {
    /// Concurrent session lanes (worker threads running session jobs);
    /// ≤ 0 means Executor::DefaultConcurrency() (which honours
    /// QHORN_THREADS). 1 degrades to synchronous in-caller execution —
    /// the differential baseline. The router sizes its executor one lane
    /// wider than this, since the thread that submits jobs sleeps in
    /// Drain() rather than running them. Ignored when `executor` is set.
    int threads = 0;
    QuerySession::Options session;
    /// Resume protocol for pending sessions. kDefault resolves from the
    /// QHORN_RESUME_MODE environment variable at construction ("replay" →
    /// kReplay, "snapshot" → kSnapshot, anything else → kFiber). Snapshot
    /// resume requires the question cache, so `session.cache_questions ==
    /// false` degrades a kSnapshot request to kReplay; fiber resume never
    /// re-walks a prefix and works either way.
    ResumeMode resume_mode = ResumeMode::kDefault;
    /// Borrowed executor (how ShardedRouter shares one pool across its
    /// shards). Non-null: the router posts to it instead of owning a pool,
    /// `threads` is ignored, and the *owner* must keep the executor alive
    /// — and joined — past this router's destruction (drain every sharing
    /// router, destroy the executor, then the routers; see
    /// ShardedRouter::~ShardedRouter for the canonical order).
    Executor* executor = nullptr;
    /// Borrowed compiled-query cache (shared across router shards so a
    /// query compiles once service-wide). Non-null: used instead of the
    /// router-owned cache; must outlive the router.
    CompiledQueryCache* compiled_cache = nullptr;
  };

  SessionRouter();
  explicit SessionRouter(Options options);
  /// Drains outstanding runnable jobs before shutting the executor down.
  /// Sessions still awaiting user answers are abandoned (their pending
  /// rounds die with the router).
  ~SessionRouter();

  SessionRouter(const SessionRouter&) = delete;
  SessionRouter& operator=(const SessionRouter&) = delete;

  /// Opens a session over a caller-owned user oracle. The oracle must
  /// outlive the router and is used only from this session's jobs (one at
  /// a time), so it need not be thread-safe — but it must not be shared
  /// with another session.
  SessionId Open(int n, MembershipOracle* user);

  /// Opens a session against a simulated user holding `intended`: the
  /// compiled form comes from the shared cache and rounds are sharded
  /// across the router's executor (AsyncOracle backend). The router owns
  /// the backend.
  SessionId OpenSimulated(const Query& intended,
                          EvalOptions opts = EvalOptions());

  /// Opens a session over a *pending* (real, asynchronous) user: every
  /// round suspends the job and surfaces through PendingRounds() until
  /// ProvideAnswers feeds the labels back. The router owns the backend.
  SessionId OpenPending(int n);

  /// Enqueues a job for the session. Jobs of one session run in
  /// submission order; jobs of different sessions run concurrently.
  /// Returns false — and enqueues nothing — for an unknown or closed
  /// session id.
  bool Submit(SessionId id, Job job);

  /// Typed conveniences (counted in ServiceStats).
  bool SubmitLearn(SessionId id);
  bool SubmitVerify(SessionId id, Query candidate);
  bool SubmitRevise(SessionId id, Query candidate);

  /// All rounds currently awaiting user answers, ordered by session id.
  /// The embedding server's poll: render each round's questions to its
  /// user, then call ProvideAnswers with the labels.
  ///
  /// Drained through a lock-free MPSC announcement queue: suspending
  /// runners publish their round with one atomic push, and the poll pops
  /// the batch and filters it against per-session atomics — it never takes
  /// the router mutex, so polling cannot stall (or be stalled by) opens,
  /// submits or resumes. After Drain() the result is exact; a poll racing
  /// live runners may transiently omit a round that is suspending or
  /// include one being answered right now (a stale reply then bounces off
  /// kStaleRound/kNotAwaiting, exactly like any hostile duplicate).
  std::vector<PendingRound> PendingRounds();

  /// Feeds a user's labels back into a suspended session. `round_id` must
  /// be the id carried by the session's current PendingRound and
  /// `answers.size()` must equal its question count; anything else is
  /// rejected without touching the session (the transcript cannot be
  /// corrupted by a stale or malformed reply). On kResumed the session's
  /// jobs re-run with the answered prefix replayed; answers are consumed
  /// by value, so the caller's storage is free immediately.
  ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                BitSpan answers);

  /// A durable wrapper's write-ahead barrier: invoked once, after every
  /// validation has passed and before any state mutates, while the call
  /// still holds the router lock (so no concurrent call can interleave
  /// between the hook and the fold). Return false to veto: the call
  /// reports kLogWriteFailed and the session — pending round included —
  /// is exactly as it was, so the caller may retry the identical call
  /// once its log is healthy again.
  using CommitHook = FunctionRef<bool()>;

  /// ProvideAnswers with a durable commit barrier (DurableRouter's path;
  /// the three-argument form commits unconditionally).
  ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                BitSpan answers, CommitHook commit);

  /// The §5 correction workflow for pending sessions: the user flips their
  /// recorded answer to `entry_index` (an index into the session's answered
  /// user-boundary transcript, in answer order). Only legal while the
  /// session is awaiting a round (kNotAwaiting otherwise — a running
  /// session's runner owns its state; an idle session has nothing to
  /// correct that Close + re-learn would not do better). The answered
  /// entries after the flipped one are discarded (they were answered to a
  /// question stream computed from the bad answer) and the job log restarts
  /// from job 0 through the ordinary resume path: the surviving prefix is
  /// replayed — those questions depend only on answers before the flip, so
  /// they re-align question for question — and the learner diverges exactly
  /// at the corrected entry, re-asking everything downstream fresh. The
  /// abandoned pending round's id is never reused (round ids stay
  /// monotonic), so a stale ProvideAnswers still reports kStaleRound.
  ///
  /// Out-of-range `entry_index` reports kAnswerCountMismatch. On kResumed
  /// the re-run recounts every re-completed job in ServiceStats.jobs (the
  /// counters count completions, not distinct jobs).
  ///
  /// This supersedes the old blanket refusal of mid-suspension corrections
  /// (QuerySession::CorrectAndRelearn still refuses in continuation mode —
  /// it relearns synchronously inside the call, which a pending backend
  /// would immediately suspend out of). Works in both resume modes; the
  /// restart attempt is a full-prefix replay even under kSnapshot (the
  /// correction invalidates the captured snapshot).
  ProvideOutcome CorrectAnswer(SessionId id, size_t entry_index);

  /// The resolved resume protocol this router runs (never kDefault).
  ResumeMode resume_mode() const { return resume_mode_; }

  /// The round the session is blocked on, if any — nullopt for unknown,
  /// closed, or not-awaiting sessions. A copy, so the recovery replay can
  /// match surfaced rounds against logged answers without racing the
  /// runner.
  std::optional<PendingRound> pending_round(SessionId id);

  /// Marks a session closed: subsequent Submit/ProvideAnswers are
  /// rejected. A pending round awaiting answers is abandoned; already
  /// queued jobs of a direct session still drain. Returns false for an
  /// unknown or already-closed id.
  bool Close(SessionId id);

  /// The session's lifecycle state, for the embedding server's dashboard
  /// (and the continuation tests). Like every id-taking protocol call,
  /// tolerant of garbage: nullopt for an unknown id.
  std::optional<SessionStatus> status(SessionId id);

  /// Times this session yielded its lane on a pending round so far;
  /// -1 for an unknown id.
  int64_t suspensions(SessionId id);

  /// Blocks until no session can make progress without more input: every
  /// session is idle or awaiting user answers. With pending sessions in
  /// play the idiom is a poll loop —
  ///   for (;;) { router.Drain();
  ///              auto rounds = router.PendingRounds();
  ///              if (rounds.empty()) break;
  ///              /* answer them */ }
  /// — which terminates once every session has run out of jobs.
  void Drain();

  /// The session, for inspection between jobs. The caller must ensure no
  /// job is running (e.g. after Drain); the router does not lock it. A
  /// session awaiting answers exposes its partially re-run state — only
  /// after its final job completes do its observables equal the
  /// synchronous run's.
  QuerySession& session(SessionId id);

  /// Aggregate counters. Requires no runnable job (call after Drain;
  /// sessions awaiting user answers are fine).
  ServiceStats stats();

  Executor* executor() { return exec_; }
  CompiledQueryCache& compiled_cache() { return *cache_; }

 private:
  enum class JobKind { kOther, kLearn, kVerify, kRevise };
  struct JobRecord {
    Job fn;
    JobKind kind = JobKind::kOther;
  };

  // Locking protocol: the map shape, queue, job log, counters and the
  // awaiting/running/closed flags are guarded by the router's mutex_.
  // The resume-state fields (answered_entries, snapshot, staged_answers,
  // fiber*) follow an ownership handoff instead: while `running` is true
  // they belong exclusively to the runner task and are read/written
  // without the lock — a protocol thread-safety analysis cannot express
  // (TSA has no "guarded by mutex_ OR owned by the runner"), and a
  // nested struct cannot name the enclosing router's mutex_ in a
  // QHORN_GUARDED_BY anyway. The per-field comments say which regime
  // each field is under; the cross-thread edges are TSan-covered by the
  // continuation stress suites.
  struct SessionState {
    std::unique_ptr<QuerySession> session;
    std::unique_ptr<MembershipOracle> owned_backend;  // OpenSimulated/Pending
    PendingOracle* pending_backend = nullptr;  // null for direct sessions
    // Direct sessions consume their queue; pending sessions keep the full
    // job log (resumes re-run it from the start) plus the completed count.
    std::deque<JobRecord> queue;
    std::vector<JobRecord> job_log;
    size_t jobs_completed = 0;
    // The user-boundary transcript: every answered round, flattened in
    // order, replayed below the decorators on each re-run. round field =
    // the pending-protocol round id the entry was answered in.
    std::vector<TranscriptEntry> answered_entries;
    int64_t answered_rounds = 0;
    std::optional<PendingRound> pending_round;  // set while awaiting
    // Snapshot-resume state. `snapshot` is captured at each suspension;
    // `entries_cursor` marks how much of answered_entries the snapshot has
    // already absorbed (the restore replays only the suffix beyond it).
    // `pipeline_live` records that the last attempt exited by *completing*
    // the job log, so the session's live pipeline is current and jobs
    // submitted later run directly on it — no restore, no replay.
    SessionSnapshot snapshot;
    size_t snapshot_bytes = 0;
    size_t entries_cursor = 0;
    bool pipeline_live = false;
    // Fiber-resume state (kFiber). `fiber` is the parked continuation —
    // the suspended job's live call stack. `staged_answers` carries the
    // answered round's bits from ProvideAnswers to the resuming runner.
    // `fiber_cancel` marks a parked stack a correction abandoned: the
    // runner unwinds it (cancel + one last resume) before the restart
    // attempt. `fiber_jobs_run` is the body's progress cursor — jobs fully
    // run this attempt — read by the host after each switch back, so all
    // completion bookkeeping stays on the host side of the switch.
    std::unique_ptr<Fiber> fiber;
    std::vector<bool> staged_answers;
    bool fiber_cancel = false;
    size_t fiber_jobs_run = 0;
    int64_t suspensions = 0;
    bool awaiting = false;  // suspended; ProvideAnswers will resume
    bool running = false;   // a runner task currently owns this session
    bool closed = false;
    // Lock-free pending-round publication (see PendingRounds). Both are
    // written under mutex_ alongside the fields they mirror and read
    // without it by the poll path: `awaiting_round` is the round id the
    // session currently awaits (-1 while not awaiting); `retired_round`
    // is the highest round id that is dead — answered, corrected away,
    // or abandoned by Close. Round ids are monotonic per session (never
    // reused), which is what makes the exact-match / lower-bound filter
    // in PendingRounds sound.
    std::atomic<int64_t> awaiting_round{-1};
    std::atomic<int64_t> retired_round{-1};
  };

  SessionId OpenInternal(int n, MembershipOracle* user,
                         std::unique_ptr<MembershipOracle> owned_backend,
                         PendingOracle* pending_backend);
  bool SubmitInternal(SessionId id, Job job, JobKind kind);
  /// Shared body of both ProvideAnswers overloads; `commit` null means
  /// commit unconditionally (FunctionRef itself is non-nullable).
  ProvideOutcome ProvideAnswersInternal(SessionId id, int64_t round_id,
                                        BitSpan answers, CommitHook* commit);
  /// Executor task: runs a direct session's queued jobs until the queue is
  /// empty, then releases ownership.
  void RunSession(SessionState* state);
  /// Executor task: one *attempt* loop for a pending session — rebuild the
  /// pipeline with the answered prefix replayed, re-run the job log, and
  /// either finish (queue empty) or catch the suspension, publish the
  /// pending round and release the lane. Dispatches to the fiber runner
  /// under ResumeMode::kFiber.
  void RunPendingSession(SessionState* state);
  /// The kFiber runner: resumes the parked continuation (or starts a fresh
  /// attempt on a new fiber), then either publishes the round it parked on
  /// or folds the completed jobs into the service counters.
  void RunPendingSessionFiber(SessionState* state);
  /// Cancels and unwinds a parked fiber (correction restart, closed
  /// session teardown): the parked wait-site throws, the stack unwinds to
  /// the fiber body's boundary, and the fiber is destroyed. Must be
  /// called with no checked lock held: the resume switches into the
  /// parked stack, and the unwind may run arbitrary destructor code.
  void UnwindFiber(SessionState* state);
  /// Bumps jobs_done_ and the per-kind counter.
  void CompleteJob(JobKind kind) QHORN_REQUIRES(mutex_);
  SessionState* FindSession(SessionId id) QHORN_REQUIRES(mutex_);

  /// A parked round as the poll path sees it: the round payload copied at
  /// suspension plus the owning session, pushed onto announced_rounds_ by
  /// the suspending runner. Nodes are interpreted against the session's
  /// awaiting_round/retired_round atomics — a node is *reported* while its
  /// id is the one awaited, *freed* once its id is retired, and retained
  /// silently in the (transient, racy-poll-only) window between.
  struct RoundAnnouncement {
    PendingRound round;
    SessionState* state = nullptr;
  };
  using AnnouncementNode = MpscStack<RoundAnnouncement>::Node;

  Options options_;
  ResumeMode resume_mode_ = ResumeMode::kSnapshot;  // resolved, never kDefault
  std::unique_ptr<Executor> owned_executor_;  // null when Options.executor set
  Executor* exec_ = nullptr;                  // owned or borrowed, never null
  std::unique_ptr<CompiledQueryCache> owned_cache_;  // null when borrowed
  CompiledQueryCache* cache_ = nullptr;

  // Guards the sessions_ map shape, the per-session queues/bookkeeping
  // (SessionState fields — see the struct comments for the runner-owned
  // exceptions) and the service counters. One per shard; a DurableRouter
  // commit hook runs while exactly one of these is held
  // (LockRank::kRouterShard — the rank checker asserts the invariant in
  // ProvideAnswersInternal).
  Mutex mutex_{"router-shard", LockRank::kRouterShard};
  CondVar idle_cv_;
  // The pending-round drain: suspending runners publish here (one push per
  // suspension, lock-free as seen by the consumer), PendingRounds pops the
  // batch and folds it into live_announcements_ under poll_mutex_ — so the
  // poll path never takes mutex_ and suspension/resume on this router never
  // contends with another shard's opens through the facade.
  MpscStack<RoundAnnouncement> announced_rounds_;
  // Serializes PendingRounds consumers. A leaf (LockRank::kRouterPoll):
  // only the announcement stack and per-session atomics are touched under
  // it, never mutex_.
  Mutex poll_mutex_{"router-poll", LockRank::kRouterPoll};
  std::vector<std::unique_ptr<AnnouncementNode>> live_announcements_
      QHORN_GUARDED_BY(poll_mutex_);
  std::unordered_map<SessionId, std::unique_ptr<SessionState>> sessions_
      QHORN_GUARDED_BY(mutex_);
  SessionId next_id_ QHORN_GUARDED_BY(mutex_) = 1;
  // Jobs that can make progress right now: queued + running jobs of
  // direct sessions, plus uncompleted jobs of pending sessions that are
  // not blocked on a user. A suspension subtracts its session's
  // uncompleted jobs; ProvideAnswers adds them back. Drain waits for 0.
  int64_t runnable_jobs_ QHORN_GUARDED_BY(mutex_) = 0;
  // Counters bumped at job completion (stats() folds in session counters).
  int64_t jobs_done_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t learns_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t verifies_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t revisions_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t suspensions_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t corrections_ QHORN_GUARDED_BY(mutex_) = 0;
};

}  // namespace qhorn

#endif  // QHORN_SESSION_ROUTER_H_
