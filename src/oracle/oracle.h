// Membership-question oracles (§2.1.2).
//
// A membership question is an object (a TupleSet); the oracle plays the
// user, classifying it as an answer or a non-answer to the intended query.
// Learners and verifiers depend only on the MembershipOracle interface;
// decorators add counting, caching, noise and history.

#ifndef QHORN_ORACLE_ORACLE_H_
#define QHORN_ORACLE_ORACLE_H_

#include <cstdint>
#include <unordered_map>

#include "src/bool/tuple_set.h"
#include "src/core/compiled_query.h"
#include "src/core/query.h"
#include "src/util/rng.h"

namespace qhorn {

/// The user being questioned: classifies objects as answers/non-answers.
class MembershipOracle {
 public:
  virtual ~MembershipOracle() = default;

  /// True iff `question` is an answer to the intended query.
  virtual bool IsAnswer(const TupleSet& question) = 0;
};

/// A perfectly reliable simulated user holding a hidden intended query.
/// The intended query is compiled once at construction; every question is
/// answered by the compiled engine (extensionally identical to
/// Query::Evaluate, so learner question counts are unaffected).
class QueryOracle : public MembershipOracle {
 public:
  explicit QueryOracle(Query intended, EvalOptions opts = EvalOptions())
      : intended_(std::move(intended)), compiled_(intended_, opts) {}

  bool IsAnswer(const TupleSet& question) override {
    return compiled_.Evaluate(question);
  }

  const Query& intended() const { return intended_; }
  const CompiledQuery& compiled() const { return compiled_; }

 private:
  Query intended_;
  CompiledQuery compiled_;
};

/// Question-count statistics (the unit all of the paper's bounds are in).
struct OracleStats {
  int64_t questions = 0;        ///< membership questions asked
  int64_t tuples = 0;           ///< total tuples across all questions
  int64_t max_tuples = 0;       ///< largest single question
  int64_t answers = 0;          ///< questions classified as answers

  void Reset() { *this = OracleStats(); }
};

/// Decorator that counts questions and question sizes.
class CountingOracle : public MembershipOracle {
 public:
  explicit CountingOracle(MembershipOracle* inner) : inner_(inner) {}

  bool IsAnswer(const TupleSet& question) override;

  const OracleStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  MembershipOracle* inner_;
  OracleStats stats_;
};

/// Decorator that memoizes responses, so repeated identical questions cost
/// nothing. The role-preserving universal-body search re-examines lattice
/// roots as new bodies are found; the paper's counting convention charges a
/// question once, which this decorator implements. Probes are cheap:
/// TupleSet caches its canonical-form hash, so a lookup never rehashes the
/// tuple list.
class CachingOracle : public MembershipOracle {
 public:
  explicit CachingOracle(MembershipOracle* inner) : inner_(inner) {}

  bool IsAnswer(const TupleSet& question) override;

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  MembershipOracle* inner_;
  std::unordered_map<TupleSet, bool, TupleSetHash> cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// Decorator modelling an unreliable user (§5 "Noisy Users"): each response
/// is flipped independently with probability `flip_prob`.
class NoisyOracle : public MembershipOracle {
 public:
  NoisyOracle(MembershipOracle* inner, double flip_prob, uint64_t seed)
      : inner_(inner), flip_prob_(flip_prob), rng_(seed) {}

  bool IsAnswer(const TupleSet& question) override;

  int64_t flips() const { return flips_; }

 private:
  MembershipOracle* inner_;
  double flip_prob_;
  Rng rng_;
  int64_t flips_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_ORACLE_ORACLE_H_
