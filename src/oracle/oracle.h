// Membership-question oracles (§2.1.2).
//
// A membership question is an object (a TupleSet); the oracle plays the
// user, classifying it as an answer or a non-answer to the intended query.
// Learners and verifiers depend only on the MembershipOracle interface;
// decorators add counting, caching, noise and history.
//
// Oracles answer one question at a time (IsAnswer) or a whole round at
// once (IsAnswerBatch). The batch entry point is the seam for oracle
// backends that amortize per-question cost — compiled bulk evaluation,
// cache partitioning, version-space pruning, executor-sharded evaluation
// (AsyncOracle in pipeline.h) — while the learners stay backend-agnostic.
//
// Answers travel as bits: the caller supplies a BitSpan over reusable
// storage (BitVec), so a round allocates nothing anywhere in the stack.
// A one-question round still carries single-digit nanoseconds of fixed
// cost over a plain IsAnswer (virtual-boundary argument traffic and
// scratch loads — BM_OracleBatchBatched/1); the learners stopped
// special-casing singleton rounds anyway, because that residue is
// invisible next to real rounds and the uniform batch path is what the
// pipeline and service layers assume.

#ifndef QHORN_ORACLE_ORACLE_H_
#define QHORN_ORACLE_ORACLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/bool/tuple_set.h"
#include "src/core/compiled_query.h"
#include "src/core/query.h"
#include "src/util/bit_span.h"
#include "src/util/rng.h"

namespace qhorn {

/// The user being questioned: classifies objects as answers/non-answers.
class MembershipOracle {
 public:
  virtual ~MembershipOracle() = default;

  /// True iff `question` is an answer to the intended query.
  virtual bool IsAnswer(const TupleSet& question) = 0;

  /// Answers a whole round of questions at once.
  ///
  /// Contract: observably equivalent to asking IsAnswer(questions[0]),
  /// IsAnswer(questions[1]), … in order — same answers, same state
  /// evolution, same decorator statistics and transcripts. Overrides are
  /// pure optimizations of that sequential semantics (bulk compiled
  /// evaluation, miss-only forwarding, one version-space partition per
  /// round, executor-sharded evaluation); tests/oracle_batch_test.cc pins
  /// every override against the default question-for-question path.
  ///
  /// `answers.size()` must equal `questions.size()`; answer i is written
  /// to bit i. The caller owns the storage (typically a per-loop BitVec).
  virtual void IsAnswerBatch(std::span<const TupleSet> questions,
                             BitSpan answers) {
    for (size_t i = 0; i < questions.size(); ++i) {
      answers.Set(i, IsAnswer(questions[i]));
    }
  }
};

/// Decorator that forwards IsAnswer and *decomposes* every batch into
/// sequential IsAnswer calls (it deliberately inherits the default
/// IsAnswerBatch). Wrapping a stack in it yields the reference sequential
/// path the batched path must agree with question for question — the
/// differential harness of tests/oracle_batch_test.cc and the
/// BM_OracleBatchSequential baseline both use it.
class SequentialOracle : public MembershipOracle {
 public:
  explicit SequentialOracle(MembershipOracle* inner) : inner_(inner) {}

  bool IsAnswer(const TupleSet& question) override {
    return inner_->IsAnswer(question);
  }

 private:
  MembershipOracle* inner_;
};

/// A perfectly reliable simulated user holding a hidden intended query.
/// The intended query is compiled once at construction; every question is
/// answered by the compiled engine (extensionally identical to
/// Query::Evaluate, so learner question counts are unaffected). Batches
/// dispatch to CompiledQuery::EvaluateAll — one virtual call per round.
class QueryOracle : public MembershipOracle {
 public:
  explicit QueryOracle(Query intended, EvalOptions opts = EvalOptions())
      : intended_(std::move(intended)), compiled_(intended_, opts) {}

  bool IsAnswer(const TupleSet& question) override {
    return compiled_.Evaluate(question);
  }

  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override {
    compiled_.EvaluateAll(questions, answers);
  }

  const Query& intended() const { return intended_; }
  const CompiledQuery& compiled() const { return compiled_; }

 private:
  Query intended_;
  CompiledQuery compiled_;
};

/// Question-count statistics (the unit all of the paper's bounds are in).
struct OracleStats {
  int64_t questions = 0;        ///< membership questions asked
  int64_t tuples = 0;           ///< total tuples across all questions
  int64_t max_tuples = 0;       ///< largest single question
  int64_t answers = 0;          ///< questions classified as answers
  int64_t rounds = 0;           ///< oracle calls (a batch is one round)
  int64_t batched_questions = 0;  ///< questions that arrived inside batches

  void Reset() { *this = OracleStats(); }
};

/// Decorator that counts questions, question sizes and oracle rounds.
class CountingOracle : public MembershipOracle {
 public:
  explicit CountingOracle(MembershipOracle* inner) : inner_(inner) {}

  bool IsAnswer(const TupleSet& question) override;
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  const OracleStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Overwrites the statistics wholesale. Snapshot resume (session.h)
  /// rebuilds a suspended session's pipeline and puts the counters back to
  /// their pre-round values, so the re-walked question prefix is not
  /// double-counted.
  void RestoreStats(const OracleStats& stats) { stats_ = stats; }

 private:
  void Record(const TupleSet& question);

  MembershipOracle* inner_;
  OracleStats stats_;
};

/// Decorator that memoizes responses, so repeated identical questions cost
/// nothing. The role-preserving universal-body search re-examines lattice
/// roots as new bodies are found; the paper's counting convention charges a
/// question once, which this decorator implements. Probes are cheap:
/// TupleSet caches its canonical-form hash, so a lookup never rehashes the
/// tuple list. A batch forwards only its unique misses to the wrapped
/// oracle — duplicates within a round and questions answered in earlier
/// rounds are served from the cache, exactly as the sequential path would.
/// When the misses form one contiguous run (the common shapes: an all-fresh
/// round, or hits only at the edges), the forward is a subspan of the
/// caller's own span — an index-based view, no TupleSet is copied however
/// wide the round; only rounds with hits *interleaved between* misses fall
/// back to gathering the misses into a scratch vector.
class CachingOracle : public MembershipOracle {
 public:
  using CacheMap = std::unordered_map<TupleSet, bool, TupleSetHash>;

  explicit CachingOracle(MembershipOracle* inner) : inner_(inner) {}

  bool IsAnswer(const TupleSet& question) override;
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

  /// The memoized question → answer map, exposed so snapshot resume can
  /// copy it at a suspension boundary.
  const CacheMap& entries() const { return cache_; }

  /// Overwrites the cache contents and counters wholesale (snapshot
  /// restore). The hit counter handed in is usually the captured value
  /// minus the re-walk depth: the restored attempt re-asks the suspended
  /// job's question prefix and every one of those probes lands here as a
  /// hit, ending exactly at the captured count.
  void Restore(CacheMap cache, int64_t hits, int64_t misses) {
    cache_ = std::move(cache);
    hits_ = hits;
    misses_ = misses;
  }

 private:
  MembershipOracle* inner_;
  CacheMap cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  // Round-local scratch, members so a steady-state round allocates
  // nothing. Never read across calls; safe because the inner round runs on
  // a *different* oracle object (the stack is a chain, not a cycle).
  std::vector<size_t> miss_indices_;
  std::vector<TupleSet> miss_questions_;  // gather fallback only
  std::vector<bool*> miss_slots_;
  std::vector<const bool*> slots_;
  BitVec miss_answers_;
};

/// Decorator modelling an unreliable user (§5 "Noisy Users"): each response
/// is flipped independently with probability `flip_prob`. The flip draws
/// happen in question order whether the round arrives batched or not — and
/// regardless of how the backend below scheduled its evaluation — so a
/// fixed seed yields the identical noise sequence on either path.
class NoisyOracle : public MembershipOracle {
 public:
  NoisyOracle(MembershipOracle* inner, double flip_prob, uint64_t seed)
      : inner_(inner), flip_prob_(flip_prob), rng_(seed) {}

  bool IsAnswer(const TupleSet& question) override;
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  int64_t flips() const { return flips_; }
  double flip_prob() const { return flip_prob_; }

 private:
  bool MaybeFlip(bool answer);

  MembershipOracle* inner_;
  double flip_prob_;
  Rng rng_;
  int64_t flips_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_ORACLE_ORACLE_H_
