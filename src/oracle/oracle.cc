#include "src/oracle/oracle.h"

#include <algorithm>

namespace qhorn {

void CountingOracle::Record(const TupleSet& question) {
  ++stats_.questions;
  stats_.tuples += static_cast<int64_t>(question.size());
  stats_.max_tuples =
      std::max(stats_.max_tuples, static_cast<int64_t>(question.size()));
}

bool CountingOracle::IsAnswer(const TupleSet& question) {
  ++stats_.rounds;
  Record(question);
  bool answer = inner_->IsAnswer(question);
  if (answer) ++stats_.answers;
  return answer;
}

void CountingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                   BitSpan answers) {
  ++stats_.rounds;
  stats_.batched_questions += static_cast<int64_t>(questions.size());
  for (const TupleSet& q : questions) Record(q);
  inner_->IsAnswerBatch(questions, answers);
  for (size_t i = 0; i < questions.size(); ++i) {
    if (answers.Get(i)) ++stats_.answers;
  }
}

bool CachingOracle::IsAnswer(const TupleSet& question) {
  auto it = cache_.find(question);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  bool answer = inner_->IsAnswer(question);
  cache_.emplace(question, answer);
  return answer;
}

void CachingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                  BitSpan answers) {
  // Partition in question order. A duplicate of an earlier miss in the same
  // round counts as a hit (the sequential path would have cached the first
  // occurrence before seeing the second), so the forwarded batch holds each
  // unseen question exactly once, in first-occurrence order. One map probe
  // per question: the per-question cache slots are remembered (references
  // into an unordered_map survive rehashing) and patched after the inner
  // round answers the misses.
  miss_questions_.clear();
  miss_slots_.clear();
  slots_.clear();
  for (const TupleSet& q : questions) {
    auto [it, inserted] = cache_.try_emplace(q, false);
    if (inserted) {
      ++misses_;
      miss_questions_.push_back(q);
      miss_slots_.push_back(&it->second);
    } else {
      ++hits_;
    }
    slots_.push_back(&it->second);
  }
  if (!miss_questions_.empty()) {
    BitSpan miss_bits = miss_answers_.Prepare(miss_questions_.size());
    inner_->IsAnswerBatch(miss_questions_, miss_bits);
    for (size_t i = 0; i < miss_questions_.size(); ++i) {
      *miss_slots_[i] = miss_bits.Get(i);
    }
  }
  for (size_t i = 0; i < slots_.size(); ++i) answers.Set(i, *slots_[i]);
}

bool NoisyOracle::MaybeFlip(bool answer) {
  if (rng_.Chance(flip_prob_)) {
    ++flips_;
    return !answer;
  }
  return answer;
}

bool NoisyOracle::IsAnswer(const TupleSet& question) {
  return MaybeFlip(inner_->IsAnswer(question));
}

void NoisyOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                BitSpan answers) {
  inner_->IsAnswerBatch(questions, answers);
  for (size_t i = 0; i < questions.size(); ++i) {
    answers.Set(i, MaybeFlip(answers.Get(i)));
  }
}

}  // namespace qhorn
