#include "src/oracle/oracle.h"

#include <algorithm>

namespace qhorn {

bool CountingOracle::IsAnswer(const TupleSet& question) {
  ++stats_.questions;
  stats_.tuples += static_cast<int64_t>(question.size());
  stats_.max_tuples =
      std::max(stats_.max_tuples, static_cast<int64_t>(question.size()));
  bool answer = inner_->IsAnswer(question);
  if (answer) ++stats_.answers;
  return answer;
}

bool CachingOracle::IsAnswer(const TupleSet& question) {
  auto it = cache_.find(question);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  bool answer = inner_->IsAnswer(question);
  cache_.emplace(question, answer);
  return answer;
}

bool NoisyOracle::IsAnswer(const TupleSet& question) {
  bool answer = inner_->IsAnswer(question);
  if (rng_.Chance(flip_prob_)) {
    ++flips_;
    return !answer;
  }
  return answer;
}

}  // namespace qhorn
