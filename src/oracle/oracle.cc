#include "src/oracle/oracle.h"

#include <algorithm>

namespace qhorn {

void CountingOracle::Record(const TupleSet& question) {
  ++stats_.questions;
  stats_.tuples += static_cast<int64_t>(question.size());
  stats_.max_tuples =
      std::max(stats_.max_tuples, static_cast<int64_t>(question.size()));
}

bool CountingOracle::IsAnswer(const TupleSet& question) {
  // Count only after the inner oracle answers: a pending backend suspends
  // the round by throwing, and the unwound question must leave no trace in
  // the statistics (snapshot resume captures them at exactly this
  // boundary). Nothing below can observe stats_, so the reordering is
  // invisible on the non-throwing path.
  bool answer = inner_->IsAnswer(question);
  ++stats_.rounds;
  Record(question);
  if (answer) ++stats_.answers;
  return answer;
}

void CountingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                   BitSpan answers) {
  // Count only after the forward returns, so a suspended round (JobSuspended
  // unwinding from a pending backend) contaminates nothing. Sequential
  // equivalence: an empty batch is zero IsAnswer calls, so it counts no
  // round — branchless, this function is on the hottest round path. (The
  // empty forward is harmless: every layer treats an empty round as a
  // no-op.)
  inner_->IsAnswerBatch(questions, answers);
  stats_.rounds += static_cast<int64_t>(!questions.empty());
  stats_.batched_questions += static_cast<int64_t>(questions.size());
  for (const TupleSet& q : questions) Record(q);
  for (size_t i = 0; i < questions.size(); ++i) {
    if (answers.Get(i)) ++stats_.answers;
  }
}

bool CachingOracle::IsAnswer(const TupleSet& question) {
  auto it = cache_.find(question);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  bool answer;
  try {
    answer = inner_->IsAnswer(question);
  } catch (...) {
    // A pending backend suspends by throwing; the unasked question must
    // leave the cache state untouched (snapshot resume copies it at this
    // boundary).
    --misses_;
    throw;
  }
  cache_.emplace(question, answer);
  return answer;
}

void CachingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                  BitSpan answers) {
  // Partition in question order. A duplicate of an earlier miss in the same
  // round counts as a hit (the sequential path would have cached the first
  // occurrence before seeing the second), so the forwarded batch holds each
  // unseen question exactly once, in first-occurrence order. One map probe
  // per question: the per-question cache slots are remembered (references
  // into an unordered_map survive rehashing) and patched after the inner
  // round answers the misses. (An empty round falls through every loop: no
  // probes, no forward.)
  miss_indices_.clear();
  miss_slots_.clear();
  slots_.clear();
  bool contiguous = true;
  for (size_t i = 0; i < questions.size(); ++i) {
    auto [it, inserted] = cache_.try_emplace(questions[i], false);
    if (inserted) {
      ++misses_;
      if (!miss_indices_.empty() && miss_indices_.back() + 1 != i) {
        contiguous = false;
      }
      miss_indices_.push_back(i);
      miss_slots_.push_back(&it->second);
    } else {
      ++hits_;
    }
    slots_.push_back(&it->second);
  }
  if (!miss_indices_.empty()) {
    BitSpan miss_bits = miss_answers_.Prepare(miss_indices_.size());
    try {
      if (contiguous) {
        // The misses are one run [front, back] of the caller's span:
        // forward that subspan directly — an index-based view, no TupleSet
        // copies no matter how wide the round. This is the hot shape: an
        // all-fresh round is contiguous, and so is any round whose cache
        // hits sit only at the edges.
        inner_->IsAnswerBatch(
            questions.subspan(miss_indices_.front(), miss_indices_.size()),
            miss_bits);
      } else {
        // Hits interleaved between misses: gather the misses. The copies
        // are confined to this cold shape (reused capacity, but each
        // TupleSet still copies its tuple storage).
        miss_questions_.clear();
        for (size_t idx : miss_indices_)
          miss_questions_.push_back(questions[idx]);
        inner_->IsAnswerBatch(miss_questions_, miss_bits);
      }
    } catch (...) {
      // Suspended round (pending backend): erase the false placeholders
      // inserted above and roll the counters back, so the cache holds
      // exactly the pre-round state that snapshot resume captures.
      // miss_indices_ records first occurrences only, so each erase removes
      // one distinct placeholder key.
      for (size_t idx : miss_indices_) cache_.erase(questions[idx]);
      misses_ -= static_cast<int64_t>(miss_indices_.size());
      hits_ -=
          static_cast<int64_t>(questions.size() - miss_indices_.size());
      throw;
    }
    for (size_t i = 0; i < miss_indices_.size(); ++i) {
      *miss_slots_[i] = miss_bits.Get(i);
    }
  }
  for (size_t i = 0; i < slots_.size(); ++i) answers.Set(i, *slots_[i]);
}

bool NoisyOracle::MaybeFlip(bool answer) {
  if (rng_.Chance(flip_prob_)) {
    ++flips_;
    return !answer;
  }
  return answer;
}

bool NoisyOracle::IsAnswer(const TupleSet& question) {
  return MaybeFlip(inner_->IsAnswer(question));
}

void NoisyOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                BitSpan answers) {
  // An empty round draws no noise (the loop is naturally empty) and the
  // layers below all treat the empty forward as a no-op.
  inner_->IsAnswerBatch(questions, answers);
  for (size_t i = 0; i < questions.size(); ++i) {
    answers.Set(i, MaybeFlip(answers.Get(i)));
  }
}

}  // namespace qhorn
