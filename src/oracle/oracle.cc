#include "src/oracle/oracle.h"

#include <algorithm>

namespace qhorn {

void CountingOracle::Record(const TupleSet& question) {
  ++stats_.questions;
  stats_.tuples += static_cast<int64_t>(question.size());
  stats_.max_tuples =
      std::max(stats_.max_tuples, static_cast<int64_t>(question.size()));
}

bool CountingOracle::IsAnswer(const TupleSet& question) {
  ++stats_.rounds;
  Record(question);
  bool answer = inner_->IsAnswer(question);
  if (answer) ++stats_.answers;
  return answer;
}

void CountingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                   std::vector<bool>* answers) {
  ++stats_.rounds;
  stats_.batched_questions += static_cast<int64_t>(questions.size());
  for (const TupleSet& q : questions) Record(q);
  inner_->IsAnswerBatch(questions, answers);
  for (bool a : *answers) {
    if (a) ++stats_.answers;
  }
}

bool CachingOracle::IsAnswer(const TupleSet& question) {
  auto it = cache_.find(question);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  bool answer = inner_->IsAnswer(question);
  cache_.emplace(question, answer);
  return answer;
}

void CachingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                  std::vector<bool>* answers) {
  // Partition in question order. A duplicate of an earlier miss in the same
  // round counts as a hit (the sequential path would have cached the first
  // occurrence before seeing the second), so the forwarded batch holds each
  // unseen question exactly once, in first-occurrence order. One map probe
  // per question: the per-question cache slots are remembered (references
  // into an unordered_map survive rehashing) and patched after the inner
  // round answers the misses.
  std::vector<TupleSet> misses;
  std::vector<bool*> slots;
  std::vector<bool*> miss_slots;
  slots.reserve(questions.size());
  for (const TupleSet& q : questions) {
    auto [it, inserted] = cache_.try_emplace(q, false);
    if (inserted) {
      ++misses_;
      misses.push_back(q);
      miss_slots.push_back(&it->second);
    } else {
      ++hits_;
    }
    slots.push_back(&it->second);
  }
  if (!misses.empty()) {
    std::vector<bool> miss_answers;
    inner_->IsAnswerBatch(misses, &miss_answers);
    for (size_t i = 0; i < misses.size(); ++i) {
      *miss_slots[i] = miss_answers[i];
    }
  }
  answers->clear();
  answers->reserve(questions.size());
  for (bool* slot : slots) answers->push_back(*slot);
}

bool NoisyOracle::MaybeFlip(bool answer) {
  if (rng_.Chance(flip_prob_)) {
    ++flips_;
    return !answer;
  }
  return answer;
}

bool NoisyOracle::IsAnswer(const TupleSet& question) {
  return MaybeFlip(inner_->IsAnswer(question));
}

void NoisyOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                std::vector<bool>* answers) {
  inner_->IsAnswerBatch(questions, answers);
  for (size_t i = 0; i < answers->size(); ++i) {
    (*answers)[i] = MaybeFlip((*answers)[i]);
  }
}

}  // namespace qhorn
