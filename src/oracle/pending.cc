#include "src/oracle/pending.h"

#include <utility>

#include "src/util/suspend.h"

namespace qhorn {

void PendingOracle::BeginAttempt(int64_t next_round_id) {
  next_round_id_ = next_round_id;
  has_pending_ = false;
  pending_ = PendingRound();
}

void PendingOracle::Suspend(std::vector<TupleSet> questions) {
  pending_.session_id = session_id_;
  pending_.round_id = next_round_id_;
  pending_.questions = std::move(questions);
  has_pending_ = true;
  ++suspensions_;
  throw JobSuspended();
}

bool PendingOracle::IsAnswer(const TupleSet& question) {
  Suspend({question});
}

void PendingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                  BitSpan answers) {
  (void)answers;
  if (questions.empty()) return;
  Suspend(std::vector<TupleSet>(questions.begin(), questions.end()));
}

PendingRound PendingOracle::TakePending() {
  has_pending_ = false;
  return std::move(pending_);
}

}  // namespace qhorn
