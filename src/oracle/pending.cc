#include "src/oracle/pending.h"

#include <utility>

#include "src/util/bit_span.h"
#include "src/util/check.h"
#include "src/util/checked_mutex.h"
#include "src/util/suspend.h"

namespace qhorn {

void PendingOracle::BeginAttempt(int64_t next_round_id) {
  next_round_id_ = next_round_id;
  has_pending_ = false;
  pending_ = PendingRound();
  answers_staged_ = false;
  staged_answers_.clear();
}

void PendingOracle::InstallYieldHook(std::function<void()> yield) {
  yield_ = std::move(yield);
  cancel_requested_ = false;
}

void PendingOracle::StageResumeAnswers(std::vector<bool> answers) {
  staged_answers_ = std::move(answers);
  answers_staged_ = true;
}

void PendingOracle::SuspendAndAwait(std::vector<TupleSet> questions,
                                    BitSpan answers) {
  const size_t count = questions.size();
  pending_.session_id = session_id_;
  pending_.round_id = next_round_id_;
  pending_.questions = std::move(questions);
  has_pending_ = true;
  ++suspensions_;
  // Both suspension paths leave this thread: the throw unwinds to the job
  // runner, the yield parks the whole stack until some (possibly other)
  // thread resumes it. A checked lock held here would either unlock on
  // the wrong thread or stay "held" forever — catch it before parking
  // (defense in depth; Fiber::Yield asserts the same).
  LockRankChecker::AssertNoneHeld("a suspending session job");
  if (yield_ == nullptr) throw JobSuspended();
  // Parked path: switch back to the runner with the stack alive. The
  // runner either stages this round's answers and resumes, or requests a
  // cancel — in which case the throw below unwinds the parked stack
  // through the ordinary suspension machinery.
  yield_();
  if (cancel_requested_) throw JobSuspended();
  QHORN_CHECK_MSG(answers_staged_ && staged_answers_.size() == count,
                  "fiber resumed without answers for the parked round");
  for (size_t i = 0; i < count; ++i) answers.Set(i, staged_answers_[i]);
  answers_staged_ = false;
  staged_answers_.clear();
  // The parked round was answered without re-entering the job, so this
  // backend advances its own round sequence (the unwind path instead gets
  // a fresh BeginAttempt with the caught-up id).
  ++next_round_id_;
}

bool PendingOracle::IsAnswer(const TupleSet& question) {
  uint64_t word = 0;
  BitSpan one(&word, 0, 1);
  SuspendAndAwait({question}, one);
  return one.Get(0);
}

void PendingOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                  BitSpan answers) {
  if (questions.empty()) return;
  SuspendAndAwait(std::vector<TupleSet>(questions.begin(), questions.end()),
                  answers);
}

PendingRound PendingOracle::TakePending() {
  has_pending_ = false;
  return std::move(pending_);
}

}  // namespace qhorn
