#include "src/oracle/adversary.h"

#include "src/util/check.h"

namespace qhorn {

AdversaryOracle::AdversaryOracle(std::vector<Query> candidates,
                                 EvalOptions opts)
    : candidates_(std::move(candidates)), opts_(opts) {
  QHORN_CHECK(!candidates_.empty());
}

bool AdversaryOracle::IsAnswer(const TupleSet& question) {
  std::vector<Query> yes;
  std::vector<Query> no;
  for (Query& q : candidates_) {
    if (q.Evaluate(question, opts_)) {
      yes.push_back(std::move(q));
    } else {
      no.push_back(std::move(q));
    }
  }
  // Never contradict every remaining candidate; otherwise keep the larger
  // side, preferring "non-answer" on ties (the paper's adversaries answer
  // non-answer whenever they can).
  bool answer;
  if (no.empty()) {
    answer = true;
  } else if (yes.empty()) {
    answer = false;
  } else {
    answer = yes.size() > no.size();
  }
  candidates_ = answer ? std::move(yes) : std::move(no);
  return answer;
}

}  // namespace qhorn
