#include "src/oracle/adversary.h"

#include <numeric>
#include <utility>

#include "src/util/check.h"

namespace qhorn {

AdversaryOracle::AdversaryOracle(std::vector<Query> candidates,
                                 EvalOptions opts)
    : candidates_(std::move(candidates)), opts_(opts) {
  QHORN_CHECK(!candidates_.empty());
  compiled_.reserve(candidates_.size());
  for (const Query& q : candidates_) compiled_.emplace_back(q, opts_);
}

bool AdversaryOracle::Answer(size_t yes_count, size_t alive_count) {
  size_t no_count = alive_count - yes_count;
  // Never contradict every remaining candidate; otherwise keep the larger
  // side, preferring "non-answer" on ties (the paper's adversaries answer
  // non-answer whenever they can).
  if (no_count == 0) return true;
  if (yes_count == 0) return false;
  return yes_count > no_count;
}

bool AdversaryOracle::IsAnswer(const TupleSet& question) {
  size_t count = candidates_.size();
  std::vector<bool> verdicts(count);
  size_t yes_count = 0;
  for (size_t i = 0; i < count; ++i) {
    verdicts[i] = compiled_[i].Evaluate(question);
    yes_count += verdicts[i] ? 1 : 0;
  }
  bool answer = Answer(yes_count, count);
  // Partition in place, preserving relative order of the survivors.
  size_t kept = 0;
  for (size_t i = 0; i < count; ++i) {
    if (verdicts[i] == answer) {
      if (kept != i) {
        candidates_[kept] = std::move(candidates_[i]);
        compiled_[kept] = std::move(compiled_[i]);
      }
      ++kept;
    }
  }
  candidates_.resize(kept);
  compiled_.resize(kept);
  return answer;
}

void AdversaryOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                    BitSpan answers) {
  if (questions.empty()) return;  // no questions: the version space is untouched
  // Indices of the candidates consistent with the answers so far; the
  // verdicts of eliminated candidates are never computed.
  std::vector<size_t> alive(candidates_.size());
  std::iota(alive.begin(), alive.end(), size_t{0});
  std::vector<bool> verdicts;
  size_t index = 0;
  for (const TupleSet& question : questions) {
    verdicts.assign(alive.size(), false);
    size_t yes_count = 0;
    for (size_t j = 0; j < alive.size(); ++j) {
      verdicts[j] = compiled_[alive[j]].Evaluate(question);
      yes_count += verdicts[j] ? 1 : 0;
    }
    bool answer = Answer(yes_count, alive.size());
    answers.Set(index++, answer);
    size_t kept = 0;
    for (size_t j = 0; j < alive.size(); ++j) {
      if (verdicts[j] == answer) alive[kept++] = alive[j];
    }
    alive.resize(kept);
  }
  // One compaction for the whole round (alive is sorted ascending, so the
  // surviving candidates keep their relative order).
  size_t kept = 0;
  for (size_t idx : alive) {
    if (kept != idx) {
      candidates_[kept] = std::move(candidates_[idx]);
      compiled_[kept] = std::move(compiled_[idx]);
    }
    ++kept;
  }
  candidates_.resize(kept);
  compiled_.resize(kept);
}

}  // namespace qhorn
