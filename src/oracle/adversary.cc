#include "src/oracle/adversary.h"

#include <utility>

#include "src/util/check.h"

namespace qhorn {

AdversaryOracle::AdversaryOracle(std::vector<Query> candidates,
                                 EvalOptions opts)
    : candidates_(std::move(candidates)), opts_(opts) {
  QHORN_CHECK(!candidates_.empty());
  compiled_.reserve(candidates_.size());
  for (const Query& q : candidates_) compiled_.emplace_back(q, opts_);
}

bool AdversaryOracle::IsAnswer(const TupleSet& question) {
  size_t count = candidates_.size();
  std::vector<bool> verdicts(count);
  size_t yes_count = 0;
  for (size_t i = 0; i < count; ++i) {
    verdicts[i] = compiled_[i].Evaluate(question);
    yes_count += verdicts[i] ? 1 : 0;
  }
  size_t no_count = count - yes_count;
  // Never contradict every remaining candidate; otherwise keep the larger
  // side, preferring "non-answer" on ties (the paper's adversaries answer
  // non-answer whenever they can).
  bool answer;
  if (no_count == 0) {
    answer = true;
  } else if (yes_count == 0) {
    answer = false;
  } else {
    answer = yes_count > no_count;
  }
  // Partition in place, preserving relative order of the survivors.
  size_t kept = 0;
  for (size_t i = 0; i < count; ++i) {
    if (verdicts[i] == answer) {
      if (kept != i) {
        candidates_[kept] = std::move(candidates_[i]);
        compiled_[kept] = std::move(compiled_[i]);
      }
      ++kept;
    }
  }
  candidates_.resize(kept);
  compiled_.resize(kept);
  return answer;
}

}  // namespace qhorn
