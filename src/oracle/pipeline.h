// Composable oracle stacks: middleware stages over a terminal backend.
//
// QuerySession used to hand-wire its decorator chain out of four named
// unique_ptr members, rebuilt field by field for the correction-replay
// workflow. OraclePipeline replaces that with an ordered middleware list:
// a *backend* answers questions (a real user, QueryOracle, AsyncOracle,
// AdversaryOracle…), and each Push<Stage>() wraps the current top with a
// decorator it owns. The user-facing entry point is top(); the stage
// nearest the backend was pushed first.
//
//   OraclePipeline p(&backend);          // transcript → cache → counting
//   auto* counting = p.Push<CountingOracle>();
//   auto* cache = p.Push<CachingOracle>();
//   auto* transcript = p.Push<TranscriptOracle>();
//   learner.Learn(p.top());
//
// The Backend/Stage concepts make the two roles explicit: a Backend is any
// MembershipOracle (it terminates the chain); a Stage is a MembershipOracle
// constructible from the oracle below it plus stage-specific arguments.
//
// AsyncOracle is the concurrent backend the service layer plugs in: it
// answers from a shared compiled query and executes large rounds on an
// Executor via CompiledQuery::EvaluateAll. Answers land in question order
// no matter how the executor schedules the shards, so every decorator
// above it — including NoisyOracle, whose flip draws consume the seed in
// question order — observes exactly the sequential semantics
// (differentially pinned in tests/oracle_batch_test.cc).

#ifndef QHORN_ORACLE_PIPELINE_H_
#define QHORN_ORACLE_PIPELINE_H_

#include <concepts>
#include <memory>
#include <utility>
#include <vector>

#include "src/oracle/oracle.h"
#include "src/util/executor.h"

namespace qhorn {

/// A terminal oracle: anything that can answer membership questions.
template <typename T>
concept OracleBackend = std::derived_from<T, MembershipOracle>;

/// A middleware stage: wraps the oracle below it (first constructor
/// argument) and is itself an oracle.
template <typename T, typename... Args>
concept OracleStage = std::derived_from<T, MembershipOracle> &&
                      std::constructible_from<T, MembershipOracle*, Args...>;

/// An ordered, owning middleware chain over a non-owned backend.
class OraclePipeline {
 public:
  OraclePipeline() = default;

  /// `backend` must outlive the pipeline (sessions keep the user oracle
  /// alive; simulated services own theirs elsewhere).
  explicit OraclePipeline(MembershipOracle* backend) : top_(backend) {}

  OraclePipeline(OraclePipeline&&) = default;
  OraclePipeline& operator=(OraclePipeline&&) = default;

  /// Wraps the current top in a new Stage constructed as
  /// Stage(top, args...), making it the new top. Returns the typed stage
  /// pointer (stable for the pipeline's lifetime) so callers can keep
  /// accessor handles to the stages they care about.
  template <typename Stage, typename... Args>
    requires OracleStage<Stage, Args...>
  Stage* Push(Args&&... args) {
    auto stage = std::make_unique<Stage>(top_, std::forward<Args>(args)...);
    Stage* raw = stage.get();
    stages_.push_back(std::move(stage));
    top_ = raw;
    return raw;
  }

  /// The user-facing oracle: the outermost stage, or the backend when no
  /// stage has been pushed.
  MembershipOracle* top() const { return top_; }

  bool empty() const { return stages_.empty(); }
  size_t size() const { return stages_.size(); }

 private:
  std::vector<std::unique_ptr<MembershipOracle>> stages_;
  MembershipOracle* top_ = nullptr;
};

/// Concurrent simulated-user backend: answers from a compiled query shared
/// across sessions (the SessionRouter's compiled-query cache hands these
/// out) and shards large rounds across the executor. The compiled form is
/// immutable and accessed read-only, so any number of AsyncOracles — and
/// any number of concurrent rounds — may share one.
class AsyncOracle : public MembershipOracle {
 public:
  /// Neither pointer is owned; `executor` may be null (inline evaluation,
  /// useful as the differential baseline of the parallel path).
  AsyncOracle(std::shared_ptr<const CompiledQuery> compiled,
              Executor* executor)
      : compiled_(std::move(compiled)), executor_(executor) {}

  bool IsAnswer(const TupleSet& question) override {
    return compiled_->Evaluate(question);
  }

  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override {
    compiled_->EvaluateAll(questions, answers, executor_);
  }

  const CompiledQuery& compiled() const { return *compiled_; }

 private:
  std::shared_ptr<const CompiledQuery> compiled_;
  Executor* executor_;
};

}  // namespace qhorn

#endif  // QHORN_ORACLE_PIPELINE_H_
