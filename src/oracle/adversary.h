// Version-space adversary for the lower-bound experiments (§2, §3).
//
// The adversary maintains the set of candidate queries still consistent
// with its past responses. For each question it answers so as to keep as
// many candidates alive as possible (the paper's adversaries in Theorem 2.1,
// Lemma 3.4 and Theorem 3.6 all answer this way). Any learner therefore
// needs at least lg(#candidates) questions — and against classes engineered
// so each question eliminates O(1) candidates, linearly many in the class
// size.

#ifndef QHORN_ORACLE_ADVERSARY_H_
#define QHORN_ORACLE_ADVERSARY_H_

#include <span>
#include <vector>

#include "src/oracle/oracle.h"

namespace qhorn {

/// Adversarial oracle over an explicit candidate class.
class AdversaryOracle : public MembershipOracle {
 public:
  /// `candidates` must be non-empty; all must share the same n.
  explicit AdversaryOracle(std::vector<Query> candidates,
                           EvalOptions opts = EvalOptions());

  /// Answers with whichever response keeps more candidates consistent
  /// (ties favour non-answer, matching the paper's adversaries), then
  /// discards the eliminated candidates.
  bool IsAnswer(const TupleSet& question) override;

  /// Batched rounds give the same answers the sequential loop would: each
  /// question is decided by the candidates still alive after the previous
  /// question's verdict. Only the physical compaction of the candidate
  /// class is deferred — eliminated candidates are masked out per question
  /// and the surviving class is partitioned once per batch.
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  /// Remaining consistent candidates.
  const std::vector<Query>& candidates() const { return candidates_; }

  /// True when exactly one candidate remains — the learner may stop.
  bool Pinned() const { return candidates_.size() == 1; }

 private:
  /// The paper's answering rule given the verdict split of the alive class.
  static bool Answer(size_t yes_count, size_t alive_count);

  std::vector<Query> candidates_;
  // Compiled once at construction, partitioned in lock-step with
  // candidates_: every question evaluates the whole surviving class, so
  // the per-candidate evaluation must be the compiled fast path.
  std::vector<CompiledQuery> compiled_;
  EvalOptions opts_;
};

}  // namespace qhorn

#endif  // QHORN_ORACLE_ADVERSARY_H_
