// PendingOracle — the real-user backend for pending-round continuations.
//
// Every other backend answers a round synchronously. A real user does not:
// their answers arrive seconds to minutes later, over whatever transport
// the embedding server uses. PendingOracle models exactly that: any round
// reaching it is by definition "not answerable synchronously", so it
// records the round's questions as a PendingRound{session_id, round_id,
// questions} and suspends the in-flight job. How it suspends depends on
// how the runner entered the job:
//
//   * Unwind (no yield hook installed): throw JobSuspended
//     (src/util/suspend.h) — the job unwinds off its executor lane at the
//     round boundary. Re-entry is by replay: once the answers arrive
//     (SessionRouter::ProvideAnswers) the job is re-run, the answered
//     rounds are served below the user boundary (snapshot-restored cache
//     or ReplayOracle), and the first genuinely new round reaches this
//     backend again. Learners are deterministic functions of the
//     transcript, so the re-run asks the identical question sequence and
//     the completing run's observables are bit-identical to a synchronous
//     session over the same answers.
//
//   * Park (yield hook installed — ResumeMode::kFiber): the job runs on a
//     Fiber (src/util/fiber.h) and the hook switches back to the runner
//     with the whole call stack kept alive. Once the answers arrive, the
//     runner stages them (StageResumeAnswers) and resumes the fiber: the
//     suspended IsAnswerBatch fills its answer span from the staged bits
//     and simply returns to the learner — no re-run, no replay, O(1)
//     compute per resume. RequestCancel() makes the *next* resume throw
//     JobSuspended from the parked wait-site instead, which is how owners
//     unwind a parked stack they need to abandon (correction, close,
//     shutdown).
//
// Round ids count *user-boundary* rounds (each suspension is one round);
// they are the resumption protocol's sequence numbers, distinct from the
// TranscriptOracle round ids the session reports. An empty round is a
// no-op, not a suspension — sequential equivalence says zero questions
// mean zero user interactions.

#ifndef QHORN_ORACLE_PENDING_H_
#define QHORN_ORACLE_PENDING_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/oracle/oracle.h"

namespace qhorn {

/// One round of membership questions awaiting a real user's answers.
struct PendingRound {
  int64_t session_id = 0;  ///< the SessionRouter session that suspended
  int64_t round_id = 0;    ///< user-boundary round sequence number
  std::vector<TupleSet> questions;
};

/// Backend whose every (non-empty) round suspends the in-flight job.
class PendingOracle : public MembershipOracle {
 public:
  PendingOracle() = default;

  /// The router stamps the id after Open assigns it (no jobs can run
  /// before Open returns, so this never races a suspension).
  void set_session_id(int64_t id) { session_id_ = id; }

  /// Called by the job runner before each (re-)run: `next_round_id` is the
  /// number of rounds already answered — the id the next suspension will
  /// carry. Clears any stale pending round from an abandoned attempt.
  void BeginAttempt(int64_t next_round_id);

  /// Installs (or clears, with nullptr) the park-instead-of-throw hook.
  /// The hook must switch back to the runner and return only when answers
  /// have been staged or a cancel was requested. Installed once per fiber
  /// attempt by the runner; never changed while a round is in flight.
  void InstallYieldHook(std::function<void()> yield);

  /// Stages the answers for the parked round before the runner resumes the
  /// fiber. Size must equal the parked round's question count.
  void StageResumeAnswers(std::vector<bool> answers);

  /// Makes the parked wait-site throw JobSuspended on its next resume:
  /// the fiber unwinds through the ordinary exception machinery and
  /// finishes without touching the learner again.
  void RequestCancel() { cancel_requested_ = true; }

  /// Single-question round: suspends (parks or throws) and, on a parked
  /// resume, returns the staged answer.
  bool IsAnswer(const TupleSet& question) override;

  /// Records the round and suspends. An empty round returns immediately
  /// (no round, no suspension — nothing to ask a user). On a parked
  /// resume, fills `answers` from the staged bits.
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  bool has_pending() const { return has_pending_; }

  /// Harvests the recorded round after a suspension reaches the runner.
  PendingRound TakePending();

  /// Rounds that suspended (a per-session statistic; replayed rounds never
  /// reach this backend, so each user round counts exactly once).
  int64_t suspensions() const { return suspensions_; }

 private:
  /// Records the round, suspends, and (parked path only) fills `answers`.
  void SuspendAndAwait(std::vector<TupleSet> questions, BitSpan answers);

  int64_t session_id_ = 0;
  int64_t next_round_id_ = 0;
  int64_t suspensions_ = 0;
  bool has_pending_ = false;
  PendingRound pending_;
  std::function<void()> yield_;
  std::vector<bool> staged_answers_;
  bool answers_staged_ = false;
  bool cancel_requested_ = false;
};

}  // namespace qhorn

#endif  // QHORN_ORACLE_PENDING_H_
