// PendingOracle — the real-user backend for pending-round continuations.
//
// Every other backend answers a round synchronously. A real user does not:
// their answers arrive seconds to minutes later, over whatever transport
// the embedding server uses. PendingOracle models exactly that: any round
// reaching it is by definition "not answerable synchronously", so it
// records the round's questions as a PendingRound{session_id, round_id,
// questions} and throws JobSuspended (src/util/suspend.h) — the in-flight
// job unwinds off its executor lane at the round boundary and the lane is
// free for other sessions while this one waits for its human.
//
// Re-entry is by replay: once the answers arrive
// (SessionRouter::ProvideAnswers), the accumulated answered rounds are
// replayed at the user boundary by the existing ReplayOracle machinery and
// the job is re-run from its start. Learners are deterministic functions
// of the transcript, so the re-run asks the identical question sequence,
// the replay stage serves the answered prefix without bothering the user,
// and the first genuinely new round reaches this backend again — which
// suspends again. The learners need zero restructuring, and the final
// (completing) run's observables are bit-identical to a fully synchronous
// session over the same answer sequence.
//
// Round ids count *user-boundary* rounds (each suspension is one round);
// they are the resumption protocol's sequence numbers, distinct from the
// TranscriptOracle round ids the session reports. An empty round is a
// no-op, not a suspension — sequential equivalence says zero questions
// mean zero user interactions.

#ifndef QHORN_ORACLE_PENDING_H_
#define QHORN_ORACLE_PENDING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/oracle/oracle.h"

namespace qhorn {

/// One round of membership questions awaiting a real user's answers.
struct PendingRound {
  int64_t session_id = 0;  ///< the SessionRouter session that suspended
  int64_t round_id = 0;    ///< user-boundary round sequence number
  std::vector<TupleSet> questions;
};

/// Backend whose every (non-empty) round suspends the in-flight job.
class PendingOracle : public MembershipOracle {
 public:
  PendingOracle() = default;

  /// The router stamps the id after Open assigns it (no jobs can run
  /// before Open returns, so this never races a suspension).
  void set_session_id(int64_t id) { session_id_ = id; }

  /// Called by the job runner before each (re-)run: `next_round_id` is the
  /// number of rounds already answered — the id the next suspension will
  /// carry. Clears any stale pending round from an abandoned attempt.
  void BeginAttempt(int64_t next_round_id);

  /// Single-question round: records it and throws JobSuspended.
  bool IsAnswer(const TupleSet& question) override;

  /// Records the round and throws JobSuspended. An empty round returns
  /// immediately (no round, no suspension — nothing to ask a user).
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  bool has_pending() const { return has_pending_; }

  /// Harvests the recorded round after catching JobSuspended.
  PendingRound TakePending();

  /// Rounds that suspended (a per-session statistic; replayed rounds never
  /// reach this backend, so each user round counts exactly once).
  int64_t suspensions() const { return suspensions_; }

 private:
  [[noreturn]] void Suspend(std::vector<TupleSet> questions);

  int64_t session_id_ = 0;
  int64_t next_round_id_ = 0;
  int64_t suspensions_ = 0;
  bool has_pending_ = false;
  PendingRound pending_;
};

}  // namespace qhorn

#endif  // QHORN_ORACLE_PENDING_H_
