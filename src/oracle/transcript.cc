#include "src/oracle/transcript.h"

#include "src/util/check.h"

namespace qhorn {

bool TranscriptOracle::IsAnswer(const TupleSet& question) {
  bool response = inner_->IsAnswer(question);
  entries_.push_back(TranscriptEntry{question, response});
  return response;
}

void TranscriptOracle::Correct(size_t index) {
  QHORN_CHECK_MSG(index < entries_.size(), "no transcript entry " << index);
  entries_[index].response = !entries_[index].response;
  entries_.resize(index + 1);
}

std::string TranscriptOracle::ToString(int n) const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "Q" + std::to_string(i + 1) + ": " + entries_[i].question.ToString(n);
    out += entries_[i].response ? "  → answer\n" : "  → non-answer\n";
  }
  return out;
}

bool ReplayOracle::IsAnswer(const TupleSet& question) {
  if (!diverged_ && next_ < transcript_.size()) {
    const TranscriptEntry& entry = transcript_[next_];
    if (entry.question == question) {
      ++next_;
      ++replayed_;
      return entry.response;
    }
    // The learner's question sequence changed (it depends on earlier
    // responses); everything from here on must be asked fresh.
    diverged_ = true;
  }
  ++asked_;
  return fallback_->IsAnswer(question);
}

}  // namespace qhorn
