#include "src/oracle/transcript.h"

#include "src/util/check.h"

namespace qhorn {

bool TranscriptOracle::IsAnswer(const TupleSet& question) {
  // The round id is consumed only after the inner oracle answers: a pending
  // backend suspends the round by throwing, and the unanswered round must
  // not burn an id or leave an entry (snapshot resume re-records the same
  // rounds with the same ids on the restored attempt's re-walk).
  bool response = inner_->IsAnswer(question);
  int64_t round = rounds_++;
  entries_.push_back(TranscriptEntry{question, response, round});
  return response;
}

void TranscriptOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                     BitSpan answers) {
  // An empty batch is zero sequential questions: no round id is consumed,
  // nothing is recorded, and the inner oracle is not called. The round id
  // is consumed after the forward returns, so a suspended round leaves the
  // history untouched.
  if (questions.empty()) return;
  inner_->IsAnswerBatch(questions, answers);
  int64_t round = rounds_++;
  for (size_t i = 0; i < questions.size(); ++i) {
    entries_.push_back(TranscriptEntry{questions[i], answers.Get(i), round});
  }
}

void TranscriptOracle::Correct(size_t index) {
  QHORN_CHECK_MSG(index < entries_.size(), "no transcript entry " << index);
  entries_[index].response = !entries_[index].response;
  entries_.resize(index + 1);
}

std::string TranscriptOracle::ToString(int n) const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "Q" + std::to_string(i + 1) + ": " + entries_[i].question.ToString(n);
    out += entries_[i].response ? "  → answer\n" : "  → non-answer\n";
  }
  return out;
}

bool ReplayOracle::TryReplay(const TupleSet& question, bool* response) {
  if (diverged_ || next_ >= transcript_.size()) return false;
  const TranscriptEntry& entry = transcript_[next_];
  if (entry.question != question) {
    // The learner's question sequence changed (it depends on earlier
    // responses); everything from here on must be asked fresh.
    diverged_ = true;
    return false;
  }
  ++next_;
  ++replayed_;
  *response = entry.response;
  return true;
}

bool ReplayOracle::IsAnswer(const TupleSet& question) {
  bool response = false;
  if (TryReplay(question, &response)) return response;
  // Counted after the fallback answers, so a suspended question (pending
  // backend throwing JobSuspended) is not recorded as asked.
  bool answer = fallback_->IsAnswer(question);
  ++asked_;
  return answer;
}

void ReplayOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                 BitSpan answers) {
  // Serve the still-matching transcript prefix, then send the remainder to
  // the fallback in one round. Once any question needs the fallback, every
  // later one does too (a mismatch diverges the replay; an exhausted
  // transcript stays exhausted), so the remainder is a contiguous tail.
  size_t served = 0;
  for (; served < questions.size(); ++served) {
    bool response = false;
    if (!TryReplay(questions[served], &response)) break;
    answers.Set(served, response);
  }
  if (served == questions.size()) return;
  std::span<const TupleSet> rest = questions.subspan(served);
  fallback_->IsAnswerBatch(rest, answers.Subspan(served));
  asked_ += static_cast<int64_t>(rest.size());
}

}  // namespace qhorn
