#include "src/oracle/transcript.h"

#include "src/util/check.h"

namespace qhorn {

bool TranscriptOracle::IsAnswer(const TupleSet& question) {
  int64_t round = rounds_++;
  bool response = inner_->IsAnswer(question);
  entries_.push_back(TranscriptEntry{question, response, round});
  return response;
}

void TranscriptOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                     BitSpan answers) {
  // An empty batch is zero sequential questions: no round id is consumed,
  // nothing is recorded, and the inner oracle is not called.
  if (questions.empty()) return;
  int64_t round = rounds_++;
  inner_->IsAnswerBatch(questions, answers);
  for (size_t i = 0; i < questions.size(); ++i) {
    entries_.push_back(TranscriptEntry{questions[i], answers.Get(i), round});
  }
}

void TranscriptOracle::Correct(size_t index) {
  QHORN_CHECK_MSG(index < entries_.size(), "no transcript entry " << index);
  entries_[index].response = !entries_[index].response;
  entries_.resize(index + 1);
}

std::string TranscriptOracle::ToString(int n) const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "Q" + std::to_string(i + 1) + ": " + entries_[i].question.ToString(n);
    out += entries_[i].response ? "  → answer\n" : "  → non-answer\n";
  }
  return out;
}

bool ReplayOracle::TryReplay(const TupleSet& question, bool* response) {
  if (diverged_ || next_ >= transcript_.size()) return false;
  const TranscriptEntry& entry = transcript_[next_];
  if (entry.question != question) {
    // The learner's question sequence changed (it depends on earlier
    // responses); everything from here on must be asked fresh.
    diverged_ = true;
    return false;
  }
  ++next_;
  ++replayed_;
  *response = entry.response;
  return true;
}

bool ReplayOracle::IsAnswer(const TupleSet& question) {
  bool response = false;
  if (TryReplay(question, &response)) return response;
  ++asked_;
  return fallback_->IsAnswer(question);
}

void ReplayOracle::IsAnswerBatch(std::span<const TupleSet> questions,
                                 BitSpan answers) {
  // Serve the still-matching transcript prefix, then send the remainder to
  // the fallback in one round. Once any question needs the fallback, every
  // later one does too (a mismatch diverges the replay; an exhausted
  // transcript stays exhausted), so the remainder is a contiguous tail.
  size_t served = 0;
  for (; served < questions.size(); ++served) {
    bool response = false;
    if (!TryReplay(questions[served], &response)) break;
    answers.Set(served, response);
  }
  if (served == questions.size()) return;
  std::span<const TupleSet> rest = questions.subspan(served);
  asked_ += static_cast<int64_t>(rest.size());
  fallback_->IsAnswerBatch(rest, answers.Subspan(served));
}

}  // namespace qhorn
