// Response history and correction-replay (§5, "Noisy Users").
//
// The paper suggests that a good interface keeps a history of the user's
// responses so an incorrect response can be fixed, "triggering the query
// learning algorithm to restart query learning from the point of error".
// TranscriptOracle records every (question, response); Correct() flips a
// recorded response; ReplayOracle then serves the corrected prefix verbatim
// and falls through to the ground-truth oracle afterwards — exactly the
// restart-from-the-point-of-error workflow.
//
// Both decorators are batch-aware: a batched round records (or replays)
// its questions in order, and each transcript entry remembers which round
// it arrived in, so a UI can render "round 7 asked these 12 questions
// together" while correction indices keep addressing single questions.

#ifndef QHORN_ORACLE_TRANSCRIPT_H_
#define QHORN_ORACLE_TRANSCRIPT_H_

#include <span>
#include <string>
#include <vector>

#include "src/oracle/oracle.h"

namespace qhorn {

/// One question/answer exchange.
struct TranscriptEntry {
  TupleSet question;
  bool response = false;
  /// Oracle round the exchange belonged to (a batch is one round; the
  /// questions of a batch share a round id).
  int64_t round = 0;
};

/// Decorator that records the full exchange history.
class TranscriptOracle : public MembershipOracle {
 public:
  explicit TranscriptOracle(MembershipOracle* inner) : inner_(inner) {}

  bool IsAnswer(const TupleSet& question) override;
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  const std::vector<TranscriptEntry>& entries() const { return entries_; }

  /// Oracle rounds recorded so far (single questions and batches alike).
  int64_t rounds() const { return rounds_; }

  /// Flips the recorded response at `index` (0-based). Later entries are
  /// discarded: they were computed from the bad answer and must be re-asked.
  void Correct(size_t index);

  /// Overwrites the history wholesale (snapshot restore, session.h). The
  /// restored attempt re-runs the suspended job from its start, re-recording
  /// the job's question prefix with the same round ids — so the history is
  /// put back to the *job boundary*, not the suspension point.
  void Restore(std::vector<TranscriptEntry> entries, int64_t rounds) {
    entries_ = std::move(entries);
    rounds_ = rounds;
  }

  /// Renders the history, e.g. for the examples' console output.
  std::string ToString(int n) const;

 private:
  MembershipOracle* inner_;
  std::vector<TranscriptEntry> entries_;
  int64_t rounds_ = 0;
};

/// Serves recorded responses for questions that match the transcript
/// prefix in order; once the prefix is exhausted (or a question deviates),
/// defers to the fallback oracle. Used to re-run a learner after a
/// correction without re-asking the user everything.
class ReplayOracle : public MembershipOracle {
 public:
  ReplayOracle(std::vector<TranscriptEntry> transcript,
               MembershipOracle* fallback)
      : transcript_(std::move(transcript)), fallback_(fallback) {}

  /// Stage-order constructor (inner first) for OraclePipeline::Push.
  ReplayOracle(MembershipOracle* fallback,
               std::vector<TranscriptEntry> transcript)
      : ReplayOracle(std::move(transcript), fallback) {}

  bool IsAnswer(const TupleSet& question) override;
  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override;

  /// Questions served from the recorded transcript.
  int64_t replayed() const { return replayed_; }
  /// Questions that had to go to the fallback oracle (i.e. to the user).
  int64_t asked() const { return asked_; }

 private:
  /// Serves `question` from the transcript prefix if it still matches.
  /// Returns false when the question must go to the fallback instead.
  bool TryReplay(const TupleSet& question, bool* response);

  std::vector<TranscriptEntry> transcript_;
  MembershipOracle* fallback_;
  size_t next_ = 0;
  bool diverged_ = false;
  int64_t replayed_ = 0;
  int64_t asked_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_ORACLE_TRANSCRIPT_H_
