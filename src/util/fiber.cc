#include "src/util/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <utility>

#include "src/util/check.h"
#include "src/util/checked_mutex.h"

// Sanitizer fiber annotations. Declared here (not via the sanitizer
// headers) so the file compiles identically whether or not the interface
// headers are installed; the symbols resolve from the sanitizer runtime,
// which is linked exactly when the macro is defined.
#if defined(__SANITIZE_ADDRESS__)
#define QHORN_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QHORN_FIBER_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define QHORN_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QHORN_FIBER_TSAN 1
#endif
#endif

#if defined(QHORN_FIBER_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif

#if defined(QHORN_FIBER_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace qhorn {

Fiber::Fiber(std::function<void()> body, size_t stack_bytes)
    : body_(std::move(body)) {
  QHORN_CHECK(body_ != nullptr);
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  // Round the usable stack up to whole pages and add one guard page at the
  // low end (stacks grow down): an overflow hits PROT_NONE and faults
  // loudly instead of corrupting whatever mmap placed next door.
  stack_size_ = (stack_bytes + page - 1) / page * page;
  alloc_bytes_ = stack_size_ + page;
  void* mem = mmap(nullptr, alloc_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  QHORN_CHECK_MSG(mem != MAP_FAILED, "fiber stack mmap failed");
  alloc_ = static_cast<char*>(mem);
  QHORN_CHECK_MSG(mprotect(alloc_, page, PROT_NONE) == 0,
                  "fiber guard page mprotect failed");
  stack_base_ = alloc_ + page;
#if defined(QHORN_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  QHORN_CHECK_MSG(!started_ || finished_,
                  "destroying a parked fiber would skip live destructors; "
                  "cancel and resume it to unwind first");
#if defined(QHORN_FIBER_TSAN)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (alloc_ != nullptr) munmap(alloc_, alloc_bytes_);
}

void Fiber::Trampoline(unsigned hi, unsigned lo) {
  auto ptr = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  reinterpret_cast<Fiber*>(ptr)->Run();
  // Unreachable: Run() ends in a final switch out and is never re-entered.
}

void Fiber::Run() {
#if defined(QHORN_FIBER_ASAN)
  // First arrival on this stack: no fake stack to restore (nullptr), but
  // record where we came from — the host stack Yield() must switch back to.
  __sanitizer_finish_switch_fiber(nullptr, &asan_host_bottom_,
                                  &asan_host_size_);
#endif
  body_();
  finished_ = true;
  // Final switch out: the fiber's stack holds no live frames below this
  // one, so its sanitizer fake stack can be released (nullptr save slot).
#if defined(QHORN_FIBER_ASAN)
  __sanitizer_start_switch_fiber(nullptr, asan_host_bottom_, asan_host_size_);
#endif
#if defined(QHORN_FIBER_TSAN)
  __tsan_switch_to_fiber(tsan_host_, 0);
#endif
  swapcontext(&fiber_ctx_, &host_ctx_);
  QHORN_CHECK_MSG(false, "finished fiber resumed");
}

size_t Fiber::TrimColdStack() {
  trimmed_bytes_ = 0;
#if defined(__linux__) && defined(__x86_64__)
  if (!started_ || finished_) return alloc_bytes_;
  // swapcontext saved the parked frame's stack pointer into fiber_ctx_.
  // Everything in [stack_base_, sp) is dead — frames the continuation
  // popped before parking, reusable only by deeper future calls. Round
  // the boundary down to a page and keep one slack page below the parked
  // frame (x86-64 red zone plus resume spill room stay untouched).
  const auto page = static_cast<uintptr_t>(sysconf(_SC_PAGESIZE));
  const auto sp =
      static_cast<uintptr_t>(fiber_ctx_.uc_mcontext.gregs[REG_RSP]);
  const auto base = reinterpret_cast<uintptr_t>(stack_base_);
  uintptr_t cold_end = sp & ~(page - 1);
  if (cold_end < page) return alloc_bytes_;
  cold_end -= page;  // slack page
  if (sp < base || sp >= base + stack_size_ || cold_end <= base) {
    return alloc_bytes_;
  }
  const size_t cold = static_cast<size_t>(cold_end - base);
  if (madvise(stack_base_, cold, MADV_DONTNEED) == 0) trimmed_bytes_ = cold;
#endif
  return alloc_bytes_ - trimmed_bytes_;
}

void Fiber::Resume() {
  QHORN_CHECK_MSG(!finished_, "Resume() on a finished fiber");
  trimmed_bytes_ = 0;  // resumed frames refault trimmed pages on touch
  if (!started_) {
    started_ = true;
    QHORN_CHECK_MSG(getcontext(&fiber_ctx_) == 0, "getcontext failed");
    fiber_ctx_.uc_stack.ss_sp = stack_base_;
    fiber_ctx_.uc_stack.ss_size = stack_size_;
    fiber_ctx_.uc_link = nullptr;
    auto ptr = reinterpret_cast<uintptr_t>(this);
    makecontext(&fiber_ctx_, reinterpret_cast<void (*)()>(&Trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
#if defined(QHORN_FIBER_TSAN)
  tsan_host_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#if defined(QHORN_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&asan_host_fake_, stack_base_, stack_size_);
#endif
  swapcontext(&host_ctx_, &fiber_ctx_);
  // Back on the host stack — either the fiber yielded or it finished (the
  // finished path already released its fake stack via the nullptr save).
#if defined(QHORN_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(asan_host_fake_, nullptr, nullptr);
#endif
}

void Fiber::Yield() {
  // A parked continuation holds no checked mutex: the held-lock stack is
  // thread-local, and the fiber may be resumed on a *different* OS thread
  // — a lock acquired here would be "held" by a thread that no longer
  // runs this stack and unlocked by one that never locked it.
  LockRankChecker::AssertNoneHeld("a parking fiber");
#if defined(QHORN_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&asan_fiber_fake_, asan_host_bottom_,
                                 asan_host_size_);
#endif
#if defined(QHORN_FIBER_TSAN)
  __tsan_switch_to_fiber(tsan_host_, 0);
#endif
  swapcontext(&fiber_ctx_, &host_ctx_);
  // Resumed — possibly on a different OS thread, whose host-stack bounds
  // the finish call below records for the next Yield().
#if defined(QHORN_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(asan_fiber_fake_, &asan_host_bottom_,
                                  &asan_host_size_);
#endif
}

}  // namespace qhorn
