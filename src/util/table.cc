#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/check.h"

namespace qhorn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  QHORN_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  QHORN_CHECK_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

TextTable::RowBuilder& TextTable::RowBuilder::Cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::Cell(int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::Cell(uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::Cell(double value,
                                                   int precision) {
  cells_.push_back(FormatDouble(value, precision));
  return *this;
}

TextTable::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace qhorn
