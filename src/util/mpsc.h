// MpscStack — a lock-free multi-producer single-consumer intrusive stack.
//
// The pending-round drain's publication side. Producers (session runners
// parking on a user round, one per suspension) Push a heap node with a
// single release-CAS; the consumer (PendingRounds) takes the whole batch
// with one atomic exchange and never touches the producers' mutex. The
// "single consumer" half of the contract is about PopAll callers: two
// threads may both call PopAll safely (each gets a disjoint batch), but
// the router serializes them behind its poll mutex anyway so the retained
// node list has one owner.
//
// Treiber stack, deliberately minimal: no pop-one (consumers drain in
// batches), no size, no ABA hazard (nodes are never re-pushed — a popped
// node is either retained by the consumer or freed). Order within a batch
// is reverse push order, which the router does not rely on (PendingRounds
// sorts by session id).

#ifndef QHORN_UTIL_MPSC_H_
#define QHORN_UTIL_MPSC_H_

#include <atomic>
#include <utility>

#include "src/util/thread_annotations.h"

namespace qhorn {

template <typename T>
class MpscStack {
 public:
  struct Node {
    explicit Node(T v) : value(std::move(v)) {}
    T value;
    Node* next = nullptr;
  };

  MpscStack() = default;
  MpscStack(const MpscStack&) = delete;
  MpscStack& operator=(const MpscStack&) = delete;

  /// Deleting whatever is still linked is the owner's job (PopAll + free);
  /// the destructor only asserts nothing silently leaks in debug use.
  ~MpscStack() = default;

  /// Takes ownership of `node` and links it in. Lock-free; callable from
  /// any thread. The release order pairs with PopAll's acquire, so the
  /// consumer sees the node's payload fully written.
  //
  // QHORN_NO_TSA justification: synchronization here is the release-CAS /
  // acquire-exchange pair on head_, not a capability TSA can model —
  // there is no mutex to annotate and nothing for the analysis to check.
  // TSan covers this path (continuation + sharded-router stress suites).
  void Push(Node* node) QHORN_NO_TSA {
    Node* head = head_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!head_.compare_exchange_weak(head, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Detaches and returns the whole chain (nullptr when empty). The caller
  /// owns every returned node and must walk `next` before freeing.
  //
  // QHORN_NO_TSA justification: same as Push — the acquire-exchange is the
  // whole synchronization protocol; no capability exists to require.
  Node* PopAll() QHORN_NO_TSA {
    return head_.exchange(nullptr, std::memory_order_acquire);
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<Node*> head_{nullptr};
};

}  // namespace qhorn

#endif  // QHORN_UTIL_MPSC_H_
