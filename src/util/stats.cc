#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace qhorn {

void Accumulator::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
}

double Accumulator::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Accumulator::stddev() const {
  if (count_ < 2) return 0.0;
  double m = mean();
  double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var <= 0.0 ? 0.0 : std::sqrt(var);
}

double Lg(double x) { return x < 2.0 ? 1.0 : std::log2(x); }

}  // namespace qhorn
