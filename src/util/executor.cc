#include "src/util/executor.h"

#include <cstdlib>
#include <string>

#include "src/util/check.h"
#include "src/util/suspend.h"

namespace qhorn {

namespace {

/// Identity of the worker loop running on this thread, if any. Workers of
/// distinct executors never nest on one thread, so one pair of
/// thread-locals (owning executor + index) is enough.
thread_local const Executor* tls_executor = nullptr;
thread_local int tls_worker_index = -1;

/// Runs a pool task with the suspension contract enforced: JobSuspended is
/// a round-boundary signal that must be caught at the job runner
/// (SessionRouter) — if one reaches an executor lane the session it
/// belongs to would silently leak, so fail loudly instead of terminating
/// with an opaque unhandled-exception abort.
void RunTask(const std::function<void()>& task) {
  // Tasks must start with no checked locks held: Post() under a lock
  // deadlocks at concurrency 1 (where tasks run inline in the caller),
  // and on a worker lane a held lock could only be a leak from a previous
  // task. Rank ordering alone cannot catch the inline case — no executor
  // mutex is touched on that path — so assert it here.
  LockRankChecker::AssertNoneHeld("an executor task");
  try {
    task();
  } catch (const JobSuspended&) {
    QHORN_CHECK_MSG(false,
                    "JobSuspended escaped onto an executor lane: suspending "
                    "jobs must be run through a continuation-aware runner");
  }
}

}  // namespace

int Executor::DefaultConcurrency() {
  if (const char* env = std::getenv("QHORN_THREADS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 1) {
      return static_cast<int>(parsed > 256 ? 256 : parsed);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Executor::Executor(int threads) {
  concurrency_ = threads <= 0 ? DefaultConcurrency() : threads;
  int workers = concurrency_ - 1;
  queues_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  {
    // stop_ flips under sleep_mutex_ so a worker checking the wait
    // predicate cannot miss it.
    MutexLock lock(&sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  // The destructor contract is quiescence, not draining: owners (e.g.
  // SessionRouter::Drain) must retire their work first. Losing a queued
  // task silently would be a caller bug — fail loudly instead.
  QHORN_CHECK_MSG(!HasPendingTask(),
                  "Executor destroyed with tasks still queued");
}

void Executor::Post(std::function<void()> task) {
  QHORN_CHECK(task != nullptr);
  if (workers_.empty()) {
    // Inline fallback: a 1-lane executor is a synchronous one.
    RunTask(task);
    return;
  }
  WorkerQueue* queue = &injection_;
  if (tls_executor == this && tls_worker_index >= 0) {
    queue = queues_[static_cast<size_t>(tls_worker_index)].get();
  }
  {
    MutexLock lock(&queue->mutex);
    queue->tasks.push_back(std::move(task));
  }
  // The empty lock pairs the enqueue with any waiter that checked the
  // queues just before it; the notify then cannot be lost.
  { MutexLock lock(&sleep_mutex_); }
  sleep_cv_.NotifyAll();
}

bool Executor::HasPendingTask() {
  {
    MutexLock lock(&helpers_.mutex);
    if (!helpers_.tasks.empty()) return true;
  }
  {
    MutexLock lock(&injection_.mutex);
    if (!injection_.tasks.empty()) return true;
  }
  for (const auto& q : queues_) {
    MutexLock lock(&q->mutex);
    if (!q->tasks.empty()) return true;
  }
  return false;
}

bool Executor::HasHelperTask() {
  MutexLock lock(&helpers_.mutex);
  return !helpers_.tasks.empty();
}

bool Executor::RunOneHelperTask() {
  std::function<void()> task;
  {
    MutexLock lock(&helpers_.mutex);
    if (helpers_.tasks.empty()) return false;
    task = std::move(helpers_.tasks.front());
    helpers_.tasks.pop_front();
  }
  RunTask(task);
  { MutexLock lock(&sleep_mutex_); }
  sleep_cv_.NotifyAll();
  return true;
}

bool Executor::PopTask(int self_index, std::function<void()>* task) {
  if (queues_.empty()) return false;
  // Shard helpers first: some lane is blocked in a ParallelFor until they
  // retire, so they gate the pool's tail latency.
  {
    MutexLock lock(&helpers_.mutex);
    if (!helpers_.tasks.empty()) {
      *task = std::move(helpers_.tasks.front());
      helpers_.tasks.pop_front();
      return true;
    }
  }
  // …then the own deque (LIFO: the task most likely still in cache)…
  if (self_index >= 0) {
    WorkerQueue* own = queues_[static_cast<size_t>(self_index)].get();
    MutexLock lock(&own->mutex);
    if (!own->tasks.empty()) {
      *task = std::move(own->tasks.back());
      own->tasks.pop_back();
      return true;
    }
  }
  // …then the injection queue, then steal FIFO from the other workers.
  {
    MutexLock lock(&injection_.mutex);
    if (!injection_.tasks.empty()) {
      *task = std::move(injection_.tasks.front());
      injection_.tasks.pop_front();
      return true;
    }
  }
  size_t base = static_cast<size_t>(self_index < 0 ? 0 : self_index);
  for (size_t off = 1; off <= queues_.size(); ++off) {
    size_t victim = (base + off) % queues_.size();
    if (static_cast<int>(victim) == self_index) continue;
    WorkerQueue* q = queues_[victim].get();
    MutexLock lock(&q->mutex);
    if (!q->tasks.empty()) {
      *task = std::move(q->tasks.front());
      q->tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool Executor::RunOneTask(int self_index) {
  std::function<void()> task;
  if (!PopTask(self_index, &task)) return false;
  RunTask(task);
  // Completion may unblock a ParallelFor waiter (they sleep on the same
  // condition variable as idle workers).
  { MutexLock lock(&sleep_mutex_); }
  sleep_cv_.NotifyAll();
  return true;
}

void Executor::WorkerLoop(int index) {
  tls_executor = this;
  tls_worker_index = index;
  while (true) {
    if (RunOneTask(index)) continue;
    bool stopping;
    {
      MutexLock lock(&sleep_mutex_);
      while (!stop_.load(std::memory_order_acquire) && !HasPendingTask()) {
        sleep_cv_.Wait(&sleep_mutex_);
      }
      stopping = stop_.load(std::memory_order_acquire);
    }
    if (stopping) break;
  }
  tls_executor = nullptr;
  tls_worker_index = -1;
}

void Executor::ParallelFor(size_t n, size_t grain,
                           FunctionRef<void(size_t, size_t)> body) {
  if (n == 0) return;
  QHORN_CHECK(grain >= 1);
  size_t lanes = static_cast<size_t>(concurrency_);
  size_t shards = (n + grain - 1) / grain;
  if (workers_.empty() || shards <= 1) {
    body(0, n);
    return;
  }
  // Shard size: grain-aligned, aiming for ~4 shards per lane so a slow
  // lane sheds work to fast ones (the loop analogue of stealing).
  size_t target = lanes * 4;
  size_t step = ((shards + target - 1) / target) * grain;
  size_t chunks = (n + step - 1) / step;
  size_t helper_count = lanes - 1;
  if (helper_count > chunks - 1) helper_count = chunks - 1;

  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> helpers_done{0};
  };
  auto state = std::make_shared<LoopState>();
  auto run_chunks = [state, n, step, chunks, body] {
    // `body` is a FunctionRef into the caller's frame; ParallelFor cannot
    // return before helpers_done reaches helper_count, so the reference
    // stays valid for every chunk execution.
    size_t i;
    while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < chunks) {
      size_t begin = i * step;
      size_t end = begin + step < n ? begin + step : n;
      body(begin, end);
    }
  };
  for (size_t h = 0; h < helper_count; ++h) {
    {
      MutexLock lock(&helpers_.mutex);
      helpers_.tasks.push_back([state, run_chunks] {
        run_chunks();
        state->helpers_done.fetch_add(1, std::memory_order_release);
      });
    }
    { MutexLock lock(&sleep_mutex_); }
    sleep_cv_.NotifyAll();
  }
  run_chunks();
  // All chunks are claimed (possibly all by this thread). Wait for the
  // helper tasks to retire — and keep draining *helper* tasks while
  // waiting (never foreign Post()ed jobs, which would splice their whole
  // latency into this round), so nested ParallelFor calls from every
  // worker at once cannot deadlock the pool: every blocked waiter is
  // itself a consumer of the queue its progress depends on.
  while (state->helpers_done.load(std::memory_order_acquire) < helper_count) {
    if (RunOneHelperTask()) continue;
    MutexLock lock(&sleep_mutex_);
    while (state->helpers_done.load(std::memory_order_acquire) <
               helper_count &&
           !HasHelperTask()) {
      sleep_cv_.Wait(&sleep_mutex_);
    }
  }
}

}  // namespace qhorn
