// Checked assertions used across the qhorn library.
//
// The library avoids exceptions on hot paths (evaluation, question
// generation). Precondition violations are programming errors and abort with
// a diagnostic instead. QHORN_CHECK is always on (benchmark code depends on
// invariants holding in Release builds too); QHORN_DCHECK compiles out in
// NDEBUG builds and is used inside inner loops.

#ifndef QHORN_UTIL_CHECK_H_
#define QHORN_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace qhorn {
namespace internal {

/// Prints the failure message and aborts. Marked noreturn so CHECK macros
/// can be used in value-returning control flow.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace internal
}  // namespace qhorn

/// Aborts with a diagnostic when `cond` is false. Always enabled.
#define QHORN_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::qhorn::internal::CheckFailed(__FILE__, __LINE__, #cond, "");     \
    }                                                                    \
  } while (0)

/// QHORN_CHECK with an extra streamed message:
///   QHORN_CHECK_MSG(n <= 64, "n=" << n << " exceeds the 64-variable limit");
#define QHORN_CHECK_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream qhorn_check_stream_;                            \
      qhorn_check_stream_ << msg;                                        \
      ::qhorn::internal::CheckFailed(__FILE__, __LINE__, #cond,          \
                                     qhorn_check_stream_.str());         \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define QHORN_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define QHORN_DCHECK(cond) QHORN_CHECK(cond)
#endif

#endif  // QHORN_UTIL_CHECK_H_
