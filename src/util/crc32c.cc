#include "src/util/crc32c.h"

#include <array>

namespace qhorn {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

// kTables[0] is the classic byte-at-a-time table; kTables[k][b] extends a
// CRC by byte b followed by k zero bytes, which is what lets slicing-by-8
// fold eight input bytes per iteration with no data dependency between
// table lookups.
struct Tables {
  uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][b] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = tables.t[k - 1][b];
      tables.t[k][b] = tables.t[0][crc & 0xff] ^ (crc >> 8);
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (size >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[7][lo & 0xff] ^ kTables.t[6][(lo >> 8) & 0xff] ^
          kTables.t[5][(lo >> 16) & 0xff] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace qhorn
