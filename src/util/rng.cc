#include "src/util/rng.h"

#include <algorithm>

#include "src/util/check.h"

namespace qhorn {

uint64_t Rng::Next() {
  state_ += kGolden;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Below(uint64_t bound) {
  QHORN_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias; bias is tiny for small bounds,
  // but determinism across platforms matters more than speed here.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  QHORN_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Uniform() {
  // 53 random bits into the mantissa.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<int> Rng::Sample(int universe, int count) {
  QHORN_CHECK(count >= 0 && count <= universe);
  std::vector<int> all(static_cast<size_t>(universe));
  for (int i = 0; i < universe; ++i) all[static_cast<size_t>(i)] = i;
  Shuffle(&all);
  all.resize(static_cast<size_t>(count));
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace qhorn
