// Small statistics accumulators used by benchmarks to aggregate question
// counts across seeds.

#ifndef QHORN_UTIL_STATS_H_
#define QHORN_UTIL_STATS_H_

#include <cstdint>

namespace qhorn {

/// Streaming min / max / mean / population-stddev accumulator.
class Accumulator {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Population standard deviation (0 when fewer than two samples).
  double stddev() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Base-2 logarithm that treats lg(x) for x < 2 as 1, matching the paper's
/// convention that a binary search over one candidate still costs a question.
double Lg(double x);

}  // namespace qhorn

#endif  // QHORN_UTIL_STATS_H_
