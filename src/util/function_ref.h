// A lightweight non-owning callable reference (the std::function_ref of
// P0792, reduced to what the lattice walkers need).
//
// std::function allocates for large captures and always costs an indirect
// call through a type-erased vtable; passing one into the per-node lattice
// helpers put an allocation and two indirections on the learners' hottest
// loop. FunctionRef is two words (callable address + thunk), never
// allocates, and is trivially copyable. It must not outlive the referenced
// callable — use it for downward (callee) parameters only.

#ifndef QHORN_UTIL_FUNCTION_REF_H_
#define QHORN_UTIL_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace qhorn {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable with a compatible signature — a lambda, functor,
  /// or plain function. The callable is held by reference; the FunctionRef
  /// is invalid once it dies (free functions live forever).
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<R, F&, Args...> &&
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f) {  // NOLINT(google-explicit-constructor)
    using T = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<T>) {
      // Function lvalue: stash the function pointer itself (a
      // function-pointer round trip through void* is universal on the
      // platforms this builds for).
      target_ = reinterpret_cast<void*>(std::addressof(f));
      thunk_ = [](void* target, Args... args) -> R {
        return (*reinterpret_cast<T*>(target))(std::forward<Args>(args)...);
      };
    } else {
      target_ =
          const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      thunk_ = [](void* target, Args... args) -> R {
        return (*static_cast<T*>(target))(std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return thunk_(target_, std::forward<Args>(args)...);
  }

 private:
  void* target_;
  R (*thunk_)(void*, Args...);
};

}  // namespace qhorn

#endif  // QHORN_UTIL_FUNCTION_REF_H_
