// Plain-text table rendering for benchmark and example output.
//
// Every experiment binary prints paper-style rows through this class so the
// output in bench_output.txt lines up and is easy to diff against
// EXPERIMENTS.md.

#ifndef QHORN_UTIL_TABLE_H_
#define QHORN_UTIL_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qhorn {

/// Column-aligned text table. Usage:
///   TextTable t({"n", "questions", "n lg n", "ratio"});
///   t.AddRow({"8", "31", "24.0", "1.29"});
///   t.Print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable* table) : table_(table) {}
    RowBuilder& Cell(const std::string& value);
    RowBuilder& Cell(int64_t value);
    RowBuilder& Cell(uint64_t value);
    RowBuilder& Cell(int value) { return Cell(static_cast<int64_t>(value)); }
    RowBuilder& Cell(double value, int precision = 2);
    ~RowBuilder();

   private:
    TextTable* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string FormatDouble(double value, int precision = 2);

}  // namespace qhorn

#endif  // QHORN_UTIL_TABLE_H_
