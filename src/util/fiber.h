// Fiber — a stackful continuation for parked session jobs.
//
// The pending-round protocol suspends a job at a user-boundary round and
// resumes it when the answers arrive. Unwind-based suspension (JobSuspended
// + replay, src/util/suspend.h) keeps learners untouched but makes every
// resume re-execute the suspended job's question prefix: O(prefix) compute
// per resume, O(rounds²) per session even when the replayed questions are
// all cache hits. A fiber removes the re-execution entirely: the suspended
// job's call stack stays alive on its own mmap'd stack, and a resume is one
// context switch back into the exact frame that asked the question —
// O(1) compute per resume, O(rounds) per session.
//
// This is the minimal fiber for that one job: cooperatively scheduled,
// one-shot (runs its body to completion once), switched only by its owner
// (the session runner, which already serializes per-session work), never
// migrated while running. Resume() may be called from a different OS thread
// than the previous Resume() — executor lanes hand sessions around — which
// is safe for ucontext and annotated for the sanitizers.
//
// Sanitizer support: stack switches confuse AddressSanitizer (stack bounds)
// and ThreadSanitizer (per-stack shadow state) unless annotated. Both
// runtimes ship a fiber API for exactly this, and every switch here is
// wrapped in the corresponding __sanitizer_*_switch_fiber /
// __tsan_switch_to_fiber calls when compiled under the sanitizer. The
// low end of every fiber stack carries a PROT_NONE guard page, so an
// overflow faults instead of scribbling over a neighbour.
//
// Lifecycle contract: a Fiber must have finished (its body returned or
// unwound) before destruction — destroying a parked stack would skip the
// destructors of every live frame on it. Owners that need to tear down a
// parked fiber (correction, close, router shutdown) first make the parked
// wait-site throw (PendingOracle::RequestCancel) and Resume() once more:
// the stack unwinds through the ordinary exception machinery, the body
// catches at its boundary, and the fiber finishes cleanly.

#ifndef QHORN_UTIL_FIBER_H_
#define QHORN_UTIL_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>

namespace qhorn {

class Fiber {
 public:
  /// 512 KiB of usable stack: a session job's deepest path (learner lattice
  /// walk over a compiled-query pipeline) uses a small fraction of this,
  /// and the allocation is lazily committed — resident memory is only the
  /// pages actually touched, so a fleet of parked sessions stays cheap.
  static constexpr size_t kDefaultStackBytes = 512 * 1024;

  /// Allocates the stack; the body does not start until the first Resume().
  explicit Fiber(std::function<void()> body,
                 size_t stack_bytes = kDefaultStackBytes);
  /// Requires finished() (or never resumed); aborts otherwise — see the
  /// lifecycle contract above.
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches into the fiber: starts the body on the first call, returns
  /// from the parked Yield() on later ones. Returns when the fiber yields
  /// or its body finishes. Must not be called on a finished fiber, from
  /// inside the fiber, or concurrently with itself.
  void Resume();

  /// Switches back to the Resume() caller; returns when resumed again.
  /// Must be called from inside the fiber's body.
  void Yield();

  /// True once the body has returned (or unwound past it): the fiber holds
  /// no live frames and may be destroyed.
  bool finished() const { return finished_; }

  /// Total mapped stack bytes (guard page included) — the memory a parked
  /// continuation keeps resident-able, reported as the session's
  /// parked-state footprint.
  size_t stack_bytes() const { return alloc_bytes_; }

  /// Returns the dead region of a *parked* stack to the kernel. Stacks
  /// grow down, so everything below the parked frame's stack pointer is
  /// space only deeper future calls would reuse; madvise(MADV_DONTNEED)
  /// releases those pages (minus one slack page of red-zone headroom)
  /// while keeping the mapping — they refault zero-filled if the resumed
  /// continuation ever recurses that deep again. Returns the mapped bytes
  /// still backing the fiber afterwards (alloc minus trimmed); on a fiber
  /// that never started, already finished, or a platform without the
  /// trim, returns stack_bytes() untrimmed. Owner-only, like Resume().
  size_t TrimColdStack();

  /// Bytes the last TrimColdStack() released (0 after a Resume(): the
  /// pages fault back in as the continuation touches them).
  size_t trimmed_bytes() const { return trimmed_bytes_; }

 private:
  static void Trampoline(unsigned hi, unsigned lo);
  void Run();

  std::function<void()> body_;
  char* alloc_ = nullptr;        // mmap base (guard page first)
  char* stack_base_ = nullptr;   // usable stack bottom (above the guard)
  size_t alloc_bytes_ = 0;
  size_t stack_size_ = 0;        // usable bytes
  ucontext_t fiber_ctx_;
  ucontext_t host_ctx_;
  bool started_ = false;
  bool finished_ = false;
  size_t trimmed_bytes_ = 0;

  // Sanitizer bookkeeping (unused members cost nothing when the build has
  // no sanitizer; keeping them unconditional keeps the ABI stable across
  // presets).
  void* tsan_fiber_ = nullptr;
  void* tsan_host_ = nullptr;
  void* asan_host_fake_ = nullptr;   // host fake stack across a switch-in
  void* asan_fiber_fake_ = nullptr;  // fiber fake stack across a yield
  const void* asan_host_bottom_ = nullptr;
  size_t asan_host_size_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_UTIL_FIBER_H_
