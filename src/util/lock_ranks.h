// The single total order over every mutex in the tree.
//
// Clang thread-safety analysis (src/util/thread_annotations.h) proves
// *which* lock guards each field; it cannot prove locks are acquired in a
// deadlock-free *order*. That is the rank checker's job: every
// qhorn::Mutex / qhorn::SharedMutex is constructed with a name and a rank
// from this enum, and in debug/sanitizer builds a thread-local held-lock
// stack CHECK-fails on any same-or-lower-rank acquisition
// (src/util/checked_mutex.h). The rule is strict: a thread may only
// acquire a lock of strictly greater rank than every lock it already
// holds.
//
// The order below is derived from the real nesting paths in the code, not
// aspiration. Verified chains (each inner acquisition happens while the
// outer lock is held):
//
//   kExecutorSleep < kExecutorQueue
//     Executor::WorkerLoop / ParallelFor wait predicates call
//     HasPendingTask() — which takes each queue mutex in turn — while
//     holding sleep_mutex_.
//
//   kDurableRouter < kRouterShard < kWalShard < kFaultFs / kFs
//     The PR 9 durability chain: DurableRouter releases its id-map mutex
//     before calling into the router (so holding it across the call would
//     still be legal), SessionRouter::ProvideAnswersInternal invokes the
//     commit hook while holding exactly one shard mutex, the hook appends
//     to that shard's WAL (SessionLog::AppendRecord holds the log mutex
//     across WritableFile::Append/Sync), and MemFs/FaultFs lock their own
//     mutex inside the file operations. FaultFs releases its mutex before
//     delegating to the base file, but it ranks below kFs so holding it
//     across the call would also be legal.
//
// Everything else is a leaf — nothing is acquired while holding it:
//
//   kRouterPoll    SessionRouter::PendingRounds serialization; only the
//                  lock-free announcement stack and per-session atomics
//                  are touched under it.
//   kCacheStripe   CompiledQueryCache stripes; compiles happen *outside*
//                  all locks, the stripe lock covers only map probes.
//   kMemo          the CompactAntichainsOfWidth memo cache in
//                  src/core/enumerate.cc.
//
// The executor ranks sit at the very bottom deliberately: no legitimate
// path takes an executor lock while holding a service lock, and ranking
// them lowest turns "Post() while holding a router mutex" — which would
// deadlock outright at concurrency 1, where Post runs the task inline —
// into a loud rank violation in every checked build.
//
// Adding a mutex: pick the lowest rank consistent with every path that
// holds your lock while acquiring another (gaps in the numbering are left
// for exactly this), name it after the subsystem, and document the chain
// here. See README "Static analysis & lock discipline".

#ifndef QHORN_UTIL_LOCK_RANKS_H_
#define QHORN_UTIL_LOCK_RANKS_H_

namespace qhorn {

enum class LockRank : int {
  kExecutorSleep = 10,  // Executor::sleep_mutex_
  kExecutorQueue = 20,  // Executor worker/injection/helpers queues
  kDurableRouter = 30,  // DurableRouter id maps
  kRouterShard = 40,    // SessionRouter::mutex_ (one per shard)
  kRouterPoll = 45,     // SessionRouter::poll_mutex_ (leaf)
  kWalShard = 50,       // SessionLog::mutex_ (one per WAL shard)
  kFaultFs = 55,        // FaultFs fault-schedule mutex
  kFs = 60,             // MemFs file-table mutex
  kCacheStripe = 70,    // CompiledQueryCache per-stripe shared_mutex (leaf)
  kMemo = 90,           // enumerate.cc antichain memo cache (leaf)
};

/// Human-readable rank for rank-violation diagnostics.
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kExecutorSleep: return "executor-sleep";
    case LockRank::kExecutorQueue: return "executor-queue";
    case LockRank::kDurableRouter: return "durable-router";
    case LockRank::kRouterShard: return "router-shard";
    case LockRank::kRouterPoll: return "router-poll";
    case LockRank::kWalShard: return "wal-shard";
    case LockRank::kFaultFs: return "fault-fs";
    case LockRank::kFs: return "fs";
    case LockRank::kCacheStripe: return "cache-stripe";
    case LockRank::kMemo: return "memo";
  }
  return "unknown";
}

}  // namespace qhorn

#endif  // QHORN_UTIL_LOCK_RANKS_H_
