#include "src/util/checked_mutex.h"

#if QHORN_LOCK_RANK_CHECKS

#include <sstream>
#include <string>

#include "src/util/check.h"

namespace qhorn {
namespace {

struct HeldLock {
  const void* lock;
  const char* name;
  LockRank rank;
};

// Deepest legitimate nesting today is 5 (durable-router → router-shard →
// wal-shard → fault-fs → fs); 32 leaves generous headroom and keeps the
// stack a flat thread-local array with no allocation on the lock path.
constexpr int kMaxHeldLocks = 32;
thread_local HeldLock tls_held[kMaxHeldLocks];
thread_local int tls_held_count = 0;

std::string DescribeLock(const char* name, LockRank rank) {
  std::ostringstream out;
  out << "'" << name << "' (rank " << LockRankName(rank) << "/"
      << static_cast<int>(rank) << ")";
  return out.str();
}

std::string HeldStackString() {
  if (tls_held_count == 0) return "[]";
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < tls_held_count; ++i) {
    if (i > 0) out << " -> ";
    out << DescribeLock(tls_held[i].name, tls_held[i].rank);
  }
  out << "]";
  return out.str();
}

}  // namespace

void LockRankChecker::NoteAcquire(const void* lock, const char* name,
                                  LockRank rank) {
  for (int i = 0; i < tls_held_count; ++i) {
    QHORN_CHECK_MSG(tls_held[i].lock != lock,
                    "lock-rank: recursive acquisition of "
                        << DescribeLock(name, rank)
                        << "; held stack: " << HeldStackString());
  }
  if (tls_held_count > 0) {
    const HeldLock& top = tls_held[tls_held_count - 1];
    // Strictly greater: same-rank nesting is forbidden too — two locks of
    // one rank (e.g. two router shards) acquired together by different
    // threads in opposite orders is the classic cross-shard deadlock.
    QHORN_CHECK_MSG(static_cast<int>(rank) > static_cast<int>(top.rank),
                    "lock-rank violation: acquiring "
                        << DescribeLock(name, rank) << " while holding "
                        << DescribeLock(top.name, top.rank)
                        << "; acquisitions must strictly increase in rank "
                           "(src/util/lock_ranks.h); held stack: "
                        << HeldStackString());
  }
  QHORN_CHECK_MSG(tls_held_count < kMaxHeldLocks,
                  "lock-rank: held-lock stack overflow acquiring "
                      << DescribeLock(name, rank)
                      << "; held stack: " << HeldStackString());
  tls_held[tls_held_count++] = {lock, name, rank};
}

void LockRankChecker::NoteRelease(const void* lock, const char* name) {
  // Releases are usually LIFO (scoped guards) but out-of-order release is
  // legal; scan from the top.
  for (int i = tls_held_count - 1; i >= 0; --i) {
    if (tls_held[i].lock != lock) continue;
    for (int j = i; j + 1 < tls_held_count; ++j) {
      tls_held[j] = tls_held[j + 1];
    }
    --tls_held_count;
    return;
  }
  QHORN_CHECK_MSG(false, "lock-rank: releasing '"
                             << name
                             << "' which this thread does not hold; "
                                "held stack: "
                             << HeldStackString());
}

int LockRankChecker::HeldCount() { return tls_held_count; }

int LockRankChecker::HeldCountAtRank(LockRank rank) {
  int count = 0;
  for (int i = 0; i < tls_held_count; ++i) {
    if (tls_held[i].rank == rank) ++count;
  }
  return count;
}

void LockRankChecker::AssertNoneHeld(const char* where) {
  QHORN_CHECK_MSG(tls_held_count == 0,
                  "lock-rank: " << where
                                << " must run with no checked locks held; "
                                   "held stack: "
                                << HeldStackString());
}

void LockRankChecker::AssertHeldCountAtRank(LockRank rank, int expected,
                                            const char* where) {
  int held = HeldCountAtRank(rank);
  QHORN_CHECK_MSG(held == expected,
                  "lock-rank: " << where << " must hold exactly " << expected
                                << " lock(s) of rank " << LockRankName(rank)
                                << ", holds " << held
                                << "; held stack: " << HeldStackString());
}

}  // namespace qhorn

#endif  // QHORN_LOCK_RANK_CHECKS
