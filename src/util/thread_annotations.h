// Clang thread-safety-analysis attribute macros (abseil/leveldb idiom).
//
// Under clang these expand to the TSA attributes that make
// `-Wthread-safety -Werror=thread-safety` a compile-time proof that every
// access to a QHORN_GUARDED_BY field happens under its mutex and every
// QHORN_REQUIRES helper is called with the right lock held. Under gcc (the
// default toolchain here) they expand to nothing — the annotations are
// pure documentation that the `clangtsa` CI preset turns back into errors.
//
// Use the annotated types from src/util/checked_mutex.h, never raw
// std::mutex (tools/lint_locks.py enforces this): the wrappers carry
// QHORN_CAPABILITY so the analysis sees through them, and in
// debug/sanitizer builds they feed the runtime lock-rank checker that
// covers the one property TSA cannot express — lock *ordering*
// (src/util/lock_ranks.h).

#ifndef QHORN_UTIL_THREAD_ANNOTATIONS_H_
#define QHORN_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define QHORN_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define QHORN_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex"…).
#define QHORN_CAPABILITY(x) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define QHORN_SCOPED_CAPABILITY \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define QHORN_GUARDED_BY(x) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define QHORN_PT_GUARDED_BY(x) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares this mutex must be acquired before / after the named ones.
#define QHORN_ACQUIRED_BEFORE(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define QHORN_ACQUIRED_AFTER(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively (e.g. `...Locked()`
/// helpers that touch QHORN_GUARDED_BY fields).
#define QHORN_REQUIRES(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define QHORN_REQUIRES_SHARED(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and does not
/// release it before returning.
#define QHORN_ACQUIRE(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define QHORN_ACQUIRE_SHARED(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either).
#define QHORN_RELEASE(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define QHORN_RELEASE_SHARED(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define QHORN_RELEASE_GENERIC(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; the bool result tells the analysis
/// whether it succeeded.
#define QHORN_TRY_ACQUIRE(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define QHORN_TRY_ACQUIRE_SHARED(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against self-deadlock on
/// non-recursive mutexes).
#define QHORN_EXCLUDES(...) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held without acquiring it
/// (runtime-verified assertions).
#define QHORN_ASSERT_CAPABILITY(x) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define QHORN_ASSERT_SHARED_CAPABILITY(x) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Function returns a reference to the named capability (accessor idiom).
#define QHORN_RETURN_CAPABILITY(x) \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Opts a function out of the analysis. Every use must carry a written
/// justification — legitimate only for genuinely lock-free protocols
/// (Treiber stack push/pop, the awaiting/retired round atomics, fiber
/// stack switching) where the synchronization lives outside the mutex
/// model TSA reasons about.
#define QHORN_NO_TSA \
  QHORN_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // QHORN_UTIL_THREAD_ANNOTATIONS_H_
