// A small work-stealing thread pool shared by the concurrent layers.
//
// Three consumers, one primitive:
//   * CompiledQuery::EvaluateAll shards large oracle rounds (ParallelFor),
//   * AsyncOracle runs its backend evaluation on the pool,
//   * SessionRouter multiplexes many sessions' jobs across it (Post).
//
// Design points:
//   * An Executor of concurrency c owns c-1 worker threads; the thread
//     that calls ParallelFor is the c-th lane, so a pool is never idle
//     while its creator spins.
//   * Each worker owns a deque: its own tasks pop LIFO (cache-warm),
//     other workers steal FIFO from the opposite end, and threads that are
//     not pool members inject into a shared queue.
//   * ParallelFor carves [0, n) into grain-aligned shards claimed off an
//     atomic cursor (the work-stealing analogue for loops: a fast shard
//     claims the next one, nobody waits on a static partition). The caller
//     claims shards too, and while waiting for helpers it drains other
//     pool tasks — a worker blocked in ParallelFor can never deadlock the
//     pool, even when every worker waits inside a nested loop at once.
//   * Concurrency 1 is the inline fallback: no threads are spawned,
//     ParallelFor runs the body in the caller, Post invokes the task
//     synchronously. A sequential build and a 1-thread pool behave
//     identically, which the differential tests exploit.
//
// DefaultConcurrency() — the lane count an Executor(0) gets — honours the
// QHORN_THREADS environment variable and falls back to
// std::thread::hardware_concurrency(). Pools are owned by their layer
// (the SessionRouter owns the service pool); there is deliberately no
// process-global pool.

#ifndef QHORN_UTIL_EXECUTOR_H_
#define QHORN_UTIL_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/checked_mutex.h"
#include "src/util/function_ref.h"

namespace qhorn {

class Executor {
 public:
  /// Concurrency resolved from the QHORN_THREADS environment variable when
  /// set (clamped to [1, 256]), else std::thread::hardware_concurrency().
  static int DefaultConcurrency();

  /// `threads` ≤ 0 means DefaultConcurrency(). A pool of concurrency c
  /// spawns c-1 workers.
  explicit Executor(int threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total lanes, counting the calling thread's ParallelFor participation.
  int concurrency() const { return concurrency_; }

  /// Enqueues `task` for asynchronous execution. At concurrency 1 the task
  /// runs inline before Post returns. Tasks must not leak exceptions onto
  /// their lane; in particular the JobSuspended continuation signal
  /// (src/util/suspend.h) must be caught by the job runner inside the
  /// task — a suspension reaching the executor aborts with a diagnostic.
  void Post(std::function<void()> task);

  /// Invokes body(begin, end) over disjoint ranges covering [0, n), in
  /// parallel across the pool, and returns when all of [0, n) is done.
  /// Every range boundary except n itself is a multiple of `grain`, so a
  /// body writing bit-packed output can partition on 64-bit words by
  /// passing a grain of 64. Blocking: the calling thread both executes
  /// shards and drains unrelated pool tasks while it waits.
  void ParallelFor(size_t n, size_t grain, FunctionRef<void(size_t, size_t)> body);

  /// Statistics for tests and ServiceStats: tasks executed by a thread
  /// other than the one that posted/spawned them.
  int64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  // Lock order (src/util/lock_ranks.h): sleep_mutex_ (kExecutorSleep) is
  // taken first — the wait predicates call HasPendingTask(), which walks
  // the queue mutexes (kExecutorQueue), while holding it. Tasks always
  // run with no executor lock held.
  struct WorkerQueue {
    Mutex mutex{"executor-queue", LockRank::kExecutorQueue};
    std::deque<std::function<void()>> tasks QHORN_GUARDED_BY(mutex);
  };

  void WorkerLoop(int index);
  /// Runs one pending task if any queue has one. Returns false when every
  /// queue was empty.
  bool RunOneTask(int self_index);
  /// Runs one pending ParallelFor helper, if any. The only draining a
  /// ParallelFor waiter does: helpers are short bounded shard loops, so a
  /// waiter never absorbs a foreign Post()ed job (e.g. another session's
  /// entire learn) into its own round's latency.
  bool RunOneHelperTask();
  bool PopTask(int self_index, std::function<void()>* task);
  bool HasPendingTask();
  bool HasHelperTask();

  int concurrency_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  WorkerQueue injection_;  // tasks posted from outside the pool
  WorkerQueue helpers_;    // ParallelFor shard helpers (drained first)
  std::vector<std::thread> workers_;
  Mutex sleep_mutex_{"executor-sleep", LockRank::kExecutorSleep};
  CondVar sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> steals_{0};
};

}  // namespace qhorn

#endif  // QHORN_UTIL_EXECUTOR_H_
