// CRC32C (Castagnoli) — the checksum framing the durable session log.
//
// Every record in a SessionLog file (src/durable/session_log.h) is
// length-prefixed and carries the CRC32C of its payload, so recovery can
// tell a torn tail (truncate loudly) from bit-rot (reject with a typed
// error) from a clean record. Castagnoli rather than the zlib polynomial
// because its error-detection properties at short record lengths are
// strictly better and it is the WAL-framing convention (leveldb, kafka,
// iSCSI). Software slicing-by-8 tables: ~1 GB/s, far above the fsync-bound
// append path, with no ISA dependency.

#ifndef QHORN_UTIL_CRC32C_H_
#define QHORN_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qhorn {

/// CRC32C of `data`, optionally extending a running checksum: pass the
/// previous return value as `crc` to checksum a logical stream in chunks.
/// Crc32c(a+b) == Crc32c(b, Crc32c(a)).
uint32_t Crc32c(const void* data, size_t size, uint32_t crc = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t crc = 0) {
  return Crc32c(data.data(), data.size(), crc);
}

/// The log stores checksums "masked" (rotated and offset, the leveldb
/// trick): a log file embedded inside another checksummed stream must not
/// contain the raw CRC of bytes that are themselves nearby, or nested
/// checksumming degenerates. Mask before writing, unmask after reading.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t UnmaskCrc32c(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace qhorn

#endif  // QHORN_UTIL_CRC32C_H_
