// Deterministic pseudo-random number generation for tests, random query
// generation and benchmark workloads.
//
// Everything in the library that consumes randomness takes an explicit Rng&
// so runs are reproducible from a single seed (benchmarks print their seeds).

#ifndef QHORN_UTIL_RNG_H_
#define QHORN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qhorn {

/// SplitMix64-based deterministic generator. Small, fast, and statistically
/// adequate for workload synthesis (we are not doing cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGolden) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Below(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<size_t>(Below(items.size()))];
  }

  /// Chooses `count` distinct values from [0, universe) in sorted order.
  std::vector<int> Sample(int universe, int count);

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  uint64_t state_;
};

}  // namespace qhorn

#endif  // QHORN_UTIL_RNG_H_
