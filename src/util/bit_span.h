// Bit-packed answer storage for oracle rounds.
//
// IsAnswerBatch used to return answers through a std::vector<bool>* that
// every decorator cleared, reserved and refilled — one allocation per round
// per layer, and ~2× the cost of a plain IsAnswer on one-question rounds
// (the ROADMAP's "one-question round plumbing" item). BitSpan is a
// non-owning mutable view over caller-provided bit storage: the caller
// sizes a reusable BitVec once per probe loop, hands out spans, and the
// whole oracle stack writes verdict bits in place with zero allocation.
//
// Concurrency contract: Set() is a non-atomic read-modify-write of a
// 64-bit word. Concurrent writers (the parallel EvaluateAll shards) must
// own disjoint *word* ranges — i.e. partition the index space at positions
// where word_index() changes — not merely disjoint bit ranges.

#ifndef QHORN_UTIL_BIT_SPAN_H_
#define QHORN_UTIL_BIT_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qhorn {

/// Mutable view over `size` bits starting `offset` bits into `words`.
class BitSpan {
 public:
  BitSpan() = default;
  BitSpan(uint64_t* words, size_t offset, size_t size)
      : words_(words), offset_(offset), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const {
    size_t b = offset_ + i;
    return (words_[b >> 6] >> (b & 63)) & 1;
  }

  void Set(size_t i, bool value) {
    size_t b = offset_ + i;
    uint64_t mask = uint64_t{1} << (b & 63);
    if (value) {
      words_[b >> 6] |= mask;
    } else {
      words_[b >> 6] &= ~mask;
    }
  }

  /// The suffix starting at bit `pos` (pos ≤ size()).
  BitSpan Subspan(size_t pos) const {
    return BitSpan(words_, offset_ + pos, size_ - pos);
  }

  /// Word index bit i lives in — parallel writers partition on this.
  size_t word_index(size_t i) const { return (offset_ + i) >> 6; }

 private:
  uint64_t* words_ = nullptr;
  size_t offset_ = 0;
  size_t size_ = 0;
};

/// Owning, reusable bit buffer. A probe loop keeps one BitVec alive and
/// calls Prepare(k) per round: after warm-up no round allocates.
class BitVec {
 public:
  /// Resizes to `size` bits and returns the full span. Contents are
  /// *unspecified* until written: the IsAnswerBatch contract is that every
  /// answer bit is set before the round returns, so zero-filling here
  /// would only re-dirty the cache line on the hottest (one-question)
  /// rounds.
  BitSpan Prepare(size_t size) {
    size_ = size;
    size_t words = (size + 63) >> 6;
    if (words_.size() < words) words_.resize(words);
    return span();
  }

  BitSpan span() { return BitSpan(words_.data(), 0, size_); }

  size_t size() const { return size_; }
  bool Get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  void Set(size_t i, bool value) {
    uint64_t mask = uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_UTIL_BIT_SPAN_H_
