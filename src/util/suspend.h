// The suspension signal for continuation-style session jobs.
//
// The paper's protocol is interactive: each oracle round may be a real
// user answering membership questions with seconds-to-minutes latency. A
// job that blocks a thread for that long pins an executor lane per open
// session — the opposite of thousands of sessions sharing a small pool.
// Instead, an oracle backend that cannot answer a round synchronously
// (PendingOracle, src/oracle/pending.h) records the round's questions and
// throws JobSuspended: the in-flight job unwinds off its lane at the round
// boundary, the lane is free the moment the unwind reaches the job runner,
// and the session re-enters later by re-running the job with the answered
// prefix replayed (ReplayOracle) — continuations by replay, so learners
// need no restructuring.
//
// JobSuspended is a control-flow signal, not an error: it deliberately
// does not derive from std::exception so generic catch (const
// std::exception&) handlers cannot swallow it. It must be caught at the
// job boundary (SessionRouter's runner). The Executor treats a suspension
// escaping onto one of its lanes as a programming error and aborts with a
// diagnostic — a lost suspension would silently leak the session.

#ifndef QHORN_UTIL_SUSPEND_H_
#define QHORN_UTIL_SUSPEND_H_

namespace qhorn {

/// Thrown by a pending-capable oracle backend to unwind the current job at
/// a round boundary. Carries no payload: the suspending backend retains
/// the pending round; the catcher harvests it from there.
struct JobSuspended {};

}  // namespace qhorn

#endif  // QHORN_UTIL_SUSPEND_H_
