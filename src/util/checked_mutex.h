// Annotated, rank-checked mutex types — the only lock primitives the tree
// is allowed to use (tools/lint_locks.py forbids raw std::mutex and
// friends everywhere outside this header).
//
// Two layers, one type:
//
//  * Compile time: every type carries the Clang thread-safety attributes
//    (QHORN_CAPABILITY / QHORN_SCOPED_CAPABILITY, acquire/release on the
//    methods), so under the `clangtsa` preset `-Wthread-safety
//    -Werror=thread-safety` proves QHORN_GUARDED_BY fields are only
//    touched under their mutex. Under gcc the attributes vanish and the
//    types are thin wrappers over std::mutex / std::shared_mutex.
//
//  * Run time (debug/sanitizer builds): every mutex is constructed with a
//    name and a LockRank (src/util/lock_ranks.h). A thread-local
//    held-lock stack CHECK-fails — naming both locks and printing the
//    full held stack — on any same-or-lower-rank acquisition, recursive
//    acquisition, or mismatched release. This is the deadlock property
//    thread-safety analysis cannot express. The checker also exposes
//    HeldCountAtRank so SessionRouter can assert the PR 9 invariant that
//    a DurableRouter commit hook runs under exactly one shard mutex.
//
// The checker is compiled out when QHORN_LOCK_RANK_CHECKS is 0 (the
// release preset): Lock() collapses to mutex_.lock() and the
// BM_RouterContention gate pair is unaffected. CMake drives the macro —
// on for Debug and for any QHORN_SANITIZE build (note the tsan preset is
// RelWithDebInfo, so an NDEBUG test would wrongly disable it there) —
// with a !NDEBUG fallback for out-of-tree compiles.
//
// CondVar deliberately wraps std::condition_variable (not the slower
// condition_variable_any) leveldb-style, adopting the Mutex's native
// handle around the wait. Write waits as explicit loops at the call site
//
//   MutexLock lock(&mu);
//   while (!predicate_over_guarded_fields) cv.Wait(&mu);
//
// rather than passing a predicate lambda: the loop body is analyzed in
// the scope that visibly holds the lock, so TSA accepts the guarded
// reads without any annotation escape hatch.

#ifndef QHORN_UTIL_CHECKED_MUTEX_H_
#define QHORN_UTIL_CHECKED_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/util/lock_ranks.h"
#include "src/util/thread_annotations.h"

// Normally defined (0 or 1) on the command line by the root
// CMakeLists.txt; the fallback keeps the header self-contained for the
// negative-compile fixtures and any out-of-tree use.
#ifndef QHORN_LOCK_RANK_CHECKS
#ifdef NDEBUG
#define QHORN_LOCK_RANK_CHECKS 0
#else
#define QHORN_LOCK_RANK_CHECKS 1
#endif
#endif

namespace qhorn {

/// True when this build carries the runtime lock-rank checker. Tests use
/// it to skip death tests in release builds.
inline constexpr bool kLockRankChecksEnabled = QHORN_LOCK_RANK_CHECKS != 0;

/// The runtime rank checker: a per-thread stack of held locks. All
/// methods are static and thread-local-backed; in unchecked builds every
/// call inlines to nothing.
class LockRankChecker {
 public:
#if QHORN_LOCK_RANK_CHECKS
  /// Records an acquisition about to happen. CHECK-fails (before the
  /// would-be deadlock blocks) on recursive acquisition or on a rank not
  /// strictly greater than the top of the held stack.
  static void NoteAcquire(const void* lock, const char* name, LockRank rank);
  /// Records a release. CHECK-fails when `lock` is not held.
  static void NoteRelease(const void* lock, const char* name);
  /// Number of checked locks this thread currently holds.
  static int HeldCount();
  /// Number of held locks at exactly `rank`.
  static int HeldCountAtRank(LockRank rank);
  /// CHECK-fails unless this thread holds zero checked locks. Used at
  /// points that must never run under a lock: executor task entry (a
  /// Post under a lock deadlocks at concurrency 1, where tasks run
  /// inline) and fiber parks (a parked lock would be held across an
  /// unbounded user round trip).
  static void AssertNoneHeld(const char* where);
  /// CHECK-fails unless exactly `expected` locks of `rank` are held —
  /// the DurableRouter commit-hook invariant (exactly one shard mutex).
  static void AssertHeldCountAtRank(LockRank rank, int expected,
                                    const char* where);
#else
  static void NoteAcquire(const void*, const char*, LockRank) {}
  static void NoteRelease(const void*, const char*) {}
  static int HeldCount() { return 0; }
  static int HeldCountAtRank(LockRank) { return 0; }
  static void AssertNoneHeld(const char*) {}
  static void AssertHeldCountAtRank(LockRank, int, const char*) {}
#endif
};

/// Annotated, rank-checked drop-in for std::mutex.
class QHORN_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (string literals in practice).
  Mutex(const char* name, LockRank rank) : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QHORN_ACQUIRE() {
    // Note before blocking: a rank violation aborts with both lock names
    // instead of deadlocking silently.
    LockRankChecker::NoteAcquire(this, name_, rank_);
    mutex_.lock();
  }

  void Unlock() QHORN_RELEASE() {
    LockRankChecker::NoteRelease(this, name_);
    mutex_.unlock();
  }

  bool TryLock() QHORN_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
    LockRankChecker::NoteAcquire(this, name_, rank_);
    return true;
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mutex_;
  const char* const name_;
  const LockRank rank_;
};

/// Annotated, rank-checked drop-in for std::shared_mutex. Shared
/// acquisitions obey the same rank rules as exclusive ones — in
/// particular a thread may not re-enter its own read lock (a second
/// shared lock from one thread can deadlock against a queued writer).
class QHORN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(const char* name, LockRank rank) : name_(name), rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() QHORN_ACQUIRE() {
    LockRankChecker::NoteAcquire(this, name_, rank_);
    mutex_.lock();
  }

  void Unlock() QHORN_RELEASE() {
    LockRankChecker::NoteRelease(this, name_);
    mutex_.unlock();
  }

  void LockShared() QHORN_ACQUIRE_SHARED() {
    LockRankChecker::NoteAcquire(this, name_, rank_);
    mutex_.lock_shared();
  }

  void UnlockShared() QHORN_RELEASE_SHARED() {
    LockRankChecker::NoteRelease(this, name_);
    mutex_.unlock_shared();
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mutex_;
  const char* const name_;
  const LockRank rank_;
};

/// RAII exclusive lock over Mutex (abseil MutexLock idiom: pointer
/// argument, no unlock/relock surface).
class QHORN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QHORN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QHORN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over SharedMutex.
class QHORN_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) QHORN_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() QHORN_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class QHORN_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) QHORN_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() QHORN_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to qhorn::Mutex. Wraps
/// std::condition_variable (not condition_variable_any) by adopting the
/// mutex's native handle around the wait, leveldb-style — same generated
/// code as the raw primitive on the hot paths the BM_RouterContention
/// gate watches. The held-lock entry intentionally stays on the rank
/// stack across the wait: the thread is blocked, and on wake it holds
/// the mutex again.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, waits, and reacquires it. Spurious
  /// wakeups happen; always wait in a predicate loop.
  void Wait(Mutex* mu) QHORN_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu->mutex_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qhorn

#endif  // QHORN_UTIL_CHECKED_MUTEX_H_
