// The query verifier (§4): poses a verification set to the user's oracle
// and reports every question whose classification disagrees with the given
// query's expectation. The query is correct only if no question disagrees.

#ifndef QHORN_VERIFY_VERIFIER_H_
#define QHORN_VERIFY_VERIFIER_H_

#include <string>
#include <vector>

#include "src/oracle/oracle.h"
#include "src/verify/verification_set.h"

namespace qhorn {

/// One disagreement between qg's expectation and the user's classification.
struct Discrepancy {
  size_t question_index;
  QuestionFamily family;
  std::string description;
};

struct VerificationReport {
  /// True iff the user agreed with every expected classification.
  bool accepted = true;
  std::vector<Discrepancy> discrepancies;
  int64_t questions_asked = 0;
};

/// Asks every question of `set` (verification is a fixed set, not adaptive —
/// all questions are posed even after a first disagreement, matching the
/// paper's model of presenting the whole set).
VerificationReport RunVerification(const VerificationSet& set,
                                   MembershipOracle* user);

/// Convenience: build the verification set for `given` and run it against
/// `user`.
VerificationReport VerifyQuery(const Query& given, MembershipOracle* user,
                               const VerificationSetOptions& opts =
                                   VerificationSetOptions());

}  // namespace qhorn

#endif  // QHORN_VERIFY_VERIFIER_H_
