#include "src/verify/distinguishing.h"

#include <algorithm>
#include <set>

#include "src/bool/lattice.h"
#include "src/core/normalize.h"

namespace qhorn {

std::vector<ExistentialTupleInfo> DominantExistentialTuples(const Query& q) {
  std::set<VarSet> user_closures;
  std::vector<VarSet> pool;
  for (const ExistentialConj& e : q.existential()) {
    VarSet closed = q.HornClosure(e.vars);
    user_closures.insert(closed);
    pool.push_back(closed);
  }
  for (const UniversalHorn& u : q.universal()) {
    pool.push_back(q.HornClosure(u.GuaranteeVars()));
  }
  std::vector<ExistentialTupleInfo> out;
  for (VarSet vars : MaximalAntichain(std::move(pool))) {
    out.push_back(ExistentialTupleInfo{
        vars, /*guarantee_only=*/user_closures.count(vars) == 0});
  }
  return out;
}

std::vector<UniversalHorn> DominantUniversalHorns(const Query& q) {
  CanonicalForm form = Canonicalize(q);
  std::vector<UniversalHorn> out;
  for (const auto& [head, bodies] : form.universal) {
    for (VarSet body : bodies) out.push_back(UniversalHorn{body, head});
  }
  return out;
}

Tuple UniversalDistinguishingTuple(const UniversalHorn& horn,
                                   VarSet all_heads) {
  return horn.body | (all_heads & ~VarBit(horn.head));
}

std::vector<Tuple> ViolationFreeChildren(
    Tuple t, int n, const std::vector<UniversalHorn>& horns) {
  return LatticeChildrenFiltered(t, AllTrue(n), [&horns](Tuple child) {
    for (const UniversalHorn& u : horns) {
      if (u.ViolatedBy(child)) return false;
    }
    return true;
  });
}

std::vector<Tuple> ViolationFreeChildren(Tuple t, int n,
                                         const CompiledQuery& compiled) {
  return LatticeChildrenFiltered(t, AllTrue(n), [&compiled](Tuple child) {
    return !compiled.ViolatesUniversal(child);
  });
}

}  // namespace qhorn
