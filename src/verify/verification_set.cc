#include "src/verify/verification_set.h"

#include <set>

#include "src/core/classify.h"
#include "src/core/compiled_query.h"
#include "src/core/normalize.h"
#include "src/verify/distinguishing.h"
#include "src/util/check.h"

namespace qhorn {

const char* FamilyName(QuestionFamily family) {
  switch (family) {
    case QuestionFamily::kA1: return "A1";
    case QuestionFamily::kN1: return "N1";
    case QuestionFamily::kA2: return "A2";
    case QuestionFamily::kN2: return "N2";
    case QuestionFamily::kA3: return "A3";
    case QuestionFamily::kA4: return "A4";
  }
  return "?";
}

int64_t VerificationSet::total_tuples() const {
  int64_t total = 0;
  for (const VerificationQuestion& q : questions) {
    total += static_cast<int64_t>(q.question.size());
  }
  return total;
}

std::string VerificationSet::ToString() const {
  std::string out = "verification set for: " + given.ToString() + "\n";
  for (const VerificationQuestion& q : questions) {
    out += "  [" + std::string(FamilyName(q.family)) + "] " +
           q.question.ToString(given.n()) +
           (q.expected_answer ? "  expect: answer" : "  expect: non-answer") +
           "    (" + q.description + ")\n";
  }
  return out;
}

namespace {

// Enumerates the A3 search roots: every way of choosing one variable from
// each body, deduplicated.
std::vector<VarSet> A3Exclusions(const std::vector<VarSet>& bodies,
                                 uint64_t max_roots) {
  std::set<VarSet> current = {0};
  for (VarSet body : bodies) {
    std::set<VarSet> next;
    for (VarSet prefix : current) {
      for (int v : VarsOf(body)) next.insert(prefix | VarBit(v));
    }
    current = std::move(next);
    QHORN_CHECK_MSG(current.size() <= max_roots,
                    "A3 root product exceeds max_a3_roots");
  }
  return std::vector<VarSet>(current.begin(), current.end());
}

}  // namespace

VerificationSet BuildVerificationSet(const Query& given,
                                     const VerificationSetOptions& opts) {
  QHORN_CHECK_MSG(IsRolePreserving(given),
                  "verification sets are defined for role-preserving qhorn");
  QHORN_CHECK_MSG(given.size_k() > 0, "cannot verify the empty query");

  VerificationSet set;
  set.given = Normalize(given);
  const Query& q = set.given;
  int n = q.n();
  Tuple all = AllTrue(n);

  // One compilation serves the whole construction: the N1 violation-free
  // child walks below and the expected-label self-test at the end both
  // evaluate against it (compiling per use was the BM_BuildVerificationSet
  // regression ROADMAP flagged).
  CompiledQuery compiled(q);

  std::vector<UniversalHorn> horns = DominantUniversalHorns(q);
  // Distinguishing tuples come from the *original* query: normalization
  // rewrites guarantee clauses into explicit conjunctions, which would
  // erase the user-written vs guarantee-only distinction N1 relies on.
  std::vector<ExistentialTupleInfo> exist = DominantExistentialTuples(given);
  VarSet heads = 0;
  for (const UniversalHorn& u : horns) heads |= VarBit(u.head);

  auto add = [&](QuestionFamily family, TupleSet question, bool expected,
                 std::string description) {
    set.questions.push_back(VerificationQuestion{
        family, std::move(question), expected, std::move(description)});
  };

  // A1: one question holding every dominant existential distinguishing
  // tuple.
  {
    std::vector<Tuple> tuples;
    for (const ExistentialTupleInfo& info : exist) tuples.push_back(info.tuple);
    add(QuestionFamily::kA1, TupleSet(std::move(tuples)), true,
        "all dominant existential distinguishing tuples");
  }

  // N1: per non-guarantee distinguishing tuple, replace it by its
  // violation-free children.
  for (const ExistentialTupleInfo& info : exist) {
    if (info.guarantee_only) continue;
    std::vector<Tuple> tuples = ViolationFreeChildren(info.tuple, n, compiled);
    for (const ExistentialTupleInfo& other : exist) {
      if (other.tuple != info.tuple) tuples.push_back(other.tuple);
    }
    add(QuestionFamily::kN1, TupleSet(std::move(tuples)), false,
        "N1 " + ExistentialConj{info.tuple}.ToString());
  }

  // A2 / N2: per dominant universal Horn expression.
  for (const UniversalHorn& u : horns) {
    Tuple tg = UniversalDistinguishingTuple(u, heads);
    std::vector<Tuple> children;
    children.push_back(all);
    for (int b : VarsOf(u.body)) children.push_back(tg & ~VarBit(b));
    add(QuestionFamily::kA2, TupleSet(std::move(children)), true,
        "A2 " + u.ToString());
    add(QuestionFamily::kN2, TupleSet{all, tg}, false, "N2 " + u.ToString());
  }

  // A3: per dominant existential conjunction C and universal head h ∈ C.
  // The search roots exclude one variable from each of h's dominant bodies
  // lying inside C; when none does, the product is empty and the single
  // root keeps all of C \ {h} true — the question Theorem 4.2 case 1(b)(ii)
  // needs to expose an intended body hiding inside C that is incomparable
  // with every body of qg.
  for (const ExistentialTupleInfo& info : exist) {
    VarSet c = info.tuple;
    for (int h : VarsOf(c & heads)) {
      std::vector<VarSet> inside;
      bool bodyless = false;
      for (const UniversalHorn& u : horns) {
        if (u.head != h) continue;
        if (u.body == 0) bodyless = true;
        if (u.body != 0 && IsSubset(u.GuaranteeVars(), c)) {
          inside.push_back(u.body);
        }
      }
      // A bodyless head is always true; no incomparable body can exist.
      if (bodyless) continue;
      std::vector<Tuple> tuples;
      tuples.push_back(all);
      for (VarSet excluded : A3Exclusions(inside, opts.max_a3_roots)) {
        Tuple root = (c & ~excluded & ~VarBit(h)) | (heads & ~VarBit(h));
        tuples.push_back(root);
      }
      add(QuestionFamily::kA3, TupleSet(std::move(tuples)), true,
          "A3 " + ExistentialConj{c}.ToString() + " / head x" +
              std::to_string(h + 1));
    }
  }

  // A4: the all-true tuple plus one tuple per non-head variable.
  {
    std::vector<Tuple> tuples;
    tuples.push_back(all);
    for (int v : VarsOf(AllTrue(n) & ~heads)) {
      tuples.push_back(all & ~VarBit(v));
    }
    add(QuestionFamily::kA4, TupleSet(std::move(tuples)), true,
        "A4 non-head variables stay non-heads");
  }

  if (opts.validate_expected) {
    // The construction self-test re-evaluates every question against qg in
    // one batch through the already-compiled form — the A1–A4 families are
    // validated the way a batched oracle would answer them.
    std::vector<TupleSet> questions;
    questions.reserve(set.questions.size());
    for (const VerificationQuestion& vq : set.questions) {
      questions.push_back(vq.question);
    }
    std::vector<bool> actual;
    compiled.EvaluateAll(questions, &actual);
    for (size_t i = 0; i < set.questions.size(); ++i) {
      const VerificationQuestion& vq = set.questions[i];
      QHORN_CHECK_MSG(actual[i] == vq.expected_answer,
                      "verification-set construction bug: "
                          << vq.description << " expected "
                          << vq.expected_answer << " but qg says "
                          << actual[i]);
    }
  }
  return set;
}

}  // namespace qhorn
