// Verification-set construction (§4, Fig. 6).
//
// Given a role-preserving qhorn query qg, the verifier builds O(k)
// membership questions whose classifications qg pins down. If the user's
// intended query qi is semantically different from qg, at least one
// question is classified differently by qi (Theorem 4.2):
//
//   A1 — all dominant existential distinguishing tuples (expected answer);
//   N1 — per non-guarantee distinguishing tuple: its violation-free
//        children plus the other A1 tuples (expected non-answer);
//   A2 — per dominant universal Horn expression: the all-true tuple plus
//        the children of its universal distinguishing tuple (expected
//        answer);
//   N2 — per dominant universal Horn expression: the all-true tuple plus
//        its universal distinguishing tuple (expected non-answer);
//   A3 — per dominant existential conjunction C that dominates guarantee
//        clauses of universal Horn expressions ∀B_i→h (B_i∪{h} ⊆ C): the
//        all-true tuple plus the search roots that falsify one variable of
//        each B_i inside C (expected answer) — detects a missing
//        incomparable body for h;
//   A4 — the all-true tuple plus one tuple per non-head variable v with
//        only v false (expected answer) — detects head variables qg missed.

#ifndef QHORN_VERIFY_VERIFICATION_SET_H_
#define QHORN_VERIFY_VERIFICATION_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bool/tuple_set.h"
#include "src/core/query.h"

namespace qhorn {

/// Question family of Fig. 6.
enum class QuestionFamily { kA1, kN1, kA2, kN2, kA3, kA4 };

/// Short name, e.g. "A1".
const char* FamilyName(QuestionFamily family);

/// One membership question of a verification set.
struct VerificationQuestion {
  QuestionFamily family;
  TupleSet question;
  /// qg's own classification; the user detects a discrepancy by disagreeing.
  bool expected_answer;
  /// What the question checks, e.g. "N2 ∀x1x4→x5".
  std::string description;
};

struct VerificationSetOptions {
  /// Upper bound on A3 search roots per question (the product can reach
  /// n^θ; verification sets stay interactive by capping it).
  uint64_t max_a3_roots = 4096;
  /// Double-check each question's expected label by evaluating qg
  /// (construction self-test; cheap, on by default).
  bool validate_expected = true;
};

/// The verification set of a query.
struct VerificationSet {
  Query given;  ///< normalized qg
  std::vector<VerificationQuestion> questions;

  int64_t total_tuples() const;
  std::string ToString() const;
};

/// Builds the Fig. 6 verification set for `given` (must be role-preserving
/// and non-empty).
VerificationSet BuildVerificationSet(
    const Query& given,
    const VerificationSetOptions& opts = VerificationSetOptions());

}  // namespace qhorn

#endif  // QHORN_VERIFY_VERIFICATION_SET_H_
