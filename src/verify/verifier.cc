#include "src/verify/verifier.h"

namespace qhorn {

VerificationReport RunVerification(const VerificationSet& set,
                                   MembershipOracle* user) {
  VerificationReport report;
  for (size_t i = 0; i < set.questions.size(); ++i) {
    const VerificationQuestion& vq = set.questions[i];
    ++report.questions_asked;
    bool user_says = user->IsAnswer(vq.question);
    if (user_says != vq.expected_answer) {
      report.accepted = false;
      report.discrepancies.push_back(
          Discrepancy{i, vq.family, vq.description});
    }
  }
  return report;
}

VerificationReport VerifyQuery(const Query& given, MembershipOracle* user,
                               const VerificationSetOptions& opts) {
  VerificationSet set = BuildVerificationSet(given, opts);
  return RunVerification(set, user);
}

}  // namespace qhorn
