#include "src/verify/verifier.h"

#include <vector>

namespace qhorn {

VerificationReport RunVerification(const VerificationSet& set,
                                   MembershipOracle* user) {
  VerificationReport report;
  // Verification is a fixed, non-adaptive question set: present it as one
  // batched round (the paper's model of showing the user the whole set).
  std::vector<TupleSet> questions;
  questions.reserve(set.questions.size());
  for (const VerificationQuestion& vq : set.questions) {
    questions.push_back(vq.question);
  }
  BitVec user_says;
  user->IsAnswerBatch(questions, user_says.Prepare(questions.size()));
  report.questions_asked = static_cast<int64_t>(questions.size());
  for (size_t i = 0; i < set.questions.size(); ++i) {
    const VerificationQuestion& vq = set.questions[i];
    if (user_says.Get(i) != vq.expected_answer) {
      report.accepted = false;
      report.discrepancies.push_back(
          Discrepancy{i, vq.family, vq.description});
    }
  }
  return report;
}

VerificationReport VerifyQuery(const Query& given, MembershipOracle* user,
                               const VerificationSetOptions& opts) {
  VerificationSet set = BuildVerificationSet(given, opts);
  return RunVerification(set, user);
}

}  // namespace qhorn
