// Distinguishing tuples (§3.2 Definitions 3.4 / 3.5, used throughout §4).
//
// An existential conjunction is distinguished by the tuple whose true
// variables are exactly the conjunction's (R3-closed) variables. A
// universal Horn expression ∀B→h is distinguished by the tuple with B true,
// h false, the remaining head variables true (neutralized) and the
// remaining non-head variables false.

#ifndef QHORN_VERIFY_DISTINGUISHING_H_
#define QHORN_VERIFY_DISTINGUISHING_H_

#include <vector>

#include "src/core/compiled_query.h"
#include "src/core/query.h"

namespace qhorn {

/// A dominant existential distinguishing tuple of a query.
struct ExistentialTupleInfo {
  /// True-set = the R3-closed conjunction variables.
  Tuple tuple = 0;
  /// True when the tuple arises solely from guarantee clauses of universal
  /// Horn expressions (no user-written conjunction closes to it). N1
  /// questions are built only for tuples with this false (Fig. 6).
  bool guarantee_only = false;
};

/// Dominant existential distinguishing tuples of q: the maximal antichain
/// (R1) over the R3-closures of the query's existential conjunctions and of
/// every universal guarantee clause (§4.1.1). Sorted by popcount/value.
std::vector<ExistentialTupleInfo> DominantExistentialTuples(const Query& q);

/// Dominant universal Horn expressions of q: per head, the minimal
/// antichain of bodies (§4.1.2). Flattened, ordered by head then body.
std::vector<UniversalHorn> DominantUniversalHorns(const Query& q);

/// Def. 3.4 construction for ∀body→head given the query's universal head
/// set (§4.1.2): body true, head false, other heads true, other non-heads
/// false.
Tuple UniversalDistinguishingTuple(const UniversalHorn& horn,
                                   VarSet all_heads);

/// Children of `t` in the full n-variable lattice that violate none of
/// `horns` (§3.2.2 / Fig. 6 footnote).
std::vector<Tuple> ViolationFreeChildren(
    Tuple t, int n, const std::vector<UniversalHorn>& horns);

/// Same, with the Horn expressions already compiled — the verification-set
/// builder compiles its query once and reuses it across every N1 question
/// and the construction self-test.
std::vector<Tuple> ViolationFreeChildren(Tuple t, int n,
                                         const CompiledQuery& compiled);

}  // namespace qhorn

#endif  // QHORN_VERIFY_DISTINGUISHING_H_
