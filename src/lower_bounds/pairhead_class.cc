#include "src/lower_bounds/pairhead_class.h"

#include <algorithm>

#include "src/util/check.h"

namespace qhorn {

Query PairHeadInstance(int n, int i, int j) {
  QHORN_CHECK(n >= 3 && n <= kMaxVars);
  QHORN_CHECK(i >= 0 && j >= 0 && i < n && j < n && i != j);
  VarSet c_ij = AllTrue(n) & ~VarBit(i) & ~VarBit(j);
  Query q(n);
  q.AddExistential(c_ij | VarBit(i));
  q.AddExistential(c_ij | VarBit(j));
  return q;
}

std::vector<Query> PairHeadClass(int n) {
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      out.push_back(PairHeadInstance(n, i, j));
    }
  }
  return out;
}

PairHeadResult LearnPairHeads(int n, int c, MembershipOracle* oracle) {
  QHORN_CHECK(c >= 2);
  QHORN_CHECK(n >= 3);
  PairHeadResult result;
  Tuple all = AllTrue(n);
  auto t_of = [all](int v) { return all & ~VarBit(v); };

  // Pair-covering design: split the variables into groups of ⌊c/2⌋; every
  // pair of variables lies inside the union of two groups, which fits in a
  // question of at most c class-2 tuples. This costs ≈ (n/(c/2))²/2 =
  // Θ(n²/c²) questions in the worst case — the Lemma 3.4 shape.
  int half = std::max(1, c / 2);
  int num_groups = (n + half - 1) / half;
  auto group = [&](int g) {
    std::vector<int> vars;
    for (int v = g * half; v < std::min(n, (g + 1) * half); ++v) {
      vars.push_back(v);
    }
    return vars;
  };

  std::vector<int> batch_with_heads;
  for (int ga = 0; ga < num_groups && batch_with_heads.empty(); ++ga) {
    for (int gb = ga; gb < num_groups; ++gb) {
      std::vector<int> batch = group(ga);
      if (gb != ga) {
        std::vector<int> second = group(gb);
        batch.insert(batch.end(), second.begin(), second.end());
      }
      if (batch.size() < 2) continue;
      std::vector<Tuple> tuples;
      for (int v : batch) tuples.push_back(t_of(v));
      ++result.questions;
      if (oracle->IsAnswer(TupleSet(std::move(tuples)))) {
        batch_with_heads = std::move(batch);
        break;
      }
    }
  }
  QHORN_CHECK_MSG(!batch_with_heads.empty(),
                  "no batch contained the head pair — oracle inconsistent");

  // Pinpoint the pair inside the positive batch: at most (c choose 2)
  // pairwise questions, a constant for constant c.
  for (size_t a = 0; a < batch_with_heads.size(); ++a) {
    for (size_t b = a + 1; b < batch_with_heads.size(); ++b) {
      ++result.questions;
      TupleSet q{t_of(batch_with_heads[a]), t_of(batch_with_heads[b])};
      if (oracle->IsAnswer(q)) {
        result.head_i = batch_with_heads[a];
        result.head_j = batch_with_heads[b];
        return result;
      }
    }
  }
  QHORN_CHECK_MSG(false, "head pair not found inside the positive batch");
  return result;
}

}  // namespace qhorn
