#include "src/lower_bounds/dense_bodies.h"

#include "src/learn/rp_universal.h"
#include "src/util/check.h"

namespace qhorn {

DenseBodyFamily MakeDenseBodyFamily(int n, int theta) {
  QHORN_CHECK(theta >= 2);
  QHORN_CHECK_MSG(n % (theta - 1) == 0, "n must be divisible by θ−1");
  QHORN_CHECK(n + 1 <= kMaxVars);
  DenseBodyFamily family;
  family.n = n;
  family.theta = theta;
  family.head = n;
  int width = n / (theta - 1);
  for (int b = 0; b < theta - 1; ++b) {
    VarSet body = 0;
    for (int v = b * width; v < (b + 1) * width; ++v) body |= VarBit(v);
    family.fixed_bodies.push_back(body);
  }
  return family;
}

Query DenseBodyInstance(const DenseBodyFamily& family, VarSet excluded) {
  VarSet all_fixed = 0;
  for (VarSet b : family.fixed_bodies) {
    QHORN_CHECK_MSG(Popcount(b & excluded) == 1,
                    "exactly one exclusion per fixed body required");
    all_fixed |= b;
  }
  Query q(family.n + 1);
  for (VarSet b : family.fixed_bodies) q.AddUniversal(b, family.head);
  q.AddUniversal(all_fixed & ~excluded, family.head);
  return q;
}

namespace {

void EnumerateChoices(const DenseBodyFamily& family, size_t body_index,
                      VarSet chosen, std::vector<Query>* out) {
  if (body_index == family.fixed_bodies.size()) {
    out->push_back(DenseBodyInstance(family, chosen));
    return;
  }
  for (int v : VarsOf(family.fixed_bodies[body_index])) {
    EnumerateChoices(family, body_index + 1, chosen | VarBit(v), out);
  }
}

}  // namespace

std::vector<Query> DenseBodyClass(const DenseBodyFamily& family) {
  std::vector<Query> out;
  EnumerateChoices(family, 0, 0, &out);
  return out;
}

int64_t RunDenseBodyLearner(const DenseBodyFamily& family,
                            AdversaryOracle* adversary) {
  CountingOracle counting(adversary);
  RpUniversalOptions opts;
  opts.max_bodies_per_head = family.theta + 1;
  opts.max_roots = uint64_t{1} << 30;
  LearnUniversalHorns(family.n + 1, &counting, opts);
  return counting.stats().questions;
}

}  // namespace qhorn
