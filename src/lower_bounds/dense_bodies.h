// The Theorem 3.6 family: a head variable with causal density θ whose last
// body must be isolated among (n/(θ−1))^(θ−1) candidates.
//
// Over n body variables split into θ−1 disjoint bodies B_1..B_{θ−1} of size
// n/(θ−1), each candidate query adds one more body
//   B_θ(choice) = ∪B_i − {one chosen variable per B_i},
// so |B_θ ∩ B_i| = |B_i| − 1. Questions that falsify two or more variables
// of any B_i are uninformative (always answers), and setting a full B_i
// true with the head false is always a non-answer — so a learner can only
// probe one excluded variable per body, paying for the whole product in the
// worst case.

#ifndef QHORN_LOWER_BOUNDS_DENSE_BODIES_H_
#define QHORN_LOWER_BOUNDS_DENSE_BODIES_H_

#include <cstdint>
#include <vector>

#include "src/core/query.h"
#include "src/oracle/adversary.h"

namespace qhorn {

/// Parameters of the family. Variables 0..n-1 are body variables; variable
/// n is the head (so queries have n+1 variables). n must be divisible by
/// θ−1 and θ ≥ 2.
struct DenseBodyFamily {
  int n = 0;
  int theta = 0;
  std::vector<VarSet> fixed_bodies;  ///< B_1..B_{θ−1}
  int head = 0;                      ///< variable index n
};

DenseBodyFamily MakeDenseBodyFamily(int n, int theta);

/// The candidate query for one choice of excluded variables (one per fixed
/// body; `excluded` must pick exactly one variable from each B_i).
Query DenseBodyInstance(const DenseBodyFamily& family, VarSet excluded);

/// All (n/(θ−1))^(θ−1) candidates.
std::vector<Query> DenseBodyClass(const DenseBodyFamily& family);

/// Runs our §3.2.1 body learner for the family's head against an adversary
/// over the candidate class; returns the questions asked until the learner
/// finishes (the adversary forces the product in the worst case).
int64_t RunDenseBodyLearner(const DenseBodyFamily& family,
                            AdversaryOracle* adversary);

}  // namespace qhorn

#endif  // QHORN_LOWER_BOUNDS_DENSE_BODIES_H_
