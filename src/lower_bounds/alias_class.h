// The Theorem 2.1 query family: φ = Uni(X) ∧ Alias(Y).
//
// X variables are universally quantified and bodyless; Y variables form an
// alias cycle ∀y1→y2 ∀y2→y3 ... ∀y|Y|→y1 (all true or all false together).
// Variables repeat (each alias variable is a head once and a body variable
// once), so the family sits inside full qhorn but outside role-preserving
// qhorn — exactly the separation the theorem exploits: an adversary that
// always answers "non-answer" forces any learner to spend one question per
// candidate, i.e. Ω(2^n) questions.

#ifndef QHORN_LOWER_BOUNDS_ALIAS_CLASS_H_
#define QHORN_LOWER_BOUNDS_ALIAS_CLASS_H_

#include <cstdint>
#include <vector>

#include "src/core/query.h"
#include "src/oracle/adversary.h"

namespace qhorn {

/// The instance Uni(X) ∧ Alias(Y) with X = `universal_vars`,
/// Y = its complement in n. |Y| must not be 1 (a one-variable alias cycle
/// would put a head in its own body).
Query AliasInstance(int n, VarSet universal_vars);

/// All valid instances over n variables (2^n minus the n single-alias
/// splits).
std::vector<Query> AliasClass(int n);

/// The unique question (besides {1^n}) the instance classifies as an
/// answer: {1^n, tuple with only X true}.
TupleSet AliasPositiveQuestion(int n, VarSet universal_vars);

/// A candidate-elimination learner playing against the adversary: it poses
/// the two-tuple questions {1^n, m} that are each instance's only
/// non-trivial positive object, eliminating one candidate per question.
/// Returns the number of questions until the adversary is pinned to one
/// candidate.
int64_t RunAliasEliminationLearner(int n, AdversaryOracle* adversary);

}  // namespace qhorn

#endif  // QHORN_LOWER_BOUNDS_ALIAS_CLASS_H_
