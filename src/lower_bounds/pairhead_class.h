// The Lemma 3.4 family: queries with a hidden pair of head variables,
//   ∃C_ij→x_i ∧ ∃C_ij→x_j,   C_ij = X − {x_i, x_j},
// i.e. the existential conjunctions {C_ij ∪ x_i, C_ij ∪ x_j}. Learning the
// pair with questions of at most c tuples each needs ≈ (n choose 2)/(c
// choose 2) = Ω(n²/c²) questions: the only informative bounded questions
// are batches of "class-2" tuples T_v (only v false), and a non-answer
// eliminates just the pairs inside the batch.

#ifndef QHORN_LOWER_BOUNDS_PAIRHEAD_CLASS_H_
#define QHORN_LOWER_BOUNDS_PAIRHEAD_CLASS_H_

#include <cstdint>
#include <vector>

#include "src/core/query.h"
#include "src/oracle/oracle.h"

namespace qhorn {

/// The instance with head pair (i, j), 0-based, i ≠ j.
Query PairHeadInstance(int n, int i, int j);

/// All (n choose 2) instances.
std::vector<Query> PairHeadClass(int n);

struct PairHeadResult {
  int head_i = -1;
  int head_j = -1;
  int64_t questions = 0;
};

/// The width-limited learner of the lemma: asks batches of at most c
/// class-2 tuples; an answer narrows the heads to the batch, a non-answer
/// eliminates the batch's pairs. Exactly identifies the pair against any
/// truthful oracle for a PairHeadInstance.
PairHeadResult LearnPairHeads(int n, int c, MembershipOracle* oracle);

}  // namespace qhorn

#endif  // QHORN_LOWER_BOUNDS_PAIRHEAD_CLASS_H_
