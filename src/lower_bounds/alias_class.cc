#include "src/lower_bounds/alias_class.h"

#include "src/util/check.h"

namespace qhorn {

Query AliasInstance(int n, VarSet universal_vars) {
  QHORN_CHECK(n >= 2 && n <= kMaxVars);
  QHORN_CHECK(IsSubset(universal_vars, AllTrue(n)));
  VarSet alias = AllTrue(n) & ~universal_vars;
  QHORN_CHECK_MSG(Popcount(alias) != 1,
                  "a single-variable alias cycle is not expressible");
  Query q(n);
  for (int x : VarsOf(universal_vars)) q.AddUniversal(0, x);
  std::vector<int> ys = VarsOf(alias);
  for (size_t i = 0; i < ys.size(); ++i) {
    int from = ys[i];
    int to = ys[(i + 1) % ys.size()];
    q.AddUniversal(VarBit(from), to);
  }
  return q;
}

std::vector<Query> AliasClass(int n) {
  QHORN_CHECK(n >= 2 && n <= 20);  // 2^20 candidates is already a lot
  std::vector<Query> out;
  for (VarSet x = 0; x <= AllTrue(n); ++x) {
    if (Popcount(AllTrue(n) & ~x) == 1) continue;
    out.push_back(AliasInstance(n, x));
    if (x == AllTrue(n)) break;
  }
  return out;
}

TupleSet AliasPositiveQuestion(int n, VarSet universal_vars) {
  return TupleSet{AllTrue(n), universal_vars};
}

int64_t RunAliasEliminationLearner(int n, AdversaryOracle* adversary) {
  int64_t questions = 0;
  for (VarSet x = 0; x <= AllTrue(n); ++x) {
    if (Popcount(AllTrue(n) & ~x) == 1) continue;
    if (adversary->Pinned()) break;
    ++questions;
    adversary->IsAnswer(AliasPositiveQuestion(n, x));
    if (x == AllTrue(n)) break;
  }
  return questions;
}

}  // namespace qhorn
