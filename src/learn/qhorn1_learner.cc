#include "src/learn/qhorn1_learner.h"

#include "src/learn/find.h"
#include "src/util/check.h"

namespace qhorn {

namespace {

/// Adapter handed to the find.h primitives: forwards questions — single or
/// batched — to the real oracle while charging them to a per-phase counter.
/// Unlike a plain lambda shim, batches stay batches all the way down.
class CountingForwarder : public MembershipOracle {
 public:
  CountingForwarder(MembershipOracle* inner, int64_t* counter)
      : inner_(inner), counter_(counter) {}

  bool IsAnswer(const TupleSet& question) override {
    ++*counter_;
    return inner_->IsAnswer(question);
  }

  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override {
    *counter_ += static_cast<int64_t>(questions.size());
    inner_->IsAnswerBatch(questions, answers);
  }

 private:
  MembershipOracle* inner_;
  int64_t* counter_;
};

}  // namespace

Qhorn1Learner::Qhorn1Learner(int n, MembershipOracle* oracle)
    : n_(n), oracle_(oracle) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(oracle != nullptr);
}

bool Qhorn1Learner::Ask(const TupleSet& question, int64_t* counter) {
  ++*counter;
  return oracle_->IsAnswer(question);
}

void Qhorn1Learner::AskBatch(std::span<const TupleSet> questions,
                             int64_t* counter) {
  // One-question rounds take the same path as wide ones (the old
  // singleton short-circuit is gone): the bit-packed plumbing keeps the
  // per-round residue to a few ns, invisible end to end.
  *counter += static_cast<int64_t>(questions.size());
  oracle_->IsAnswerBatch(questions, batch_answers_.Prepare(questions.size()));
}

VarSet Qhorn1Learner::LearnUniversalHeads() {
  Tuple all = AllTrue(n_);
  size_t count = static_cast<size_t>(n_);
  if (batch_questions_.size() < count) batch_questions_.resize(count);
  for (int v = 0; v < n_; ++v) {
    batch_questions_[static_cast<size_t>(v)].AssignPair(all, all & ~VarBit(v));
  }
  AskBatch(std::span<const TupleSet>(batch_questions_.data(), count),
           &trace_.head_questions);
  VarSet heads = 0;
  for (int v = 0; v < n_; ++v) {
    if (!batch_answers_.Get(static_cast<size_t>(v))) heads |= VarBit(v);
  }
  return heads;
}

TupleSet Qhorn1Learner::MatrixQuestion(VarSet s) const {
  Tuple all = AllTrue(n_);
  std::vector<Tuple> tuples;
  for (int d : VarsOf(s)) tuples.push_back(all & ~VarBit(d));
  return TupleSet(std::move(tuples));
}

int Qhorn1Learner::PartWithBodyVar(int var) const {
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (HasVar(parts_[i].body, var)) return static_cast<int>(i);
  }
  return -1;
}

VarSet Qhorn1Learner::UnionOfBodies() const {
  VarSet mask = 0;
  for (const Part& p : parts_) mask |= p.body;
  return mask;
}

void Qhorn1Learner::LearnUniversalBody(int head) {
  Tuple all = AllTrue(n_);
  auto question = [all, head](VarSet v, TupleSet* out) {
    out->AssignPair(all, all & ~(v | VarBit(head)));
  };
  CountingForwarder shim(oracle_, &trace_.universal_body_questions);

  // Algorithm 1: first look for a body variable among the bodies learned so
  // far; the head then shares that body (restriction 1: bodies are equal or
  // disjoint). A non-answer on a universal dependence question eliminates
  // the probed set.
  VarSet known = UnionOfBodies();
  if (known != 0) {
    VarSet b = FindOne(shim, question, /*eliminate=*/false, known);
    if (b != 0) {
      int part = PartWithBodyVar(VarsOf(b)[0]);
      QHORN_CHECK(part >= 0);
      parts_[static_cast<size_t>(part)].universal_heads |= VarBit(head);
      assigned_ |= VarBit(head);
      return;
    }
  }

  // The head's body (if any) is disjoint from every known body: binary
  // search the unassigned existential variables.
  VarSet domain = existential_vars_ & ~known & ~assigned_;
  VarSet body =
      FindAllVars(shim, question, /*eliminate=*/false, domain, &find_scratch_);
  Part part;
  part.body = body;
  part.universal_heads = VarBit(head);
  parts_.push_back(part);
  assigned_ |= body | VarBit(head);
}

VarSet Qhorn1Learner::GetHead(VarSet d) {
  auto ask = [this](VarSet s) {
    return Ask(MatrixQuestion(s), &trace_.existential_questions);
  };
  auto split = [](VarSet mask, VarSet* low, VarSet* high) {
    int take = (Popcount(mask) + 1) / 2;
    VarSet lo = 0;
    VarSet rest = mask;
    for (int i = 0; i < take; ++i) {
      VarSet bit = rest & (~rest + 1);
      lo |= bit;
      rest &= rest - 1;
    }
    *low = lo;
    *high = rest;
  };

  if (Popcount(d) < 2) return 0;
  if (!ask(d)) return 0;  // at most one head among the dependents

  // Invariant: s contains at least two head variables.
  VarSet s = d;
  while (Popcount(s) > 2) {
    VarSet a, b;
    split(s, &a, &b);
    if (Popcount(a) >= 2 && ask(a)) {
      s = a;
      continue;
    }
    if (Popcount(b) >= 2 && ask(b)) {
      s = b;
      continue;
    }
    // Each half holds exactly one head. Pad with b to turn the "two heads"
    // detector into a "does this part of a hold the head" detector.
    VarSet lo = a;
    while (Popcount(lo) > 1) {
      VarSet l, r;
      split(lo, &l, &r);
      lo = ask(l | b) ? l : r;
    }
    return lo;
  }
  // Both remaining variables are heads; report the lower-indexed one.
  return s & (~s + 1);
}

void Qhorn1Learner::LearnExistentialFor(int e) {
  Tuple all = AllTrue(n_);
  auto question = [all, e](VarSet v, TupleSet* out) {
    out->AssignPair(all & ~VarBit(e), all & ~v);
  };
  CountingForwarder shim(oracle_, &trace_.existential_questions);

  // Algorithm 4 step 1: does e depend on a variable of a known body? An
  // answer means independence, so `eliminate` is the answer response.
  VarSet known = UnionOfBodies();
  if (known != 0) {
    VarSet b = FindOne(shim, question, /*eliminate=*/true, known);
    if (b != 0) {
      int part = PartWithBodyVar(VarsOf(b)[0]);
      QHORN_CHECK(part >= 0);
      parts_[static_cast<size_t>(part)].existential_heads |= VarBit(e);
      assigned_ |= VarBit(e);
      return;
    }
  }

  // Step 2: find every unassigned existential variable e depends on.
  VarSet domain = existential_vars_ & ~assigned_ & ~VarBit(e);
  VarSet d =
      FindAllVars(shim, question, /*eliminate=*/true, domain, &find_scratch_);
  if (d == 0) {
    // e participates in no Horn expression beyond itself: ∃e.
    Part part;
    part.existential_heads = VarBit(e);
    parts_.push_back(part);
    assigned_ |= VarBit(e);
    return;
  }

  VarSet head = GetHead(d);
  Part part;
  if (head == 0) {
    // At most one head inside d, so we may treat e as the head and d as the
    // body (§3.1.3: the roles within a single conjunction are
    // interchangeable).
    part.body = d;
    part.existential_heads = VarBit(e);
  } else {
    // e is a body variable; sweep the rest of d to separate its co-heads
    // (independent of `head`) from fellow body variables. The sweep's
    // questions do not depend on each other: one round labels them all.
    std::vector<int> rest = VarsOf(d & ~head);
    if (batch_questions_.size() < rest.size()) {
      batch_questions_.resize(rest.size());
    }
    for (size_t i = 0; i < rest.size(); ++i) {
      batch_questions_[i].AssignPair(all & ~head, all & ~VarBit(rest[i]));
    }
    AskBatch(std::span<const TupleSet>(batch_questions_.data(), rest.size()),
             &trace_.existential_questions);
    VarSet heads = head;
    for (size_t i = 0; i < rest.size(); ++i) {
      if (batch_answers_.Get(i)) heads |= VarBit(rest[i]);
    }
    part.body = (d & ~heads) | VarBit(e);
    part.existential_heads = heads;
  }
  parts_.push_back(part);
  assigned_ |= d | VarBit(e);
}

Qhorn1Structure Qhorn1Learner::Learn() {
  trace_ = Qhorn1LearnerTrace();
  parts_.clear();
  assigned_ = 0;

  universal_heads_ = LearnUniversalHeads();
  existential_vars_ = AllTrue(n_) & ~universal_heads_;

  for (int h : VarsOf(universal_heads_)) LearnUniversalBody(h);
  for (int e = 0; e < n_; ++e) {
    if (HasVar(existential_vars_, e) && !HasVar(assigned_, e)) {
      LearnExistentialFor(e);
    }
  }

  Qhorn1Structure structure(n_);
  for (const Part& p : parts_) {
    // A part discovered with both roles empty cannot occur; bodies always
    // come with at least one head by construction.
    Qhorn1Part out;
    out.body = p.body;
    out.universal_heads = p.universal_heads;
    out.existential_heads = p.existential_heads;
    structure.AddPart(out);
  }
  QHORN_CHECK_MSG(structure.CoversAllVars(),
                  "learned structure does not place every variable");
  return structure;
}

}  // namespace qhorn
