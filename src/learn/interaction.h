// Interaction questions (§6 future work).
//
// The paper observes that membership questions carry one bit each and
// proposes richer questions "to directly determine how propositions
// interact", quoting two forms:
//   * "do you think p1 and p2 both have to be satisfied by at least one
//     tuple?"  → ShareExpression(i, j)
//   * "when does p1 have to be satisfied?" → MustAlwaysHold(i) (is p_i the
//     head of a universal expression?)
// plus the natural causal form "does p_i (with its co-conditions) force
// p_j?" → Causes(i, j).
//
// InteractionOracle simulates a user answering these for a hidden qhorn-1
// query; LearnQhorn1ByInteraction reconstructs the query from O(n²) such
// answers without any membership question — a usability trade: more,
// individually easier questions versus fewer, object-shaped ones. The E17
// ablation benchmark compares the two.

#ifndef QHORN_LEARN_INTERACTION_H_
#define QHORN_LEARN_INTERACTION_H_

#include <cstdint>

#include "src/core/query.h"

namespace qhorn {

/// Simulated user answering interaction questions about a hidden qhorn-1
/// query.
class InteractionOracle {
 public:
  explicit InteractionOracle(Qhorn1Structure target);

  /// "Must p_v hold in every chocolate (whenever its causes do)?" — true
  /// iff x_v is a universally quantified head variable.
  bool MustAlwaysHold(int v);

  /// "Do p_a and p_b ever have to be satisfied by the same tuple?" — true
  /// iff some expression of the query (body ∪ head) contains both.
  bool ShareExpression(int a, int b);

  /// "Does satisfying p_body (with its fellow conditions) force p_head?" —
  /// true iff x_body is a body variable of an expression headed x_head.
  bool Causes(int body_var, int head_var);

  int64_t asked() const { return asked_; }

 private:
  const Qhorn1Part* PartOf(int v) const;

  Qhorn1Structure target_;
  int64_t asked_ = 0;
};

/// Question counts of the interaction learner.
struct InteractionTrace {
  int64_t role_questions = 0;
  int64_t share_questions = 0;
  int64_t cause_questions = 0;

  int64_t total() const {
    return role_questions + share_questions + cause_questions;
  }
};

/// Reconstructs a qhorn-1 query from interaction questions alone:
/// O(n) role questions, O(n²) share questions to recover the parts, O(n)
/// cause questions to fix the head/body split where it is ambiguous. The
/// result is semantically equivalent to the hidden target.
Qhorn1Structure LearnQhorn1ByInteraction(int n, InteractionOracle* oracle,
                                         InteractionTrace* trace = nullptr);

}  // namespace qhorn

#endif  // QHORN_LEARN_INTERACTION_H_
