// Learning the existential conjunctions of a role-preserving qhorn query
// (§3.2.2, Algorithms 7 and 8, Theorems 3.7 / 3.8).
//
// The learner descends the full n-variable Boolean lattice from the all-true
// tuple, maintaining a frontier of tuples that jointly dominate every
// distinguishing tuple of the (normalized) target:
//   * replacing a frontier tuple with its violation-free children keeps the
//     question an answer → prune the children to a minimal necessary set
//     (Algorithm 8) and keep descending;
//   * if the question becomes a non-answer, the tuple distinguishes a
//     dominant existential conjunction — record it.
// Tuples violating a universal Horn expression (body true, head false) are
// excluded, which is why the universal expressions are learned first.
//
// The paper's optimization of not descending below the distinguishing tuple
// of a known guarantee clause is on by default (skip_guarantee_downsets).

#ifndef QHORN_LEARN_RP_EXISTENTIAL_H_
#define QHORN_LEARN_RP_EXISTENTIAL_H_

#include <cstdint>
#include <vector>

#include "src/core/query.h"
#include "src/oracle/oracle.h"

namespace qhorn {

struct RpExistentialOptions {
  /// When a kept tuple is exactly the (closed) guarantee clause of a learned
  /// universal Horn expression, record it without exploring its downset —
  /// everything below is dominated (§3.2.2 footnote and worked example).
  bool skip_guarantee_downsets = true;
  /// Skip the sequential regime entirely: every level probe goes out in the
  /// wide speculative round, however recently a substitution happened. The
  /// walk asks more questions (discarded speculative probes are re-asked)
  /// but emits far fewer *rounds* — the right trade when each round is a
  /// suspended pending session waiting seconds for a user instead of
  /// nanoseconds for a compiled oracle. Answer-stream deterministic: the
  /// question sequence depends only on this option and the answers, so
  /// differential arms must agree on it.
  bool speculative_batching = false;
};

struct RpExistentialTrace {
  int64_t questions = 0;
  int64_t levels = 0;            ///< deepest lattice level reached
  int64_t pruned_tuples = 0;     ///< children discarded by Algorithm 8
  int64_t rounds = 0;            ///< oracle rounds of batched level probes
  /// Speculative probes whose answers had to be discarded: a substitution
  /// earlier in the same round changed the working object, so the question
  /// was re-asked against the updated state. The price of labelling a
  /// lattice level per round instead of per tuple.
  int64_t discarded_probes = 0;
};

struct RpExistentialResult {
  /// Variable sets of the dominant existential conjunctions (each is the
  /// true-set of a distinguishing tuple of the normalized target).
  std::vector<VarSet> conjunctions;
  RpExistentialTrace trace;
};

/// Runs the lattice search. `universal` must be the target's dominant
/// universal Horn expressions (from LearnUniversalHorns). An optional
/// `initial_frontier` seeds the descent for the §6 revision extension; it
/// must dominate every distinguishing tuple of the target (the caller
/// checks this with a membership question), otherwise results are wrong.
RpExistentialResult LearnExistentialConjunctions(
    int n, MembershipOracle* oracle,
    const std::vector<UniversalHorn>& universal,
    const RpExistentialOptions& opts = RpExistentialOptions(),
    const std::vector<Tuple>* initial_frontier = nullptr);

}  // namespace qhorn

#endif  // QHORN_LEARN_RP_EXISTENTIAL_H_
