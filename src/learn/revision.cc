#include "src/learn/revision.h"

#include <algorithm>

#include "src/bool/lattice.h"
#include "src/core/normalize.h"
#include "src/verify/distinguishing.h"
#include "src/verify/verifier.h"
#include "src/util/check.h"

namespace qhorn {

RevisionResult ReviseQuery(const Query& given, MembershipOracle* oracle,
                           const RpLearnerOptions& opts) {
  RevisionResult result;
  int n = given.n();

  // Step 1: cheap acceptance test (O(k) questions).
  VerificationReport report = VerifyQuery(given, oracle);
  result.verification_questions = report.questions_asked;
  if (report.accepted) {
    result.query = Normalize(given);
    result.verified_unchanged = true;
    return result;
  }

  // Step 2: re-learn the universal side.
  CountingOracle counting(oracle);
  RpUniversalResult uni = LearnUniversalHorns(n, &counting, opts.universal);

  // Step 3: seed the lattice search with qg's dominant existential tuples,
  // re-closed under the *re-learned* Horn expressions (they may differ from
  // qg's), plus the new guarantee closures.
  Query horn_closer(n);
  for (const UniversalHorn& u : uni.horns) {
    horn_closer.AddUniversal(u.body, u.head);
  }
  std::vector<VarSet> seed_sets;
  for (const ExistentialTupleInfo& info : DominantExistentialTuples(given)) {
    seed_sets.push_back(horn_closer.HornClosure(info.tuple));
  }
  for (const UniversalHorn& u : uni.horns) {
    seed_sets.push_back(horn_closer.HornClosure(u.GuaranteeVars()));
  }
  std::vector<Tuple> seed;
  for (VarSet s : MaximalAntichain(std::move(seed_sets))) seed.push_back(s);

  // One question decides whether the seed still dominates every intended
  // conjunction (i.e. the seeded frontier is a sound starting point).
  bool seed_dominates = counting.IsAnswer(TupleSet(seed));
  const std::vector<Tuple>* frontier = seed_dominates ? &seed : nullptr;
  result.used_seed = seed_dominates;

  RpExistentialResult ex = LearnExistentialConjunctions(
      n, &counting, uni.horns, opts.existential, frontier);
  result.learning_questions = counting.stats().questions;

  Query q(n);
  for (const UniversalHorn& u : uni.horns) q.AddUniversal(u.body, u.head);
  for (VarSet conj : ex.conjunctions) q.AddExistential(conj);
  result.query = std::move(q);
  return result;
}

int QueryDistance(const Query& a, const Query& b) {
  QHORN_CHECK(a.n() == b.n());
  auto tuples_of = [](const Query& q) {
    std::vector<Tuple> out;
    for (const ExistentialTupleInfo& info : DominantExistentialTuples(q)) {
      out.push_back(info.tuple);
    }
    VarSet heads = 0;
    std::vector<UniversalHorn> horns = DominantUniversalHorns(q);
    for (const UniversalHorn& u : horns) heads |= VarBit(u.head);
    for (const UniversalHorn& u : horns) {
      out.push_back(UniversalDistinguishingTuple(u, heads));
    }
    return out;
  };
  std::vector<Tuple> ta = tuples_of(a);
  std::vector<Tuple> tb = tuples_of(b);

  // Greedy nearest-neighbour matching; unmatched tuples pay their distance
  // to the closest tuple of the other query (or their level if the other
  // side is empty). A heuristic, adequate for reporting cost-vs-distance.
  int total = 0;
  std::vector<bool> used(tb.size(), false);
  for (Tuple x : ta) {
    int best = -1;
    int best_dist = 0;
    for (size_t j = 0; j < tb.size(); ++j) {
      if (used[j]) continue;
      int d = LatticeDistance(x, tb[j]);
      if (best < 0 || d < best_dist) {
        best = static_cast<int>(j);
        best_dist = d;
      }
    }
    if (best >= 0) {
      used[static_cast<size_t>(best)] = true;
      total += best_dist;
    } else {
      total += Popcount(x);
    }
  }
  for (size_t j = 0; j < tb.size(); ++j) {
    if (!used[j]) total += Popcount(tb[j]);
  }
  return total;
}

}  // namespace qhorn
