// Query revision (§6 future work).
//
// Given a query qg believed to be close to the user's intended query qi,
// revise qg into qi with a question cost that shrinks with the distance
// between the queries (measured, as the paper suggests, by the Boolean-
// lattice distance between their distinguishing tuples):
//
//   1. Verify qg with its O(k) verification set; if the user accepts, qg is
//      already correct (Theorem 4.2) and revision stops.
//   2. Re-learn the universal Horn expressions (cheap: O(n) head tests plus
//      body extraction).
//   3. Seed the existential lattice search with qg's dominant existential
//      distinguishing tuples (Horn-closed under the re-learned
//      expressions). One membership question checks the seed still
//      dominates every intended conjunction; if so the search descends from
//      the seed instead of from the all-true tuple, paying only for the
//      lattice distance. Otherwise it falls back to a full search.

#ifndef QHORN_LEARN_REVISION_H_
#define QHORN_LEARN_REVISION_H_

#include "src/learn/rp_learner.h"

namespace qhorn {

struct RevisionResult {
  Query query;                 ///< the revised (intended) query
  bool verified_unchanged = false;  ///< user accepted qg as-is
  bool used_seed = false;           ///< seeded descent applied
  int64_t verification_questions = 0;
  int64_t learning_questions = 0;

  int64_t total_questions() const {
    return verification_questions + learning_questions;
  }
};

/// Revises `given` against the user's oracle. `given` must be
/// role-preserving over n variables.
RevisionResult ReviseQuery(const Query& given, MembershipOracle* oracle,
                           const RpLearnerOptions& opts = RpLearnerOptions());

/// The paper's proposed distance between two queries: the total lattice
/// distance of an optimal matching between their dominant distinguishing
/// tuples (unmatched tuples pay their distance from the all-true tuple...
/// computed greedily; used to report revision cost against distance).
int QueryDistance(const Query& a, const Query& b);

}  // namespace qhorn

#endif  // QHORN_LEARN_REVISION_H_
