// Probably-Approximately-Correct verification (§6 future work).
//
// The paper proposes randomly generated membership questions to learn or
// check a query with a bounded error probability. We implement the
// verification side: sample m = ⌈(1/ε)·ln(1/δ)⌉ random objects; if the
// hypothesis classifies all of them as the user does, then with probability
// ≥ 1−δ the hypothesis disagrees with the intended query on at most an ε
// fraction of the sampling distribution (the standard PAC argument).

#ifndef QHORN_LEARN_PAC_H_
#define QHORN_LEARN_PAC_H_

#include "src/core/query.h"
#include "src/oracle/oracle.h"
#include "src/util/rng.h"

namespace qhorn {

/// Distribution over objects: tuple count uniform in [1, max_tuples], each
/// tuple uniform over the 2^n assignments (duplicates collapse).
TupleSet RandomObject(int n, Rng& rng, int max_tuples);

struct PacOptions {
  double epsilon = 0.1;
  double delta = 0.05;
  int max_tuples_per_object = 8;
};

struct PacReport {
  bool consistent = true;      ///< hypothesis matched the user on all samples
  int64_t samples = 0;         ///< number of random questions asked
  TupleSet counterexample;     ///< first disagreement, when !consistent
};

/// Runs the sampling check of `hypothesis` against the user's oracle. The
/// whole m-object sample is labelled in a single batched oracle round
/// (random questions are non-adaptive, so nothing is gained by
/// interleaving); on disagreement the first mismatch in sample order is
/// reported and `samples` still counts the full round.
PacReport PacVerify(const Query& hypothesis, MembershipOracle* user, Rng& rng,
                    const PacOptions& opts = PacOptions());

/// Monte-Carlo estimate of Pr[ a(O) != b(O) ] under the RandomObject
/// distribution.
double EstimateDisagreement(const Query& a, const Query& b, int samples,
                            Rng& rng, int max_tuples = 8);

}  // namespace qhorn

#endif  // QHORN_LEARN_PAC_H_
