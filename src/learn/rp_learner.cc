#include "src/learn/rp_learner.h"

namespace qhorn {

RpLearnerResult LearnRolePreserving(int n, MembershipOracle* oracle,
                                    const RpLearnerOptions& opts) {
  RpLearnerResult result;

  RpUniversalResult uni = LearnUniversalHorns(n, oracle, opts.universal);
  result.universal_trace = uni.trace;

  RpExistentialResult ex =
      LearnExistentialConjunctions(n, oracle, uni.horns, opts.existential);
  result.existential_trace = ex.trace;

  Query q(n);
  for (const UniversalHorn& u : uni.horns) q.AddUniversal(u.body, u.head);
  for (VarSet conj : ex.conjunctions) q.AddExistential(conj);
  result.query = std::move(q);
  return result;
}

}  // namespace qhorn
