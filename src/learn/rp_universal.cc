#include "src/learn/rp_universal.h"

#include <set>
#include <span>

#include "src/util/check.h"

namespace qhorn {

namespace {

/// Per-head body learner over the Fig. 5 lattice.
class HeadBodyLearner {
 public:
  HeadBodyLearner(int n, int head, VarSet all_heads, MembershipOracle* oracle,
                  const RpUniversalOptions& opts, RpUniversalTrace* trace)
      : n_(n),
        head_(head),
        non_heads_(AllTrue(n) & ~all_heads),
        oracle_(oracle),
        opts_(opts),
        trace_(trace) {}

  /// Returns the minimal (dominant) bodies of `head`, or {∅} when bodyless.
  /// `bodyless_hint` carries a precomputed IsBodyless verdict (0/1) when
  /// the caller already asked it in a cross-head batch round; -1 asks here.
  std::vector<VarSet> Learn(int bodyless_hint = -1) {
    const bool bodyless =
        bodyless_hint >= 0 ? bodyless_hint != 0 : IsBodyless();
    if (bodyless) return {0};

    std::vector<VarSet> bodies;
    VarSet first = ExtractBody(/*excluded=*/0);
    if (first == 0) {
      // The bodyless test said a body exists but extraction found none: the
      // oracle contradicted itself (a mislabelling user, §5). Degrade to
      // the bodyless reading rather than abort; the verification set or a
      // history review will surface the inconsistency.
      return {0};
    }
    bodies.push_back(first);

    // Search roots: every way of excluding one variable from each known
    // body. A body incomparable with all known ones survives under some
    // root (it misses at least one variable of each known body). All of an
    // iteration's untested roots are probed in one oracle round — the
    // common final sweep (no surviving body anywhere) finishes in a single
    // batch, and a hit costs one adaptive extraction before the roots are
    // regenerated with the new body in the product.
    std::set<VarSet> tested;
    bool found_new = true;
    while (found_new) {
      found_new = false;
      std::vector<VarSet> untested;
      for (VarSet excluded : SearchRoots(bodies)) {
        if (tested.count(excluded) == 0) untested.push_back(excluded);
      }
      HasBodyAvoidingBatch(untested);
      for (size_t i = 0; i < untested.size(); ++i) {
        // Consuming an answer marks its root tested; the answers after an
        // acted-on hit are discarded *unmarked* — extraction changes the
        // known-body set, so their verdicts must be re-established against
        // the regenerated root product (a caching oracle makes the
        // re-probe free).
        tested.insert(untested[i]);
        // An answer means every candidate body lost a variable — no body
        // survives the exclusion (HasBodyAvoiding's negation).
        if (batch_answers_.Get(i)) continue;
        VarSet body = ExtractBody(untested[i]);
        if (body == 0) continue;  // inconsistent oracle; skip this root
        for (VarSet known : bodies) {
          QHORN_CHECK_MSG(Incomparable(body, known),
                          "extracted body comparable with a known body");
        }
        bodies.push_back(body);
        QHORN_CHECK_MSG(
            static_cast<int>(bodies.size()) <= opts_.max_bodies_per_head,
            "causal density exceeds max_bodies_per_head="
                << opts_.max_bodies_per_head);
        found_new = true;
        break;  // regenerate roots with the new body in the product
      }
    }
    return bodies;
  }

 private:
  bool Ask(const TupleSet& question) {
    ++trace_->body_questions;
    return oracle_->IsAnswer(question);
  }

  /// {1^n, tuple with h and every non-head false}: a non-answer means some
  /// body is fully true in that tuple, and only the empty body can be.
  bool IsBodyless() {
    Tuple t = AllTrue(n_) & ~non_heads_ & ~VarBit(head_);
    return !Ask(TupleSet{AllTrue(n_), t});
  }

  /// One oracle round of exclusion probes ({1^n, tuple with excluded ∪
  /// {h} false}), one per exclusion set, raw answers into batch_answers_.
  /// A *non-answer* at i means a complete body stayed true in probe i's
  /// tuple — i.e. the target has a body avoiding excluded[i]. Singleton
  /// rounds (the first iteration's root product is always the single root
  /// ∅) ride the same path; their few-ns batch-plumbing residue is
  /// invisible next to the probe itself.
  void HasBodyAvoidingBatch(const std::vector<VarSet>& excluded) {
    if (questions_.size() < excluded.size()) questions_.resize(excluded.size());
    for (size_t i = 0; i < excluded.size(); ++i) {
      questions_[i].AssignPair(AllTrue(n_),
                               AllTrue(n_) & ~excluded[i] & ~VarBit(head_));
    }
    trace_->body_questions += static_cast<int64_t>(excluded.size());
    if (excluded.empty()) return;
    oracle_->IsAnswerBatch(
        std::span<const TupleSet>(questions_.data(), excluded.size()),
        batch_answers_.Prepare(excluded.size()));
  }

  /// Algorithm 6 seeded with `excluded`: returns a minimal body within
  /// non_heads \ excluded. Caller guarantees one exists there.
  VarSet ExtractBody(VarSet excluded) {
    VarSet x = excluded;  // variables known to be outside the body
    if (!opts_.speculative_batching) {
      for (int v : VarsOf(non_heads_ & ~excluded)) {
        Tuple t = AllTrue(n_) & ~x & ~VarBit(v) & ~VarBit(head_);
        if (!Ask(TupleSet{AllTrue(n_), t})) {
          x |= VarBit(v);  // a body survives without v; exclude it
        }
      }
      // Empty means the oracle was inconsistent (said a body exists and
      // then denied every candidate); callers handle 0 gracefully.
      return non_heads_ & ~x;
    }
    // Speculative sweep: bodies are small, so most probes end in an
    // exclusion. Each round poses the question for every remaining
    // variable *as if* all its predecessors in the round got excluded.
    // Answers are consumed in order while the speculation holds; a kept
    // variable (answer true — x actually stays unchanged) invalidates the
    // questions after it, which are re-batched against the real x. Rounds:
    // |body| + 1 instead of one per variable; the discarded tails are the
    // question overhead (a caching oracle re-asks them free).
    const std::vector<int> vars = VarsOf(non_heads_ & ~excluded);
    size_t i = 0;
    while (i < vars.size()) {
      const size_t count = vars.size() - i;
      if (questions_.size() < count) questions_.resize(count);
      VarSet speculated = x;
      for (size_t j = 0; j < count; ++j) {
        questions_[j].AssignPair(AllTrue(n_),
                                 AllTrue(n_) & ~speculated &
                                     ~VarBit(vars[i + j]) & ~VarBit(head_));
        speculated |= VarBit(vars[i + j]);
      }
      trace_->body_questions += static_cast<int64_t>(count);
      oracle_->IsAnswerBatch(
          std::span<const TupleSet>(questions_.data(), count),
          batch_answers_.Prepare(count));
      size_t consumed = 0;
      while (consumed < count) {
        if (batch_answers_.Get(consumed)) {
          // vars[i + consumed] stays in the body: the speculation was
          // wrong, so the rest of the round is discarded.
          ++consumed;
          break;
        }
        x |= VarBit(vars[i + consumed]);
        ++consumed;
      }
      i += consumed;
    }
    return non_heads_ & ~x;
  }

  /// Cartesian product of one-variable choices across the known bodies,
  /// deduplicated (bodies may overlap).
  std::vector<VarSet> SearchRoots(const std::vector<VarSet>& bodies) {
    std::set<VarSet> roots;
    std::vector<VarSet> current = {0};
    for (VarSet body : bodies) {
      std::vector<VarSet> next;
      for (VarSet prefix : current) {
        for (int v : VarsOf(body)) {
          next.push_back(prefix | VarBit(v));
        }
      }
      current = std::move(next);
      QHORN_CHECK_MSG(current.size() <= opts_.max_roots,
                      "search-root product exceeds max_roots");
    }
    roots.insert(current.begin(), current.end());
    return std::vector<VarSet>(roots.begin(), roots.end());
  }

  int n_;
  int head_;
  VarSet non_heads_;
  MembershipOracle* oracle_;
  RpUniversalOptions opts_;
  RpUniversalTrace* trace_;
  // Round scratch reused across the body search's sweeps.
  std::vector<TupleSet> questions_;
  BitVec batch_answers_;
};

}  // namespace

RpUniversalResult LearnUniversalHorns(int n, MembershipOracle* oracle,
                                      const RpUniversalOptions& opts) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(oracle != nullptr);
  RpUniversalResult result;

  // §3.1.1 head test, unchanged in the role-preserving setting; the n
  // per-variable questions are independent, so one round labels them all.
  Tuple all = AllTrue(n);
  std::vector<TupleSet> head_questions;
  head_questions.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    head_questions.push_back(TupleSet{all, all & ~VarBit(v)});
  }
  result.trace.head_questions += n;
  BitVec head_answers;
  oracle->IsAnswerBatch(head_questions,
                        head_answers.Prepare(head_questions.size()));
  for (int v = 0; v < n; ++v) {
    if (!head_answers.Get(static_cast<size_t>(v))) result.head_vars |= VarBit(v);
  }

  // Under speculative batching the per-head bodyless tests are independent
  // of each other, so one round labels them all before the (sequential,
  // answer-dependent) body searches begin.
  const std::vector<int> heads = VarsOf(result.head_vars);
  std::vector<int> bodyless_hints(heads.size(), -1);
  if (opts.speculative_batching && !heads.empty()) {
    std::vector<TupleSet> bodyless_questions;
    bodyless_questions.reserve(heads.size());
    for (int h : heads) {
      // HeadBodyLearner::IsBodyless's tuple: every non-head and h false.
      bodyless_questions.push_back(
          TupleSet{all, result.head_vars & ~VarBit(h)});
    }
    result.trace.body_questions += static_cast<int64_t>(heads.size());
    BitVec bodyless_answers;
    oracle->IsAnswerBatch(bodyless_questions,
                          bodyless_answers.Prepare(heads.size()));
    for (size_t i = 0; i < heads.size(); ++i) {
      bodyless_hints[i] = bodyless_answers.Get(i) ? 0 : 1;
    }
  }

  for (size_t i = 0; i < heads.size(); ++i) {
    HeadBodyLearner learner(n, heads[i], result.head_vars, oracle, opts,
                            &result.trace);
    for (VarSet body : learner.Learn(bodyless_hints[i])) {
      result.horns.push_back(UniversalHorn{body, heads[i]});
    }
  }
  return result;
}

}  // namespace qhorn
