#include "src/learn/pac.h"

#include <cmath>

#include "src/core/compiled_query.h"
#include "src/util/check.h"

namespace qhorn {

TupleSet RandomObject(int n, Rng& rng, int max_tuples) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(max_tuples >= 1);
  int count = static_cast<int>(rng.Range(1, max_tuples));
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (n == 64) {
      tuples.push_back(rng.Next());
    } else {
      tuples.push_back(rng.Below(uint64_t{1} << n));
    }
  }
  return TupleSet(std::move(tuples));
}

PacReport PacVerify(const Query& hypothesis, MembershipOracle* user, Rng& rng,
                    const PacOptions& opts) {
  QHORN_CHECK(opts.epsilon > 0.0 && opts.epsilon < 1.0);
  QHORN_CHECK(opts.delta > 0.0 && opts.delta < 1.0);
  int64_t m = static_cast<int64_t>(
      std::ceil(std::log(1.0 / opts.delta) / opts.epsilon));
  PacReport report;
  CompiledQuery compiled(hypothesis);
  // The m sample objects are drawn up front (the draw sequence does not
  // depend on the user's labels) and labelled in one oracle round; the
  // hypothesis is then checked against the whole labelling. The first
  // disagreement in sample order is reported, as the sequential loop would.
  std::vector<TupleSet> sample;
  sample.reserve(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    sample.push_back(
        RandomObject(hypothesis.n(), rng, opts.max_tuples_per_object));
  }
  BitVec labels;
  user->IsAnswerBatch(sample, labels.Prepare(sample.size()));
  report.samples = m;
  for (size_t i = 0; i < sample.size(); ++i) {
    if (compiled.Evaluate(sample[i]) != labels.Get(i)) {
      report.consistent = false;
      report.counterexample = sample[i];
      return report;
    }
  }
  return report;
}

double EstimateDisagreement(const Query& a, const Query& b, int samples,
                            Rng& rng, int max_tuples) {
  QHORN_CHECK(a.n() == b.n());
  QHORN_CHECK(samples > 0);
  int64_t disagreements = 0;
  CompiledQuery ca(a);
  CompiledQuery cb(b);
  for (int i = 0; i < samples; ++i) {
    TupleSet object = RandomObject(a.n(), rng, max_tuples);
    if (ca.Evaluate(object) != cb.Evaluate(object)) ++disagreements;
  }
  return static_cast<double>(disagreements) / static_cast<double>(samples);
}

}  // namespace qhorn
