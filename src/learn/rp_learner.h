// End-to-end learner for role-preserving qhorn queries (§3.2):
// universal Horn expressions first (they shape the lattice), then the
// existential conjunctions. Total question cost O(n^{θ+1} + k·n·lg n).

#ifndef QHORN_LEARN_RP_LEARNER_H_
#define QHORN_LEARN_RP_LEARNER_H_

#include "src/learn/rp_existential.h"
#include "src/learn/rp_universal.h"

namespace qhorn {

struct RpLearnerOptions {
  RpUniversalOptions universal;
  RpExistentialOptions existential;
};

struct RpLearnerResult {
  /// The learned query: dominant universal Horn expressions plus one
  /// existential conjunction per discovered distinguishing tuple. It is
  /// semantically equivalent to the target (tests check Equivalent()).
  Query query;
  RpUniversalTrace universal_trace;
  RpExistentialTrace existential_trace;

  int64_t total_questions() const {
    return universal_trace.total() + existential_trace.questions;
  }
};

/// Learns a hidden role-preserving qhorn query over n variables.
RpLearnerResult LearnRolePreserving(
    int n, MembershipOracle* oracle,
    const RpLearnerOptions& opts = RpLearnerOptions());

}  // namespace qhorn

#endif  // QHORN_LEARN_RP_LEARNER_H_
