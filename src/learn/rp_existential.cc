#include "src/learn/rp_existential.h"

#include <algorithm>
#include <set>

#include "src/bool/lattice.h"
#include "src/core/compiled_query.h"
#include "src/learn/find.h"
#include "src/util/check.h"

namespace qhorn {

namespace {

class LatticeSearch {
 public:
  LatticeSearch(int n, MembershipOracle* oracle,
                const std::vector<UniversalHorn>& universal,
                const RpExistentialOptions& opts)
      : n_(n), oracle_(oracle), opts_(opts) {
    // Compile the learned universal Horn expressions once: the walk tests
    // every lattice child against them (§3.2.2). Only ViolatesUniversal is
    // used, so skip compiling guarantee-clause need masks.
    Query horn_query(n);
    for (const UniversalHorn& u : universal) {
      horn_query.AddUniversal(u.body, u.head);
    }
    compiled_horns_ =
        CompiledQuery(horn_query, EvalOptions{.require_guarantees = false});
    // Horn closures of the guarantee clauses, for the downset optimization.
    for (const UniversalHorn& u : universal) {
      guarantee_closures_.insert(horn_query.HornClosure(u.GuaranteeVars()));
    }
  }

  RpExistentialResult Run(std::vector<Tuple> frontier) {
    RpExistentialResult result;
    std::vector<Tuple> discovered;

    while (!frontier.empty()) {
      ++result.trace.levels;
      std::vector<Tuple> next;
      // The level runs in two regimes. While substitutions are frequent —
      // the descent phase, where each substitution changes the working
      // object and so the next tuple's question — the tuples are probed one
      // at a time, exactly the sequential Algorithm 7/8 walk (zero wasted
      // questions). After two consecutive non-answers the walk assumes it
      // has reached distinguishing tuples and flips to batch mode: one
      // round poses, for every still-pending tuple t, the *optimistic*
      // substitute question (t replaced by its violation-free children,
      // every other pending tuple intact). Consuming such a round is sound:
      //   * A non-answer is final. The optimistic object's coverage is a
      //     superset of the object any sequential interleaving would have
      //     used (intact tuples cover at least what their pruned children
      //     cover), and answers are monotone in coverage on violation-free
      //     objects — so t's conjunction is genuinely indispensable.
      //   * The first answer's base is exact: every other pending tuple is
      //     still intact at that point, so its substitution is performed —
      //     the children are pruned adaptively (Algorithm 8) — while the
      //     answers of *later* substitutable tuples are discarded
      //     (trace.discarded_probes) and re-asked against the updated
      //     object, back in the sequential regime.
      // In the common tail — a frontier sitting on distinguishing tuples —
      // a level costs two sequential probes plus a single all-false round.
      std::vector<Tuple> pending = std::move(frontier);
      size_t head = 0;  // tuples before `head` are resolved
      int consecutive_non_answers = 0;
      // Speculative batching drops the sequential warm-up entirely: with a
      // pending (human) backend each sequential probe is a full suspended
      // round trip, so the walk accepts the discarded-probe re-asks in
      // exchange for one wide round per batch. Threshold 2 is the compiled
      // -oracle default described above.
      const int sequential_threshold = opts_.speculative_batching ? 0 : 2;

      // Prunes the already-probed-replaceable tuple `t` against `base`
      // (everything in the working object except t) and distributes the
      // kept children (Algorithm 8). Under speculative batching the prune's
      // adaptive binary search collapses to one wide round per kept child
      // (MinimalSubsetBatched) — same kept set, far fewer suspensions.
      auto substitute = [&](const std::vector<Tuple>& base,
                            const std::vector<Tuple>& children) {
        std::vector<Tuple> kept;
        if (opts_.speculative_batching) {
          kept = MinimalSubsetBatched(
              children,
              [&](const std::vector<std::vector<Tuple>>& candidates,
                  BitSpan answers) {
                std::vector<TupleSet> questions;
                questions.reserve(candidates.size());
                for (const std::vector<Tuple>& c : candidates) {
                  questions.push_back(Join(base, c));
                }
                ++result.trace.rounds;
                result.trace.questions +=
                    static_cast<int64_t>(questions.size());
                oracle_->IsAnswerBatch(questions, answers);
              });
        } else {
          kept = MinimalSubset(children, [&](const std::vector<Tuple>& sub) {
            return Ask(Join(base, sub), &result.trace);
          });
        }
        result.trace.pruned_tuples +=
            static_cast<int64_t>(children.size() - kept.size());
        for (Tuple c : kept) {
          if (opts_.skip_guarantee_downsets &&
              guarantee_closures_.count(c) != 0) {
            discovered.push_back(c);
          } else {
            next.push_back(c);
          }
        }
      };

      while (head < pending.size()) {
        if (consecutive_non_answers < sequential_threshold) {
          // Sequential regime: probe the front tuple alone — bit-for-bit
          // the classic Algorithm 7/8 walk, with base and children built
          // once and shared between the probe and the prune.
          Tuple t = pending[head];
          std::vector<Tuple> base = discovered;
          base.insert(base.end(),
                      pending.begin() + static_cast<long>(head) + 1,
                      pending.end());
          base.insert(base.end(), next.begin(), next.end());
          const std::vector<Tuple>& children = ViolationFreeChildren(t);
          ++result.trace.rounds;
          if (!Ask(Join(base, children), &result.trace)) {
            discovered.push_back(t);
            ++consecutive_non_answers;
            ++head;
            continue;
          }
          consecutive_non_answers = 0;
          substitute(base, children);
          ++head;
          continue;
        }

        // Batch regime: one round probes every unresolved tuple with its
        // optimistic substitute question — its children plus everything
        // that must stay (discovered tuples, the other unresolved tuples
        // intact, and the tuples kept for the next level). A single
        // unresolved tuple takes this path too — the round then *is* the
        // sequential probe, question for question; the old singleton
        // short-circuit bought only the few-ns batch-plumbing residue.
        size_t count = pending.size() - head;
        std::vector<TupleSet> questions;
        questions.reserve(count);
        for (size_t i = head; i < pending.size(); ++i) {
          std::vector<Tuple> object = discovered;
          for (size_t j = head; j < pending.size(); ++j) {
            if (j != i) object.push_back(pending[j]);
          }
          object.insert(object.end(), next.begin(), next.end());
          const std::vector<Tuple>& children =
              ViolationFreeChildren(pending[i]);
          object.insert(object.end(), children.begin(), children.end());
          questions.emplace_back(std::move(object));
        }
        ++result.trace.rounds;
        result.trace.questions += static_cast<int64_t>(count);
        BitSpan answers = batch_answers_.Prepare(count);
        oracle_->IsAnswerBatch(questions, answers);

        // Consume: every non-answer is final; the first answer's base was
        // exact, so it is substituted; later answers are discarded and
        // re-probed under the updated object, back in sequential regime.
        size_t first_true = count;
        std::vector<Tuple> unresolved;
        for (size_t i = 0; i < count; ++i) {
          if (!answers.Get(i)) {
            discovered.push_back(pending[head + i]);
            ++consecutive_non_answers;
          } else if (first_true == count) {
            first_true = i;
          } else {
            unresolved.push_back(pending[head + i]);
          }
        }
        if (first_true == count) break;  // level fully resolved in one round

        consecutive_non_answers = 0;
        result.trace.discarded_probes +=
            static_cast<int64_t>(unresolved.size());
        // Rewrite the unresolved window — the re-probes follow the acted-on
        // tuple — and substitute it (its probe already answered).
        Tuple acted = pending[head + first_true];
        pending.resize(head + 1 + unresolved.size());
        pending[head] = acted;
        std::copy(unresolved.begin(), unresolved.end(),
                  pending.begin() + static_cast<long>(head) + 1);
        std::vector<Tuple> base = discovered;
        base.insert(base.end(), unresolved.begin(), unresolved.end());
        base.insert(base.end(), next.begin(), next.end());
        substitute(base, ViolationFreeChildren(acted));
        ++head;
      }
      // Children reached from several parents appear once.
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      frontier = std::move(next);
    }

    std::sort(discovered.begin(), discovered.end());
    discovered.erase(std::unique(discovered.begin(), discovered.end()),
                     discovered.end());
    for (Tuple t : discovered) result.conjunctions.push_back(t);
    return result;
  }

 private:
  bool Ask(const TupleSet& question, RpExistentialTrace* trace) {
    ++trace->questions;
    return oracle_->IsAnswer(question);
  }

  static TupleSet Join(const std::vector<Tuple>& base,
                       const std::vector<Tuple>& extra) {
    std::vector<Tuple> all = base;
    all.insert(all.end(), extra.begin(), extra.end());
    return TupleSet(std::move(all));
  }

  /// Children of `t` that violate no learned Horn expression. The walk is
  /// allocation-free: children are visited in place and collected into a
  /// buffer reused across the whole search (valid until the next call).
  const std::vector<Tuple>& ViolationFreeChildren(Tuple t) {
    children_scratch_.clear();
    AppendLatticeChildrenFiltered(
        t, AllTrue(n_),
        [this](Tuple c) { return !compiled_horns_.ViolatesUniversal(c); },
        &children_scratch_);
    return children_scratch_;
  }

  int n_;
  MembershipOracle* oracle_;
  CompiledQuery compiled_horns_;
  RpExistentialOptions opts_;
  std::set<Tuple> guarantee_closures_;
  std::vector<Tuple> children_scratch_;
  BitVec batch_answers_;
};

}  // namespace

RpExistentialResult LearnExistentialConjunctions(
    int n, MembershipOracle* oracle,
    const std::vector<UniversalHorn>& universal,
    const RpExistentialOptions& opts,
    const std::vector<Tuple>* initial_frontier) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(oracle != nullptr);
  LatticeSearch search(n, oracle, universal, opts);
  std::vector<Tuple> frontier =
      initial_frontier != nullptr ? *initial_frontier
                                  : std::vector<Tuple>{AllTrue(n)};
  return search.Run(std::move(frontier));
}

}  // namespace qhorn
