#include "src/learn/rp_existential.h"

#include <algorithm>
#include <set>

#include "src/bool/lattice.h"
#include "src/core/compiled_query.h"
#include "src/learn/find.h"
#include "src/util/check.h"

namespace qhorn {

namespace {

class LatticeSearch {
 public:
  LatticeSearch(int n, MembershipOracle* oracle,
                const std::vector<UniversalHorn>& universal,
                const RpExistentialOptions& opts)
      : n_(n), oracle_(oracle), opts_(opts) {
    // Compile the learned universal Horn expressions once: the walk tests
    // every lattice child against them (§3.2.2). Only ViolatesUniversal is
    // used, so skip compiling guarantee-clause need masks.
    Query horn_query(n);
    for (const UniversalHorn& u : universal) {
      horn_query.AddUniversal(u.body, u.head);
    }
    compiled_horns_ =
        CompiledQuery(horn_query, EvalOptions{.require_guarantees = false});
    // Horn closures of the guarantee clauses, for the downset optimization.
    for (const UniversalHorn& u : universal) {
      guarantee_closures_.insert(horn_query.HornClosure(u.GuaranteeVars()));
    }
  }

  RpExistentialResult Run(std::vector<Tuple> frontier) {
    RpExistentialResult result;
    std::vector<Tuple> discovered;

    while (!frontier.empty()) {
      ++result.trace.levels;
      std::vector<Tuple> next;
      for (size_t i = 0; i < frontier.size(); ++i) {
        Tuple t = frontier[i];
        // Everything that must stay in the question while t is replaced:
        // discovered tuples, not-yet-processed frontier tuples, and the
        // tuples already kept for the next level.
        std::vector<Tuple> base = discovered;
        base.insert(base.end(), frontier.begin() + static_cast<long>(i) + 1,
                    frontier.end());
        base.insert(base.end(), next.begin(), next.end());

        const std::vector<Tuple>& children = ViolationFreeChildren(t);
        if (!Ask(Join(base, children), &result.trace)) {
          // No substitute covers t's conjunction: t is a distinguishing
          // tuple of a dominant existential conjunction.
          discovered.push_back(t);
          continue;
        }
        // Prune the children to a minimal necessary set (Algorithm 8).
        std::vector<Tuple> kept =
            MinimalSubset(children, [&](const std::vector<Tuple>& sub) {
              return Ask(Join(base, sub), &result.trace);
            });
        result.trace.pruned_tuples +=
            static_cast<int64_t>(children.size() - kept.size());
        for (Tuple c : kept) {
          if (opts_.skip_guarantee_downsets &&
              guarantee_closures_.count(c) != 0) {
            discovered.push_back(c);
          } else {
            next.push_back(c);
          }
        }
      }
      // Children reached from several parents appear once.
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      frontier = std::move(next);
    }

    std::sort(discovered.begin(), discovered.end());
    discovered.erase(std::unique(discovered.begin(), discovered.end()),
                     discovered.end());
    for (Tuple t : discovered) result.conjunctions.push_back(t);
    return result;
  }

 private:
  bool Ask(const TupleSet& question, RpExistentialTrace* trace) {
    ++trace->questions;
    return oracle_->IsAnswer(question);
  }

  static TupleSet Join(const std::vector<Tuple>& base,
                       const std::vector<Tuple>& extra) {
    std::vector<Tuple> all = base;
    all.insert(all.end(), extra.begin(), extra.end());
    return TupleSet(std::move(all));
  }

  /// Children of `t` that violate no learned Horn expression. The walk is
  /// allocation-free: children are visited in place and collected into a
  /// buffer reused across the whole search (valid until the next call).
  const std::vector<Tuple>& ViolationFreeChildren(Tuple t) {
    children_scratch_.clear();
    AppendLatticeChildrenFiltered(
        t, AllTrue(n_),
        [this](Tuple c) { return !compiled_horns_.ViolatesUniversal(c); },
        &children_scratch_);
    return children_scratch_;
  }

  int n_;
  MembershipOracle* oracle_;
  CompiledQuery compiled_horns_;
  RpExistentialOptions opts_;
  std::set<Tuple> guarantee_closures_;
  std::vector<Tuple> children_scratch_;
};

}  // namespace

RpExistentialResult LearnExistentialConjunctions(
    int n, MembershipOracle* oracle,
    const std::vector<UniversalHorn>& universal,
    const RpExistentialOptions& opts,
    const std::vector<Tuple>* initial_frontier) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(oracle != nullptr);
  LatticeSearch search(n, oracle, universal, opts);
  std::vector<Tuple> frontier =
      initial_frontier != nullptr ? *initial_frontier
                                  : std::vector<Tuple>{AllTrue(n)};
  return search.Run(std::move(frontier));
}

}  // namespace qhorn
