#include "src/learn/find.h"

#include "src/util/check.h"

namespace qhorn {

namespace {

/// Splits `mask` into a low half and a high half by variable order; the low
/// half gets ⌈|mask|/2⌉ variables.
void SplitHalves(VarSet mask, VarSet* low, VarSet* high) {
  int total = Popcount(mask);
  int take = (total + 1) / 2;
  VarSet lo = 0;
  VarSet rest = mask;
  for (int i = 0; i < take; ++i) {
    VarSet bit = rest & (~rest + 1);
    lo |= bit;
    rest &= rest - 1;
  }
  *low = lo;
  *high = rest;
}

}  // namespace

VarSet FindOne(MembershipOracle& oracle, SetQuestion question, bool eliminate,
               VarSet domain) {
  if (domain == 0) return 0;
  TupleSet probe;
  question(domain, &probe);
  if (oracle.IsAnswer(probe) == eliminate) return 0;
  // Invariant: `domain` contains a sought variable.
  while (Popcount(domain) > 1) {
    VarSet low, high;
    SplitHalves(domain, &low, &high);
    question(low, &probe);
    domain = (oracle.IsAnswer(probe) == eliminate) ? high : low;
  }
  return domain;
}

VarSet FindAllVars(MembershipOracle& oracle, SetQuestion question,
                   bool eliminate, VarSet domain, FindScratch* scratch) {
  // Breadth-first over the halving tree: the questions of one depth are
  // determined entirely by the previous depth's answers, so each level is
  // labelled in a single oracle round. The question multiset (and so the
  // Lemma 3.2/3.3 budget) is exactly the recursive descent's; only the
  // order changes from depth-first to level order.
  VarSet found = 0;
  if (domain == 0) return 0;
  std::vector<VarSet>& level = scratch->level;
  std::vector<VarSet>& next = scratch->next;
  // Question slots are assigned in place and never shrunk, so the TupleSet
  // allocations are reused across levels (and across calls sharing the
  // scratch).
  std::vector<TupleSet>& questions = scratch->questions;
  BitVec& answers = scratch->answers;
  level.assign(1, domain);
  while (!level.empty()) {
    if (questions.size() < level.size()) questions.resize(level.size());
    for (size_t i = 0; i < level.size(); ++i) {
      question(level[i], &questions[i]);
    }
    // Singleton levels (the root, and pruned-down tails) ride the same
    // batch path as wide ones. A one-question round keeps a few ns of
    // fixed batch-plumbing cost over a plain IsAnswer
    // (BM_OracleBatchBatched/1) — invisible end to end, and the uniform
    // path is what the pipeline layers assume.
    oracle.IsAnswerBatch(
        std::span<const TupleSet>(questions.data(), level.size()),
        answers.Prepare(level.size()));
    next.clear();
    for (size_t i = 0; i < level.size(); ++i) {
      if (answers.Get(i) == eliminate) continue;  // no sought variable inside
      if (Popcount(level[i]) == 1) {
        found |= level[i];
        continue;
      }
      VarSet low, high;
      SplitHalves(level[i], &low, &high);
      next.push_back(low);
      next.push_back(high);
    }
    std::swap(level, next);
  }
  return found;
}

VarSet FindAllVars(MembershipOracle& oracle, SetQuestion question,
                   bool eliminate, VarSet domain) {
  FindScratch scratch;
  return FindAllVars(oracle, question, eliminate, domain, &scratch);
}

std::vector<Tuple> MinimalSubset(const std::vector<Tuple>& items,
                                 const TupleSubsetPred& pred) {
  std::vector<Tuple> kept;
  std::vector<Tuple> work = items;

  auto with_prefix = [&](size_t m) {
    std::vector<Tuple> candidate = kept;
    candidate.insert(candidate.end(), work.begin(),
                     work.begin() + static_cast<long>(m));
    return candidate;
  };

  while (!pred(kept)) {
    if (work.empty()) {
      // The predicate contradicted itself (it held on a superset earlier).
      // With a truthful oracle this cannot happen; a mislabelling user
      // (§5) can cause it. Keep everything rather than abort — the caller
      // recovers through verification or history correction.
      return items;
    }
    // Smallest prefix of `work` that, together with `kept`, satisfies pred.
    size_t lo = 1;
    size_t hi = work.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (pred(with_prefix(mid))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // work[lo-1] is necessary; everything after it is redundant given the
    // prefix, so it is dropped.
    kept.push_back(work[lo - 1]);
    work.resize(lo - 1);
  }
  return kept;
}

std::vector<Tuple> MinimalSubsetBatched(const std::vector<Tuple>& items,
                                        const TupleSubsetBatchPred& pred) {
  std::vector<Tuple> kept;
  std::vector<Tuple> work = items;
  std::vector<std::vector<Tuple>> candidates;
  BitVec answers;
  for (;;) {
    // One round labels pred on every prefix kept ∪ work[0..m), m = 0..|work|
    // (m = 0 is the sequential loop's pred(kept) guard).
    candidates.clear();
    for (size_t m = 0; m <= work.size(); ++m) {
      std::vector<Tuple> c = kept;
      c.insert(c.end(), work.begin(), work.begin() + static_cast<long>(m));
      candidates.push_back(std::move(c));
    }
    BitSpan span = answers.Prepare(candidates.size());
    pred(candidates, span);
    size_t lo = candidates.size();
    for (size_t m = 0; m < candidates.size(); ++m) {
      if (span.Get(m)) {
        lo = m;
        break;
      }
    }
    if (lo == 0) return kept;
    if (lo == candidates.size()) {
      // Even the full set failed although it held on a superset earlier —
      // the oracle is inconsistent (a mislabelling user, §5). Same degrade
      // as MinimalSubset: keep everything rather than abort.
      return items;
    }
    kept.push_back(work[lo - 1]);
    work.resize(lo - 1);
  }
}

}  // namespace qhorn
