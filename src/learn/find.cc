#include "src/learn/find.h"

#include "src/util/check.h"

namespace qhorn {

namespace {

/// Splits `mask` into a low half and a high half by variable order; the low
/// half gets ⌈|mask|/2⌉ variables.
void SplitHalves(VarSet mask, VarSet* low, VarSet* high) {
  int total = Popcount(mask);
  int take = (total + 1) / 2;
  VarSet lo = 0;
  VarSet rest = mask;
  for (int i = 0; i < take; ++i) {
    VarSet bit = rest & (~rest + 1);
    lo |= bit;
    rest &= rest - 1;
  }
  *low = lo;
  *high = rest;
}

}  // namespace

VarSet FindOne(MembershipOracle& oracle, const SetQuestion& question,
               bool eliminate, VarSet domain) {
  if (domain == 0) return 0;
  if (oracle.IsAnswer(question(domain)) == eliminate) return 0;
  // Invariant: `domain` contains a sought variable.
  while (Popcount(domain) > 1) {
    VarSet low, high;
    SplitHalves(domain, &low, &high);
    domain = (oracle.IsAnswer(question(low)) == eliminate) ? high : low;
  }
  return domain;
}

namespace {

void FindAllRec(MembershipOracle& oracle, const SetQuestion& question,
                bool eliminate, VarSet domain, VarSet* found) {
  if (domain == 0) return;
  if (oracle.IsAnswer(question(domain)) == eliminate) return;
  if (Popcount(domain) == 1) {
    *found |= domain;
    return;
  }
  VarSet low, high;
  SplitHalves(domain, &low, &high);
  FindAllRec(oracle, question, eliminate, low, found);
  FindAllRec(oracle, question, eliminate, high, found);
}

}  // namespace

VarSet FindAllVars(MembershipOracle& oracle, const SetQuestion& question,
                   bool eliminate, VarSet domain) {
  VarSet found = 0;
  FindAllRec(oracle, question, eliminate, domain, &found);
  return found;
}

std::vector<Tuple> MinimalSubset(const std::vector<Tuple>& items,
                                 const TupleSubsetPred& pred) {
  std::vector<Tuple> kept;
  std::vector<Tuple> work = items;

  auto with_prefix = [&](size_t m) {
    std::vector<Tuple> candidate = kept;
    candidate.insert(candidate.end(), work.begin(),
                     work.begin() + static_cast<long>(m));
    return candidate;
  };

  while (!pred(kept)) {
    if (work.empty()) {
      // The predicate contradicted itself (it held on a superset earlier).
      // With a truthful oracle this cannot happen; a mislabelling user
      // (§5) can cause it. Keep everything rather than abort — the caller
      // recovers through verification or history correction.
      return items;
    }
    // Smallest prefix of `work` that, together with `kept`, satisfies pred.
    size_t lo = 1;
    size_t hi = work.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (pred(with_prefix(mid))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // work[lo-1] is necessary; everything after it is redundant given the
    // prefix, so it is dropped.
    kept.push_back(work[lo - 1]);
    work.resize(lo - 1);
  }
  return kept;
}

}  // namespace qhorn
