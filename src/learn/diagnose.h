// Class-membership diagnosis (§6 future work): "we plan to design
// algorithms to verify that the user's query is indeed in qhorn-1 or
// role-preserving qhorn".
//
// The learners are exact *on their class*; outside it they terminate with
// some query, but that query then disagrees with the user somewhere. The
// diagnosis exploits exactly that: learn, then check the learned query
// back against the same user with the O(k) verification set and a PAC
// sample. Agreement everywhere certifies the session (with PAC confidence)
// as consistent with a role-preserving intention; any disagreement proves
// the intention lies outside the class (or the user erred — the §5
// history workflow distinguishes the two).

#ifndef QHORN_LEARN_DIAGNOSE_H_
#define QHORN_LEARN_DIAGNOSE_H_

#include "src/learn/pac.h"
#include "src/learn/rp_learner.h"

namespace qhorn {

enum class ClassDiagnosis {
  /// The learned query matched the user on the verification set and the
  /// PAC sample: consistent with a role-preserving intention.
  kConsistentRolePreserving,
  /// The user contradicted the learned query: the intention is outside
  /// role-preserving qhorn (or answers were unreliable).
  kOutsideClassOrInconsistent,
};

struct DiagnosisReport {
  ClassDiagnosis diagnosis = ClassDiagnosis::kConsistentRolePreserving;
  Query learned;                 ///< the hypothesis that was tested
  int64_t questions = 0;         ///< total membership questions spent
  TupleSet counterexample;       ///< a disagreement witness, when outside
  bool counterexample_valid = false;
};

/// Runs learn → verify → PAC-sample against `user`.
DiagnosisReport DiagnoseRolePreserving(int n, MembershipOracle* user,
                                       uint64_t pac_seed = 1,
                                       const PacOptions& pac = PacOptions());

}  // namespace qhorn

#endif  // QHORN_LEARN_DIAGNOSE_H_
