#include "src/learn/diagnose.h"

#include "src/verify/verifier.h"

namespace qhorn {

DiagnosisReport DiagnoseRolePreserving(int n, MembershipOracle* user,
                                       uint64_t pac_seed,
                                       const PacOptions& pac) {
  DiagnosisReport report;
  CountingOracle counting(user);

  RpLearnerResult learned = LearnRolePreserving(n, &counting);
  report.learned = learned.query;

  if (report.learned.size_k() > 0) {
    VerificationSet set = BuildVerificationSet(report.learned);
    for (const VerificationQuestion& vq : set.questions) {
      if (counting.IsAnswer(vq.question) != vq.expected_answer) {
        report.diagnosis = ClassDiagnosis::kOutsideClassOrInconsistent;
        report.counterexample = vq.question;
        report.counterexample_valid = true;
        report.questions = counting.stats().questions;
        return report;
      }
    }
  }

  Rng rng(pac_seed);
  PacReport sample = PacVerify(report.learned, &counting, rng, pac);
  report.questions = counting.stats().questions;
  if (!sample.consistent) {
    report.diagnosis = ClassDiagnosis::kOutsideClassOrInconsistent;
    report.counterexample = sample.counterexample;
    report.counterexample_valid = true;
  }
  return report;
}

}  // namespace qhorn
