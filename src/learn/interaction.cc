#include "src/learn/interaction.h"

#include <vector>

#include "src/util/check.h"

namespace qhorn {

InteractionOracle::InteractionOracle(Qhorn1Structure target)
    : target_(std::move(target)) {}

const Qhorn1Part* InteractionOracle::PartOf(int v) const {
  for (const Qhorn1Part& p : target_.parts()) {
    if (HasVar(p.vars(), v)) return &p;
  }
  return nullptr;
}

bool InteractionOracle::MustAlwaysHold(int v) {
  ++asked_;
  const Qhorn1Part* p = PartOf(v);
  return p != nullptr && HasVar(p->universal_heads, v);
}

bool InteractionOracle::ShareExpression(int a, int b) {
  ++asked_;
  const Qhorn1Part* p = PartOf(a);
  if (p == nullptr || p != PartOf(b)) return false;
  // Expressions of a part are body ∪ {head}, one per head: two variables
  // co-occur iff at least one of them is a body variable.
  return HasVar(p->body, a) || HasVar(p->body, b);
}

bool InteractionOracle::Causes(int body_var, int head_var) {
  ++asked_;
  const Qhorn1Part* p = PartOf(head_var);
  return p != nullptr && HasVar(p->heads(), head_var) &&
         HasVar(p->body, body_var);
}

Qhorn1Structure LearnQhorn1ByInteraction(int n, InteractionOracle* oracle,
                                         InteractionTrace* trace) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(oracle != nullptr);
  InteractionTrace local;
  if (trace == nullptr) trace = &local;

  // Phase 1: "when does p_v have to be satisfied?" — universal heads.
  VarSet universal = 0;
  for (int v = 0; v < n; ++v) {
    ++trace->role_questions;
    if (oracle->MustAlwaysHold(v)) universal |= VarBit(v);
  }

  // Phase 2: co-occurrence graph over all pairs.
  std::vector<VarSet> adjacent(static_cast<size_t>(n), 0);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      ++trace->share_questions;
      if (oracle->ShareExpression(a, b)) {
        adjacent[static_cast<size_t>(a)] |= VarBit(b);
        adjacent[static_cast<size_t>(b)] |= VarBit(a);
      }
    }
  }

  // Connected components are exactly the qhorn-1 parts.
  Qhorn1Structure structure(n);
  VarSet assigned = 0;
  for (int v = 0; v < n; ++v) {
    if (HasVar(assigned, v)) continue;
    // BFS.
    VarSet comp = VarBit(v);
    VarSet frontier = VarBit(v);
    while (frontier != 0) {
      VarSet next = 0;
      for (int u : VarsOf(frontier)) {
        next |= adjacent[static_cast<size_t>(u)] & ~comp;
      }
      comp |= next;
      frontier = next;
    }
    assigned |= comp;

    if (Popcount(comp) == 1) {
      Qhorn1Part part;
      if (HasVar(universal, v)) {
        part.universal_heads = comp;
      } else {
        part.existential_heads = comp;
      }
      structure.AddPart(part);
      continue;
    }

    // Body variables co-occur with every other member; heads only with the
    // body. In a single-head part the graph is complete and the head is
    // pinned by a role answer or a causal question.
    VarSet fully = 0;
    for (int u : VarsOf(comp)) {
      if ((comp & ~VarBit(u) & ~adjacent[static_cast<size_t>(u)]) == 0) {
        fully |= VarBit(u);
      }
    }
    VarSet uheads = comp & universal;
    Qhorn1Part part;
    if (fully == comp) {
      // Complete graph: one head.
      int head;
      if (uheads != 0) {
        QHORN_CHECK_MSG(Popcount(uheads) == 1,
                        "complete part with several universal heads");
        head = VarsOf(uheads)[0];
      } else {
        // "does satisfying the others force p_h?" per candidate.
        head = -1;
        std::vector<int> members = VarsOf(comp);
        for (int candidate : members) {
          int other = candidate == members[0] ? members[1] : members[0];
          ++trace->cause_questions;
          if (oracle->Causes(other, candidate)) {
            head = candidate;
            break;
          }
        }
        QHORN_CHECK_MSG(head >= 0, "no head found in a complete part");
      }
      part.body = comp & ~VarBit(head);
      if (HasVar(universal, head)) {
        part.universal_heads = VarBit(head);
      } else {
        part.existential_heads = VarBit(head);
      }
    } else {
      part.body = fully;
      part.universal_heads = uheads;
      part.existential_heads = comp & ~fully & ~uheads;
      QHORN_CHECK_MSG((uheads & fully) == 0,
                      "universal head inside the body of a multi-head part");
    }
    structure.AddPart(part);
  }
  QHORN_CHECK(structure.CoversAllVars());
  return structure;
}

}  // namespace qhorn
