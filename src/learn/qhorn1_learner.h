// The O(n lg n)-question exact learner for qhorn-1 (§3.1, Theorem 3.1).
//
// The learner decomposes into the paper's three tasks:
//   1. classify every variable as a universal head or an existential
//      variable (§3.1.1, one question per variable),
//   2. learn each universal head's body with universal dependence questions
//      and binary search (§3.1.2, Algorithms 1–3, Lemma 3.2),
//   3. learn existential Horn expressions with existential independence
//      questions and independence-matrix questions (§3.1.3, Algorithms 4–5,
//      Lemma 3.3).
//
// The model assumes the target is a qhorn-1 query in which every variable
// appears exactly once (as a universal head, an existential head, a body
// variable, or a singleton expression) — the paper's "no variable
// repetition" restriction. Given that, the learner exactly identifies the
// target up to semantic equivalence: universal expressions are recovered
// verbatim; an existential part with a single head is recovered up to the
// interchangeable head/body roles within one conjunction (∃B→h ≡ ∃(B∧h)).

#ifndef QHORN_LEARN_QHORN1_LEARNER_H_
#define QHORN_LEARN_QHORN1_LEARNER_H_

#include <span>
#include <vector>

#include "src/core/query.h"
#include "src/learn/find.h"
#include "src/oracle/oracle.h"

namespace qhorn {

/// Per-phase question counts, for the E4 benchmark's breakdown.
struct Qhorn1LearnerTrace {
  int64_t head_questions = 0;
  int64_t universal_body_questions = 0;
  int64_t existential_questions = 0;

  int64_t total() const {
    return head_questions + universal_body_questions + existential_questions;
  }
};

/// Learns a qhorn-1 query with membership questions.
class Qhorn1Learner {
 public:
  /// `oracle` answers membership questions for the hidden target, which
  /// must be a qhorn-1 query over n variables covering all of them.
  Qhorn1Learner(int n, MembershipOracle* oracle);

  /// Runs the full learning procedure and returns the learned structure.
  Qhorn1Structure Learn();

  /// Per-phase question counts of the last Learn() call.
  const Qhorn1LearnerTrace& trace() const { return trace_; }

 private:
  struct Part {
    VarSet body = 0;
    VarSet universal_heads = 0;
    VarSet existential_heads = 0;
  };

  /// §3.1.1: {1^n, all-true-except-v} is a non-answer iff v is a universal
  /// head. The n questions are independent and go out as one batch.
  VarSet LearnUniversalHeads();

  // The §3.1.2 universal dependence questions ({1^n, tuple with h and V
  // false}) and §3.1.3 independence questions ({1^n minus X, 1^n minus Y})
  // are built in place by the probe lambdas of LearnUniversalBody /
  // LearnExistentialFor via TupleSet::AssignPair.

  /// Def. 3.3: one tuple per d ∈ s with only d false.
  TupleSet MatrixQuestion(VarSet s) const;

  /// Learns the body of universal head h (Algorithm 1); updates parts_.
  void LearnUniversalBody(int head);

  /// Processes existential variable e (Algorithm 4); updates parts_.
  void LearnExistentialFor(int e);

  /// Algorithm 5: returns one existential head variable within the
  /// dependent set `d` (single-bit mask), or 0 when `d` contains at most
  /// one head (in which case the caller treats e as the head). Requires
  /// the matrix-question semantics: a matrix question on S ⊆ d is an
  /// answer iff S contains at least two heads.
  VarSet GetHead(VarSet d);

  /// Index of the part whose body contains `var`, or -1.
  int PartWithBodyVar(int var) const;

  VarSet UnionOfBodies() const;

  bool Ask(const TupleSet& question, int64_t* counter);

  /// One oracle round for a run of independent questions; `counter` is
  /// charged once per question, exactly as the sequential loop would.
  /// Answers land in batch_answers_.
  void AskBatch(std::span<const TupleSet> questions, int64_t* counter);

  int n_;
  MembershipOracle* oracle_;
  Qhorn1LearnerTrace trace_;
  // Probe-loop scratch, reused across every batched round of a Learn().
  FindScratch find_scratch_;
  std::vector<TupleSet> batch_questions_;
  BitVec batch_answers_;

  VarSet universal_heads_ = 0;
  VarSet existential_vars_ = 0;
  VarSet assigned_ = 0;  // variables already placed in a part
  std::vector<Part> parts_;
};

}  // namespace qhorn

#endif  // QHORN_LEARN_QHORN1_LEARNER_H_
