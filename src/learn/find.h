// Binary-search primitives shared by the learners.
//
// Find / FindAll are Algorithms 2 and 3 of the paper: given a question
// template Q(·) over a set of variables and a response `eliminate` on which
// a candidate set can be discarded, they locate one (resp. all) variables v
// whose singleton question Q({v}) draws the opposite response. Both rely on
// the questions' set semantics: Q(D) draws the non-eliminating response iff
// some v ∈ D does.
//
// The question template writes into a caller-owned TupleSet so the probe
// loops reuse one allocation (almost every template is a two-tuple object —
// see TupleSet::AssignPair); it is passed as a FunctionRef, so building the
// question costs no std::function allocation or double indirection.
// FindAllVars walks its halving tree breadth-first and labels each depth in
// one batched oracle round — same question multiset and count as the
// recursive descent, in level order.
//
// MinimalSubset is the workhorse of Prune (Algorithm 8): it extracts a
// subset-minimal K ⊆ items with pred(K) true, for a monotone predicate,
// using O((|K|+1)·lg|items|) predicate evaluations via prefix binary search.

#ifndef QHORN_LEARN_FIND_H_
#define QHORN_LEARN_FIND_H_

#include <functional>
#include <vector>

#include "src/bool/tuple.h"
#include "src/oracle/oracle.h"
#include "src/util/bit_span.h"
#include "src/util/function_ref.h"

namespace qhorn {

/// Builds the membership question for a candidate variable set, writing it
/// into `*out` (contents replaced; allocation reused).
using SetQuestion = FunctionRef<void(VarSet, TupleSet*)>;

/// Algorithm 2. Returns one variable (as a single-bit mask) v ∈ domain with
/// Ask(Q({v})) != eliminate, or 0 if Ask(Q(domain)) == eliminate (no such
/// variable). Asks O(lg |domain|) questions.
VarSet FindOne(MembershipOracle& oracle, SetQuestion question, bool eliminate,
               VarSet domain);

/// Reusable buffers for FindAllVars. A learner makes one of these per
/// session and passes it to every call: the level worklists, question
/// slots and answer vector then allocate only on the widest call ever
/// made, not once per call (the qhorn-1 learner calls FindAllVars once or
/// twice per variable).
struct FindScratch {
  std::vector<VarSet> level;
  std::vector<VarSet> next;
  std::vector<TupleSet> questions;
  BitVec answers;
};

/// Algorithm 3. Returns the mask of all variables v ∈ domain with
/// Ask(Q({v})) != eliminate. Asks O((|result|+1)·lg |domain|) questions,
/// batched one halving-tree level per oracle round.
VarSet FindAllVars(MembershipOracle& oracle, SetQuestion question,
                   bool eliminate, VarSet domain, FindScratch* scratch);

/// Convenience overload with call-local scratch.
VarSet FindAllVars(MembershipOracle& oracle, SetQuestion question,
                   bool eliminate, VarSet domain);

/// Monotone predicate over a candidate subset of tuples.
using TupleSubsetPred = std::function<bool(const std::vector<Tuple>&)>;

/// Minimal K ⊆ items with pred(K) true. Requires pred(items) == true and
/// pred monotone (adding tuples never turns true into false). Every element
/// of the result is necessary: pred(K \ {e}) is false for each e ∈ K.
std::vector<Tuple> MinimalSubset(const std::vector<Tuple>& items,
                                 const TupleSubsetPred& pred);

/// Labels every candidate subset in one oracle round: answers.Get(i) must
/// become pred(candidates[i]).
using TupleSubsetBatchPred =
    std::function<void(const std::vector<std::vector<Tuple>>&, BitSpan)>;

/// Round-sparing MinimalSubset for backends that price *rounds*, not
/// questions (a pending session suspended on a human). Monotonicity makes
/// the prefix predicate pred(kept ∪ work[0..m)) monotone in m, so the
/// binary search's threshold is recoverable from one batch that labels
/// every prefix at once: |K|+1 rounds total instead of (|K|+1)·lg|items|,
/// paying O((|K|+1)·|items|) questions. Identical result to MinimalSubset
/// under a consistent oracle — the same smallest-true-prefix is picked
/// each iteration.
std::vector<Tuple> MinimalSubsetBatched(const std::vector<Tuple>& items,
                                        const TupleSubsetBatchPred& pred);

}  // namespace qhorn

#endif  // QHORN_LEARN_FIND_H_
