// Binary-search primitives shared by the learners.
//
// Find / FindAll are Algorithms 2 and 3 of the paper: given a question
// template Q(·) over a set of variables and a response `eliminate` on which
// a candidate set can be discarded, they locate one (resp. all) variables v
// whose singleton question Q({v}) draws the opposite response. Both rely on
// the questions' set semantics: Q(D) draws the non-eliminating response iff
// some v ∈ D does.
//
// MinimalSubset is the workhorse of Prune (Algorithm 8): it extracts a
// subset-minimal K ⊆ items with pred(K) true, for a monotone predicate,
// using O((|K|+1)·lg|items|) predicate evaluations via prefix binary search.

#ifndef QHORN_LEARN_FIND_H_
#define QHORN_LEARN_FIND_H_

#include <functional>
#include <vector>

#include "src/bool/tuple.h"
#include "src/oracle/oracle.h"

namespace qhorn {

/// Builds the membership question for a candidate variable set.
using SetQuestion = std::function<TupleSet(VarSet)>;

/// Algorithm 2. Returns one variable (as a single-bit mask) v ∈ domain with
/// Ask(Q({v})) != eliminate, or 0 if Ask(Q(domain)) == eliminate (no such
/// variable). Asks O(lg |domain|) questions.
VarSet FindOne(MembershipOracle& oracle, const SetQuestion& question,
               bool eliminate, VarSet domain);

/// Algorithm 3. Returns the mask of all variables v ∈ domain with
/// Ask(Q({v})) != eliminate. Asks O((|result|+1)·lg |domain|) questions.
VarSet FindAllVars(MembershipOracle& oracle, const SetQuestion& question,
                   bool eliminate, VarSet domain);

/// Monotone predicate over a candidate subset of tuples.
using TupleSubsetPred = std::function<bool(const std::vector<Tuple>&)>;

/// Minimal K ⊆ items with pred(K) true. Requires pred(items) == true and
/// pred monotone (adding tuples never turns true into false). Every element
/// of the result is necessary: pred(K \ {e}) is false for each e ∈ K.
std::vector<Tuple> MinimalSubset(const std::vector<Tuple>& items,
                                 const TupleSubsetPred& pred);

}  // namespace qhorn

#endif  // QHORN_LEARN_FIND_H_
