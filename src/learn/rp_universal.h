// Learning the universal Horn expressions of a role-preserving qhorn query
// (§3.2.1, Theorem 3.5).
//
// Per head variable h the learner works in the Fig. 5 lattice: other head
// variables are pinned true (neutralized), h is pinned false, and the
// lattice spans the non-head variables. One body is extracted with the
// linear sweep of Algorithm 6; further incomparable bodies are found by
// searching the sub-lattices rooted at tuples that set one variable from
// each known body to false (the paper's "search roots"), giving O(n^θ)
// questions per head where θ is h's causal density.

#ifndef QHORN_LEARN_RP_UNIVERSAL_H_
#define QHORN_LEARN_RP_UNIVERSAL_H_

#include <cstdint>
#include <vector>

#include "src/core/query.h"
#include "src/oracle/oracle.h"

namespace qhorn {

/// Limits for the universal phase (θ is unbounded in general qhorn; the
/// learner aborts rather than loop forever on adversarial inputs).
struct RpUniversalOptions {
  /// Maximum number of incomparable bodies accepted per head.
  int max_bodies_per_head = 32;
  /// Maximum number of search roots examined per head.
  uint64_t max_roots = 1u << 20;
  /// Round-sparing speculation for pending (human) backends. The per-head
  /// bodyless tests ship as one round, and Algorithm 6's extraction sweep
  /// speculates that every variable it probes will be excluded from the
  /// body: the whole remaining sweep goes out as one wide round, and only
  /// a kept variable (whose answer contradicts the speculation) forces a
  /// re-batch from the next variable on. Identical extracted bodies, a
  /// discarded-tail question overhead, and O(|body|) rounds per extraction
  /// instead of O(n). Answer-stream deterministic: the question sequence
  /// depends only on this option and the answers, so differential arms
  /// must agree on it.
  bool speculative_batching = false;
};

/// Question counts of the universal phase.
struct RpUniversalTrace {
  int64_t head_questions = 0;
  int64_t body_questions = 0;

  int64_t total() const { return head_questions + body_questions; }
};

/// Result: every dominant universal Horn expression of the target.
struct RpUniversalResult {
  std::vector<UniversalHorn> horns;
  VarSet head_vars = 0;
  RpUniversalTrace trace;
};

/// Runs the §3.2.1 procedure against `oracle` (the hidden target must be a
/// role-preserving qhorn query on n variables).
RpUniversalResult LearnUniversalHorns(
    int n, MembershipOracle* oracle,
    const RpUniversalOptions& opts = RpUniversalOptions());

}  // namespace qhorn

#endif  // QHORN_LEARN_RP_UNIVERSAL_H_
