#include "src/workload/workload.h"

#include <algorithm>

#include "src/core/random_query.h"
#include "src/util/check.h"

namespace qhorn {
namespace {

// SplitMix64 finalizer: decorrelates per-session streams however the
// caller picked the fleet seed (consecutive seeds included — the fuzz
// sweep walks a contiguous range).
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

QueryClass PickClass(const WorkloadSpec& spec, Rng& rng) {
  double w1 = std::max(0.0, spec.qhorn1_weight);
  double w2 = std::max(0.0, spec.rp_existential_weight);
  double w3 = std::max(0.0, spec.rp_universal_weight);
  double total = w1 + w2 + w3;
  QHORN_CHECK_MSG(total > 0.0, "all query-class weights are zero");
  double u = rng.Uniform() * total;
  if (u < w1) return QueryClass::kQhorn1;
  if (u < w1 + w2) return QueryClass::kRpExistential;
  return QueryClass::kRpUniversal;
}

Query DrawTarget(QueryClass c, int n, Rng& rng) {
  switch (c) {
    case QueryClass::kQhorn1: {
      Qhorn1Options opts;
      opts.max_part_size = std::min(4, n);
      return RandomQhorn1(n, rng, opts).ToQuery();
    }
    case QueryClass::kRpExistential: {
      RpOptions opts;
      opts.num_heads = 0;
      opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
      opts.conj_size_max = std::min(3, n);
      return RandomRolePreserving(n, rng, opts);
    }
    case QueryClass::kRpUniversal: {
      RpOptions opts;
      opts.num_heads = static_cast<int>(rng.Range(1, std::min(2, n)));
      opts.theta = static_cast<int>(rng.Range(1, 2));
      opts.body_size = 2;
      opts.bodyless_prob = 0.2;
      opts.num_conjunctions = static_cast<int>(rng.Range(0, 1));
      opts.conj_size_max = std::min(3, n);
      return RandomRolePreserving(n, rng, opts);
    }
  }
  QHORN_CHECK(false);
}

std::vector<WorkloadJob> DrawJobs(const SessionSpec& s, Rng& rng) {
  std::vector<WorkloadJob> jobs;
  if (s.noisy()) {
    // Noisy users run only the fixed-question-set verification jobs (see
    // the header contract): arbitrary labels terminate deterministically.
    jobs.push_back(rng.Chance(0.5) ? WorkloadJob::kVerifyTarget
                                   : WorkloadJob::kVerifyMutant);
    if (rng.Chance(0.4)) {
      jobs.push_back(rng.Chance(0.5) ? WorkloadJob::kVerifyTarget
                                     : WorkloadJob::kVerifyMutant);
    }
    return jobs;
  }
  jobs.push_back(WorkloadJob::kLearn);
  if (rng.Chance(0.5)) {
    switch (rng.Range(0, 2)) {
      case 0:
        jobs.push_back(WorkloadJob::kVerifyTarget);
        break;
      case 1:
        jobs.push_back(WorkloadJob::kVerifyMutant);
        break;
      default:
        jobs.push_back(WorkloadJob::kRevise);
        break;
    }
    if (rng.Chance(0.25)) jobs.push_back(WorkloadJob::kVerifyTarget);
  }
  return jobs;
}

}  // namespace

const char* ToString(QueryClass c) {
  switch (c) {
    case QueryClass::kQhorn1:
      return "qhorn1";
    case QueryClass::kRpExistential:
      return "rp-existential";
    case QueryClass::kRpUniversal:
      return "rp-universal";
  }
  return "?";
}

const char* ToString(WorkloadJob j) {
  switch (j) {
    case WorkloadJob::kLearn:
      return "learn";
    case WorkloadJob::kVerifyTarget:
      return "verify-target";
    case WorkloadJob::kVerifyMutant:
      return "verify-mutant";
    case WorkloadJob::kRevise:
      return "revise";
  }
  return "?";
}

WorkloadSpec WorkloadSpec::FromSeed(uint64_t seed) {
  Rng rng(Mix(seed, 0x5eedULL));
  WorkloadSpec spec;
  spec.seed = seed;
  spec.sessions = static_cast<int>(rng.Range(5, 12));
  spec.lanes = static_cast<int>(rng.Range(2, 5));
  spec.n_min = static_cast<int>(rng.Range(3, 5));
  spec.n_max = std::min(7, spec.n_min + static_cast<int>(rng.Range(0, 2)));
  spec.qhorn1_weight = 0.2 + rng.Uniform();
  spec.rp_existential_weight = 0.2 + rng.Uniform();
  spec.rp_universal_weight = 0.2 + rng.Uniform();
  spec.noisy_fraction = rng.Uniform() * 0.5;
  spec.flip_min = 0.05;
  spec.flip_max = 0.05 + rng.Uniform() * 0.6;
  spec.abandon_fraction = rng.Uniform() * 0.3;
  spec.answer_fraction = 0.4 + rng.Uniform() * 0.6;
  spec.malformed_rate = rng.Uniform() * 0.8;
  spec.duplicate_rate = rng.Uniform() * 0.6;
  spec.latency_alpha = 0.5 + rng.Uniform();
  spec.latency_cap_ticks = static_cast<int>(rng.Range(0, 8));
  // PR 8 knobs, drawn last so every earlier field (and hence every fleet
  // generated from the same seed before these existed) is unchanged.
  spec.speculative_batching = rng.Chance(0.5);
  spec.replay_resume = rng.Chance(0.25);
  // PR 9 knob, drawn after the PR 8 pair for the same stability reason.
  spec.router_shards = 1 << static_cast<int>(rng.Range(0, 3));
  return spec;
}

std::string WorkloadSpec::ReproLine() const {
  return "repro: tools/workload_repro.py --seed=" + std::to_string(seed);
}

Fleet GenerateFleet(const WorkloadSpec& spec) {
  QHORN_CHECK(spec.sessions >= 1);
  QHORN_CHECK(spec.n_min >= 2 && spec.n_min <= spec.n_max &&
              spec.n_max <= kMaxVars);
  Fleet fleet;
  fleet.spec = spec;
  fleet.sessions.reserve(static_cast<size_t>(spec.sessions));
  for (int i = 0; i < spec.sessions; ++i) {
    // One independent stream per session: a fleet is the same fleet
    // whether sessions are generated eagerly or on demand.
    Rng rng(Mix(spec.seed, static_cast<uint64_t>(i)));
    SessionSpec s;
    s.query_class = PickClass(spec, rng);
    s.n = static_cast<int>(rng.Range(spec.n_min, spec.n_max));
    s.target = DrawTarget(s.query_class, s.n, rng);
    s.mutant = DrawTarget(s.query_class, s.n, rng);
    if (rng.Chance(spec.noisy_fraction)) {
      s.flip_rate =
          spec.flip_min + rng.Uniform() * (spec.flip_max - spec.flip_min);
      s.noise_seed = rng.Next();
    }
    s.jobs = DrawJobs(s, rng);
    if (rng.Chance(spec.abandon_fraction)) {
      s.abandon = true;
      s.abandon_after_rounds = static_cast<int>(rng.Range(0, 2));
    }
    fleet.sessions.push_back(std::move(s));
  }
  return fleet;
}

}  // namespace qhorn
