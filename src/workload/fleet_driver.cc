#include "src/workload/fleet_driver.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/oracle/oracle.h"
#include "src/util/bit_span.h"
#include "src/util/check.h"
#include "src/workload/fingerprint.h"

namespace qhorn {
namespace {

/// Per-session answer source, identical in both arms: ground truth plus an
/// optional seeded noise stage. Rounds reach it in round order either way,
/// so the flip sequence — and therefore the answer stream — is a function
/// of the session spec alone, never of delivery scheduling.
struct UserStack {
  std::unique_ptr<QueryOracle> truth;
  std::unique_ptr<NoisyOracle> noisy;
  MembershipOracle* top = nullptr;
};

UserStack MakeStack(const SessionSpec& s) {
  UserStack stack;
  stack.truth = std::make_unique<QueryOracle>(s.target);
  stack.top = stack.truth.get();
  if (s.noisy()) {
    stack.noisy = std::make_unique<NoisyOracle>(stack.truth.get(), s.flip_rate,
                                                s.noise_seed);
    stack.top = stack.noisy.get();
  }
  return stack;
}

/// Heavy-tailed simulated user latency in scheduler ticks: Pareto-shaped
/// (most users answer within a tick, a few take ~the cap), capped so the
/// sweep loop always terminates.
int64_t DrawLatency(const WorkloadSpec& spec, Rng& rng) {
  if (spec.latency_cap_ticks <= 0) return 0;
  double u = std::max(rng.Uniform(), 1e-9);
  double t = std::pow(u, -spec.latency_alpha) - 1.0;
  return std::min<int64_t>(spec.latency_cap_ticks, static_cast<int64_t>(t));
}

}  // namespace

// ---------------------------------------------------------------------------
// The hostile arm

FleetResult FleetDriver::RunHostile(ServiceEndpoint& endpoint,
                                    CrashController* crash) {
  const WorkloadSpec& spec = fleet_.spec;
  const size_t count = fleet_.sessions.size();
  FleetResult result;
  result.fingerprints.resize(count);
  auto fail = [&](const std::string& msg) {
    if (!result.ok) return;
    result.ok = false;
    result.failure = msg + " (" + spec.ReproLine() + ")";
  };

  std::vector<UserStack> stacks;
  std::vector<ServiceEndpoint::SessionId> ids;
  std::unordered_map<ServiceEndpoint::SessionId, size_t> index_of;
  stacks.reserve(count);
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const SessionSpec& s = fleet_.sessions[i];
    stacks.push_back(MakeStack(s));
    ServiceEndpoint::SessionId id = endpoint.OpenPending(s);
    QHORN_CHECK_MSG(id != 0, "endpoint refused to open session " << i);
    ids.push_back(id);
    index_of.emplace(id, i);
  }

  // Per-session delivery bookkeeping for the hostile scheduler. The cached
  // answer bits make the driver's users idempotent: a retry after a
  // durable-commit failure (or a crash between computing the answers and
  // the service accepting them) re-sends the *same* bits instead of
  // re-consuming a noisy user's flip stream.
  struct Delivery {
    int64_t seen_round_id = -1;  ///< latest round assigned a deadline
    int64_t due_tick = 0;        ///< simulated user answers at this tick
    int64_t answered_rounds = 0;
    bool closed = false;
    int64_t cached_round_id = -1;
    std::vector<bool> cached_bits;
  };
  std::vector<Delivery> delivery(count);

  // Bounds the OnLogWriteFailed → retry loop: each armed fault fires once,
  // so a healthy recovery makes the retry succeed; a service that keeps
  // refusing past this is broken, not unlucky.
  constexpr int kMaxCommitRetries = 4;

  Rng sched(spec.seed ^ 0xd0d0f00d5eedf00dULL);
  BitVec answer_bits;
  BitVec garbage_bits;
  std::vector<PendingRound*> eligible;
  int64_t tick = 0;
  for (;;) {
    endpoint.Drain();
    if (crash != nullptr && crash->MaybeCrashAtSweep(result.sweeps)) {
      // The service died and recovered at a round boundary; whatever was
      // polled before is stale, so re-drain the recovered service and
      // re-poll. Observables must not notice — that is the differential.
      ++result.crash_recoveries;
      continue;
    }
    std::vector<PendingRound> rounds = endpoint.PendingRounds();
    if (rounds.empty()) break;
    if (!result.ok) break;  // bail once a protocol assertion failed
    ++result.sweeps;
    ++tick;

    // Stamp a latency deadline on every newly surfaced round, and close
    // abandoning sessions whose configured round count has been answered —
    // the Close lands while a round is pending, and a late reply for the
    // abandoned round must bounce off kSessionClosed.
    for (PendingRound& round : rounds) {
      size_t idx = index_of.at(round.session_id);
      Delivery& d = delivery[idx];
      const SessionSpec& s = fleet_.sessions[idx];
      if (d.seen_round_id != round.round_id) {
        d.seen_round_id = round.round_id;
        d.due_tick = tick + DrawLatency(spec, sched);
      }
      if (s.abandon && !d.closed &&
          d.answered_rounds >= s.abandon_after_rounds) {
        bool closed_ok = endpoint.Close(round.session_id);
        for (int retry = 0; !closed_ok && crash != nullptr &&
                            retry < kMaxCommitRetries &&
                            crash->OnLogWriteFailed();
             ++retry) {
          ++result.log_write_retries;
          closed_ok = endpoint.Close(round.session_id);
        }
        if (!closed_ok) fail("Close rejected a live awaiting session");
        d.closed = true;
        ++result.abandoned_sessions;
        if (endpoint.ProvideAnswers(round.session_id, round.round_id,
                                    garbage_bits.Prepare(
                                        round.questions.size())) !=
            ProvideOutcome::kSessionClosed) {
          fail("reply to a closed session was not rejected as kSessionClosed");
        }
      }
    }

    // The answerable subset this sweep: open sessions whose simulated user
    // latency has elapsed. Shuffled, and only a fraction answered, so
    // resume order is adversarial with respect to session order.
    eligible.clear();
    for (PendingRound& round : rounds) {
      Delivery& d = delivery[index_of.at(round.session_id)];
      if (!d.closed && d.due_tick <= tick) eligible.push_back(&round);
    }
    sched.Shuffle(&eligible);

    // Malformed replies: garbage the service must reject without touching
    // the session. The target round is still live (eligible), so a
    // non-rejection would corrupt a transcript the differential arm
    // compares — that is the point.
    if (!eligible.empty() && sched.Chance(spec.malformed_rate)) {
      const PendingRound& round = *eligible.front();
      ProvideOutcome out = ProvideOutcome::kResumed;
      ProvideOutcome want = ProvideOutcome::kResumed;
      switch (sched.Range(0, 2)) {
        case 0:
          out = endpoint.ProvideAnswers(round.session_id + 1000000,
                                        round.round_id,
                                        garbage_bits.Prepare(
                                            round.questions.size()));
          want = ProvideOutcome::kUnknownSession;
          break;
        case 1:
          out = endpoint.ProvideAnswers(
              round.session_id,
              round.round_id + 1 + static_cast<int64_t>(sched.Range(0, 3)),
              garbage_bits.Prepare(round.questions.size()));
          want = ProvideOutcome::kStaleRound;
          break;
        default:
          out = endpoint.ProvideAnswers(round.session_id, round.round_id,
                                        garbage_bits.Prepare(
                                            round.questions.size() + 1));
          want = ProvideOutcome::kAnswerCountMismatch;
          break;
      }
      ++result.malformed_injected;
      if (out != want) fail("malformed reply was not rejected as expected");
      if (endpoint.status(round.session_id) != SessionStatus::kAwaitingUser) {
        fail("malformed reply disturbed an awaiting session");
      }
    }

    size_t take = eligible.empty()
                      ? 0
                      : std::max<size_t>(
                            1, static_cast<size_t>(
                                   static_cast<double>(eligible.size()) *
                                   spec.answer_fraction));
    for (size_t i = 0; i < take; ++i) {
      PendingRound& round = *eligible[i];
      size_t idx = index_of.at(round.session_id);
      Delivery& d = delivery[idx];
      BitSpan span = answer_bits.Prepare(round.questions.size());
      if (d.cached_round_id == round.round_id) {
        for (size_t q = 0; q < d.cached_bits.size(); ++q) {
          span.Set(q, d.cached_bits[q]);
        }
      } else {
        stacks[idx].top->IsAnswerBatch(round.questions, span);
        d.cached_round_id = round.round_id;
        d.cached_bits.resize(round.questions.size());
        for (size_t q = 0; q < round.questions.size(); ++q) {
          d.cached_bits[q] = span.Get(q);
        }
      }
      ProvideOutcome out =
          endpoint.ProvideAnswers(round.session_id, round.round_id, span);
      for (int retry = 0; out == ProvideOutcome::kLogWriteFailed &&
                          crash != nullptr && retry < kMaxCommitRetries &&
                          crash->OnLogWriteFailed();
           ++retry) {
        // The commit fault may have been a crash in disguise; after
        // recovery the same round is pending again and the cached bits
        // make the retry byte-identical.
        ++result.log_write_retries;
        out = endpoint.ProvideAnswers(round.session_id, round.round_id, span);
      }
      if (out != ProvideOutcome::kResumed) {
        fail(std::string("ProvideAnswers rejected a live, well-formed "
                         "reply (") +
             ToString(out) + ")");
        break;
      }
      ++d.answered_rounds;
      ++result.rounds_answered;
      // Duplicate re-delivery of the round just answered: the session is
      // either running again or already suspended on the *next* round id,
      // so the duplicate must bounce — and must not re-fold the answers.
      if (sched.Chance(spec.duplicate_rate)) {
        ProvideOutcome dup = endpoint.ProvideAnswers(
            round.session_id, round.round_id,
            garbage_bits.Prepare(round.questions.size()));
        ++result.duplicates_injected;
        if (dup != ProvideOutcome::kNotAwaiting &&
            dup != ProvideOutcome::kStaleRound) {
          fail("duplicate round delivery was not rejected");
        }
      }
    }
  }

  for (size_t i = 0; i < count; ++i) {
    if (delivery[i].closed) continue;
    if (endpoint.status(ids[i]) != SessionStatus::kIdle) {
      fail("session " + std::to_string(i) +
           " did not reach kIdle after the fleet drained");
      continue;
    }
    result.fingerprints[i] = SessionFingerprint(endpoint.session(ids[i]));
  }
  if (result.ok) result.stats = endpoint.stats();
  return result;
}

FleetResult FleetDriver::RunPending(int lanes_override, ResumeMode mode,
                                    int shards_override) {
  const int threads =
      lanes_override > 0 ? lanes_override : fleet_.spec.lanes;
  const ResumeMode resume =
      mode != ResumeMode::kDefault
          ? mode
          : (fleet_.spec.replay_resume ? ResumeMode::kReplay
                                       : ResumeMode::kFiber);
  QuerySession::Options sopts;
  sopts.learner.existential.speculative_batching =
      fleet_.spec.speculative_batching;
  sopts.learner.universal.speculative_batching =
      fleet_.spec.speculative_batching;
  const int shards =
      shards_override > 0 ? shards_override : fleet_.spec.router_shards;
  if (shards <= 1) {
    // The classic arm: a bare SessionRouter, exactly as before sharding.
    SessionRouter::Options ropts;
    ropts.threads = threads;
    ropts.session = sopts;
    ropts.resume_mode = resume;
    SessionRouter router(ropts);
    RouterEndpoint endpoint(&router);
    return RunHostile(endpoint);
  }
  ShardedRouter::Options ropts;
  ropts.shards = shards;
  ropts.threads = threads;
  ropts.session = sopts;
  ropts.resume_mode = resume;
  ShardedRouter router(ropts);
  ShardedRouterEndpoint endpoint(&router);
  return RunHostile(endpoint);
}

FleetResult FleetDriver::RunSynchronous() {
  const size_t count = fleet_.sessions.size();
  FleetResult result;
  result.fingerprints.resize(count);

  SessionRouter::Options ropts;
  ropts.threads = 1;  // the differential baseline: inline, in order
  // The question stream depends on these knobs, so the reference arm must
  // match the hostile arm's learner configuration exactly.
  ropts.session.learner.existential.speculative_batching =
      fleet_.spec.speculative_batching;
  ropts.session.learner.universal.speculative_batching =
      fleet_.spec.speculative_batching;
  SessionRouter router(ropts);

  // Fresh stacks: each arm consumes its own noise stream from the seed.
  std::vector<UserStack> stacks;
  std::vector<SessionRouter::SessionId> ids;
  stacks.reserve(count);
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const SessionSpec& s = fleet_.sessions[i];
    stacks.push_back(MakeStack(s));
    SessionRouter::SessionId id = router.Open(s.n, stacks.back().top);
    ids.push_back(id);
    SubmitSpecJobs(router, id, s);
  }
  router.Drain();
  for (size_t i = 0; i < count; ++i) {
    result.fingerprints[i] = SessionFingerprint(router.session(ids[i]));
  }
  result.stats = router.stats();
  return result;
}

std::string CompareArmFingerprints(const Fleet& fleet,
                                   const FleetResult& hostile,
                                   const FleetResult& synchronous) {
  for (size_t i = 0; i < fleet.sessions.size(); ++i) {
    // Abandoned sessions carry no fingerprint: their contract is
    // rejection-without-corruption, checked inside the hostile arm.
    if (hostile.fingerprints[i].empty()) continue;
    if (hostile.fingerprints[i] != synchronous.fingerprints[i]) {
      const SessionSpec& s = fleet.sessions[i];
      return "session " + std::to_string(i) + " (" +
             ToString(s.query_class) + ", n=" + std::to_string(s.n) +
             (s.noisy() ? ", noisy" : "") +
             ") diverged from its synchronous replay (" +
             fleet.spec.ReproLine() + ")\n--- hostile arm ---\n" +
             hostile.fingerprints[i] + "--- synchronous arm ---\n" +
             synchronous.fingerprints[i];
    }
  }
  return std::string();
}

DifferentialOutcome RunDifferential(const WorkloadSpec& spec) {
  Fleet fleet = GenerateFleet(spec);
  FleetDriver driver(fleet);
  DifferentialOutcome outcome;
  outcome.pending = driver.RunPending();
  outcome.synchronous = driver.RunSynchronous();
  if (!outcome.pending.ok) {
    outcome.failure = outcome.pending.failure;
    return outcome;
  }
  if (!outcome.synchronous.ok) {
    outcome.failure = outcome.synchronous.failure;
    return outcome;
  }
  outcome.failure =
      CompareArmFingerprints(fleet, outcome.pending, outcome.synchronous);
  outcome.ok = outcome.failure.empty();
  return outcome;
}

}  // namespace qhorn
