// ServiceEndpoint — the seam between the hostile fleet driver and
// whatever session service it is attacking.
//
// FleetDriver's hostile arm used to talk to a concrete SessionRouter;
// the durable subsystem needs the identical adversarial delivery schedule
// driven against a crash-recovering, write-ahead-logged service
// (src/durable/). This interface is the pending-session protocol reduced
// to exactly what the driver uses, so one hostile loop serves both: the
// in-memory router (RouterEndpoint, fleet_driver.h) and the durable
// wrapper (DurableEndpoint, src/durable/crash_harness.h).
//
// Session ids returned by OpenPending are *stable across recovery*: a
// durable implementation that loses its process and rebuilds from the log
// must keep honoring the ids it handed out before the crash (internally
// remapping them), because the driver — playing the fleet's users, who
// survive server crashes — keeps using them.

#ifndef QHORN_WORKLOAD_SERVICE_ENDPOINT_H_
#define QHORN_WORKLOAD_SERVICE_ENDPOINT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/session/router.h"
#include "src/workload/workload.h"

namespace qhorn {

/// The pending-session protocol surface the fleet driver drives.
class ServiceEndpoint {
 public:
  using SessionId = SessionRouter::SessionId;

  virtual ~ServiceEndpoint() = default;

  /// Opens a pending session for `spec` and submits its whole job plan.
  /// Returns an id that stays valid for the fleet's lifetime, across any
  /// number of crash/recover cycles. 0 = the service could not open the
  /// session (a durable endpoint whose log refused the open record).
  virtual SessionId OpenPending(const SessionSpec& spec) = 0;

  /// Semantics of SessionRouter::ProvideAnswers, plus kLogWriteFailed
  /// when a durable endpoint could not commit the round — the session is
  /// untouched and the same call may be retried.
  virtual ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                        BitSpan answers) = 0;

  /// Semantics of SessionRouter::Close; a durable endpoint additionally
  /// returns false when the close record could not be committed (the
  /// session stays open; retryable).
  virtual bool Close(SessionId id) = 0;

  /// Pending rounds carrying the *stable* session ids, ordered by them.
  virtual std::vector<PendingRound> PendingRounds() = 0;

  virtual void Drain() = 0;

  virtual std::optional<SessionStatus> status(SessionId id) = 0;

  /// The live session, for fingerprinting after the fleet drains.
  virtual QuerySession& session(SessionId id) = 0;

  virtual ServiceStats stats() = 0;
};

/// Crash orchestration hooks for the hostile loop. The driver plays the
/// fleet's users; this object plays the failing machine under the service.
/// Null = nothing ever crashes (the plain RunPending arm).
class CrashController {
 public:
  virtual ~CrashController() = default;

  /// Called once per sweep, between Drain and the round poll — the round
  /// boundary. Return true if the service was crashed and recovered: the
  /// driver re-drains and re-polls instead of acting on stale rounds.
  virtual bool MaybeCrashAtSweep(int64_t sweep) = 0;

  /// Called when the endpoint reports a durable-commit failure
  /// (kLogWriteFailed, or Close returning false on a live session) — an
  /// injected mid-append fault has fired. Recover the service and return
  /// true to have the driver retry the identical call; false aborts the
  /// arm with a protocol failure.
  virtual bool OnLogWriteFailed() = 0;
};

}  // namespace qhorn

#endif  // QHORN_WORKLOAD_SERVICE_ENDPOINT_H_
