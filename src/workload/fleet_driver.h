// FleetDriver — runs a generated fleet through the session service and
// turns every scenario into a replay-equivalence test.
//
// Two arms, both pure functions of the fleet's seed:
//
//   * RunPending: the hostile concurrent arm. Every session is opened
//     through OpenPending on a K-lane router; the driver plays all of the
//     fleet's users at once through the embedding-server protocol
//     (Drain → PendingRounds → ProvideAnswers), with adversarial
//     delivery — per-round heavy-tailed simulated latency, sweeps that
//     shuffle the pending rounds and answer only a fraction of them (so
//     sessions resume out of order and interleave with blocked ones),
//     duplicate re-delivery of already-answered rounds, malformed replies
//     (stale round ids, wrong answer counts, unknown sessions) that must
//     be rejected without touching state, and mid-round Close of
//     abandoning sessions.
//
//   * RunSynchronous: the reference arm. The same sessions (minus the
//     abandoned ones) over the same per-session user stacks, opened as
//     plain synchronous sessions on a 1-lane router, answered inline and
//     in order.
//
// Per-session answer streams are identical across the arms by
// construction: each session's user stack is QueryOracle(target), wrapped
// in a seeded NoisyOracle for noisy users, and a session's rounds reach
// its stack in round order in both arms (a pending session has at most
// one outstanding round; flip draws are consumed in question order within
// a round). Since the learners are deterministic functions of the answer
// stream, per-session observables — the SessionFingerprint — must compare
// equal bit for bit however hostile the delivery was. RunDifferential
// asserts exactly that; every failure string carries the spec's one-flag
// seed repro line.

#ifndef QHORN_WORKLOAD_FLEET_DRIVER_H_
#define QHORN_WORKLOAD_FLEET_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/session/router.h"
#include "src/workload/workload.h"

namespace qhorn {

/// One arm's outcome. `fingerprints` is indexed by fleet position;
/// abandoned sessions carry an empty fingerprint (their observables are
/// legitimately partial — the contract for them is rejection-without-
/// corruption, not equality).
struct FleetResult {
  bool ok = true;
  std::string failure;  ///< first protocol violation, with seed repro
  std::vector<std::string> fingerprints;
  int64_t rounds_answered = 0;
  int64_t sweeps = 0;
  int64_t malformed_injected = 0;  ///< garbage replies, all rejected
  int64_t duplicates_injected = 0;
  int64_t abandoned_sessions = 0;
  ServiceStats stats;
};

/// Both arms plus the fingerprint comparison.
struct DifferentialOutcome {
  bool ok = false;
  std::string failure;  ///< empty iff ok; contains "--seed=" otherwise
  FleetResult pending;
  FleetResult synchronous;
};

class FleetDriver {
 public:
  explicit FleetDriver(const Fleet& fleet) : fleet_(fleet) {}

  /// Hostile concurrent arm on `fleet.spec.lanes` lanes (overridable for
  /// the benchmarks' lane sweeps; <= 0 uses the spec).
  FleetResult RunPending(int lanes_override = 0);

  /// Reference arm: synchronous in-order replay on one lane.
  FleetResult RunSynchronous();

 private:
  const Fleet& fleet_;
};

/// The differential harness: generate the fleet, run both arms, compare
/// per-session fingerprints. This is what the fuzz sweep calls per seed.
DifferentialOutcome RunDifferential(const WorkloadSpec& spec);

}  // namespace qhorn

#endif  // QHORN_WORKLOAD_FLEET_DRIVER_H_
