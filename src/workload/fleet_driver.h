// FleetDriver — runs a generated fleet through the session service and
// turns every scenario into a replay-equivalence test.
//
// Two arms, both pure functions of the fleet's seed:
//
//   * RunHostile: the hostile concurrent arm, driven against any
//     ServiceEndpoint. Every session is opened through the endpoint's
//     pending protocol; the driver plays all of the fleet's users at once
//     (Drain → PendingRounds → ProvideAnswers), with adversarial
//     delivery — per-round heavy-tailed simulated latency, sweeps that
//     shuffle the pending rounds and answer only a fraction of them (so
//     sessions resume out of order and interleave with blocked ones),
//     duplicate re-delivery of already-answered rounds, malformed replies
//     (stale round ids, wrong answer counts, unknown sessions) that must
//     be rejected without touching state, and mid-round Close of
//     abandoning sessions. An optional CrashController additionally
//     kills and recovers the service at seeded round boundaries and
//     mid-append (the durable crash harness); the driver, playing users
//     who outlive server crashes, retries refused calls with *cached*
//     answer bits — a noisy user consulted twice about one round must
//     say the same thing twice, because real users do not re-roll their
//     answers when the server restarts. RunPending is the classic
//     in-memory instantiation over a fleet-owned SessionRouter.
//
//   * RunSynchronous: the reference arm. The same sessions (minus the
//     abandoned ones) over the same per-session user stacks, opened as
//     plain synchronous sessions on a 1-lane router, answered inline and
//     in order.
//
// Per-session answer streams are identical across the arms by
// construction: each session's user stack is QueryOracle(target), wrapped
// in a seeded NoisyOracle for noisy users, and a session's rounds reach
// its stack in round order in both arms (a pending session has at most
// one outstanding round; flip draws are consumed in question order within
// a round). Since the learners are deterministic functions of the answer
// stream, per-session observables — the SessionFingerprint — must compare
// equal bit for bit however hostile the delivery was, and however often
// the service crashed. RunDifferential asserts exactly that; every
// failure string carries the spec's one-flag seed repro line.

#ifndef QHORN_WORKLOAD_FLEET_DRIVER_H_
#define QHORN_WORKLOAD_FLEET_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/session/sharded_router.h"
#include "src/util/check.h"
#include "src/workload/service_endpoint.h"
#include "src/workload/workload.h"

namespace qhorn {

/// One arm's outcome. `fingerprints` is indexed by fleet position;
/// abandoned sessions carry an empty fingerprint (their observables are
/// legitimately partial — the contract for them is rejection-without-
/// corruption, not equality).
struct FleetResult {
  bool ok = true;
  std::string failure;  ///< first protocol violation, with seed repro
  std::vector<std::string> fingerprints;
  int64_t rounds_answered = 0;
  int64_t sweeps = 0;
  int64_t malformed_injected = 0;  ///< garbage replies, all rejected
  int64_t duplicates_injected = 0;
  int64_t abandoned_sessions = 0;
  int64_t crash_recoveries = 0;    ///< sweep-boundary crashes performed
  int64_t log_write_retries = 0;   ///< calls retried after kLogWriteFailed
  ServiceStats stats;
};

/// Both arms plus the fingerprint comparison.
struct DifferentialOutcome {
  bool ok = false;
  std::string failure;  ///< empty iff ok; contains "--seed=" otherwise
  FleetResult pending;
  FleetResult synchronous;
};

/// Submits the spec's whole job plan to an already-open session, aborting
/// if the router refuses. Shared by the endpoints and durable recovery
/// (which must rebuild the identical job log); templated so it drives a
/// bare SessionRouter and the ShardedRouter facade identically.
template <typename RouterT>
void SubmitSpecJobs(RouterT& router, typename RouterT::SessionId id,
                    const SessionSpec& spec) {
  for (WorkloadJob job : spec.jobs) {
    bool accepted = false;
    switch (job) {
      case WorkloadJob::kLearn:
        accepted = router.SubmitLearn(id);
        break;
      case WorkloadJob::kVerifyTarget:
        accepted = router.SubmitVerify(id, spec.target);
        break;
      case WorkloadJob::kVerifyMutant:
        accepted = router.SubmitVerify(id, spec.mutant);
        break;
      case WorkloadJob::kRevise:
        accepted = router.SubmitRevise(id, spec.mutant);
        break;
    }
    QHORN_CHECK_MSG(accepted, "submit rejected on a live session");
  }
}

/// ServiceEndpoint over an in-memory router — the identity instantiation
/// the classic differential arm runs against, and the shape durable
/// endpoints mimic. RouterT is SessionRouter (the 1-shard classic) or
/// ShardedRouter (the facade the sharded differentials drive); both speak
/// the identical protocol surface.
template <typename RouterT>
class BasicRouterEndpoint : public ServiceEndpoint {
 public:
  explicit BasicRouterEndpoint(RouterT* router) : router_(router) {}

  SessionId OpenPending(const SessionSpec& spec) override {
    SessionId id = router_->OpenPending(spec.n);
    SubmitSpecJobs(*router_, id, spec);
    return id;
  }
  ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                BitSpan answers) override {
    return router_->ProvideAnswers(id, round_id, answers);
  }
  bool Close(SessionId id) override { return router_->Close(id); }
  std::vector<PendingRound> PendingRounds() override {
    return router_->PendingRounds();
  }
  void Drain() override { router_->Drain(); }
  std::optional<SessionStatus> status(SessionId id) override {
    return router_->status(id);
  }
  QuerySession& session(SessionId id) override {
    return router_->session(id);
  }
  ServiceStats stats() override { return router_->stats(); }

 private:
  RouterT* router_;
};

using RouterEndpoint = BasicRouterEndpoint<SessionRouter>;
using ShardedRouterEndpoint = BasicRouterEndpoint<ShardedRouter>;

class FleetDriver {
 public:
  explicit FleetDriver(const Fleet& fleet) : fleet_(fleet) {}

  /// Hostile concurrent arm against an arbitrary endpoint, optionally
  /// under a crash controller (see file comment).
  FleetResult RunHostile(ServiceEndpoint& endpoint,
                         CrashController* crash = nullptr);

  /// RunHostile over a fleet-owned in-memory router on
  /// `fleet.spec.lanes` lanes (overridable for the benchmarks' lane
  /// sweeps; <= 0 uses the spec). `mode` picks the resume protocol;
  /// kDefault derives it from the spec (`replay_resume` → kReplay,
  /// otherwise kFiber) so a fuzz seed pins the protocol too.
  /// `shards_override` picks the router shard count (<= 0 uses the
  /// spec's `router_shards`); 1 runs the classic bare SessionRouter,
  /// anything higher runs the ShardedRouter facade — observables must
  /// not notice, which is exactly what the sharded differentials pin.
  FleetResult RunPending(int lanes_override = 0,
                         ResumeMode mode = ResumeMode::kDefault,
                         int shards_override = 0);

  /// Reference arm: synchronous in-order replay on one lane.
  FleetResult RunSynchronous();

 private:
  const Fleet& fleet_;
};

/// Compares a hostile arm against the synchronous reference, per session.
/// Empty string = identical; otherwise a failure message carrying the
/// seed repro line and both fingerprints. Shared by RunDifferential and
/// the crash harness's RunCrashDifferential.
std::string CompareArmFingerprints(const Fleet& fleet,
                                   const FleetResult& hostile,
                                   const FleetResult& synchronous);

/// The differential harness: generate the fleet, run both arms, compare
/// per-session fingerprints. This is what the fuzz sweep calls per seed.
DifferentialOutcome RunDifferential(const WorkloadSpec& spec);

}  // namespace qhorn

#endif  // QHORN_WORKLOAD_FLEET_DRIVER_H_
