// A session's full observable surface, rendered to a string. This IS the
// determinism contract the service-layer suites and the workload
// differential harness enforce — two runs are "bit-identical" iff their
// fingerprints compare equal. One definition, shared by the router stress
// tests, the continuation suites, the workload fuzz harness and the
// workload macro benchmark: if a new observable is added to QuerySession,
// extend it here and every consumer tightens together.
// (tests/session_fingerprint.h forwards here for the test suites.)

#ifndef QHORN_WORKLOAD_FINGERPRINT_H_
#define QHORN_WORKLOAD_FINGERPRINT_H_

#include <string>

#include "src/session/session.h"

namespace qhorn {

inline std::string SessionFingerprint(QuerySession& session) {
  std::string out;
  out += "q=" + std::to_string(session.questions_asked());
  out += " rounds=" + std::to_string(session.rounds());
  out += " hits=" + std::to_string(session.cache_hits());
  out += " batched=" + std::to_string(session.oracle_stats().batched_questions);
  if (session.current_query().has_value()) {
    out += " current=" + session.current_query()->ToString();
  }
  out += "\n";
  for (const TranscriptEntry& e : session.history()) {
    out += std::to_string(e.round) + ":" + e.question.ToString(session.n());
    out += e.response ? "+" : "-";
    out += "\n";
  }
  return out;
}

}  // namespace qhorn

#endif  // QHORN_WORKLOAD_FINGERPRINT_H_
