// Seeded workload generation: heterogeneous, hostile session fleets.
//
// Every suite and bench before this subsystem drove clean, well-behaved
// learn/verify runs; ROADMAP item 5 calls that the scenario-diversity gap.
// A WorkloadSpec is a small parameter block fully determined by one seed;
// GenerateFleet expands it into a fleet of per-session scenarios mixing
//
//   * query classes: qhorn-1 structures (lowered via ToQuery), existential-
//     heavy and universal-heavy role-preserving queries,
//   * schema sizes (n varies per session),
//   * user models: reliable simulated users and noisy users at varying
//     flip rates (seeded — the same session produces the same flip
//     sequence in every run),
//   * job plans: learn, verify of the true target, verify of a near-miss
//     mutant (exercises the discrepancy paths), revision,
//   * abandonment: sessions whose user walks away mid-round (Close while
//     a round is pending).
//
// Everything is a pure function of the seed: two calls with the same spec
// produce element-for-element identical fleets, which is what makes every
// generated scenario a replay-equivalence test (fleet_driver.h) and every
// fuzz failure reproducible from its logged seed alone.
//
// Noisy users only run verification jobs. Verification poses a fixed,
// non-adaptive question set, so arbitrary (even inconsistent) labels
// terminate with a deterministic report; the learners' lattice walks by
// contrast assume a consistent oracle, and feeding them flipped answers
// has no termination guarantee. The generator encodes that boundary
// rather than leaving it to every caller.

#ifndef QHORN_WORKLOAD_WORKLOAD_H_
#define QHORN_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/util/rng.h"

namespace qhorn {

/// Which family a session's hidden target query is drawn from.
enum class QueryClass { kQhorn1, kRpExistential, kRpUniversal };

const char* ToString(QueryClass c);

/// One step of a session's job plan.
enum class WorkloadJob {
  kLearn,         ///< learn the hidden target from membership questions
  kVerifyTarget,  ///< verify the true target (accepts on a reliable user)
  kVerifyMutant,  ///< verify a near-miss candidate (exercises rejection)
  kRevise         ///< revise the mutant toward the target
};

const char* ToString(WorkloadJob j);

/// A fully materialized per-session scenario. `target` answers the user's
/// membership questions; `mutant` is an independently drawn same-n query
/// used as the candidate of verify/revise jobs.
struct SessionSpec {
  QueryClass query_class = QueryClass::kRpUniversal;
  int n = 4;
  Query target;
  Query mutant;
  double flip_rate = 0.0;   ///< > 0: answers pass through a NoisyOracle
  uint64_t noise_seed = 0;  ///< seed of that noise stream
  std::vector<WorkloadJob> jobs;
  bool abandon = false;           ///< Close mid-round instead of completing
  int abandon_after_rounds = 0;   ///< user rounds answered before the Close

  bool noisy() const { return flip_rate > 0.0; }
};

/// The seed-derived knobs of a fleet. Field defaults give a small mixed
/// fleet; FromSeed derives a heterogeneous configuration (fleet size, lane
/// count, schema range, mix fractions, delivery hostility) from one seed,
/// which is the shape the fuzz sweep drives.
struct WorkloadSpec {
  uint64_t seed = 0;

  int sessions = 8;
  int lanes = 4;       ///< router lanes of the concurrent arm
  int n_min = 4;
  int n_max = 6;

  // Session-mix fractions (each drawn independently per session).
  double qhorn1_weight = 1.0;
  double rp_existential_weight = 1.0;
  double rp_universal_weight = 1.0;
  double noisy_fraction = 0.25;
  double flip_min = 0.05;
  double flip_max = 0.5;
  double abandon_fraction = 0.15;

  // Hostile-delivery knobs (consumed by FleetDriver, carried here so one
  // seed pins the whole scenario).
  double answer_fraction = 0.66;  ///< pending rounds answered per sweep
  double malformed_rate = 0.5;    ///< per-sweep garbage-injection chance
  double duplicate_rate = 0.35;   ///< re-deliver an already-answered round
  /// Simulated user latency in scheduler ticks: heavy-tailed draw in
  /// [0, latency_cap_ticks], Pareto-shaped with exponent latency_alpha
  /// (0 disables latency entirely — every round is answerable at once).
  double latency_alpha = 1.0;
  int latency_cap_ticks = 6;

  // Service-configuration knobs (PR 8). Both change the question stream /
  // resume machinery deterministically, so the differential arms must (and
  // do) apply them identically.
  /// Run the rp learner's round-sparing speculation in *every* arm: the
  /// existential walk's always-batch level probes and batched prune
  /// (RpExistentialOptions::speculative_batching) plus the universal
  /// walk's speculative extraction sweep and cross-head bodyless round
  /// (RpUniversalOptions::speculative_batching).
  bool speculative_batching = false;
  /// Drive the concurrent arm's router in full-prefix replay resume mode
  /// instead of the default fiber mode (the fuzz sweep draws this so the
  /// resume protocols see hostile traffic; the snapshot mode gets its own
  /// explicit arms in the differential tests).
  bool replay_resume = false;

  /// Router shards the hostile arm runs behind (PR 9): 1 is the classic
  /// bare SessionRouter, anything higher drives the ShardedRouter facade.
  /// Drawn from {1, 2, 4, 8} so the fuzz sweep exercises the id encoding
  /// and per-shard announcement queues on every seed mix; observables
  /// must not depend on it (that is the differential).
  int router_shards = 1;

  /// Derives a heterogeneous spec from one seed (the fuzz entry point).
  static WorkloadSpec FromSeed(uint64_t seed);

  /// The one-flag repro line every failure message must carry.
  std::string ReproLine() const;
};

/// A deterministic fleet: the spec plus one SessionSpec per session.
struct Fleet {
  WorkloadSpec spec;
  std::vector<SessionSpec> sessions;
};

/// Expands the spec into its fleet. Pure function of `spec` (two calls
/// yield identical fleets, including every Query and every seed).
Fleet GenerateFleet(const WorkloadSpec& spec);

}  // namespace qhorn

#endif  // QHORN_WORKLOAD_WORKLOAD_H_
