#include "src/core/normalize.h"

#include <algorithm>

#include "src/core/compiled_query.h"
#include "src/util/check.h"

namespace qhorn {

namespace {

bool PopcountLess(VarSet a, VarSet b) {
  int pa = Popcount(a);
  int pb = Popcount(b);
  return pa != pb ? pa < pb : a < b;
}

}  // namespace

std::vector<VarSet> MinimalAntichain(std::vector<VarSet> sets) {
  std::sort(sets.begin(), sets.end(), PopcountLess);
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<VarSet> kept;
  for (VarSet s : sets) {
    bool dominated = false;
    for (VarSet k : kept) {
      if (IsSubset(k, s)) {  // an existing smaller body is contained in s
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(s);
  }
  return kept;
}

std::vector<VarSet> MaximalAntichain(std::vector<VarSet> sets) {
  std::sort(sets.begin(), sets.end(), PopcountLess);
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<VarSet> kept;
  // Scan from largest to smallest; keep sets not contained in a kept set.
  for (auto it = sets.rbegin(); it != sets.rend(); ++it) {
    bool dominated = false;
    for (VarSet k : kept) {
      if (IsSubset(*it, k)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(*it);
  }
  std::sort(kept.begin(), kept.end(), PopcountLess);
  return kept;
}

namespace {

/// Shared R1/R2/R3 pipeline: `with_guarantees` selects whether guarantee
/// clauses join the existential pool (they do for semantic equivalence
/// and strict evaluation; they don't for relaxed evaluation).
CanonicalForm CanonicalizeImpl(const Query& q, bool with_guarantees) {
  CanonicalForm form;
  form.n = q.n();

  // R2: per-head minimal antichains of universal bodies.
  std::map<int, std::vector<VarSet>> bodies;
  for (const UniversalHorn& u : q.universal()) {
    bodies[u.head].push_back(u.body);
  }
  for (auto& [head, list] : bodies) {
    form.universal[head] = MinimalAntichain(std::move(list));
  }

  // Existential pool: user conjunctions (plus every guarantee clause when
  // they matter). R3 closes each under the universal Horn expressions; R1
  // keeps the maximal antichain.
  std::vector<VarSet> pool;
  for (const ExistentialConj& e : q.existential()) pool.push_back(e.vars);
  if (with_guarantees) {
    for (const UniversalHorn& u : q.universal()) {
      pool.push_back(u.GuaranteeVars());
    }
  }
  for (VarSet& s : pool) s = q.HornClosure(s);
  form.existential = MaximalAntichain(std::move(pool));
  return form;
}

}  // namespace

CanonicalForm Canonicalize(const Query& q) {
  return CanonicalizeImpl(q, /*with_guarantees=*/true);
}

CanonicalForm CanonicalizeForEvaluation(const Query& q,
                                        const EvalOptions& opts) {
  return CanonicalizeImpl(q, /*with_guarantees=*/opts.require_guarantees);
}

Query ToQuery(const CanonicalForm& form) {
  Query q(form.n);
  for (const auto& [head, list] : form.universal) {
    for (VarSet body : list) q.AddUniversal(body, head);
  }
  for (VarSet vars : form.existential) q.AddExistential(vars);
  return q;
}

Query Normalize(const Query& q) { return ToQuery(Canonicalize(q)); }

bool Equivalent(const Query& a, const Query& b) {
  return Canonicalize(a) == Canonicalize(b);
}

size_t CanonicalForm::Hash() const {
  if (hash_valid_) return hash_;
  // FNV-1a over the structure in its canonical iteration order. Lengths
  // are mixed in so ({a,b},{}) and ({a},{b}) cannot collide structurally.
  constexpr size_t kPrime = 1099511628211ULL;
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (value >> (byte * 8)) & 0xff;
      h *= kPrime;
    }
  };
  mix(static_cast<uint64_t>(n));
  mix(universal.size());
  for (const auto& [head, bodies] : universal) {
    mix(static_cast<uint64_t>(head));
    mix(bodies.size());
    for (VarSet body : bodies) mix(body);
  }
  mix(existential.size());
  for (VarSet vars : existential) mix(vars);
  hash_ = h;
  hash_valid_ = true;
  return hash_;
}

std::string CanonicalForm::ToString() const {
  std::string out = "n=" + std::to_string(n) + " |";
  for (const auto& [head, list] : universal) {
    for (VarSet body : list) {
      out += " " + UniversalHorn{body, head}.ToString();
    }
  }
  out += " |";
  for (VarSet vars : existential) {
    out += " " + ExistentialConj{vars}.ToString();
  }
  return out;
}

bool FindDistinguishingObject(const Query& a, const Query& b,
                              const EvalOptions& opts, TupleSet* witness) {
  QHORN_CHECK(a.n() == b.n());
  int n = a.n();
  QHORN_CHECK_MSG(n <= 4, "brute-force enumeration is 2^(2^n); n=" << n);
  // Compile both queries once; the scan evaluates up to 2^(2^n) objects.
  CompiledQuery ca(a, opts);
  CompiledQuery cb(b, opts);
  uint64_t num_tuples = uint64_t{1} << n;
  uint64_t num_objects = uint64_t{1} << num_tuples;
  Tuple tuples[16];  // n ≤ 4 so an object has at most 16 tuples
  for (uint64_t bits = 0; bits < num_objects; ++bits) {
    size_t count = 0;
    for (uint64_t t = 0; t < num_tuples; ++t) {
      if ((bits >> t) & 1) tuples[count++] = t;
    }
    // Tuples are emitted in ascending order — already canonical.
    if (ca.EvaluateTuples(tuples, count) != cb.EvaluateTuples(tuples, count)) {
      if (witness != nullptr) {
        *witness = TupleSet(std::vector<Tuple>(tuples, tuples + count));
      }
      return true;
    }
  }
  return false;
}

bool BruteForceEquivalent(const Query& a, const Query& b,
                          const EvalOptions& opts) {
  return !FindDistinguishingObject(a, b, opts, nullptr);
}

}  // namespace qhorn
