// Counterexample construction: given two inequivalent role-preserving
// queries, produce an object they classify differently.
//
// This is the "equivalence question" of classical query learning (Angluin;
// see §5 Related Work) answered constructively: the §4 verification set of
// one query is complete for semantic differences (Theorem 4.2), so some
// question in it must separate the two. Small-n brute force is used as a
// fallback and for cross-checking in tests.

#ifndef QHORN_CORE_WITNESS_H_
#define QHORN_CORE_WITNESS_H_

#include <optional>

#include "src/core/query.h"

namespace qhorn {

/// An object on which `a` and `b` disagree, or nullopt when the queries
/// are semantically equivalent. Both queries must be role-preserving and
/// share n. Runs in poly(n, k) time (no 2^(2^n) enumeration).
std::optional<TupleSet> DistinguishingWitness(const Query& a, const Query& b);

/// Simulated equivalence-question oracle over a hidden target: given a
/// hypothesis, returns a counterexample object or nullopt if the
/// hypothesis is exactly right. The classical Angluin model, instantiated
/// with DistinguishingWitness.
class EquivalenceOracle {
 public:
  explicit EquivalenceOracle(Query target, EvalOptions opts = EvalOptions())
      : target_(std::move(target)), opts_(opts) {}

  /// nullopt = "your query is correct"; otherwise a labelled
  /// counterexample (the returned object's correct label is
  /// target.Evaluate(object)).
  std::optional<TupleSet> Counterexample(const Query& hypothesis);

  int64_t asked() const { return asked_; }

 private:
  Query target_;
  EvalOptions opts_;
  int64_t asked_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_CORE_WITNESS_H_
