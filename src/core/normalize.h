// Normalization under qhorn's equivalence rules (§2.1.1) and the canonical
// form used to decide semantic equivalence (Proposition 4.1).
//
//   R1: an existential conjunction dominates conjunctions over subsets of
//       its variables.
//   R2: a universal Horn expression ∀B→h dominates ∀B'→h for B' ⊇ B; the
//       dominated expression contributes only its guarantee conjunction.
//   R3: conjunctions absorb heads implied by universal Horn expressions
//       (the Horn closure), e.g. ∀x1→h ∃x1x3 ≡ ∀x1→h ∃x1x3h.
//
// The canonical form of a query is:
//   * per universal head, the minimal antichain of its bodies (R2), and
//   * the maximal antichain (R1) of the R3-closures of all existential
//     conjunctions plus the guarantee conjunctions of *all* universal Horn
//     expressions (dominated universal expressions reduce to guarantees).
//
// Two role-preserving qhorn queries are semantically equivalent iff their
// canonical forms are equal; this is Proposition 4.1 restated over
// distinguishing tuples, and is property-tested against brute-force object
// enumeration in tests/normalize_test.cc.

#ifndef QHORN_CORE_NORMALIZE_H_
#define QHORN_CORE_NORMALIZE_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/query.h"

namespace qhorn {

/// Keeps the ⊆-minimal sets (drops any set that strictly contains another;
/// deduplicates). Order: ascending by popcount then value.
std::vector<VarSet> MinimalAntichain(std::vector<VarSet> sets);

/// Keeps the ⊆-maximal sets (drops any set contained in another).
std::vector<VarSet> MaximalAntichain(std::vector<VarSet> sets);

/// Canonical form of a qhorn query. Equality is semantic equivalence for
/// role-preserving queries.
struct CanonicalForm {
  int n = 0;
  /// head → minimal antichain of bodies. A bodyless expression appears as
  /// the single body {} (it dominates every other body for that head).
  std::map<int, std::vector<VarSet>> universal;
  /// Maximal antichain of R3-closed conjunction variable sets (includes
  /// guarantee-clause closures), sorted.
  std::vector<VarSet> existential;

  friend bool operator==(const CanonicalForm& a, const CanonicalForm& b) {
    return a.n == b.n && a.universal == b.universal &&
           a.existential == b.existential;
  }

  /// Stable FNV-1a hash over the canonical structure, cached after the
  /// first call (the TupleSet idiom: forms are built once, then probed
  /// repeatedly as dedup / compiled-cache keys). Callers that mutate a
  /// form after hashing must not reuse it as a key. NOTE: like
  /// TupleSet::Hash, the lazy fill writes shared state from a const
  /// method; hash before sharing a form across threads.
  size_t Hash() const;

  /// Human-readable rendering (for test failure messages).
  std::string ToString() const;

 private:
  mutable size_t hash_ = 0;
  mutable bool hash_valid_ = false;
};

/// Hash functor for unordered containers keyed by canonical forms — the
/// enumeration dedup and the service layer's compiled-query cache.
struct CanonicalFormHash {
  size_t operator()(const CanonicalForm& f) const { return f.Hash(); }
};

/// Computes the canonical form.
CanonicalForm Canonicalize(const Query& q);

/// Canonical form of what *evaluation under opts* depends on. With
/// require_guarantees set this is Canonicalize(q) (Proposition 4.1: equal
/// forms answer identically). With it unset, guarantee clauses contribute
/// nothing to evaluation, so the existential part closes only the user's
/// conjunctions — two queries with equal strict forms can differ relaxed
/// and vice versa. The compiled-query cache keys on this.
CanonicalForm CanonicalizeForEvaluation(const Query& q,
                                        const EvalOptions& opts);

/// Rebuilds a normalized Query from a canonical form: one universal Horn
/// expression per dominant body plus one existential conjunction per
/// dominant closed conjunction.
Query ToQuery(const CanonicalForm& form);

/// Convenience: Canonicalize + ToQuery.
Query Normalize(const Query& q);

/// Semantic equivalence via canonical forms (Proposition 4.1).
bool Equivalent(const Query& a, const Query& b);

/// Ground-truth semantic equivalence by evaluating both queries on every
/// object over n variables (2^(2^n) objects) — exponential, for tests with
/// n ≤ 4 only. `opts` selects guarantee handling.
bool BruteForceEquivalent(const Query& a, const Query& b,
                          const EvalOptions& opts = EvalOptions());

/// Finds a witness object on which the two queries disagree, or an empty
/// optional-like flag (returns false) if none exists. n ≤ 4.
bool FindDistinguishingObject(const Query& a, const Query& b,
                              const EvalOptions& opts, TupleSet* witness);

}  // namespace qhorn

#endif  // QHORN_CORE_NORMALIZE_H_
