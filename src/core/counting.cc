#include "src/core/counting.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace qhorn {

namespace {

// Big decimal number as digit vector (least-significant first); supports
// doubling, which is all 2^m needs.
std::string PowerOfTwoString(uint64_t exponent) {
  std::vector<uint8_t> digits = {1};
  for (uint64_t i = 0; i < exponent; ++i) {
    int carry = 0;
    for (uint8_t& d : digits) {
      int v = d * 2 + carry;
      d = static_cast<uint8_t>(v % 10);
      carry = v / 10;
    }
    while (carry > 0) {
      digits.push_back(static_cast<uint8_t>(carry % 10));
      carry /= 10;
    }
  }
  std::string out;
  out.reserve(digits.size());
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    out += static_cast<char>('0' + *it);
  }
  return out;
}

}  // namespace

uint64_t BellNumber(int n) {
  QHORN_CHECK_MSG(n >= 0 && n <= 25, "exact Bell numbers supported to n=25");
  // Bell triangle.
  std::vector<std::vector<uint64_t>> tri(static_cast<size_t>(n) + 1);
  tri[0] = {1};
  for (int i = 1; i <= n; ++i) {
    auto& row = tri[static_cast<size_t>(i)];
    const auto& prev = tri[static_cast<size_t>(i) - 1];
    row.resize(static_cast<size_t>(i) + 1);
    row[0] = prev.back();
    for (int j = 1; j <= i; ++j) {
      row[static_cast<size_t>(j)] =
          row[static_cast<size_t>(j) - 1] + prev[static_cast<size_t>(j) - 1];
    }
  }
  return tri[static_cast<size_t>(n)][0];
}

double LgBellNumber(int n) {
  QHORN_CHECK(n >= 0 && n <= 200);
  // Bell triangle in log space is awkward; use scaled doubles instead.
  // Track a row of doubles plus a shared power-of-two scale.
  std::vector<double> prev = {1.0};
  double scale_lg = 0.0;
  for (int i = 1; i <= n; ++i) {
    std::vector<double> row(static_cast<size_t>(i) + 1);
    row[0] = prev.back();
    for (int j = 1; j <= i; ++j) {
      row[static_cast<size_t>(j)] =
          row[static_cast<size_t>(j) - 1] + prev[static_cast<size_t>(j) - 1];
    }
    // Rescale to avoid overflow.
    double biggest = row.back();
    if (biggest > 1e200) {
      for (double& v : row) v /= 1e200;
      scale_lg += std::log2(1e200);
    }
    prev = std::move(row);
  }
  return scale_lg + std::log2(prev[0]);
}

double LgQhorn1UpperBound(int n) {
  // 2^n · 2^n · 2^(n lg n)  →  lg = n + n + n·lg n.
  return 2.0 * n + n * Lg(n);
}

uint64_t NumBooleanTuples(int n) {
  QHORN_CHECK(n >= 0 && n < 64);
  return uint64_t{1} << n;
}

std::string NumObjectsString(int n) {
  QHORN_CHECK_MSG(n >= 0 && n <= 5, "2^(2^n) printable only for small n");
  return PowerOfTwoString(NumBooleanTuples(n));
}

std::string LgNumQueriesString(int n) {
  // #queries = 2^(2^(2^n)); lg(#queries) = 2^(2^n).
  QHORN_CHECK(n >= 0 && n <= 5);
  return PowerOfTwoString(NumBooleanTuples(n));
}

uint64_t Binomial(int n, int k) {
  QHORN_CHECK(n >= 0 && k >= 0);
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    uint64_t numer = static_cast<uint64_t>(n - k + i);
    // result * numer / i is exact at every step; check for overflow.
    QHORN_CHECK_MSG(result <= UINT64_MAX / numer, "binomial overflow");
    result = result * numer / static_cast<uint64_t>(i);
  }
  return result;
}

}  // namespace qhorn
