// Structural classification of qhorn queries: membership in the
// role-preserving subclass (§2.1.4), causal density θ (Def. 2.6), and
// qhorn-1 syntactic restrictions (§2.1.3).

#ifndef QHORN_CORE_CLASSIFY_H_
#define QHORN_CORE_CLASSIFY_H_

#include "src/core/query.h"

namespace qhorn {

/// True iff across universal Horn expressions no variable appears both as a
/// head and as a body variable (§2.1.4). Existential conjunctions are
/// role-free and never disqualify a query.
bool IsRolePreserving(const Query& q);

/// Causal density θ (Def. 2.6): the maximum, over head variables, of the
/// number of non-dominated universal Horn expressions with that head.
int CausalDensity(const Query& q);

/// Number of dominant expressions after normalization (the `k` the
/// verification bound O(k) is stated in).
int DominantSize(const Query& q);

/// True iff the parts satisfy qhorn-1's restrictions (§2.1.3):
///  1. distinct bodies are equal or disjoint,
///  2. every head appears in exactly one expression,
///  3. heads and bodies are disjoint variable sets, and
///  4. no variable repeats (each variable is in at most one part).
bool IsQhorn1(const std::vector<Qhorn1Part>& parts);
bool IsQhorn1(const Qhorn1Structure& s);

}  // namespace qhorn

#endif  // QHORN_CORE_CLASSIFY_H_
