// Expression types of the qhorn query class (§2.1).
//
// A qhorn query is a conjunction of quantified Horn expressions in
// normalized form. We model two expression kinds directly:
//
//   * UniversalHorn — ∀t∈S (body → head). The degenerate bodyless form
//     (empty body mask) is the paper's ∀h. Every universal Horn expression
//     carries an implicit *guarantee clause* ∃t∈S (body ∧ head), enforced at
//     evaluation time (EvalOptions::require_guarantees).
//   * ExistentialConj — ∃t∈S (vars). Existential Horn expressions ∃B→h are
//     semantically identical to the conjunction ∃(B ∧ h) once their
//     guarantee clause is present (§2.1 property 2), so the Query model
//     stores them as conjunctions; the qhorn-1 learner additionally reports
//     head/body roles through Qhorn1Structure.

#ifndef QHORN_CORE_EXPR_H_
#define QHORN_CORE_EXPR_H_

#include <compare>
#include <string>
#include <vector>

#include "src/bool/tuple.h"

namespace qhorn {

/// ∀t∈S (body → head), body possibly empty (the paper's ∀h).
struct UniversalHorn {
  VarSet body = 0;
  int head = 0;

  /// Variable set of the implicit guarantee clause ∃(body ∧ head).
  VarSet GuaranteeVars() const { return body | VarBit(head); }

  /// True iff tuple `t` violates this expression: the whole body is true
  /// but the head is false.
  bool ViolatedBy(Tuple t) const {
    return IsSubset(body, t) && !HasVar(t, head);
  }

  /// Paper shorthand, e.g. "∀x1x2→x5" or "∀x4" when bodyless.
  std::string ToString() const;

  friend auto operator<=>(const UniversalHorn&,
                          const UniversalHorn&) = default;
};

/// ∃t∈S (vars), vars non-empty.
struct ExistentialConj {
  VarSet vars = 0;

  /// Paper shorthand, e.g. "∃x1x2x5".
  std::string ToString() const;

  friend auto operator<=>(const ExistentialConj&,
                          const ExistentialConj&) = default;
};

/// One "part" of a qhorn-1 query (§2.1.3, Fig. 2): a set of body variables
/// shared by one or more head variables, each quantified ∀ or ∃. Singleton
/// expressions (∀v, ∃v) are parts with an empty body and a single head.
struct Qhorn1Part {
  VarSet body = 0;
  VarSet universal_heads = 0;
  VarSet existential_heads = 0;

  VarSet heads() const { return universal_heads | existential_heads; }
  VarSet vars() const { return body | heads(); }

  friend auto operator<=>(const Qhorn1Part&, const Qhorn1Part&) = default;
};

}  // namespace qhorn

#endif  // QHORN_CORE_EXPR_H_
