#include "src/core/random_query.h"

#include <algorithm>
#include <set>

#include "src/util/check.h"

namespace qhorn {

Qhorn1Structure RandomQhorn1(int n, Rng& rng, const Qhorn1Options& opts) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(opts.max_part_size >= 1);

  std::vector<int> vars(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) vars[static_cast<size_t>(i)] = i;
  rng.Shuffle(&vars);

  Qhorn1Structure s(n);
  size_t next = 0;
  while (next < vars.size()) {
    int remaining = static_cast<int>(vars.size() - next);
    int size = static_cast<int>(
        rng.Range(1, std::min(opts.max_part_size, remaining)));
    std::vector<int> part(vars.begin() + static_cast<long>(next),
                          vars.begin() + static_cast<long>(next) + size);
    next += static_cast<size_t>(size);

    Qhorn1Part p;
    if (size == 1) {
      VarSet v = VarBit(part[0]);
      if (rng.Chance(opts.universal_head_prob)) {
        p.universal_heads = v;
      } else {
        p.existential_heads = v;
      }
    } else {
      // 1..size-1 body variables, the rest are heads.
      int body_size = static_cast<int>(rng.Range(1, size - 1));
      for (int i = 0; i < size; ++i) {
        VarSet v = VarBit(part[static_cast<size_t>(i)]);
        if (i < body_size) {
          p.body |= v;
        } else if (rng.Chance(opts.universal_head_prob)) {
          p.universal_heads |= v;
        } else {
          p.existential_heads |= v;
        }
      }
    }
    s.AddPart(p);
  }
  QHORN_CHECK(s.CoversAllVars());
  return s;
}

Query RandomRolePreserving(int n, Rng& rng, const RpOptions& opts) {
  QHORN_CHECK(n >= 1 && n <= kMaxVars);
  QHORN_CHECK(opts.num_heads >= 0 && opts.num_heads <= n);
  QHORN_CHECK(opts.theta >= 1);

  Query q(n);
  std::vector<int> head_list = rng.Sample(n, opts.num_heads);
  VarSet heads = MaskOf(head_list);
  std::vector<int> pool = VarsOf(AllTrue(n) & ~heads);

  for (int h : head_list) {
    if (pool.empty() || rng.Chance(opts.bodyless_prob)) {
      q.AddUniversal(0, h);
      continue;
    }
    int body_size =
        std::min(opts.body_size, static_cast<int>(pool.size()));
    // Distinct same-size bodies form an antichain, which pins the head's
    // causal density to the number of bodies generated.
    uint64_t max_distinct = 1;
    for (int i = 0; i < body_size; ++i) {
      max_distinct = max_distinct * (pool.size() - static_cast<size_t>(i)) /
                     static_cast<uint64_t>(i + 1);
      if (max_distinct > 64) break;  // plenty
    }
    int want = static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(opts.theta), max_distinct));
    std::set<VarSet> bodies;
    int attempts = 0;
    while (static_cast<int>(bodies.size()) < want && attempts < 1000) {
      std::vector<int> chosen = pool;
      rng.Shuffle(&chosen);
      chosen.resize(static_cast<size_t>(body_size));
      bodies.insert(MaskOf(chosen));
      ++attempts;
    }
    for (VarSet b : bodies) q.AddUniversal(b, h);
  }

  for (int c = 0; c < opts.num_conjunctions; ++c) {
    int size = static_cast<int>(
        rng.Range(1, std::max(1, std::min(opts.conj_size_max, n))));
    std::vector<int> chosen = rng.Sample(n, size);
    q.AddExistential(MaskOf(chosen));
  }

  if (opts.cover_all_vars) {
    VarSet missing = AllTrue(n) & ~q.MentionedVars();
    for (int v : VarsOf(missing)) q.AddExistential(VarBit(v));
  }
  return q;
}

}  // namespace qhorn
