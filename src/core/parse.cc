// Parser for the paper's shorthand query notation (§2.1).
//
// Accepted grammar (whitespace, ';', ',' and '∧' separate expressions):
//   query := expr*
//   expr  := quant vars [arrow var]
//   quant := '∀' | 'A' | 'forall' | '∃' | 'E' | 'exists'
//   arrow := '→' | '->'
//   vars  := ('x' digits)+         (variables may be juxtaposed: x1x2x3)
//
// "∀x1x2→x4" is a universal Horn expression; "∀x1x2" expands to the
// bodyless expressions ∀x1 ∀x2 (the paper always writes bodyless universals
// one variable at a time); "∃x1x2" is an existential conjunction and
// "∃x1x2→x5" an existential Horn expression, stored as ∃x1x2x5.

#include <cctype>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/util/check.h"

namespace qhorn {
namespace {

enum class TokenKind { kForall, kExists, kArrow, kVar };

struct Token {
  TokenKind kind;
  int var = 0;  // 0-based, for kVar
};

bool ConsumePrefix(const std::string& text, size_t* pos,
                   const std::string& prefix) {
  if (text.compare(*pos, prefix.size(), prefix) == 0) {
    *pos += prefix.size();
    return true;
  }
  return false;
}

std::vector<Token> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ';' || c == ',' ||
        c == '(' || c == ')') {
      ++pos;
      continue;
    }
    if (ConsumePrefix(text, &pos, "∀") || ConsumePrefix(text, &pos, "forall")) {
      tokens.push_back({TokenKind::kForall});
      continue;
    }
    if (ConsumePrefix(text, &pos, "∃") || ConsumePrefix(text, &pos, "exists")) {
      tokens.push_back({TokenKind::kExists});
      continue;
    }
    if (ConsumePrefix(text, &pos, "∧") || ConsumePrefix(text, &pos, "⊤")) {
      continue;  // conjunction / top symbols are decorative
    }
    if (ConsumePrefix(text, &pos, "→") || ConsumePrefix(text, &pos, "->")) {
      tokens.push_back({TokenKind::kArrow});
      continue;
    }
    if (c == 'A' &&
        (pos + 1 >= text.size() ||
         !std::isalnum(static_cast<unsigned char>(text[pos + 1])))) {
      tokens.push_back({TokenKind::kForall});
      ++pos;
      continue;
    }
    if (c == 'E' &&
        (pos + 1 >= text.size() ||
         !std::isalnum(static_cast<unsigned char>(text[pos + 1])))) {
      tokens.push_back({TokenKind::kExists});
      ++pos;
      continue;
    }
    if (c == 'x' || c == 'X') {
      size_t start = ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      QHORN_CHECK_MSG(pos > start, "bad variable at '" << text.substr(start - 1)
                                                       << "'");
      int index = std::stoi(text.substr(start, pos - start));
      QHORN_CHECK_MSG(index >= 1 && index <= kMaxVars,
                      "variable x" << index << " out of range");
      tokens.push_back({TokenKind::kVar, index - 1});
      continue;
    }
    QHORN_CHECK_MSG(false, "unexpected character '" << c << "' in query '"
                                                    << text << "'");
  }
  return tokens;
}

}  // namespace

Query Query::Parse(const std::string& text, int n) {
  std::vector<Token> tokens = Tokenize(text);

  struct RawExpr {
    bool universal = false;
    VarSet vars = 0;     // variables before the arrow (or the whole list)
    bool has_head = false;
    int head = 0;
  };
  std::vector<RawExpr> exprs;
  size_t i = 0;
  while (i < tokens.size()) {
    QHORN_CHECK_MSG(tokens[i].kind == TokenKind::kForall ||
                        tokens[i].kind == TokenKind::kExists,
                    "expected a quantifier in '" << text << "'");
    RawExpr e;
    e.universal = tokens[i].kind == TokenKind::kForall;
    ++i;
    while (i < tokens.size() && tokens[i].kind == TokenKind::kVar) {
      e.vars |= VarBit(tokens[i].var);
      ++i;
    }
    QHORN_CHECK_MSG(e.vars != 0, "quantifier without variables in '" << text
                                                                     << "'");
    if (i < tokens.size() && tokens[i].kind == TokenKind::kArrow) {
      ++i;
      QHORN_CHECK_MSG(i < tokens.size() && tokens[i].kind == TokenKind::kVar,
                      "arrow must be followed by one head variable");
      e.has_head = true;
      e.head = tokens[i].var;
      ++i;
      QHORN_CHECK_MSG(i >= tokens.size() || tokens[i].kind != TokenKind::kVar,
                      "a Horn expression has a single head variable");
    }
    exprs.push_back(e);
  }

  int max_var = -1;
  for (const RawExpr& e : exprs) {
    VarSet all = e.vars | (e.has_head ? VarBit(e.head) : 0);
    for (int v : VarsOf(all)) max_var = std::max(max_var, v);
  }
  if (n == 0) n = max_var + 1;
  QHORN_CHECK_MSG(n > max_var, "n=" << n << " smaller than mentioned x"
                                    << max_var + 1);

  Query q(n);
  for (const RawExpr& e : exprs) {
    if (e.universal) {
      if (e.has_head) {
        q.AddUniversal(e.vars, e.head);
      } else {
        for (int v : VarsOf(e.vars)) q.AddUniversal(0, v);
      }
    } else {
      q.AddExistential(e.vars | (e.has_head ? VarBit(e.head) : 0));
    }
  }
  return q;
}

}  // namespace qhorn
