#include "src/core/compiled_query.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/core/normalize.h"

namespace qhorn {

namespace {

bool PopcountLess(uint64_t a, uint64_t b) {
  int pa = Popcount(a);
  int pb = Popcount(b);
  return pa != pb ? pa < pb : a < b;
}

}  // namespace

CompiledQuery::CompiledQuery(const Query& query, const EvalOptions& opts)
    : n_(query.n()), opts_(opts) {
  // R2: per head, keep only the minimal antichain of bodies — a tuple that
  // violates a dominated expression also violates a dominant one.
  std::map<int, std::vector<VarSet>> per_head;
  for (const UniversalHorn& u : query.universal()) {
    per_head[u.head].push_back(u.body);
  }
  std::vector<std::pair<uint64_t, uint64_t>> viol;  // {body, guard}
  for (auto& [head, bodies] : per_head) {
    for (VarSet body : MinimalAntichain(std::move(bodies))) {
      viol.emplace_back(body, body | VarBit(head));
    }
  }
  // Small bodies are contained in more tuples, so they expose violations
  // earliest; sort them to the front (ties broken for determinism).
  std::sort(viol.begin(), viol.end(), [](const auto& a, const auto& b) {
    return PopcountLess(a.first, b.first) ||
           (a.first == b.first && a.second < b.second);
  });
  viol_guard_.reserve(viol.size());
  viol_body_.reserve(viol.size());
  for (const auto& [body, guard] : viol) {
    viol_body_.push_back(body);
    viol_guard_.push_back(guard);
  }

  // Needs: existential conjunctions plus (when required) every guarantee
  // clause, R3-closed under the query's Horn expressions, R1-pruned to the
  // maximal antichain. Closure is sound even ahead of the violation scan:
  // an object failing a closed need either fails the raw need or violates
  // a Horn expression — a non-answer in both cases.
  std::vector<VarSet> pool;
  for (const ExistentialConj& e : query.existential()) {
    pool.push_back(query.HornClosure(e.vars));
  }
  if (opts_.require_guarantees) {
    for (const UniversalHorn& u : query.universal()) {
      pool.push_back(query.HornClosure(u.GuaranteeVars()));
    }
  }
  need_ = MaximalAntichain(std::move(pool));
  // Large needs are the least likely to be satisfied by chance; probe them
  // first so non-answers are certified early (value ascending on ties, for
  // determinism).
  std::sort(need_.begin(), need_.end(), [](uint64_t a, uint64_t b) {
    int pa = Popcount(a);
    int pb = Popcount(b);
    return pa != pb ? pa > pb : a < b;
  });
  for (uint64_t nd : need_) need_union_ |= nd;
}

std::vector<bool> CompiledQuery::EvaluateAll(
    std::span<const TupleSet> objects) const {
  std::vector<bool> verdicts;
  EvaluateAll(objects, &verdicts);
  return verdicts;
}

void CompiledQuery::EvaluateAll(std::span<const TupleSet> objects,
                                std::vector<bool>* verdicts) const {
  verdicts->assign(objects.size(), false);
  for (size_t i = 0; i < objects.size(); ++i) {
    (*verdicts)[i] = Evaluate(objects[i]);
  }
}

}  // namespace qhorn
