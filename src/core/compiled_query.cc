#include "src/core/compiled_query.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/core/normalize.h"
#include "src/util/check.h"
#include "src/util/executor.h"

namespace qhorn {

namespace {

bool PopcountLess(uint64_t a, uint64_t b) {
  int pa = Popcount(a);
  int pb = Popcount(b);
  return pa != pb ? pa < pb : a < b;
}

}  // namespace

CompiledQuery::CompiledQuery(const Query& query, const EvalOptions& opts)
    : n_(query.n()), opts_(opts) {
  // R2: per head, keep only the minimal antichain of bodies — a tuple that
  // violates a dominated expression also violates a dominant one.
  std::map<int, std::vector<VarSet>> per_head;
  for (const UniversalHorn& u : query.universal()) {
    per_head[u.head].push_back(u.body);
  }
  std::vector<std::pair<uint64_t, uint64_t>> viol;  // {body, guard}
  for (auto& [head, bodies] : per_head) {
    for (VarSet body : MinimalAntichain(std::move(bodies))) {
      viol.emplace_back(body, body | VarBit(head));
    }
  }
  // Small bodies are contained in more tuples, so they expose violations
  // earliest; sort them to the front (ties broken for determinism).
  std::sort(viol.begin(), viol.end(), [](const auto& a, const auto& b) {
    return PopcountLess(a.first, b.first) ||
           (a.first == b.first && a.second < b.second);
  });
  viol_guard_.reserve(viol.size());
  viol_body_.reserve(viol.size());
  for (const auto& [body, guard] : viol) {
    viol_body_.push_back(body);
    viol_guard_.push_back(guard);
  }

  // Needs: existential conjunctions plus (when required) every guarantee
  // clause, R3-closed under the query's Horn expressions, R1-pruned to the
  // maximal antichain. Closure is sound even ahead of the violation scan:
  // an object failing a closed need either fails the raw need or violates
  // a Horn expression — a non-answer in both cases.
  std::vector<VarSet> pool;
  for (const ExistentialConj& e : query.existential()) {
    pool.push_back(query.HornClosure(e.vars));
  }
  if (opts_.require_guarantees) {
    for (const UniversalHorn& u : query.universal()) {
      pool.push_back(query.HornClosure(u.GuaranteeVars()));
    }
  }
  need_ = MaximalAntichain(std::move(pool));
  // Large needs are the least likely to be satisfied by chance; probe them
  // first so non-answers are certified early (value ascending on ties, for
  // determinism).
  std::sort(need_.begin(), need_.end(), [](uint64_t a, uint64_t b) {
    int pa = Popcount(a);
    int pb = Popcount(b);
    return pa != pb ? pa > pb : a < b;
  });
  for (uint64_t nd : need_) need_union_ |= nd;

  // Probe-order cost model. The phases reject asymmetrically: a violation
  // scan exits on the first matching tuple, while certifying a need absent
  // reads the whole object — and a needs-first order pays that price (plus
  // the O(m) union pass) on every object that a single violation probe
  // would have rejected. The needs phase keeps its one redeeming fast path
  // (an object containing the all-true tuple settles all needs in one
  // comparison), but on the learners' small deliberately-broken probes —
  // the BM_EvaluateQuerySingle shape — violation-first wins whenever the
  // violation masks match or outnumber the needs. Counts are all the
  // compile step knows about the question distribution, so that is the
  // decision rule; ties go to violations (the cheaper rejecting phase).
  violations_first_ = !viol_guard_.empty() && viol_guard_.size() >= need_.size();
}

std::vector<bool> CompiledQuery::EvaluateAll(
    std::span<const TupleSet> objects) const {
  std::vector<bool> verdicts;
  EvaluateAll(objects, &verdicts);
  return verdicts;
}

void CompiledQuery::EvaluateAll(std::span<const TupleSet> objects,
                                std::vector<bool>* verdicts) const {
  verdicts->assign(objects.size(), false);
  for (size_t i = 0; i < objects.size(); ++i) {
    (*verdicts)[i] = Evaluate(objects[i]);
  }
}

void CompiledQuery::EvaluateAll(std::span<const TupleSet> objects,
                                BitSpan verdicts, Executor* executor) const {
  size_t count = objects.size();
  QHORN_DCHECK(verdicts.size() == count);
  if (count == 1) {
    // One-question rounds are a first-class shape now that the learners
    // no longer short-circuit them; keep them a hair from a plain
    // Evaluate.
    verdicts.Set(0, Evaluate(objects[0]));
    return;
  }
  if (executor == nullptr || executor->concurrency() < 2 ||
      count < kParallelRoundCutover) {
    for (size_t i = 0; i < count; ++i) verdicts.Set(i, Evaluate(objects[i]));
    return;
  }
  // Shards accumulate into a word array of their own (offset 0, so the
  // 64-aligned shard boundaries own disjoint words regardless of the
  // output span's bit offset); the caller lane then copies the bits out
  // bit by bit — one pass, trivial next to the evaluations it follows.
  std::vector<uint64_t> words((count + 63) / 64, 0);
  const TupleSet* objs = objects.data();
  executor->ParallelFor(count, kParallelGrain, [&](size_t begin, size_t end) {
    for (size_t base = begin; base < end; base += 64) {
      uint64_t bits = 0;
      size_t hi = base + 64 < end ? base + 64 : end;
      for (size_t i = base; i < hi; ++i) {
        if (Evaluate(objs[i])) bits |= uint64_t{1} << (i - base);
      }
      words[base >> 6] = bits;
    }
  });
  for (size_t i = 0; i < count; ++i) {
    verdicts.Set(i, (words[i >> 6] >> (i & 63)) & 1);
  }
}

}  // namespace qhorn
