// The qhorn Boolean query (§2.1): a conjunction of universal Horn
// expressions (each with an implicit guarantee clause) and existential
// conjunctions, over n Boolean variables.

#ifndef QHORN_CORE_QUERY_H_
#define QHORN_CORE_QUERY_H_

#include <string>
#include <vector>

#include "src/bool/tuple.h"
#include "src/bool/tuple_set.h"
#include "src/core/expr.h"

namespace qhorn {

/// Evaluation knobs.
struct EvalOptions {
  /// Enforce the guarantee clause ∃(B ∧ h) of every universal Horn
  /// expression (§2.1 property 2). Footnote 1 of the paper relaxes this
  /// when algorithms may ask about empty sets; set to false to reproduce
  /// that mode.
  bool require_guarantees = true;
};

/// A qhorn query over variables x1..xn (0-based indices 0..n-1).
class Query {
 public:
  Query() = default;
  explicit Query(int n) : n_(n) {}

  /// Parses the paper's shorthand, accepting both unicode and ASCII forms:
  ///   "∀x1x2→x4 ∃x3→x6 ∀x5"  or  "A x1x2 -> x4 ; E x3 -> x6 ; A x5".
  /// Existential Horn expressions are stored as conjunctions over
  /// body ∪ {head}. `n` may exceed the largest mentioned variable (extra
  /// variables are unmentioned); if 0 it defaults to the largest mentioned
  /// variable index. Aborts on malformed input.
  static Query Parse(const std::string& text, int n = 0);

  int n() const { return n_; }
  void set_n(int n) { n_ = n; }

  const std::vector<UniversalHorn>& universal() const { return universal_; }
  const std::vector<ExistentialConj>& existential() const {
    return existential_;
  }

  /// Appends ∀body→head (body may be empty).
  void AddUniversal(VarSet body, int head);

  /// Appends ∃vars (vars must be non-empty).
  void AddExistential(VarSet vars);

  /// The membership map (Def. 2.4): true iff `object` is an answer.
  bool Evaluate(const TupleSet& object,
                const EvalOptions& opts = EvalOptions()) const;

  /// True iff `t` violates some universal Horn expression (body true, head
  /// false). Used to filter lattice tuples in §3.2.
  bool ViolatesUniversal(Tuple t) const;

  /// R3 / Horn closure of a variable set: repeatedly adds the head of any
  /// universal Horn expression whose body is contained in the set.
  VarSet HornClosure(VarSet vars) const;

  /// Query size k (Def. 2.5): the number of expressions (guarantee clauses
  /// not counted, matching the paper's shorthand convention).
  int size_k() const {
    return static_cast<int>(universal_.size() + existential_.size());
  }

  /// Heads of universal Horn expressions.
  VarSet UniversalHeadVars() const;

  /// Variables appearing in any expression (bodies, heads, conjunctions).
  VarSet MentionedVars() const;

  /// Paper shorthand, e.g. "∀x1x2→x4 ∃x3x6 ∀x5".
  std::string ToString() const;

  friend bool operator==(const Query&, const Query&) = default;

 private:
  int n_ = 0;
  std::vector<UniversalHorn> universal_;
  std::vector<ExistentialConj> existential_;
  // Parallel to existential_: the raw masks, so Evaluate can certify every
  // conjunction in one pass (TupleSet::SatisfiesConjunctionAll) instead of
  // one object scan per conjunction.
  std::vector<VarSet> existential_masks_;
};

/// A structured qhorn-1 query (§2.1.3): disjoint parts, each a body with its
/// universally / existentially quantified heads. This is what the qhorn-1
/// learner reconstructs; ToQuery() lowers it to the Query model.
class Qhorn1Structure {
 public:
  Qhorn1Structure() = default;
  explicit Qhorn1Structure(int n) : n_(n) {}

  int n() const { return n_; }
  const std::vector<Qhorn1Part>& parts() const { return parts_; }

  /// Adds a part. Aborts if the part reuses a variable already placed, has
  /// no head, or has an empty body with more than one head.
  void AddPart(Qhorn1Part part);

  /// True iff every variable of x1..xn is placed in exactly one part.
  bool CoversAllVars() const;

  /// Lowers to the Query model: ∀B→h per universal head, ∃(B ∧ h) per
  /// existential head.
  Query ToQuery() const;

  /// Paper shorthand with explicit roles, e.g. "∀x1x2→x4 ∃x1x2→x5 ∃x3".
  std::string ToString() const;

  friend bool operator==(const Qhorn1Structure&,
                         const Qhorn1Structure&) = default;

 private:
  int n_ = 0;
  std::vector<Qhorn1Part> parts_;
};

}  // namespace qhorn

#endif  // QHORN_CORE_QUERY_H_
