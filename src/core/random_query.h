// Random query generators for tests and benchmark workloads.
//
// The paper's learnability results are parameterized by the number of
// propositions n, query size k (Def. 2.5) and causal density θ (Def. 2.6);
// the generators below give direct control over each so benchmarks can
// sweep exactly the paper's parameters.

#ifndef QHORN_CORE_RANDOM_QUERY_H_
#define QHORN_CORE_RANDOM_QUERY_H_

#include "src/core/query.h"
#include "src/util/rng.h"

namespace qhorn {

/// Shape of random qhorn-1 queries.
struct Qhorn1Options {
  /// Largest part size (body + heads). Parts are sized uniformly in
  /// [1, max_part_size].
  int max_part_size = 4;
  /// Probability that a head variable is universally quantified.
  double universal_head_prob = 0.5;
};

/// Uniformly partitions the n variables into parts and assigns roles —
/// every variable appears exactly once, as qhorn-1 requires.
Qhorn1Structure RandomQhorn1(int n, Rng& rng,
                             const Qhorn1Options& opts = Qhorn1Options());

/// Shape of random role-preserving queries.
struct RpOptions {
  /// Number of distinct universal head variables.
  int num_heads = 2;
  /// Bodies per head (the causal density θ of each head). Bodies of one
  /// head are sampled with equal cardinality so they automatically form an
  /// antichain.
  int theta = 1;
  /// Cardinality of each body (clamped to the available non-head pool).
  int body_size = 2;
  /// Probability that a head is bodyless (∀h) instead of carrying bodies.
  double bodyless_prob = 0.0;
  /// Number of existential conjunctions.
  int num_conjunctions = 2;
  /// Conjunction sizes are uniform in [1, conj_size_max].
  int conj_size_max = 3;
  /// Add ∃v for every otherwise-unmentioned variable so the whole
  /// proposition set is used.
  bool cover_all_vars = true;
};

/// Random role-preserving qhorn query (§2.1.4): universal heads never
/// reappear as body variables.
Query RandomRolePreserving(int n, Rng& rng, const RpOptions& opts = RpOptions());

}  // namespace qhorn

#endif  // QHORN_CORE_RANDOM_QUERY_H_
