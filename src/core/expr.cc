#include "src/core/expr.h"

namespace qhorn {

std::string UniversalHorn::ToString() const {
  std::string out = "∀";
  if (body == 0) {
    out += FormatVarSet(VarBit(head));
  } else {
    out += FormatVarSet(body);
    out += "→";
    out += FormatVarSet(VarBit(head));
  }
  return out;
}

std::string ExistentialConj::ToString() const {
  return "∃" + FormatVarSet(vars);
}

}  // namespace qhorn
