// Exhaustive enumeration of small query classes, used by:
//   * the Fig. 7 / Fig. 8 reproduction (all role-preserving queries on two
//     variables — the paper finds exactly 7),
//   * exhaustive learner/verifier correctness tests (n ≤ 3), and
//   * the §2.1.3 class-size counting experiment (qhorn-1 vs Bell numbers).

#ifndef QHORN_CORE_ENUMERATE_H_
#define QHORN_CORE_ENUMERATE_H_

#include <vector>

#include "src/core/query.h"

namespace qhorn {

/// All antichains (families of pairwise ⊆-incomparable subsets) of the
/// power set of `universe`, including the empty family. The empty set ∅ is
/// a valid member but can only appear alone ({∅}), since ∅ ⊆ everything.
/// Memoized by universe width (families are enumerated once per width and
/// remapped onto the requested variables), so repeated calls are cheap.
std::vector<std::vector<VarSet>> AntichainsOf(VarSet universe);

/// All set partitions of the variables {0..n-1}; each partition is a list
/// of disjoint non-empty masks covering AllTrue(n).
std::vector<std::vector<VarSet>> SetPartitions(int n);

/// One representative (normalized) Query per semantic-equivalence class of
/// role-preserving qhorn queries on n variables in which every variable is
/// mentioned. Exponential in n, but with the memoized antichain families
/// and the worklist Horn closure the full n = 4 world (1 305 classes)
/// enumerates in tens of milliseconds — the exhaustive suites sweep it on
/// every test run.
std::vector<Query> EnumerateRolePreserving(int n);

/// One Qhorn1Structure per syntactic qhorn-1 query on n variables (every
/// variable placed). Distinct structures may be semantically equivalent;
/// use Canonicalize on ToQuery() to group them.
std::vector<Qhorn1Structure> EnumerateQhorn1(int n);

/// Number of semantically distinct qhorn-1 queries on n variables
/// (canonical classes of EnumerateQhorn1).
uint64_t CountDistinctQhorn1(int n);

}  // namespace qhorn

#endif  // QHORN_CORE_ENUMERATE_H_
