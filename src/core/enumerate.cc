#include "src/core/enumerate.h"

#include <map>
#include <unordered_set>
#include <utility>

#include "src/core/normalize.h"
#include "src/util/check.h"
#include "src/util/checked_mutex.h"

namespace qhorn {

namespace {

// Depth-first construction of antichains over the list of subsets: at each
// step either skip subsets[i] or take it when it is incomparable with every
// chosen set.
void AntichainDfs(const std::vector<VarSet>& subsets, size_t i,
                  std::vector<VarSet>* chosen,
                  std::vector<std::vector<VarSet>>* out) {
  if (i == subsets.size()) {
    out->push_back(*chosen);
    return;
  }
  AntichainDfs(subsets, i + 1, chosen, out);
  for (VarSet c : *chosen) {
    if (IsSubset(c, subsets[i]) || IsSubset(subsets[i], c)) return;
  }
  chosen->push_back(subsets[i]);
  AntichainDfs(subsets, i + 1, chosen, out);
  chosen->pop_back();
}

void PartitionDfs(const std::vector<int>& vars, size_t i,
                  std::vector<VarSet>* parts,
                  std::vector<std::vector<VarSet>>* out) {
  if (i == vars.size()) {
    out->push_back(*parts);
    return;
  }
  VarSet bit = VarBit(vars[i]);
  // Index-based: recursion pushes/pops parts, which may reallocate the
  // vector and would invalidate a range-for reference.
  for (size_t p = 0; p < parts->size(); ++p) {
    (*parts)[p] |= bit;
    PartitionDfs(vars, i + 1, parts, out);
    (*parts)[p] &= ~bit;
  }
  parts->push_back(bit);
  PartitionDfs(vars, i + 1, parts, out);
  parts->pop_back();
}

}  // namespace

namespace {

// Antichain families depend only on the universe's *width*: the families
// over an arbitrary universe are the families over {0..width-1} with bit j
// remapped to the universe's j-th variable. Enumerating once per width and
// remapping makes repeated calls (EnumerateRolePreserving alone issues one
// per head set, and the exhaustive test suites re-enumerate whole worlds)
// effectively free.
const std::vector<std::vector<VarSet>>& CompactAntichainsOfWidth(int width) {
  // Highest rank in the tree (kMemo): a leaf-of-leaves reachable from any
  // layer — learner jobs hit it while their router shard is held.
  static Mutex mutex("antichain-memo", LockRank::kMemo);
  // Entries are inserted once and never mutated, so the returned reference
  // stays valid (and safely readable) after the lock is dropped.
  static std::map<int, std::vector<std::vector<VarSet>>> cache
      QHORN_GUARDED_BY(mutex);
  MutexLock lock(&mutex);
  auto it = cache.find(width);
  if (it != cache.end()) return it->second;

  std::vector<VarSet> subsets;
  for (uint64_t bits = 0; bits < (uint64_t{1} << width); ++bits) {
    subsets.push_back(bits);
  }
  std::vector<std::vector<VarSet>> out;
  std::vector<VarSet> chosen;
  AntichainDfs(subsets, 0, &chosen, &out);
  return cache.emplace(width, std::move(out)).first->second;
}

// Spreads the low `width` bits of `compact` onto the variables of
// `universe` (bit j → j-th lowest universe variable).
VarSet SpreadOnto(VarSet compact, VarSet universe) {
  VarSet spread = 0;
  while (compact != 0) {
    VarSet low_universe = universe & (~universe + 1);
    if (compact & 1) spread |= low_universe;
    universe &= universe - 1;
    compact >>= 1;
  }
  return spread;
}

}  // namespace

std::vector<std::vector<VarSet>> AntichainsOf(VarSet universe) {
  int width = Popcount(universe);
  QHORN_CHECK_MSG(width <= 5, "antichain enumeration supported to width 5");
  const std::vector<std::vector<VarSet>>& compact =
      CompactAntichainsOfWidth(width);
  if (universe == AllTrue(width)) return compact;  // identity remap
  std::vector<std::vector<VarSet>> out;
  out.reserve(compact.size());
  for (const std::vector<VarSet>& family : compact) {
    std::vector<VarSet> mapped;
    mapped.reserve(family.size());
    for (VarSet s : family) mapped.push_back(SpreadOnto(s, universe));
    out.push_back(std::move(mapped));
  }
  return out;
}

std::vector<std::vector<VarSet>> SetPartitions(int n) {
  QHORN_CHECK(n >= 0);
  std::vector<int> vars(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) vars[static_cast<size_t>(i)] = i;
  std::vector<std::vector<VarSet>> out;
  std::vector<VarSet> parts;
  PartitionDfs(vars, 0, &parts, &out);
  return out;
}

std::vector<Query> EnumerateRolePreserving(int n) {
  QHORN_CHECK_MSG(n >= 1 && n <= 4, "exhaustive enumeration is for n ≤ 4");
  VarSet all = AllTrue(n);

  // Existential families: antichains of non-empty subsets of all variables.
  std::vector<std::vector<VarSet>> exist_families;
  for (const auto& family : AntichainsOf(all)) {
    bool has_empty = false;
    for (VarSet s : family) has_empty |= (s == 0);
    if (!has_empty) exist_families.push_back(family);
  }

  // Dedup on the hashed canonical form itself (cached FNV, the TupleSet
  // idiom) — the ToString() keys this replaces were the canonical-form
  // bottleneck: one string render plus a lexicographic map probe per
  // candidate. Results keep the deterministic first-encounter order of the
  // (deterministic) enumeration.
  std::unordered_set<CanonicalForm, CanonicalFormHash> seen;
  std::vector<Query> result;
  auto consider = [&](const Query& q) {
    if (q.MentionedVars() != all) return;
    auto [it, inserted] = seen.insert(Canonicalize(q));
    if (inserted) result.push_back(ToQuery(*it));
  };

  for (VarSet heads = 0; heads <= all; ++heads) {
    if (!IsSubset(heads, all)) continue;
    VarSet non_heads = all & ~heads;
    std::vector<int> head_list = VarsOf(heads);

    // Per-head body antichains (non-empty families; ∅ body = bodyless).
    std::vector<std::vector<VarSet>> body_options;
    for (const auto& family : AntichainsOf(non_heads)) {
      if (!family.empty()) body_options.push_back(family);
    }
    if (!head_list.empty() && body_options.empty()) continue;

    // Cartesian product of body antichains across heads.
    std::vector<size_t> idx(head_list.size(), 0);
    for (;;) {
      for (const auto& exist : exist_families) {
        Query q(n);
        for (size_t h = 0; h < head_list.size(); ++h) {
          for (VarSet body : body_options[idx[h]]) {
            q.AddUniversal(body, head_list[h]);
          }
        }
        for (VarSet conj : exist) q.AddExistential(conj);
        consider(q);
      }
      // Advance the mixed-radix counter.
      size_t pos = 0;
      while (pos < idx.size()) {
        if (++idx[pos] < body_options.size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (idx.empty() || pos == idx.size()) break;
    }
    if (heads == all) break;  // avoid VarSet overflow wrap when n == 64
  }

  return result;
}

std::vector<Qhorn1Structure> EnumerateQhorn1(int n) {
  QHORN_CHECK_MSG(n >= 1 && n <= 6, "qhorn-1 enumeration is for n ≤ 6");
  std::vector<Qhorn1Structure> out;

  for (const auto& partition : SetPartitions(n)) {
    // For each part choose (body, role of each head); multi-variable parts
    // need a non-empty proper-subset body.
    struct PartChoice {
      Qhorn1Part part;
    };
    std::vector<std::vector<Qhorn1Part>> choices_per_part;
    for (VarSet part : partition) {
      std::vector<Qhorn1Part> choices;
      std::vector<int> vars = VarsOf(part);
      if (vars.size() == 1) {
        choices.push_back(Qhorn1Part{0, part, 0});  // ∀v
        choices.push_back(Qhorn1Part{0, 0, part});  // ∃v
      } else {
        // Enumerate proper non-empty bodies B ⊂ part.
        int m = static_cast<int>(vars.size());
        for (uint64_t bits = 1; bits + 1 < (uint64_t{1} << m); ++bits) {
          VarSet body = 0;
          for (int j = 0; j < m; ++j) {
            if ((bits >> j) & 1) body |= VarBit(vars[static_cast<size_t>(j)]);
          }
          VarSet head_vars = part & ~body;
          std::vector<int> heads = VarsOf(head_vars);
          int hm = static_cast<int>(heads.size());
          for (uint64_t roles = 0; roles < (uint64_t{1} << hm); ++roles) {
            Qhorn1Part p;
            p.body = body;
            for (int j = 0; j < hm; ++j) {
              VarSet hb = VarBit(heads[static_cast<size_t>(j)]);
              if ((roles >> j) & 1) {
                p.universal_heads |= hb;
              } else {
                p.existential_heads |= hb;
              }
            }
            choices.push_back(p);
          }
        }
      }
      choices_per_part.push_back(std::move(choices));
    }

    // Cartesian product over parts.
    std::vector<size_t> idx(choices_per_part.size(), 0);
    for (;;) {
      Qhorn1Structure s(n);
      for (size_t p = 0; p < idx.size(); ++p) {
        s.AddPart(choices_per_part[p][idx[p]]);
      }
      out.push_back(std::move(s));
      size_t pos = 0;
      while (pos < idx.size()) {
        if (++idx[pos] < choices_per_part[pos].size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (idx.empty() || pos == idx.size()) break;
    }
  }
  return out;
}

uint64_t CountDistinctQhorn1(int n) {
  std::unordered_set<CanonicalForm, CanonicalFormHash> keys;
  for (const Qhorn1Structure& s : EnumerateQhorn1(n)) {
    keys.insert(Canonicalize(s.ToQuery()));
  }
  return keys.size();
}

}  // namespace qhorn
