#include "src/core/query.h"

#include <algorithm>
#include <bit>

#include "src/util/check.h"

namespace qhorn {

void Query::AddUniversal(VarSet body, int head) {
  QHORN_CHECK_MSG(head >= 0 && head < n_, "head x" << head + 1
                                                   << " outside n=" << n_);
  QHORN_CHECK_MSG(IsSubset(body, AllTrue(n_)), "body outside n=" << n_);
  QHORN_CHECK_MSG(!HasVar(body, head),
                  "head x" << head + 1 << " may not appear in its own body");
  universal_.push_back(UniversalHorn{body, head});
}

void Query::AddExistential(VarSet vars) {
  QHORN_CHECK(vars != 0);
  QHORN_CHECK_MSG(IsSubset(vars, AllTrue(n_)), "conjunction outside n=" << n_);
  existential_.push_back(ExistentialConj{vars});
  existential_masks_.push_back(vars);
}

bool Query::Evaluate(const TupleSet& object, const EvalOptions& opts) const {
  for (const UniversalHorn& u : universal_) {
    for (Tuple t : object) {
      if (u.ViolatedBy(t)) return false;
    }
    if (opts.require_guarantees &&
        !object.SatisfiesConjunction(u.GuaranteeVars())) {
      return false;
    }
  }
  // All existential conjunctions in one pass over the object instead of
  // one full scan per conjunction (same verdict: conjunction of ∃-tests).
  return object.SatisfiesConjunctionAll(existential_masks_);
}

bool Query::ViolatesUniversal(Tuple t) const {
  for (const UniversalHorn& u : universal_) {
    if (u.ViolatedBy(t)) return true;
  }
  return false;
}

VarSet Query::HornClosure(VarSet vars) const {
  size_t k = universal_.size();
  if (k == 0) return vars;
  if (k > 64) {
    // Rare wide queries: plain fixpoint re-scan.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const UniversalHorn& u : universal_) {
        if (IsSubset(u.body, vars) && !HasVar(vars, u.head)) {
          vars |= VarBit(u.head);
          changed = true;
        }
      }
    }
    return vars;
  }
  // Worklist closure, O(k + Σ|body|) instead of the O(k²) fixpoint
  // re-scan: track how many body variables each expression still misses,
  // fire it the moment the count reaches zero, and let each newly added
  // head decrement only the expressions whose bodies contain it. var_exprs
  // entries are initialized lazily (tracked by `touched`) so a call costs
  // no up-front clearing of the whole table.
  uint64_t var_exprs[kMaxVars];  // exprs missing variable v
  VarSet touched = 0;
  int missing[64];
  uint64_t ready = 0;  // exprs with body ⊆ vars, not yet fired
  for (size_t i = 0; i < k; ++i) {
    VarSet rem = universal_[i].body & ~vars;
    missing[i] = Popcount(rem);
    if (rem == 0) {
      ready |= uint64_t{1} << i;
    } else {
      while (rem != 0) {
        int v = std::countr_zero(rem);
        if (!HasVar(touched, v)) {
          var_exprs[v] = 0;
          touched |= VarBit(v);
        }
        var_exprs[v] |= uint64_t{1} << i;
        rem &= rem - 1;
      }
    }
  }
  while (ready != 0) {
    size_t i = static_cast<size_t>(std::countr_zero(ready));
    ready &= ready - 1;
    int head = universal_[i].head;
    if (HasVar(vars, head)) continue;
    vars |= VarBit(head);
    uint64_t affected = HasVar(touched, head) ? var_exprs[head] : 0;
    var_exprs[head] = 0;
    while (affected != 0) {
      size_t j = static_cast<size_t>(std::countr_zero(affected));
      affected &= affected - 1;
      if (--missing[j] == 0) ready |= uint64_t{1} << j;
    }
  }
  return vars;
}

VarSet Query::UniversalHeadVars() const {
  VarSet heads = 0;
  for (const UniversalHorn& u : universal_) heads |= VarBit(u.head);
  return heads;
}

VarSet Query::MentionedVars() const {
  VarSet vars = 0;
  for (const UniversalHorn& u : universal_) vars |= u.GuaranteeVars();
  for (const ExistentialConj& e : existential_) vars |= e.vars;
  return vars;
}

std::string Query::ToString() const {
  if (universal_.empty() && existential_.empty()) return "⊤";
  std::string out;
  for (const UniversalHorn& u : universal_) {
    if (!out.empty()) out += " ";
    out += u.ToString();
  }
  for (const ExistentialConj& e : existential_) {
    if (!out.empty()) out += " ";
    out += e.ToString();
  }
  return out;
}

void Qhorn1Structure::AddPart(Qhorn1Part part) {
  QHORN_CHECK_MSG(part.heads() != 0, "a qhorn-1 part needs at least one head");
  QHORN_CHECK_MSG((part.universal_heads & part.existential_heads) == 0,
                  "a head cannot be both universal and existential");
  QHORN_CHECK_MSG((part.body & part.heads()) == 0,
                  "head variables may not appear in the body (restriction 3)");
  QHORN_CHECK_MSG(part.body != 0 || Popcount(part.heads()) == 1,
                  "a bodyless part is a singleton expression");
  VarSet placed = 0;
  for (const Qhorn1Part& p : parts_) placed |= p.vars();
  QHORN_CHECK_MSG((placed & part.vars()) == 0,
                  "variable reuse across parts violates qhorn-1");
  QHORN_CHECK(IsSubset(part.vars(), AllTrue(n_)));
  parts_.push_back(part);
}

bool Qhorn1Structure::CoversAllVars() const {
  VarSet placed = 0;
  for (const Qhorn1Part& p : parts_) placed |= p.vars();
  return placed == AllTrue(n_);
}

Query Qhorn1Structure::ToQuery() const {
  Query q(n_);
  for (const Qhorn1Part& p : parts_) {
    for (int h : VarsOf(p.universal_heads)) q.AddUniversal(p.body, h);
    for (int h : VarsOf(p.existential_heads)) {
      q.AddExistential(p.body | VarBit(h));
    }
  }
  return q;
}

std::string Qhorn1Structure::ToString() const {
  std::string out;
  auto append = [&out](const std::string& s) {
    if (!out.empty()) out += " ";
    out += s;
  };
  for (const Qhorn1Part& p : parts_) {
    for (int h : VarsOf(p.universal_heads)) {
      append(UniversalHorn{p.body, h}.ToString());
    }
    for (int h : VarsOf(p.existential_heads)) {
      if (p.body == 0) {
        append("∃" + FormatVarSet(VarBit(h)));
      } else {
        append("∃" + FormatVarSet(p.body) + "→" + FormatVarSet(VarBit(h)));
      }
    }
  }
  return out.empty() ? "⊤" : out;
}

}  // namespace qhorn
