// Counting results quoted in §2 and §2.1.3: the doubly-exponential number of
// Boolean queries, Bell numbers, and the 2^Θ(n lg n) size of qhorn-1.

#ifndef QHORN_CORE_COUNTING_H_
#define QHORN_CORE_COUNTING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qhorn {

/// Bell number B_n (number of set partitions of n elements). Exact for
/// n ≤ 25 (B_25 < 2^63); aborts beyond that.
uint64_t BellNumber(int n);

/// lg(B_n) computed in floating point via the Bell triangle — usable far
/// beyond the exact range (n ≤ 200).
double LgBellNumber(int n);

/// lg of the §2.1.3 upper bound 2^n · 2^n · 2^(n lg n) on |qhorn-1|.
double LgQhorn1UpperBound(int n);

/// Number of distinguishable Boolean tuples on n propositions: 2^n.
uint64_t NumBooleanTuples(int n);

/// Number of distinct objects (sets of tuples): 2^(2^n), as a decimal
/// string (exact via big-number doubling) — for n ≤ 5 this is printable.
std::string NumObjectsString(int n);

/// lg lg of the number of distinguishable Boolean queries 2^(2^(2^n)):
/// returns 2^n·... — we report lg(#queries) = 2^(2^n) as a string, which is
/// also the §2 lower bound on membership questions for learning arbitrary
/// queries.
std::string LgNumQueriesString(int n);

/// Binomial coefficient (exact, aborts on overflow of uint64).
uint64_t Binomial(int n, int k);

}  // namespace qhorn

#endif  // QHORN_CORE_COUNTING_H_
