#include "src/core/witness.h"

#include "src/core/compiled_query.h"
#include "src/core/normalize.h"
#include "src/util/check.h"
#include "src/verify/verification_set.h"

namespace qhorn {

std::optional<TupleSet> DistinguishingWitness(const Query& a, const Query& b) {
  QHORN_CHECK(a.n() == b.n());
  if (Equivalent(a, b)) return std::nullopt;

  // Theorem 4.2: the verification set of `a` exposes any semantic
  // difference — evaluate each question under both queries. The empty
  // query has no verification set; its partner's serves (they are
  // inequivalent, so the partner is non-empty).
  const Query& base = a.size_k() > 0 ? a : b;
  const Query& other = a.size_k() > 0 ? b : a;
  VerificationSet set = BuildVerificationSet(base);
  CompiledQuery compiled_other(other);
  for (const VerificationQuestion& vq : set.questions) {
    if (compiled_other.Evaluate(vq.question) != vq.expected_answer) {
      return vq.question;
    }
  }
  // By the verification completeness theorem this is unreachable for
  // role-preserving queries; fall back to brute force for tiny n so the
  // function stays total even off the supported class.
  if (a.n() <= 4) {
    TupleSet witness;
    if (FindDistinguishingObject(a, b, EvalOptions(), &witness)) {
      return witness;
    }
  }
  QHORN_CHECK_MSG(false, "inequivalent queries without a witness: "
                             << a.ToString() << " vs " << b.ToString());
  return std::nullopt;
}

std::optional<TupleSet> EquivalenceOracle::Counterexample(
    const Query& hypothesis) {
  ++asked_;
  return DistinguishingWitness(hypothesis, target_);
}

}  // namespace qhorn
