#include "src/core/classify.h"

#include <algorithm>

#include "src/core/normalize.h"

namespace qhorn {

bool IsRolePreserving(const Query& q) {
  VarSet heads = 0;
  VarSet bodies = 0;
  for (const UniversalHorn& u : q.universal()) {
    heads |= VarBit(u.head);
    bodies |= u.body;
  }
  return (heads & bodies) == 0;
}

int CausalDensity(const Query& q) {
  CanonicalForm form = Canonicalize(q);
  int theta = 0;
  for (const auto& [head, list] : form.universal) {
    theta = std::max(theta, static_cast<int>(list.size()));
  }
  return theta;
}

int DominantSize(const Query& q) {
  CanonicalForm form = Canonicalize(q);
  int k = static_cast<int>(form.existential.size());
  for (const auto& [head, list] : form.universal) {
    k += static_cast<int>(list.size());
  }
  return k;
}

bool IsQhorn1(const std::vector<Qhorn1Part>& parts) {
  VarSet seen = 0;
  for (const Qhorn1Part& p : parts) {
    if (p.heads() == 0) return false;
    if ((p.universal_heads & p.existential_heads) != 0) return false;
    if ((p.body & p.heads()) != 0) return false;
    if (p.body == 0 && Popcount(p.heads()) != 1) return false;
    if ((seen & p.vars()) != 0) return false;
    seen |= p.vars();
  }
  return true;
}

bool IsQhorn1(const Qhorn1Structure& s) {
  // Qhorn1Structure::AddPart already enforces these restrictions; this is
  // a defensive re-validation.
  return IsQhorn1(s.parts());
}

}  // namespace qhorn
