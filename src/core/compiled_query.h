// Compiled query evaluation (the engine behind every membership answer).
//
// Query::Evaluate re-scans the object once per universal Horn expression,
// once per guarantee clause and once per existential conjunction — O(k·|S|)
// passes through std::vector<UniversalHorn> with per-expression VarBit
// arithmetic. The learners and verifiers ask thousands of membership
// questions per session (§2.1.2, §3), so that cost sits on the interactive
// path. CompiledQuery flattens a query once into cache-friendly
// structure-of-arrays mask vectors and answers each question with tight
// scans over the object's contiguous tuple array:
//
//   * Universal Horn expressions are R2-pruned (per head, only the minimal
//     antichain of bodies is kept — a tuple violating a dominated
//     expression always violates a dominant one) and lowered to mask pairs:
//     tuple t violates ∀B→h  ⟺  (t & (B ∪ {h})) == B. Expressions are
//     sorted by body popcount so the likeliest violations are probed first.
//   * Guarantee clauses and existential conjunctions are pooled, R3-closed
//     under the query's Horn expressions, and R1-pruned to the maximal
//     antichain — one "need" mask per dominant conjunction, sorted by
//     descending popcount (the least-likely-satisfied need is probed
//     first). A closed need is sound to check *before* the violation scan:
//     if ∃closure(C) fails on an object, then either ∃C already fails or
//     some tuple violates a Horn expression used by the closure — the
//     object is a non-answer either way.
//
// Evaluation is two short phases over the tuple array. The needs phase
// first tests the largest tuple against the union of all need masks (every
// learner question contains the all-true tuple, which settles all needs in
// one comparison) and otherwise certifies each need with a branchless scan;
// the violation phase probes each mask pair the same way. Both phases
// short-circuit the moment the verdict is known. The per-mask scans
// vectorize (AVX-512/AVX2 kernels when the build enables them — see
// QHORN_SIMD in the top-level CMakeLists) and allocate nothing.
//
// CompiledQuery::Evaluate agrees with Query::Evaluate on every object —
// exhaustively tested for all role-preserving queries and all objects at
// n ≤ 3 and differentially at n ∈ {16, 64} (tests/compiled_query_test.cc).

#ifndef QHORN_CORE_COMPILED_QUERY_H_
#define QHORN_CORE_COMPILED_QUERY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/bool/tuple.h"
#include "src/bool/tuple_set.h"
#include "src/core/query.h"
#include "src/util/bit_span.h"

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace qhorn {

class Executor;

namespace internal {

/// Portable reference kernel (also the differential-test oracle for the
/// SIMD paths). Branchless accumulation so the common certify-absent scan
/// has no unpredictable branches.
inline bool AnyTupleMatchesScalar(const Tuple* ts, size_t m, uint64_t guard,
                                  uint64_t want) {
  uint64_t hit = 0;
  for (size_t j = 0; j < m; ++j) {
    hit |= static_cast<uint64_t>((ts[j] & guard) == want);
  }
  return hit != 0;
}

/// True iff some tuple of ts[0..m) satisfies (t & guard) == want. The one
/// kernel of the engine: with guard = need, want = need it decides an
/// existential need; with guard = body ∪ {head}, want = body it detects a
/// universal Horn violation.
inline bool AnyTupleMatches(const Tuple* ts, size_t m, uint64_t guard,
                            uint64_t want) {
#if defined(__AVX512F__)
  const __m512i vg = _mm512_set1_epi64(static_cast<long long>(guard));
  const __m512i vw = _mm512_set1_epi64(static_cast<long long>(want));
  __mmask8 hit = 0;
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    __m512i t = _mm512_loadu_si512(ts + j);
    hit |= _mm512_cmpeq_epi64_mask(_mm512_and_si512(t, vg), vw);
  }
  if (hit) return true;
  for (; j < m; ++j) {
    if ((ts[j] & guard) == want) return true;
  }
  return false;
#elif defined(__AVX2__)
  const __m256i vg = _mm256_set1_epi64x(static_cast<long long>(guard));
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(want));
  __m256i acc = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + j));
    acc = _mm256_or_si256(acc,
                          _mm256_cmpeq_epi64(_mm256_and_si256(t, vg), vw));
  }
  if (!_mm256_testz_si256(acc, acc)) return true;
  for (; j < m; ++j) {
    if ((ts[j] & guard) == want) return true;
  }
  return false;
#else
  return AnyTupleMatchesScalar(ts, m, guard, want);
#endif
}

}  // namespace internal

/// A query flattened for evaluation. Compile once (construction walks the
/// query and runs the R1/R2/R3 pruning), evaluate many times.
class CompiledQuery {
 public:
  /// Name of the per-mask scan kernel this translation unit was built with.
  static constexpr const char* SimdBackend() {
#if defined(__AVX512F__)
    return "avx512";
#elif defined(__AVX2__)
    return "avx2";
#else
    return "scalar";
#endif
  }

  CompiledQuery() = default;

  /// Compiles `query` under `opts` (the guarantee-clause mode is baked into
  /// the compiled form: with require_guarantees unset, guarantee clauses
  /// contribute no needs).
  explicit CompiledQuery(const Query& query,
                         const EvalOptions& opts = EvalOptions());

  int n() const { return n_; }
  const EvalOptions& options() const { return opts_; }

  /// Compiled expression counts, after pruning (for tests and stats).
  size_t num_violation_masks() const { return viol_guard_.size(); }
  size_t num_need_masks() const { return need_.size(); }

  /// Probe-order cost model: true when evaluation scans the violation
  /// masks before the needs phase. Chosen at compile time from the pruned
  /// mask counts — see the constructor.
  bool violations_first() const { return violations_first_; }

  /// The membership map (Def. 2.4): true iff `object` is an answer.
  /// Extensionally equal to Query::Evaluate(object, options()).
  bool Evaluate(const TupleSet& object) const {
    return EvaluateTuples(object.tuples().data(), object.tuples().size());
  }

  /// Rounds below this many questions are evaluated inline even when an
  /// executor is supplied: sharding costs two condition-variable round
  /// trips plus task dispatch (~5–10 µs), and a short round of ~10 ns
  /// evaluations never earns it back. Tuned against BM_OracleBatch* /
  /// BM_OracleBatchParallel (see BENCH_micro.json).
  static constexpr size_t kParallelRoundCutover = 512;

  /// Shard granularity for the parallel path: boundaries are multiples of
  /// 64 questions so each shard owns whole words of the verdict bits (see
  /// the BitSpan concurrency contract).
  static constexpr size_t kParallelGrain = 64;

  /// Evaluates a span of objects — the kernel behind every batched oracle
  /// round (QueryOracle::IsAnswerBatch and the miss-only forwarding of
  /// CachingOracle both land here). `verdicts.size()` must equal
  /// `objects.size()`. With a non-null executor of concurrency ≥ 2, rounds
  /// of at least kParallelRoundCutover questions are partitioned across it
  /// in word-aligned shards; the verdict order is the question order
  /// either way. The compiled mask vectors are shared read-only across
  /// shards; each shard accumulates its verdict words privately.
  void EvaluateAll(std::span<const TupleSet> objects, BitSpan verdicts,
                   Executor* executor = nullptr) const;

  /// Convenience variants over owned vector<bool> storage (non-oracle
  /// callers: brute-force sweeps, construction self-tests).
  std::vector<bool> EvaluateAll(std::span<const TupleSet> objects) const;
  void EvaluateAll(std::span<const TupleSet> objects,
                   std::vector<bool>* verdicts) const;

  /// True iff `t` violates some universal Horn expression (body true, head
  /// false). Extensionally equal to Query::ViolatesUniversal.
  bool ViolatesUniversal(Tuple t) const {
    const uint64_t* guard = viol_guard_.data();
    const uint64_t* body = viol_body_.data();
    size_t count = viol_guard_.size();
    for (size_t i = 0; i < count; ++i) {
      if ((t & guard[i]) == body[i]) return true;
    }
    return false;
  }

  /// Evaluate over a raw sorted tuple array (the TupleSet invariant: the
  /// numerically largest tuple is last). Both phases are pure predicates
  /// over the same immutable object, so their order is a pure cost choice;
  /// `violations_first_` picks it per compiled query (see the constructor).
  bool EvaluateTuples(const Tuple* ts, size_t m) const {
    if (m == 0) return need_.empty();
    if (violations_first_) {
      return NoViolation(ts, m) && NeedsMet(ts, m);
    }
    return NeedsMet(ts, m) && NoViolation(ts, m);
  }

 private:
  /// Needs phase: every compiled need mask is met by some tuple.
  bool NeedsMet(const Tuple* ts, size_t m) const {
    // A question containing the all-true tuple (every learner probe does)
    // settles all needs in one comparison against the largest tuple.
    if (need_.empty() || (ts[m - 1] & need_union_) == need_union_) {
      return true;
    }
    // Union fast-reject: a need can only be met by a single tuple, so if
    // even the union of all tuples misses a variable of some need the
    // object is a non-answer. One O(m) pass spares the per-need scans on
    // the learners' frequent deliberately-deficient probes.
    Tuple all_vars = 0;
    for (size_t j = 0; j < m; ++j) all_vars |= ts[j];
    if ((all_vars & need_union_) != need_union_) return false;
    for (uint64_t nd : need_) {
      if (!internal::AnyTupleMatches(ts, m, nd, nd)) return false;
    }
    return true;
  }

  /// Violation phase: no tuple violates a compiled universal expression.
  bool NoViolation(const Tuple* ts, size_t m) const {
    const uint64_t* guard = viol_guard_.data();
    const uint64_t* body = viol_body_.data();
    size_t count = viol_guard_.size();
    for (size_t i = 0; i < count; ++i) {
      if (internal::AnyTupleMatches(ts, m, guard[i], body[i])) return false;
    }
    return true;
  }

  int n_ = 0;
  EvalOptions opts_;
  bool violations_first_ = false;
  // Violation masks, parallel arrays: tuple t violates expression i iff
  // (t & viol_guard_[i]) == viol_body_[i]. R2-pruned, body-popcount order.
  std::vector<uint64_t> viol_guard_;
  std::vector<uint64_t> viol_body_;
  // Need masks: R3-closed maximal antichain of existential conjunctions
  // (and guarantee clauses when required), descending popcount.
  std::vector<uint64_t> need_;
  uint64_t need_union_ = 0;
};

}  // namespace qhorn

#endif  // QHORN_CORE_COMPILED_QUERY_H_
