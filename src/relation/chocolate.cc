#include "src/relation/chocolate.h"

namespace qhorn {

Schema ChocolateSchema() {
  return Schema({
      {"isDark", ValueType::kBool},
      {"hasFilling", ValueType::kBool},
      {"isSugarFree", ValueType::kBool},
      {"hasNuts", ValueType::kBool},
      {"origin", ValueType::kString},
  });
}

DataTuple MakeChocolate(bool is_dark, bool has_filling, bool is_sugar_free,
                        bool has_nuts, const std::string& origin) {
  return DataTuple{Value::Bool(is_dark), Value::Bool(has_filling),
                   Value::Bool(is_sugar_free), Value::Bool(has_nuts),
                   Value::Str(origin)};
}

std::vector<Proposition> ChocolatePropositions() {
  return {
      Proposition::BoolAttr("isDark"),
      Proposition::BoolAttr("hasFilling"),
      Proposition::Equals("origin", Value::Str("Madagascar")),
  };
}

NestedRelation Fig1Boxes() {
  NestedRelation boxes("Box", ChocolateSchema());

  // Fig. 1 rows (columns there: origin, isSugarFree, isDark, hasFilling,
  // hasNuts). Under p1..p3 these map to S1 = {111, 000, 110} and
  // S2 = {100, 110}.
  NestedObject global_ground;
  global_ground.name = "Global Ground";
  global_ground.tuples = FlatRelation(ChocolateSchema());
  global_ground.tuples.AddRow(
      MakeChocolate(/*dark=*/true, /*filling=*/true, /*sugar_free=*/true,
                    /*nuts=*/false, "Madagascar"));
  global_ground.tuples.AddRow(
      MakeChocolate(false, false, true, true, "Belgium"));
  global_ground.tuples.AddRow(
      MakeChocolate(true, true, true, true, "Germany"));
  boxes.AddObject(std::move(global_ground));

  NestedObject europes_finest;
  europes_finest.name = "Europe's Finest";
  europes_finest.tuples = FlatRelation(ChocolateSchema());
  europes_finest.tuples.AddRow(
      MakeChocolate(true, false, true, false, "Belgium"));
  europes_finest.tuples.AddRow(
      MakeChocolate(true, false, false, true, "Belgium"));
  europes_finest.tuples.AddRow(
      MakeChocolate(true, true, false, true, "Sweden"));
  boxes.AddObject(std::move(europes_finest));

  return boxes;
}

Query IntroChocolateQuery() {
  // ∀x1 ∃x2x3 over p1: isDark, p2: hasFilling, p3: origin = Madagascar.
  return Query::Parse("∀x1 ∃x2x3", 3);
}

FlatRelation RandomChocolateDatabase(int size, Rng& rng) {
  static const char* kOrigins[] = {"Madagascar", "Belgium", "Germany",
                                   "Sweden",     "Ecuador", "Ghana"};
  FlatRelation pool(ChocolateSchema());
  for (int i = 0; i < size; ++i) {
    pool.AddRow(MakeChocolate(
        rng.Chance(0.5), rng.Chance(0.5), rng.Chance(0.5), rng.Chance(0.5),
        kOrigins[rng.Below(sizeof(kOrigins) / sizeof(kOrigins[0]))]));
  }
  return pool;
}

}  // namespace qhorn
