#include "src/relation/synthesize.h"

#include "src/util/check.h"

namespace qhorn {

TupleSynthesizer::TupleSynthesizer(const BooleanBinding* binding)
    : binding_(binding) {
  QHORN_CHECK(binding != nullptr);
}

DataTuple TupleSynthesizer::Synthesize(Tuple assignment) const {
  const Schema& schema = binding_->schema();
  const std::vector<Proposition>& props = binding_->propositions();

  DataTuple tuple(schema.size());
  for (size_t attr = 0; attr < schema.size(); ++attr) {
    const Attribute& a = schema.attribute(attr);
    // Constraints on this attribute: (proposition, desired truth).
    std::vector<Proposition> attr_props;
    std::vector<bool> desired;
    for (size_t i = 0; i < props.size(); ++i) {
      if (props[i].attribute() == a.name) {
        attr_props.push_back(props[i]);
        desired.push_back(HasVar(assignment, static_cast<int>(i)));
      }
    }
    // No proposition touches the attribute: any default of the right type.
    if (attr_props.empty()) {
      switch (a.type) {
        case ValueType::kBool: tuple[attr] = Value::Bool(false); break;
        case ValueType::kInt: tuple[attr] = Value::Int(0); break;
        case ValueType::kString: tuple[attr] = Value::Str("-"); break;
      }
      continue;
    }
    // Try candidate values until one realizes every desired truth value.
    // Interference-freedom guarantees one exists.
    bool found = false;
    for (const Value& v : CandidateValues(attr_props, a.type)) {
      DataTuple probe(schema.size());
      probe[attr] = v;
      bool ok = true;
      for (size_t i = 0; i < attr_props.size(); ++i) {
        // Evaluate on a minimal single-attribute schema to avoid touching
        // unset attributes.
        Schema single({a});
        DataTuple one = {v};
        if (attr_props[i].EvaluateOn(single, one) != desired[i]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        tuple[attr] = v;
        found = true;
        break;
      }
    }
    QHORN_CHECK_MSG(found, "cannot realize assignment on attribute '"
                               << a.name << "' (interference missed?)");
  }
  return tuple;
}

NestedObject TupleSynthesizer::SynthesizeObject(const TupleSet& question,
                                                const std::string& name) const {
  NestedObject object;
  object.name = name;
  object.tuples = FlatRelation(binding_->schema());
  for (Tuple t : question) {
    object.tuples.AddRow(Synthesize(t));
  }
  return object;
}

DatabaseSelector::DatabaseSelector(const FlatRelation* pool,
                                   const BooleanBinding* binding)
    : pool_(pool), binding_(binding), synthesizer_(binding) {
  QHORN_CHECK(pool != nullptr);
  QHORN_CHECK(pool->schema() == binding->schema());
}

DataTuple DatabaseSelector::PickOrSynthesize(Tuple assignment, Rng& rng) {
  std::vector<const DataTuple*> matches;
  for (const DataTuple& row : pool_->rows()) {
    if (binding_->ToBoolean(row) == assignment) matches.push_back(&row);
  }
  if (!matches.empty()) {
    ++from_pool_;
    return *matches[static_cast<size_t>(rng.Below(matches.size()))];
  }
  ++synthesized_;
  return synthesizer_.Synthesize(assignment);
}

NestedObject DatabaseSelector::MaterializeObject(const TupleSet& question,
                                                 const std::string& name,
                                                 Rng& rng) {
  NestedObject object;
  object.name = name;
  object.tuples = FlatRelation(binding_->schema());
  for (Tuple t : question) {
    object.tuples.AddRow(PickOrSynthesize(t, rng));
  }
  return object;
}

DataDomainOracle::DataDomainOracle(Query intended,
                                   const BooleanBinding* binding,
                                   EvalOptions opts)
    : intended_(std::move(intended)),
      compiled_(intended_, opts),
      binding_(binding),
      synthesizer_(binding) {
  QHORN_CHECK(binding != nullptr);
  QHORN_CHECK_MSG(intended_.n() == binding->n(),
                  "query arity does not match the proposition count");
}

bool DataDomainOracle::IsAnswer(const TupleSet& question) {
  // Materialize the Boolean question as a concrete object...
  NestedObject object = synthesizer_.SynthesizeObject(
      question, "box-" + std::to_string(shown_objects_.size() + 1));
  // ...then answer the way a user looking at the object would: re-derive
  // the Boolean classes of its tuples and evaluate the intended query.
  TupleSet round_trip = binding_->ObjectToBoolean(object);
  shown_objects_.push_back(std::move(object));
  return compiled_.Evaluate(round_trip);
}

}  // namespace qhorn
