#include "src/relation/value.h"

#include "src/util/check.h"

namespace qhorn {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kString: return "string";
  }
  return "?";
}

ValueType Value::type() const {
  if (std::holds_alternative<bool>(data_)) return ValueType::kBool;
  if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt;
  return ValueType::kString;
}

bool Value::bool_value() const {
  QHORN_CHECK_MSG(type() == ValueType::kBool, "value is not a bool");
  return std::get<bool>(data_);
}

int64_t Value::int_value() const {
  QHORN_CHECK_MSG(type() == ValueType::kInt, "value is not an int");
  return std::get<int64_t>(data_);
}

const std::string& Value::string_value() const {
  QHORN_CHECK_MSG(type() == ValueType::kString, "value is not a string");
  return std::get<std::string>(data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kBool: return bool_value() ? "true" : "false";
    case ValueType::kInt: return std::to_string(int_value());
    case ValueType::kString: return string_value();
  }
  return "?";
}

}  // namespace qhorn
