// The data ↔ Boolean domain transformation (Fig. 1).
//
// Given the user's propositions p1..pn over the embedded flat relation, a
// BooleanBinding maps each data tuple to the Boolean tuple of its
// proposition truth values, and whole objects to tuple sets. The binding
// refuses interfering propositions, matching the paper's assumption that
// truth assignments are independent.

#ifndef QHORN_RELATION_BINDING_H_
#define QHORN_RELATION_BINDING_H_

#include <vector>

#include "src/bool/tuple_set.h"
#include "src/relation/proposition.h"

namespace qhorn {

class BooleanBinding {
 public:
  /// Aborts if any proposition references a missing attribute, a mismatched
  /// type, or interferes with another proposition.
  BooleanBinding(Schema embedded_schema, std::vector<Proposition> props);

  int n() const { return static_cast<int>(props_.size()); }
  const Schema& schema() const { return schema_; }
  const std::vector<Proposition>& propositions() const { return props_; }

  /// Boolean image of one data tuple: bit i = props[i](tuple).
  Tuple ToBoolean(const DataTuple& tuple) const;

  /// Boolean image of an object (the set of its tuples' images; distinct
  /// data tuples in the same Boolean class collapse, as in the paper).
  TupleSet ObjectToBoolean(const NestedObject& object) const;

 private:
  Schema schema_;
  std::vector<Proposition> props_;
};

}  // namespace qhorn

#endif  // QHORN_RELATION_BINDING_H_
