// The paper's running example: boxes of chocolates.
//
//   Chocolate(isDark, hasFilling, isSugarFree, hasNuts, origin)
//   Box(name, Chocolate(...))
//
// Provides the Fig. 1 data (the "Global Ground" and "Europe's Finest"
// boxes), the three propositions of §2, and a random chocolate database for
// the §5 instance-selection workflow.

#ifndef QHORN_RELATION_CHOCOLATE_H_
#define QHORN_RELATION_CHOCOLATE_H_

#include "src/relation/binding.h"
#include "src/relation/synthesize.h"
#include "src/util/rng.h"

namespace qhorn {

/// Chocolate(isDark, hasFilling, isSugarFree, hasNuts, origin).
Schema ChocolateSchema();

/// One chocolate tuple.
DataTuple MakeChocolate(bool is_dark, bool has_filling, bool is_sugar_free,
                        bool has_nuts, const std::string& origin);

/// The paper's propositions: p1: isDark, p2: hasFilling,
/// p3: origin = Madagascar.
std::vector<Proposition> ChocolatePropositions();

/// The Box nested relation of Fig. 1 (Global Ground, Europe's Finest).
NestedRelation Fig1Boxes();

/// The paper's intro query over p1..p3:
/// ∀c (p1) ∧ ∃c (p2 ∧ p3)  —  "all dark; some with filling from
/// Madagascar" (equation (1) of §2).
Query IntroChocolateQuery();

/// A pool of `size` random chocolates for DatabaseSelector.
FlatRelation RandomChocolateDatabase(int size, Rng& rng);

}  // namespace qhorn

#endif  // QHORN_RELATION_CHOCOLATE_H_
