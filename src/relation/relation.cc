#include "src/relation/relation.h"

#include "src/util/check.h"

namespace qhorn {

void FlatRelation::AddRow(DataTuple row) {
  QHORN_CHECK_MSG(row.size() == schema_.size(),
                  "row arity " << row.size() << " != schema arity "
                               << schema_.size());
  for (size_t i = 0; i < row.size(); ++i) {
    QHORN_CHECK_MSG(row[i].type() == schema_.attribute(i).type,
                    "type mismatch on attribute '" << schema_.attribute(i).name
                                                   << "'");
  }
  rows_.push_back(std::move(row));
}

std::string FlatRelation::ToString() const {
  std::string out = schema_.ToString() + "\n";
  for (const DataTuple& row : rows_) {
    out += "  [";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += row[i].ToString();
    }
    out += "]\n";
  }
  return out;
}

void NestedRelation::AddObject(NestedObject object) {
  QHORN_CHECK_MSG(object.tuples.schema() == embedded_schema_,
                  "object '" << object.name
                             << "' does not match the embedded schema");
  objects_.push_back(std::move(object));
}

std::string NestedRelation::ToString() const {
  std::string out = name_ + embedded_schema_.ToString() + "\n";
  for (const NestedObject& obj : objects_) {
    out += obj.name + ":\n";
    for (const DataTuple& row : obj.tuples.rows()) {
      out += "    [";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ", ";
        out += row[i].ToString();
      }
      out += "]\n";
    }
  }
  return out;
}

}  // namespace qhorn
