// Relation schemas for the data domain.

#ifndef QHORN_RELATION_SCHEMA_H_
#define QHORN_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "src/relation/value.h"

namespace qhorn {

struct Attribute {
  std::string name;
  ValueType type;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// An ordered list of named, typed attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const;

  /// Index of the attribute named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Aborts unless an attribute with this name exists; returns its index.
  size_t RequireIndex(const std::string& name) const;

  std::string ToString() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace qhorn

#endif  // QHORN_RELATION_SCHEMA_H_
