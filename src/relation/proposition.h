// User propositions over the embedded flat relation (§2).
//
// Propositions are the atoms of a qhorn query — e.g. p1: c.isDark,
// p3: c.origin = Madagascar. The Boolean-domain transformation assumes the
// truth assignment of one proposition does not interfere with another's;
// the paper's example of interference is origin = Madagascar vs
// origin = Belgium (pm → ¬pb). FindInterference detects such pairs so a
// binding can reject them up front.

#ifndef QHORN_RELATION_PROPOSITION_H_
#define QHORN_RELATION_PROPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "src/relation/relation.h"

namespace qhorn {

/// A predicate over one attribute of the embedded relation.
class Proposition {
 public:
  enum class Kind {
    kBoolAttr,   ///< attribute (bool) is true
    kEquals,     ///< attribute == value
    kLess,       ///< attribute (int) <  bound
    kGreater,    ///< attribute (int) >  bound
  };

  static Proposition BoolAttr(std::string attribute);
  static Proposition Equals(std::string attribute, Value value);
  static Proposition Less(std::string attribute, int64_t bound);
  static Proposition Greater(std::string attribute, int64_t bound);

  Kind kind() const { return kind_; }
  const std::string& attribute() const { return attribute_; }
  const Value& value() const { return value_; }
  int64_t bound() const { return bound_; }

  /// Evaluates against a data tuple; aborts on schema/type mismatch.
  bool EvaluateOn(const Schema& schema, const DataTuple& tuple) const;

  /// Display label, e.g. "origin = Madagascar" or "isDark".
  std::string label() const;

 private:
  Proposition(Kind kind, std::string attribute, Value value, int64_t bound)
      : kind_(kind),
        attribute_(std::move(attribute)),
        value_(std::move(value)),
        bound_(bound) {}

  Kind kind_;
  std::string attribute_;
  Value value_;   // for kEquals
  int64_t bound_; // for kLess / kGreater
};

/// True iff some joint truth assignment to (a, b) is unsatisfiable — i.e.
/// the propositions interfere and cannot be treated as independent Boolean
/// variables. Propositions on different attributes never interfere.
bool Interferes(const Proposition& a, const Proposition& b);

/// All interfering index pairs within `props`.
std::vector<std::pair<size_t, size_t>> FindInterference(
    const std::vector<Proposition>& props);

/// Candidate values exercising every truth combination of the propositions
/// on one attribute — shared by the interference check and the tuple
/// synthesizer.
std::vector<Value> CandidateValues(const std::vector<Proposition>& props,
                                   ValueType type);

}  // namespace qhorn

#endif  // QHORN_RELATION_PROPOSITION_H_
