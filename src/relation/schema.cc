#include "src/relation/schema.h"

#include <set>

#include "src/util/check.h"

namespace qhorn {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  std::set<std::string> names;
  for (const Attribute& a : attributes_) {
    QHORN_CHECK_MSG(!a.name.empty(), "attribute name may not be empty");
    QHORN_CHECK_MSG(names.insert(a.name).second,
                    "duplicate attribute '" << a.name << "'");
  }
}

const Attribute& Schema::attribute(size_t i) const {
  QHORN_CHECK(i < attributes_.size());
  return attributes_[i];
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Schema::RequireIndex(const std::string& name) const {
  int i = IndexOf(name);
  QHORN_CHECK_MSG(i >= 0, "no attribute '" << name << "'");
  return static_cast<size_t>(i);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace qhorn
