// Flat and nested relations (Definitions 2.1–2.3).
//
// A nested relation has at least one domain that is a powerset of an
// embedded relation; the paper analyzes single-level nesting (the embedded
// relation is flat). The running example:
//   Box(name, Chocolate(isDark, hasFilling, isSugarFree, hasNuts, origin))

#ifndef QHORN_RELATION_RELATION_H_
#define QHORN_RELATION_RELATION_H_

#include <string>
#include <vector>

#include "src/relation/schema.h"

namespace qhorn {

/// A tuple of the embedded flat relation.
using DataTuple = std::vector<Value>;

/// A flat relation: a schema plus typed rows.
class FlatRelation {
 public:
  FlatRelation() = default;
  explicit FlatRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<DataTuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row; aborts on arity or type mismatch.
  void AddRow(DataTuple row);

  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<DataTuple> rows_;
};

/// An object of the nested relation: its own attributes (here just a name)
/// plus the embedded set of flat tuples.
struct NestedObject {
  std::string name;
  FlatRelation tuples;
};

/// A single-level nested relation.
class NestedRelation {
 public:
  NestedRelation(std::string name, Schema embedded_schema)
      : name_(std::move(name)), embedded_schema_(std::move(embedded_schema)) {}

  const std::string& name() const { return name_; }
  const Schema& embedded_schema() const { return embedded_schema_; }
  const std::vector<NestedObject>& objects() const { return objects_; }

  /// Appends an object; its embedded schema must match.
  void AddObject(NestedObject object);

  std::string ToString() const;

 private:
  std::string name_;
  Schema embedded_schema_;
  std::vector<NestedObject> objects_;
};

}  // namespace qhorn

#endif  // QHORN_RELATION_RELATION_H_
