// Synthesizing data-domain membership questions (§2.1.2, §5).
//
// Learners build questions in the Boolean domain; before presentation the
// question must become an actual object with data tuples. TupleSynthesizer
// constructs a data tuple realizing any Boolean assignment (possible
// because the binding rejected interfering propositions). DatabaseSelector
// implements the paper's §5 remedy for artificial-looking examples: when a
// database is available, pick a real tuple matching the Boolean class and
// synthesize only as a fallback.
//
// DataDomainOracle closes the loop for simulation: it receives Boolean
// questions, materializes them as data objects, maps them back through the
// binding, and evaluates the intended query — exercising the full
// data-domain round trip the paper's interface performs with a human.

#ifndef QHORN_RELATION_SYNTHESIZE_H_
#define QHORN_RELATION_SYNTHESIZE_H_

#include <string>
#include <vector>

#include "src/core/compiled_query.h"
#include "src/core/query.h"
#include "src/oracle/oracle.h"
#include "src/relation/binding.h"
#include "src/util/rng.h"

namespace qhorn {

/// Builds data tuples realizing Boolean assignments.
class TupleSynthesizer {
 public:
  explicit TupleSynthesizer(const BooleanBinding* binding);

  /// A data tuple whose proposition truth values equal `assignment`.
  DataTuple Synthesize(Tuple assignment) const;

  /// An object realizing a Boolean question.
  NestedObject SynthesizeObject(const TupleSet& question,
                                const std::string& name) const;

 private:
  const BooleanBinding* binding_;
};

/// Prefers real database tuples over synthesized ones (§5).
class DatabaseSelector {
 public:
  /// `pool` rows must match the binding's schema.
  DatabaseSelector(const FlatRelation* pool, const BooleanBinding* binding);

  /// A tuple from the pool whose Boolean image is `assignment`, or a
  /// synthesized one when the pool has none.
  DataTuple PickOrSynthesize(Tuple assignment, Rng& rng);

  NestedObject MaterializeObject(const TupleSet& question,
                                 const std::string& name, Rng& rng);

  int64_t from_pool() const { return from_pool_; }
  int64_t synthesized() const { return synthesized_; }

 private:
  const FlatRelation* pool_;
  const BooleanBinding* binding_;
  TupleSynthesizer synthesizer_;
  int64_t from_pool_ = 0;
  int64_t synthesized_ = 0;
};

/// Simulated user answering through the data domain (see file comment).
class DataDomainOracle : public MembershipOracle {
 public:
  DataDomainOracle(Query intended, const BooleanBinding* binding,
                   EvalOptions opts = EvalOptions());

  bool IsAnswer(const TupleSet& question) override;

  /// Objects materialized so far (the "boxes" shown to the user).
  const std::vector<NestedObject>& shown_objects() const {
    return shown_objects_;
  }

 private:
  Query intended_;
  CompiledQuery compiled_;  // compiled once; answers every round trip
  const BooleanBinding* binding_;
  TupleSynthesizer synthesizer_;
  std::vector<NestedObject> shown_objects_;
};

}  // namespace qhorn

#endif  // QHORN_RELATION_SYNTHESIZE_H_
