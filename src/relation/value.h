// Typed attribute values of the data domain (Definitions 2.1–2.3).

#ifndef QHORN_RELATION_VALUE_H_
#define QHORN_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace qhorn {

enum class ValueType { kBool, kInt, kString };

const char* ValueTypeName(ValueType type);

/// A single attribute value: bool, 64-bit integer, or string.
class Value {
 public:
  Value() : data_(false) {}

  static Value Bool(bool v) { return Value(v); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const;

  bool bool_value() const;      ///< aborts if not a bool
  int64_t int_value() const;    ///< aborts if not an int
  const std::string& string_value() const;  ///< aborts if not a string

  std::string ToString() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<bool, int64_t, std::string> data_;
};

}  // namespace qhorn

#endif  // QHORN_RELATION_VALUE_H_
