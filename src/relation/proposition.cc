#include "src/relation/proposition.h"

#include <algorithm>
#include <set>

#include "src/util/check.h"

namespace qhorn {

Proposition Proposition::BoolAttr(std::string attribute) {
  return Proposition(Kind::kBoolAttr, std::move(attribute), Value(), 0);
}

Proposition Proposition::Equals(std::string attribute, Value value) {
  return Proposition(Kind::kEquals, std::move(attribute), std::move(value), 0);
}

Proposition Proposition::Less(std::string attribute, int64_t bound) {
  return Proposition(Kind::kLess, std::move(attribute), Value(), bound);
}

Proposition Proposition::Greater(std::string attribute, int64_t bound) {
  return Proposition(Kind::kGreater, std::move(attribute), Value(), bound);
}

bool Proposition::EvaluateOn(const Schema& schema,
                             const DataTuple& tuple) const {
  size_t i = schema.RequireIndex(attribute_);
  QHORN_CHECK(i < tuple.size());
  const Value& v = tuple[i];
  switch (kind_) {
    case Kind::kBoolAttr:
      return v.bool_value();
    case Kind::kEquals:
      return v == value_;
    case Kind::kLess:
      return v.int_value() < bound_;
    case Kind::kGreater:
      return v.int_value() > bound_;
  }
  return false;
}

std::string Proposition::label() const {
  switch (kind_) {
    case Kind::kBoolAttr: return attribute_;
    case Kind::kEquals: return attribute_ + " = " + value_.ToString();
    case Kind::kLess: return attribute_ + " < " + std::to_string(bound_);
    case Kind::kGreater: return attribute_ + " > " + std::to_string(bound_);
  }
  return "?";
}

namespace {

ValueType RequiredType(const Proposition& p) {
  switch (p.kind()) {
    case Proposition::Kind::kBoolAttr: return ValueType::kBool;
    case Proposition::Kind::kEquals: return p.value().type();
    case Proposition::Kind::kLess:
    case Proposition::Kind::kGreater: return ValueType::kInt;
  }
  return ValueType::kBool;
}

bool EvaluateOnValue(const Proposition& p, const Value& v) {
  switch (p.kind()) {
    case Proposition::Kind::kBoolAttr: return v.bool_value();
    case Proposition::Kind::kEquals: return v == p.value();
    case Proposition::Kind::kLess: return v.int_value() < p.bound();
    case Proposition::Kind::kGreater: return v.int_value() > p.bound();
  }
  return false;
}

}  // namespace

std::vector<Value> CandidateValues(const std::vector<Proposition>& props,
                                   ValueType type) {
  std::vector<Value> candidates;
  switch (type) {
    case ValueType::kBool:
      candidates.push_back(Value::Bool(false));
      candidates.push_back(Value::Bool(true));
      break;
    case ValueType::kInt: {
      std::set<int64_t> points = {0};
      for (const Proposition& p : props) {
        if (p.kind() == Proposition::Kind::kEquals &&
            p.value().type() == ValueType::kInt) {
          points.insert(p.value().int_value());
          points.insert(p.value().int_value() + 1);
          points.insert(p.value().int_value() - 1);
        }
        if (p.kind() == Proposition::Kind::kLess ||
            p.kind() == Proposition::Kind::kGreater) {
          points.insert(p.bound());
          points.insert(p.bound() + 1);
          points.insert(p.bound() - 1);
        }
      }
      for (int64_t v : points) candidates.push_back(Value::Int(v));
      break;
    }
    case ValueType::kString: {
      std::set<std::string> strings;
      for (const Proposition& p : props) {
        if (p.kind() == Proposition::Kind::kEquals &&
            p.value().type() == ValueType::kString) {
          strings.insert(p.value().string_value());
        }
      }
      strings.insert("⊥other");  // a value matching no Equals proposition
      for (const std::string& s : strings) candidates.push_back(Value::Str(s));
      break;
    }
  }
  return candidates;
}

bool Interferes(const Proposition& a, const Proposition& b) {
  if (a.attribute() != b.attribute()) return false;
  ValueType ta = RequiredType(a);
  ValueType tb = RequiredType(b);
  // Mixed-type propositions on one attribute are a schema error surfaced
  // elsewhere; treat them as interfering so bindings reject them.
  if (ta != tb) return true;

  // All four truth combinations must be achievable by some value.
  std::vector<Proposition> both = {a, b};
  std::vector<Value> candidates = CandidateValues(both, ta);
  bool seen[2][2] = {{false, false}, {false, false}};
  for (const Value& v : candidates) {
    seen[EvaluateOnValue(a, v) ? 1 : 0][EvaluateOnValue(b, v) ? 1 : 0] = true;
  }
  return !(seen[0][0] && seen[0][1] && seen[1][0] && seen[1][1]);
}

std::vector<std::pair<size_t, size_t>> FindInterference(
    const std::vector<Proposition>& props) {
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < props.size(); ++i) {
    for (size_t j = i + 1; j < props.size(); ++j) {
      if (Interferes(props[i], props[j])) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

}  // namespace qhorn
