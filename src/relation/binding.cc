#include "src/relation/binding.h"

#include "src/util/check.h"

namespace qhorn {

BooleanBinding::BooleanBinding(Schema embedded_schema,
                               std::vector<Proposition> props)
    : schema_(std::move(embedded_schema)), props_(std::move(props)) {
  QHORN_CHECK_MSG(!props_.empty() &&
                      props_.size() <= static_cast<size_t>(kMaxVars),
                  "need 1.." << kMaxVars << " propositions");
  for (const Proposition& p : props_) {
    schema_.RequireIndex(p.attribute());  // aborts if missing
  }
  auto interference = FindInterference(props_);
  QHORN_CHECK_MSG(interference.empty(),
                  "propositions interfere: p"
                      << interference[0].first + 1 << " ('"
                      << props_[interference[0].first].label() << "') and p"
                      << interference[0].second + 1 << " ('"
                      << props_[interference[0].second].label() << "')");
}

Tuple BooleanBinding::ToBoolean(const DataTuple& tuple) const {
  Tuple t = 0;
  for (size_t i = 0; i < props_.size(); ++i) {
    if (props_[i].EvaluateOn(schema_, tuple)) t |= VarBit(static_cast<int>(i));
  }
  return t;
}

TupleSet BooleanBinding::ObjectToBoolean(const NestedObject& object) const {
  std::vector<Tuple> tuples;
  tuples.reserve(object.tuples.size());
  for (const DataTuple& row : object.tuples.rows()) {
    tuples.push_back(ToBoolean(row));
  }
  return TupleSet(std::move(tuples));
}

}  // namespace qhorn
