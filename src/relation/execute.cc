#include "src/relation/execute.h"

#include "src/core/compiled_query.h"
#include "src/util/check.h"

namespace qhorn {

std::vector<size_t> ExecuteQuery(const Query& query,
                                 const BooleanBinding& binding,
                                 const NestedRelation& relation,
                                 const EvalOptions& opts) {
  QHORN_CHECK_MSG(query.n() == binding.n(),
                  "query arity does not match the proposition count");
  // One compilation amortized over the whole relation scan.
  CompiledQuery compiled(query, opts);
  std::vector<size_t> answers;
  for (size_t i = 0; i < relation.objects().size(); ++i) {
    TupleSet image = binding.ObjectToBoolean(relation.objects()[i]);
    if (compiled.Evaluate(image)) answers.push_back(i);
  }
  return answers;
}

std::vector<const NestedObject*> SelectAnswers(const Query& query,
                                               const BooleanBinding& binding,
                                               const NestedRelation& relation,
                                               const EvalOptions& opts) {
  std::vector<const NestedObject*> out;
  for (size_t i : ExecuteQuery(query, binding, relation, opts)) {
    out.push_back(&relation.objects()[i]);
  }
  return out;
}

}  // namespace qhorn
