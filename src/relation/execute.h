// Running a (learned) qhorn query over actual data — the end of the
// pipeline: once the query is learned or verified, the interface evaluates
// it against the nested relation and returns the answer objects.

#ifndef QHORN_RELATION_EXECUTE_H_
#define QHORN_RELATION_EXECUTE_H_

#include <vector>

#include "src/core/query.h"
#include "src/relation/binding.h"

namespace qhorn {

/// Indices of the objects of `relation` that `query` classifies as
/// answers, via the binding's Boolean transformation.
std::vector<size_t> ExecuteQuery(const Query& query,
                                 const BooleanBinding& binding,
                                 const NestedRelation& relation,
                                 const EvalOptions& opts = EvalOptions());

/// Convenience: the answer objects themselves (pointers into `relation`,
/// valid while it lives).
std::vector<const NestedObject*> SelectAnswers(
    const Query& query, const BooleanBinding& binding,
    const NestedRelation& relation, const EvalOptions& opts = EvalOptions());

}  // namespace qhorn

#endif  // QHORN_RELATION_EXECUTE_H_
