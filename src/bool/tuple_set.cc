#include "src/bool/tuple_set.h"

#include <algorithm>

#include "src/util/check.h"

namespace qhorn {

TupleSet::TupleSet(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {
  Canonicalize();
}

TupleSet::TupleSet(std::initializer_list<Tuple> tuples) : tuples_(tuples) {
  Canonicalize();
}

TupleSet TupleSet::Parse(const std::vector<std::string>& literals) {
  std::vector<Tuple> tuples;
  tuples.reserve(literals.size());
  for (const std::string& lit : literals) tuples.push_back(ParseTuple(lit));
  return TupleSet(std::move(tuples));
}

void TupleSet::Canonicalize() {
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

void TupleSet::Add(Tuple t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || *it != t) tuples_.insert(it, t);
}

void TupleSet::Remove(Tuple t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) tuples_.erase(it);
}

bool TupleSet::Contains(Tuple t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

TupleSet TupleSet::Union(const TupleSet& other) const {
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  TupleSet result;
  result.tuples_ = std::move(merged);
  return result;
}

bool TupleSet::SatisfiesConjunction(VarSet vars) const {
  for (Tuple t : tuples_) {
    if (IsSubset(vars, t)) return true;
  }
  return false;
}

size_t TupleSet::Hash() const {
  // FNV-1a over the canonical tuple list.
  uint64_t h = 1469598103934665603ULL;
  for (Tuple t : tuples_) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (t >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<size_t>(h);
}

std::string TupleSet::ToString(int n) const {
  std::string out = "{";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatTuple(tuples_[i], n);
  }
  out += "}";
  return out;
}

}  // namespace qhorn
