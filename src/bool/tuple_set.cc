#include "src/bool/tuple_set.h"

#include <algorithm>
#include <bit>

#include "src/util/check.h"

namespace qhorn {

TupleSet::TupleSet(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {
  Canonicalize();
}

TupleSet::TupleSet(std::initializer_list<Tuple> tuples) : tuples_(tuples) {
  Canonicalize();
}

TupleSet TupleSet::Parse(const std::vector<std::string>& literals) {
  std::vector<Tuple> tuples;
  tuples.reserve(literals.size());
  for (const std::string& lit : literals) tuples.push_back(ParseTuple(lit));
  return TupleSet(std::move(tuples));
}

void TupleSet::Canonicalize() {
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
  hash_valid_ = false;
}

void TupleSet::Rehash() const {
  // FNV-1a over the canonical tuple list.
  uint64_t h = kEmptyHash;
  for (Tuple t : tuples_) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (t >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  hash_ = static_cast<size_t>(h);
  hash_valid_ = true;
}

void TupleSet::AssignPair(Tuple a, Tuple b) {
  tuples_.clear();
  if (a == b) {
    tuples_.push_back(a);
  } else {
    tuples_.push_back(std::min(a, b));
    tuples_.push_back(std::max(a, b));
  }
  hash_valid_ = false;
}

void TupleSet::Add(Tuple t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || *it != t) {
    tuples_.insert(it, t);
    hash_valid_ = false;
  }
}

void TupleSet::Remove(Tuple t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) {
    tuples_.erase(it);
    hash_valid_ = false;
  }
}

bool TupleSet::Contains(Tuple t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

TupleSet TupleSet::Union(const TupleSet& other) const {
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  TupleSet result;
  result.tuples_ = std::move(merged);
  result.hash_valid_ = false;
  return result;
}

bool TupleSet::SatisfiesConjunction(VarSet vars) const {
  for (Tuple t : tuples_) {
    if (IsSubset(vars, t)) return true;
  }
  return false;
}

bool TupleSet::SatisfiesConjunctionAll(
    std::span<const VarSet> conjunctions) const {
  size_t count = conjunctions.size();
  if (count == 0) return true;
  // Still-unsatisfied bitset, one word per 64 masks; the scan stops as soon
  // as every mask has found a witness tuple.
  size_t words = (count + 63) / 64;
  constexpr size_t kStackWords = 8;  // 512 conjunctions
  uint64_t stack[kStackWords];
  std::vector<uint64_t> heap;
  uint64_t* unsat = stack;
  if (words > kStackWords) {
    heap.assign(words, ~uint64_t{0});
    unsat = heap.data();
  } else {
    std::fill(stack, stack + words, ~uint64_t{0});
  }
  if (count % 64 != 0) unsat[words - 1] = (uint64_t{1} << (count % 64)) - 1;
  size_t remaining = count;
  for (Tuple t : tuples_) {
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = unsat[w];
      while (bits != 0) {
        uint64_t low = bits & (~bits + 1);
        size_t idx = w * 64 + static_cast<size_t>(std::countr_zero(bits));
        if (IsSubset(conjunctions[idx], t)) {
          unsat[w] &= ~low;
          --remaining;
        }
        bits &= bits - 1;
      }
    }
    if (remaining == 0) return true;
  }
  return remaining == 0;
}

std::string TupleSet::ToString(int n) const {
  std::string out = "{";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatTuple(tuples_[i], n);
  }
  out += "}";
  return out;
}

}  // namespace qhorn
