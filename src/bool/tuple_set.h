// Objects of the nested data model, in the Boolean domain.
//
// A membership question (§2.1.2) is an object: a *set* of Boolean tuples.
// TupleSet keeps its tuples sorted and deduplicated so that equal objects
// compare equal and hash equally — the caching oracle and the adversarial
// oracles rely on this canonical form. The hash of the canonical tuple
// list is computed lazily on first use and cached, so Hash() is amortized
// O(1) where it matters — the caching oracle probes its map once per
// question and must not pay a full rehash each time — while the learners'
// probe loops, which build thousands of questions that are never hashed,
// pay nothing.

#ifndef QHORN_BOOL_TUPLE_SET_H_
#define QHORN_BOOL_TUPLE_SET_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/bool/tuple.h"

namespace qhorn {

/// A set of Boolean tuples (an object of the nested relation).
class TupleSet {
 public:
  TupleSet() = default;

  /// From raw masks; duplicates are removed.
  explicit TupleSet(std::vector<Tuple> tuples);
  TupleSet(std::initializer_list<Tuple> tuples);

  /// From paper-style strings: TupleSet::Parse({"111", "011"}).
  static TupleSet Parse(const std::vector<std::string>& literals);

  /// Inserts a tuple (no-op if already present).
  void Add(Tuple t);

  /// Replaces the contents with the two-tuple object {a, b} in place,
  /// reusing the existing allocation. The learners' probe questions are
  /// almost all two-tuple objects built in tight loops; this keeps their
  /// construction allocation-free after warm-up.
  void AssignPair(Tuple a, Tuple b);

  /// Removes a tuple if present.
  void Remove(Tuple t);

  bool Contains(Tuple t) const;

  bool empty() const { return tuples_.empty(); }
  size_t size() const { return tuples_.size(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  /// Set union.
  TupleSet Union(const TupleSet& other) const;

  /// True iff some tuple makes every variable of `vars` true — i.e. the
  /// object satisfies the existential conjunction ∃(vars).
  bool SatisfiesConjunction(VarSet vars) const;

  /// True iff *every* mask of `conjunctions` is satisfied by some tuple.
  /// Single pass over the tuples with a still-unsatisfied bitset, instead
  /// of one full scan per mask.
  bool SatisfiesConjunctionAll(std::span<const VarSet> conjunctions) const;

  friend bool operator==(const TupleSet& a, const TupleSet& b) {
    return a.tuples_ == b.tuples_;
  }

  /// Stable hash of the canonical tuple list (computed lazily, then
  /// cached until the next mutation). NOTE: the lazy fill mutates shared
  /// state from a const method; concurrent first-Hash() calls on one
  /// object are a data race. A parallel oracle backend must pre-hash its
  /// questions (call Hash() once before sharing) or synchronize.
  size_t Hash() const {
    if (!hash_valid_) Rehash();
    return hash_;
  }

  /// "{111, 011}" with n-variable-wide tuples.
  std::string ToString(int n) const;

 private:
  void Canonicalize();
  void Rehash() const;

  std::vector<Tuple> tuples_;  // sorted ascending, unique
  mutable size_t hash_ = kEmptyHash;
  mutable bool hash_valid_ = true;  // empty list hashes to kEmptyHash

  // FNV-1a offset basis: the hash of the empty tuple list.
  static constexpr size_t kEmptyHash =
      static_cast<size_t>(1469598103934665603ULL);
};

/// Hash functor for unordered containers keyed by objects.
struct TupleSetHash {
  size_t operator()(const TupleSet& s) const { return s.Hash(); }
};

}  // namespace qhorn

#endif  // QHORN_BOOL_TUPLE_SET_H_
