// The Boolean lattice on n variables (paper §3.2, Fig. 4).
//
// Each lattice point is a tuple; level l holds the tuples with exactly l
// false variables. A tuple's children set exactly one true variable to
// false; its parents set one false variable to true. The role-preserving
// learners restrict moves to a sub-universe (e.g. the non-head variables in
// Fig. 5) and filter out tuples that violate universal Horn expressions —
// both are supported here via the `universe` mask and a caller-supplied
// predicate.
//
// The walkers come in two forms. The ForEach* callback walkers are the hot
// path: they visit each neighbour in place, allocate nothing, and take a
// two-word FunctionRef instead of a std::function, so the learners'
// per-node lattice moves cost only the bit arithmetic. The vector-returning
// forms are kept as convenience wrappers for tests and cold callers.

#ifndef QHORN_BOOL_LATTICE_H_
#define QHORN_BOOL_LATTICE_H_

#include <vector>

#include "src/bool/tuple.h"
#include "src/util/function_ref.h"

namespace qhorn {

/// Visits the children of `t` within `universe`: for each variable of
/// `universe` that is true in `t`, the tuple with that variable flipped to
/// false, in ascending variable order. Bits of `t` outside `universe` are
/// preserved (they encode pinned variables such as the neutralized head
/// variables of Fig. 5). Allocation-free.
inline void ForEachLatticeChild(Tuple t, VarSet universe,
                                FunctionRef<void(Tuple)> visit) {
  VarSet true_vars = t & universe;
  while (true_vars != 0) {
    VarSet low = true_vars & (~true_vars + 1);  // lowest set bit
    visit(t & ~low);
    true_vars &= true_vars - 1;
  }
}

/// Visits the parents of `t` within `universe` (one false variable flipped
/// to true), in ascending variable order. Allocation-free.
inline void ForEachLatticeParent(Tuple t, VarSet universe,
                                 FunctionRef<void(Tuple)> visit) {
  VarSet false_vars = ~t & universe;
  while (false_vars != 0) {
    VarSet low = false_vars & (~false_vars + 1);
    visit(t | low);
    false_vars &= false_vars - 1;
  }
}

/// Children of `t` within `universe`, as a fresh vector.
std::vector<Tuple> LatticeChildren(Tuple t, VarSet universe);

/// Parents of `t` within `universe` (one false variable flipped to true).
std::vector<Tuple> LatticeParents(Tuple t, VarSet universe);

/// Appends the children of `t` that satisfy `keep` to `*out` (used to drop
/// tuples that violate universal Horn expressions, §3.2.2). The caller owns
/// the buffer, so a learner can reuse one vector across its whole walk.
void AppendLatticeChildrenFiltered(Tuple t, VarSet universe,
                                   FunctionRef<bool(Tuple)> keep,
                                   std::vector<Tuple>* out);

/// Children that additionally satisfy `keep`, as a fresh vector.
std::vector<Tuple> LatticeChildrenFiltered(Tuple t, VarSet universe,
                                           FunctionRef<bool(Tuple)> keep);

/// Visits all tuples at level `level` of the lattice over `universe`
/// (level 0 is the top: all universe variables true). Bits outside the
/// universe are taken from `fixed`. Order is deterministic (combinations in
/// ascending variable order). Allocation-free: combinations are enumerated
/// by colex succession on a compact index mask and expanded through the
/// universe on the fly.
void ForEachLatticeLevel(VarSet universe, int level, Tuple fixed,
                         FunctionRef<void(Tuple)> visit);

/// All tuples at level `level`, as a fresh vector.
std::vector<Tuple> LatticeLevel(VarSet universe, int level, Tuple fixed = 0);

/// True iff `a` lies in the upset of `b`: every variable true in `b` is true
/// in `a` (a ⊇ b as true-sets). A tuple is in its own upset.
inline bool InUpset(Tuple a, Tuple b) { return IsSubset(b, a); }

/// True iff `a` lies in the downset of `b` (a ⊆ b as true-sets).
inline bool InDownset(Tuple a, Tuple b) { return IsSubset(a, b); }

/// The lattice distance between two tuples: size of the symmetric
/// difference of their true-sets (the number of single-variable flips on a
/// shortest path). Used by the §6 revision extension.
inline int LatticeDistance(Tuple a, Tuple b) { return Popcount(a ^ b); }

}  // namespace qhorn

#endif  // QHORN_BOOL_LATTICE_H_
