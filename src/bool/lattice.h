// The Boolean lattice on n variables (paper §3.2, Fig. 4).
//
// Each lattice point is a tuple; level l holds the tuples with exactly l
// false variables. A tuple's children set exactly one true variable to
// false; its parents set one false variable to true. The role-preserving
// learners restrict moves to a sub-universe (e.g. the non-head variables in
// Fig. 5) and filter out tuples that violate universal Horn expressions —
// both are supported here via the `universe` mask and a caller-supplied
// predicate.

#ifndef QHORN_BOOL_LATTICE_H_
#define QHORN_BOOL_LATTICE_H_

#include <functional>
#include <vector>

#include "src/bool/tuple.h"

namespace qhorn {

/// Children of `t` within `universe`: for each variable of `universe` that
/// is true in `t`, the tuple with that variable flipped to false. Bits of
/// `t` outside `universe` are preserved (they encode pinned variables such
/// as the neutralized head variables of Fig. 5).
std::vector<Tuple> LatticeChildren(Tuple t, VarSet universe);

/// Parents of `t` within `universe` (one false variable flipped to true).
std::vector<Tuple> LatticeParents(Tuple t, VarSet universe);

/// Children that additionally satisfy `keep` (used to drop tuples that
/// violate universal Horn expressions, §3.2.2).
std::vector<Tuple> LatticeChildrenFiltered(
    Tuple t, VarSet universe, const std::function<bool(Tuple)>& keep);

/// All tuples at level `level` of the lattice over `universe` (level 0 is
/// the top: all universe variables true). Bits outside the universe are
/// taken from `fixed`. Order is deterministic (combinations in ascending
/// variable order).
std::vector<Tuple> LatticeLevel(VarSet universe, int level, Tuple fixed = 0);

/// True iff `a` lies in the upset of `b`: every variable true in `b` is true
/// in `a` (a ⊇ b as true-sets). A tuple is in its own upset.
inline bool InUpset(Tuple a, Tuple b) { return IsSubset(b, a); }

/// True iff `a` lies in the downset of `b` (a ⊆ b as true-sets).
inline bool InDownset(Tuple a, Tuple b) { return IsSubset(a, b); }

/// The lattice distance between two tuples: size of the symmetric
/// difference of their true-sets (the number of single-variable flips on a
/// shortest path). Used by the §6 revision extension.
inline int LatticeDistance(Tuple a, Tuple b) { return Popcount(a ^ b); }

}  // namespace qhorn

#endif  // QHORN_BOOL_LATTICE_H_
