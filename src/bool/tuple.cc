#include "src/bool/tuple.h"

#include "src/util/check.h"

namespace qhorn {

std::vector<int> VarsOf(VarSet mask) {
  std::vector<int> vars;
  vars.reserve(static_cast<size_t>(Popcount(mask)));
  while (mask != 0) {
    int v = std::countr_zero(mask);
    vars.push_back(v);
    mask &= mask - 1;
  }
  return vars;
}

VarSet MaskOf(const std::vector<int>& vars) {
  VarSet mask = 0;
  for (int v : vars) {
    QHORN_CHECK_MSG(v >= 0 && v < kMaxVars, "variable index " << v);
    mask |= VarBit(v);
  }
  return mask;
}

std::string FormatTuple(Tuple t, int n) {
  QHORN_CHECK(n >= 0 && n <= kMaxVars);
  std::string out(static_cast<size_t>(n), '0');
  for (int i = 0; i < n; ++i) {
    if (HasVar(t, i)) out[static_cast<size_t>(i)] = '1';
  }
  return out;
}

Tuple ParseTuple(const std::string& text) {
  QHORN_CHECK_MSG(!text.empty() && text.size() <= kMaxVars,
                  "tuple literal '" << text << "'");
  Tuple t = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    QHORN_CHECK_MSG(c == '0' || c == '1',
                    "tuple literal '" << text << "' has bad char");
    if (c == '1') t |= VarBit(static_cast<int>(i));
  }
  return t;
}

std::string FormatVarSet(VarSet mask) {
  if (mask == 0) return "{}";
  std::string out;
  for (int v : VarsOf(mask)) {
    out += "x";
    out += std::to_string(v + 1);
  }
  return out;
}

}  // namespace qhorn
