#include "src/bool/lattice.h"

#include "src/util/check.h"

namespace qhorn {

std::vector<Tuple> LatticeChildren(Tuple t, VarSet universe) {
  std::vector<Tuple> children;
  VarSet true_vars = t & universe;
  children.reserve(static_cast<size_t>(Popcount(true_vars)));
  while (true_vars != 0) {
    VarSet low = true_vars & (~true_vars + 1);  // lowest set bit
    children.push_back(t & ~low);
    true_vars &= true_vars - 1;
  }
  return children;
}

std::vector<Tuple> LatticeParents(Tuple t, VarSet universe) {
  std::vector<Tuple> parents;
  VarSet false_vars = ~t & universe;
  parents.reserve(static_cast<size_t>(Popcount(false_vars)));
  while (false_vars != 0) {
    VarSet low = false_vars & (~false_vars + 1);
    parents.push_back(t | low);
    false_vars &= false_vars - 1;
  }
  return parents;
}

std::vector<Tuple> LatticeChildrenFiltered(
    Tuple t, VarSet universe, const std::function<bool(Tuple)>& keep) {
  std::vector<Tuple> children = LatticeChildren(t, universe);
  std::vector<Tuple> kept;
  kept.reserve(children.size());
  for (Tuple c : children) {
    if (keep(c)) kept.push_back(c);
  }
  return kept;
}

namespace {

// Emits every way of clearing `remaining` of the variables in `candidates`
// from `base`, in ascending-variable order.
void EnumerateClears(Tuple base, const std::vector<int>& candidates,
                     size_t next, int remaining, std::vector<Tuple>* out) {
  if (remaining == 0) {
    out->push_back(base);
    return;
  }
  if (candidates.size() - next < static_cast<size_t>(remaining)) return;
  for (size_t i = next; i < candidates.size(); ++i) {
    EnumerateClears(base & ~VarBit(candidates[i]), candidates, i + 1,
                    remaining - 1, out);
  }
}

}  // namespace

std::vector<Tuple> LatticeLevel(VarSet universe, int level, Tuple fixed) {
  int width = Popcount(universe);
  QHORN_CHECK_MSG(level >= 0 && level <= width,
                  "level " << level << " outside lattice of width " << width);
  Tuple top = (fixed & ~universe) | universe;
  std::vector<int> vars = VarsOf(universe);
  std::vector<Tuple> out;
  EnumerateClears(top, vars, 0, level, &out);
  return out;
}

}  // namespace qhorn
