#include "src/bool/lattice.h"

#include "src/util/check.h"

namespace qhorn {

std::vector<Tuple> LatticeChildren(Tuple t, VarSet universe) {
  std::vector<Tuple> children;
  children.reserve(static_cast<size_t>(Popcount(t & universe)));
  ForEachLatticeChild(t, universe,
                      [&children](Tuple c) { children.push_back(c); });
  return children;
}

std::vector<Tuple> LatticeParents(Tuple t, VarSet universe) {
  std::vector<Tuple> parents;
  parents.reserve(static_cast<size_t>(Popcount(~t & universe)));
  ForEachLatticeParent(t, universe,
                       [&parents](Tuple p) { parents.push_back(p); });
  return parents;
}

void AppendLatticeChildrenFiltered(Tuple t, VarSet universe,
                                   FunctionRef<bool(Tuple)> keep,
                                   std::vector<Tuple>* out) {
  ForEachLatticeChild(t, universe, [&keep, out](Tuple c) {
    if (keep(c)) out->push_back(c);
  });
}

std::vector<Tuple> LatticeChildrenFiltered(Tuple t, VarSet universe,
                                           FunctionRef<bool(Tuple)> keep) {
  std::vector<Tuple> kept;
  kept.reserve(static_cast<size_t>(Popcount(t & universe)));
  AppendLatticeChildrenFiltered(t, universe, keep, &kept);
  return kept;
}

void ForEachLatticeLevel(VarSet universe, int level, Tuple fixed,
                         FunctionRef<void(Tuple)> visit) {
  int width = Popcount(universe);
  QHORN_CHECK_MSG(level >= 0 && level <= width,
                  "level " << level << " outside lattice of width " << width);
  Tuple top = (fixed & ~universe) | universe;

  // Per-position variable bits of the universe, ascending (stack buffer —
  // this walker allocates nothing).
  VarSet var_bit[kMaxVars];
  int count = 0;
  VarSet rest = universe;
  while (rest != 0) {
    VarSet low = rest & (~rest + 1);
    var_bit[count++] = low;
    rest &= rest - 1;
  }

  if (level == 0) {
    visit(top);
    return;
  }

  // Index combinations {c[0] < … < c[level-1]} in lexicographic order —
  // the same order as clearing candidates in ascending-variable depth-first
  // recursion.
  int c[kMaxVars];
  for (int i = 0; i < level; ++i) c[i] = i;
  for (;;) {
    Tuple t = top;
    for (int i = 0; i < level; ++i) t &= ~var_bit[c[i]];
    visit(t);
    // Lexicographic successor: bump the rightmost index that has room.
    int i = level - 1;
    while (i >= 0 && c[i] == width - level + i) --i;
    if (i < 0) break;
    ++c[i];
    for (int j = i + 1; j < level; ++j) c[j] = c[j - 1] + 1;
  }
}

std::vector<Tuple> LatticeLevel(VarSet universe, int level, Tuple fixed) {
  std::vector<Tuple> out;
  ForEachLatticeLevel(universe, level, fixed,
                      [&out](Tuple t) { out.push_back(t); });
  return out;
}

}  // namespace qhorn
