// Boolean tuples and variable sets.
//
// The paper works over n Boolean variables x1..xn (one per user proposition,
// Fig. 1). We cap n at 64 and represent both a Boolean tuple (a truth
// assignment) and a set of variables as a 64-bit mask: bit i corresponds to
// the paper's variable x_{i+1}. A tuple's mask has bit i set iff x_{i+1} is
// true in that tuple; a variable set's mask has bit i set iff x_{i+1} is a
// member.
//
// Display follows the paper: tuple "1011" on four variables means x1=1,
// x2=0, x3=1, x4=1 (leftmost character is x1); variable sets print as
// "x1x3x4".

#ifndef QHORN_BOOL_TUPLE_H_
#define QHORN_BOOL_TUPLE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace qhorn {

/// A truth assignment to n Boolean variables, packed into bits 0..n-1.
using Tuple = uint64_t;

/// A set of variables, packed the same way as Tuple.
using VarSet = uint64_t;

/// Maximum supported number of variables.
inline constexpr int kMaxVars = 64;

/// Mask with only variable `v` (0-based) set.
constexpr VarSet VarBit(int v) { return uint64_t{1} << v; }

/// Mask with all of x1..xn set — the paper's all-true tuple 1^n.
constexpr Tuple AllTrue(int n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/// Number of true variables / set members.
inline int Popcount(uint64_t mask) { return std::popcount(mask); }

/// True iff `sub` ⊆ `super` as variable sets (or: every variable true in
/// `sub` is true in `super`, i.e. `super` lies in the upset of `sub` when
/// both are tuples over the same universe).
constexpr bool IsSubset(uint64_t sub, uint64_t super) {
  return (sub & ~super) == 0;
}

/// True iff the sets are ⊆-incomparable (neither contains the other).
constexpr bool Incomparable(uint64_t a, uint64_t b) {
  return !IsSubset(a, b) && !IsSubset(b, a);
}

/// True iff variable `v` is a member / true.
constexpr bool HasVar(uint64_t mask, int v) { return (mask >> v) & 1; }

/// 0-based indices of the members of `mask`, ascending.
std::vector<int> VarsOf(VarSet mask);

/// Builds a mask from 0-based variable indices.
VarSet MaskOf(const std::vector<int>& vars);

/// Paper-style tuple string, e.g. "1011" (leftmost char is x1).
std::string FormatTuple(Tuple t, int n);

/// Parses a paper-style tuple string; characters must be '0'/'1' and the
/// length gives n. Aborts on malformed input.
Tuple ParseTuple(const std::string& text);

/// Paper-style variable set, e.g. "x1x3x4"; "{}" for the empty set.
std::string FormatVarSet(VarSet mask);

/// Lattice level of tuple `t` on n variables: the number of FALSE variables
/// (the paper's Fig. 4 counts levels from the all-true top tuple at level 0).
inline int Level(Tuple t, int n) { return n - Popcount(t & AllTrue(n)); }

}  // namespace qhorn

#endif  // QHORN_BOOL_TUPLE_H_
