// DurableRouter — a write-ahead-logged wrapper over SessionRouter whose
// sessions survive process death.
//
// Protocol calls are logged *before* they are acknowledged:
//
//   OpenPending(spec)        → SessionOpened{id, spec} appended, then the
//                              session opens and its job plan submits;
//   ProvideAnswers(id, r, a) → RoundAnswered{id, r, a} appended from
//                              inside the router's commit hook — after
//                              every validation has passed, before any
//                              state mutates, atomically with the fold
//                              under the router lock. A refused append
//                              surfaces as kLogWriteFailed with the
//                              session untouched;
//   Close(id)                → SessionClosed{id} appended, then the
//                              session closes.
//
// Sessions are deterministic functions of (spec, answer sequence)
// (router.h's determinism contract), so the log needs no checkpoints:
// Recover() re-opens every logged session, resubmits its job plan, and
// feeds the logged answers back through the ordinary pending protocol.
// After recovery the service is *observably identical* to one that never
// crashed — same pending rounds, same round ids, same transcripts — which
// the crash harness (crash_harness.h) enforces differentially against a
// synchronous reference arm.
//
// Session ids: the wrapper assigns its own ("external") ids and keeps
// honoring them across recovery, remapping internally to whatever ids the
// fresh post-crash router hands out. Users outlive server crashes; their
// session handles must too.
//
// The log is sharded (shard = id mod shards) so concurrent sessions do
// not serialize on one append mutex; a session's records stay in one
// shard, totally ordered by round id, so recovery never needs an order
// across shards.

#ifndef QHORN_DURABLE_DURABLE_ROUTER_H_
#define QHORN_DURABLE_DURABLE_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/durable/fs.h"
#include "src/durable/session_log.h"
#include "src/session/sharded_router.h"
#include "src/util/checked_mutex.h"
#include "src/workload/workload.h"

namespace qhorn {

struct DurableRouterOptions {
  SessionRouter::Options router;
  SessionLogOptions log;  ///< kEveryAppend = full log-before-ack durability
  /// WAL shards *and* router shards: the in-memory service is a
  /// ShardedRouter with the same count, each session pinned to the router
  /// shard matching its WAL shard (id mod shards), so a commit hook on
  /// one WAL only ever holds that one router shard's mutex.
  int shards = 4;
};

/// What Recover found and did — the loud part of crash recovery. Tests
/// assert on these counters (a truncated torn tail must be *reported*
/// truncated, not silently absorbed).
struct RecoveryReport {
  int64_t records_read = 0;
  int64_t sessions_recovered = 0;  ///< opened sessions re-created
  int64_t sessions_closed = 0;     ///< … of which the log says were closed
  int64_t rounds_replayed = 0;
  int64_t duplicate_records_skipped = 0;  ///< retry-after-sync-failure echoes
  int64_t torn_tails_truncated = 0;       ///< shards chopped at valid_bytes
  int64_t torn_bytes_dropped = 0;
};

class DurableRouter {
 public:
  using SessionId = SessionRouter::SessionId;

  /// Starts a fresh service over an empty (or absent) log directory.
  /// nullptr + `*error` if the directory or a shard cannot be created.
  static std::unique_ptr<DurableRouter> Create(
      Fs* fs, const std::string& log_dir, const DurableRouterOptions& options,
      std::string* error);

  /// Rebuilds the service from `log_dir` after a crash: scans every
  /// shard, truncates torn tails (loudly, via `report`), rejects corrupt
  /// or undecodable records with a typed error, re-opens every logged
  /// session and replays its answered rounds through the ordinary pending
  /// protocol. nullptr + `*error` on any typed failure — a log Recover
  /// cannot vouch for is never half-replayed.
  static std::unique_ptr<DurableRouter> Recover(
      Fs* fs, const std::string& log_dir, const DurableRouterOptions& options,
      RecoveryReport* report, std::string* error);

  ~DurableRouter();

  DurableRouter(const DurableRouter&) = delete;
  DurableRouter& operator=(const DurableRouter&) = delete;

  /// Logs SessionOpened, then opens the session and submits the spec's
  /// job plan. 0 (never a valid id) if the log refused the record — the
  /// call is retryable and id assignment is unaffected.
  SessionId OpenPending(const SessionSpec& spec);

  /// SessionRouter::ProvideAnswers semantics plus kLogWriteFailed when
  /// the round's log record could not be committed; the session — pending
  /// round included — is untouched and the identical call may be retried
  /// (after recovery if the log is poisoned; a duplicate record from a
  /// sync-failure retry is skipped idempotently by Recover).
  ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                BitSpan answers);

  /// Logs SessionClosed, then closes. False if the id is unknown, the
  /// session is already closed, or the close record could not be
  /// committed (retryable; recovery skips a duplicate close).
  bool Close(SessionId id);

  /// Pending rounds carrying external ids, ordered by them.
  std::vector<PendingRound> PendingRounds();

  void Drain();
  std::optional<SessionStatus> status(SessionId id);
  QuerySession& session(SessionId id);
  ServiceStats stats();

  /// Records appended across all shards (tests assert log growth).
  int64_t records_logged() const;

  ShardedRouter& router() { return *router_; }

  static std::string ShardPath(const std::string& log_dir, int shard);

 private:
  DurableRouter(Fs* fs, std::string log_dir, DurableRouterOptions options);

  bool OpenLogs(std::string* error);
  SessionLog* ShardFor(SessionId external_id);

  Fs* fs_;
  std::string log_dir_;
  DurableRouterOptions options_;
  std::unique_ptr<ShardedRouter> router_;
  std::vector<std::unique_ptr<SessionLog>> shards_;

  // Guards the id maps and next_external_. Always released before calling
  // into router_ — but its rank (kDurableRouter) sits below kRouterShard,
  // so even holding it across such a call would respect the lock order.
  mutable Mutex mutex_{"durable-router", LockRank::kDurableRouter};
  std::unordered_map<SessionId, SessionId> to_internal_
      QHORN_GUARDED_BY(mutex_);
  std::unordered_map<SessionId, SessionId> to_external_
      QHORN_GUARDED_BY(mutex_);
  SessionId next_external_ QHORN_GUARDED_BY(mutex_) = 1;
};

}  // namespace qhorn

#endif  // QHORN_DURABLE_DURABLE_ROUTER_H_
