#include "src/durable/crash_harness.h"

#include <utility>

#include "src/util/check.h"
#include "src/workload/fingerprint.h"

namespace qhorn {

// ---------------------------------------------------------------------------
// DurableEndpoint

DurableEndpoint::DurableEndpoint(Fs* fs, std::string log_dir,
                                 DurableRouterOptions options)
    : fs_(fs), log_dir_(std::move(log_dir)), options_(options) {
  router_ = DurableRouter::Create(fs_, log_dir_, options_, &error_);
}

ServiceEndpoint::SessionId DurableEndpoint::OpenPending(
    const SessionSpec& spec) {
  return router_->OpenPending(spec);
}

ProvideOutcome DurableEndpoint::ProvideAnswers(SessionId id, int64_t round_id,
                                               BitSpan answers) {
  return router_->ProvideAnswers(id, round_id, answers);
}

bool DurableEndpoint::Close(SessionId id) { return router_->Close(id); }

std::vector<PendingRound> DurableEndpoint::PendingRounds() {
  return router_->PendingRounds();
}

void DurableEndpoint::Drain() { router_->Drain(); }

std::optional<SessionStatus> DurableEndpoint::status(SessionId id) {
  return router_->status(id);
}

QuerySession& DurableEndpoint::session(SessionId id) {
  return router_->session(id);
}

ServiceStats DurableEndpoint::stats() { return router_->stats(); }

bool DurableEndpoint::CrashAndRecover(MemFs* mem, RecoveryReport* report) {
  // Order matters: the process dies first (dropping its handles and every
  // in-memory session), then the machine loses its page cache. Destroying
  // the router drains gracefully, which is fine — executor lanes never
  // touch the log, so the drain adds no records a real kill would lack.
  router_.reset();
  mem->CrashAll();
  RecoveryReport one;
  router_ = DurableRouter::Recover(fs_, log_dir_, options_, &one, &error_);
  report->records_read += one.records_read;
  report->sessions_recovered += one.sessions_recovered;
  report->sessions_closed += one.sessions_closed;
  report->rounds_replayed += one.rounds_replayed;
  report->duplicate_records_skipped += one.duplicate_records_skipped;
  report->torn_tails_truncated += one.torn_tails_truncated;
  report->torn_bytes_dropped += one.torn_bytes_dropped;
  return router_ != nullptr;
}

// ---------------------------------------------------------------------------
// SeededCrashController

SeededCrashController::SeededCrashController(uint64_t seed,
                                             DurableEndpoint* endpoint,
                                             MemFs* mem, FaultFs* faults)
    : endpoint_(endpoint),
      mem_(mem),
      faults_(faults),
      rng_(seed ^ 0xc4a54c4a54ffULL) {
  // First failure lands early (the fleet's opening sweeps carry the most
  // pending state), later ones spread out so the fleet still terminates.
  next_crash_sweep_ = rng_.Range(1, 4);
  crash_budget_ = static_cast<int>(rng_.Range(1, 3));
}

bool SeededCrashController::CrashRecover() {
  if (!endpoint_->CrashAndRecover(mem_, &report_)) {
    failure_ = "recovery failed: " + endpoint_->error();
    return false;
  }
  ++crashes_;
  // A crash discards any armed-but-unfired fault with the machine state
  // it was waiting for; resynchronize the counters so a stale arm is not
  // misread later.
  torn_seen_ = faults_->torn_appends_fired();
  sync_seen_ = faults_->sync_failures_fired();
  return true;
}

bool SeededCrashController::MaybeCrashAtSweep(int64_t sweep) {
  (void)sweep;
  if (crash_budget_ <= 0) return false;
  if (faults_->fault_armed()) return false;  // let the armed fault fire
  if (next_crash_sweep_ > 0) {
    --next_crash_sweep_;
    return false;
  }
  --crash_budget_;
  next_crash_sweep_ = rng_.Range(3, 8);
  switch (rng_.Range(0, 2)) {
    case 0:
      // Round-boundary kill: power loss between sweeps.
      return CrashRecover();
    case 1:
      // Mid-append kill: the k-th append from now tears and poisons the
      // log; the driver sees kLogWriteFailed and OnLogWriteFailed does
      // the crash-recovery.
      faults_->ArmTornAppend(static_cast<int>(rng_.Range(1, 6)));
      return false;
    default:
      // fsync failure: no crash, but the record cannot be acknowledged;
      // the driver's retry appends a duplicate Recover must later skip.
      faults_->ArmSyncFailure(static_cast<int>(rng_.Range(1, 6)));
      return false;
  }
}

bool SeededCrashController::OnLogWriteFailed() {
  if (!failure_.empty()) return false;
  int64_t sync_fired = faults_->sync_failures_fired();
  if (sync_fired > sync_seen_) {
    // The record is buffered whole; a plain retry re-appends it (and the
    // buffered copy becomes a duplicate once a later sync lands).
    sync_seen_ = sync_fired;
    ++soft_retries_;
    return true;
  }
  // Torn append — or an already-poisoned log refusing further appends.
  // Either way only a crash-recovery makes the service writable again.
  return CrashRecover();
}

// ---------------------------------------------------------------------------
// RunCrashDifferential

CrashOutcome RunCrashDifferential(const WorkloadSpec& spec, ResumeMode mode) {
  CrashOutcome outcome;
  Fleet fleet = GenerateFleet(spec);
  FleetDriver driver(fleet);

  MemFs mem;
  FaultFs faults(&mem, spec.seed ^ 0xfa017f5ULL);
  DurableRouterOptions dopts;
  dopts.router.threads = spec.lanes;
  dopts.router.session.learner.existential.speculative_batching =
      spec.speculative_batching;
  dopts.router.session.learner.universal.speculative_batching =
      spec.speculative_batching;
  // Every incarnation of the service — initial, crash-recovered, and the
  // final from-log-alone replay — runs the same resume protocol.
  dopts.router.resume_mode = mode != ResumeMode::kDefault
                                 ? mode
                                 : (spec.replay_resume ? ResumeMode::kReplay
                                                       : ResumeMode::kFiber);
  dopts.log.fsync_policy = FsyncPolicy::kEveryAppend;
  dopts.shards = 1 + static_cast<int>(spec.seed % 4);
  const std::string log_dir = "qlog";

  DurableEndpoint endpoint(&faults, log_dir, dopts);
  if (!endpoint.ok()) {
    outcome.failure =
        "durable endpoint failed to start: " + endpoint.error() + " (" +
        spec.ReproLine() + ")";
    return outcome;
  }
  SeededCrashController controller(spec.seed, &endpoint, &mem, &faults);

  outcome.hostile = driver.RunHostile(endpoint, &controller);
  outcome.crashes = controller.crashes();
  outcome.soft_retries = controller.soft_retries();
  outcome.recovery = controller.report();
  if (!controller.failure().empty()) {
    outcome.failure = controller.failure() + " (" + spec.ReproLine() + ")";
    return outcome;
  }
  if (!outcome.hostile.ok) {
    outcome.failure = outcome.hostile.failure;
    return outcome;
  }

  outcome.synchronous = driver.RunSynchronous();
  if (!outcome.synchronous.ok) {
    outcome.failure = outcome.synchronous.failure;
    return outcome;
  }
  outcome.failure =
      CompareArmFingerprints(fleet, outcome.hostile, outcome.synchronous);
  if (!outcome.failure.empty()) return outcome;

  // Final check: crash the *completed* service and recover from the log
  // alone. Replay must finish every session and land on the same
  // fingerprints — the log really was the whole state. External ids are
  // assigned sequentially from 1 in open order, which is fleet order.
  if (!endpoint.CrashAndRecover(&mem, &outcome.final_recovery)) {
    outcome.failure = "final recovery failed: " + endpoint.error() + " (" +
                      spec.ReproLine() + ")";
    return outcome;
  }
  endpoint.Drain();
  for (size_t i = 0; i < fleet.sessions.size(); ++i) {
    if (outcome.hostile.fingerprints[i].empty()) continue;  // abandoned
    auto id = static_cast<ServiceEndpoint::SessionId>(i + 1);
    if (endpoint.status(id) != SessionStatus::kIdle) {
      outcome.failure = "final recovery left session " + std::to_string(i) +
                        " unfinished (" + spec.ReproLine() + ")";
      return outcome;
    }
    std::string fp = SessionFingerprint(endpoint.session(id));
    if (fp != outcome.synchronous.fingerprints[i]) {
      outcome.failure =
          "session " + std::to_string(i) +
          " recovered from the final log diverged from the synchronous "
          "reference (" +
          spec.ReproLine() + ")\n--- recovered ---\n" + fp +
          "--- synchronous arm ---\n" + outcome.synchronous.fingerprints[i];
      return outcome;
    }
  }

  outcome.ok = true;
  return outcome;
}

}  // namespace qhorn
