// Binary codec for the durable session log's record bodies.
//
// SessionOpened records must carry everything needed to re-create a
// session after a crash: the full SessionSpec (schema size, target and
// mutant queries, noise stream seed, job plan). The encoding is
// deliberately dumb — fixed-width little-endian fields, length-prefixed
// vectors, doubles as raw IEEE bit patterns — because the contract the
// recovery tests pin is *byte identity*: encode → decode → re-encode is
// the identity on bytes for every seed-derived fleet, so a recovered
// session is provably the same session, not a floating-point-rounded
// cousin. No varints, no optional fields, no map iteration: nothing whose
// byte output could depend on anything but the value.

#ifndef QHORN_DURABLE_CODEC_H_
#define QHORN_DURABLE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/query.h"
#include "src/workload/workload.h"

namespace qhorn {

/// Appends fixed-width little-endian primitives to a byte string.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Raw IEEE-754 bit pattern: round trips every value bit for bit,
  /// NaN payloads included.
  void PutDouble(double v);
  void PutBytes(std::string_view bytes);  // length-prefixed (u32)

 private:
  std::string* out_;
};

/// Consumes the same encoding. Every Get returns false once the input is
/// exhausted or malformed; decoding never reads past the view.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetDouble(double* v);
  bool GetBytes(std::string* out);

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  std::string_view data_;
};

void EncodeQuery(const Query& query, std::string* out);
bool DecodeQuery(Decoder& in, Query* out);

void EncodeSessionSpec(const SessionSpec& spec, std::string* out);
bool DecodeSessionSpec(Decoder& in, SessionSpec* out);

void EncodeWorkloadSpec(const WorkloadSpec& spec, std::string* out);
bool DecodeWorkloadSpec(Decoder& in, WorkloadSpec* out);

}  // namespace qhorn

#endif  // QHORN_DURABLE_CODEC_H_
