// Crash-recovery harness: the hostile fleet, a failing machine, and a
// differential oracle.
//
// RunCrashDifferential(spec) plays FleetDriver's hostile arm against a
// DurableRouter on an in-memory filesystem, while a seeded
// CrashController kills the service at round boundaries (destroy the
// router, drop every unsynced byte, Recover from the log) and injects
// mid-append faults through FaultFs (torn appends that poison the log
// until a crash-recovery, sync failures that force duplicate-record
// retries). The fleet's users — the driver — survive every crash and keep
// using their session ids and cached answer bits.
//
// The oracle is the same as PR 6's hostile harness, strengthened: after
// any number of crashes, per-session fingerprints must equal the 1-lane
// synchronous reference bit for bit; and a *final* crash after the fleet
// completes must recover into a router whose sessions reproduce those
// same fingerprints from the log alone. Torn tails must be truncated
// loudly (counted in the recovery reports), corrupt records must be
// rejected with typed errors (covered by the unit suites), duplicate
// records must fold idempotently.

#ifndef QHORN_DURABLE_CRASH_HARNESS_H_
#define QHORN_DURABLE_CRASH_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/durable/durable_router.h"
#include "src/durable/fs.h"
#include "src/workload/fleet_driver.h"
#include "src/workload/service_endpoint.h"

namespace qhorn {

/// ServiceEndpoint over a DurableRouter, swappable under the caller's
/// feet: CrashController kills and recovers the underlying router while
/// the driver keeps calling through this object with its stable ids.
class DurableEndpoint : public ServiceEndpoint {
 public:
  /// Creates the wrapped DurableRouter over `fs` at `log_dir`.
  /// ok() is false (with error()) if the log could not be created.
  DurableEndpoint(Fs* fs, std::string log_dir, DurableRouterOptions options);

  bool ok() const { return router_ != nullptr; }
  const std::string& error() const { return error_; }
  DurableRouter& durable() { return *router_; }

  SessionId OpenPending(const SessionSpec& spec) override;
  ProvideOutcome ProvideAnswers(SessionId id, int64_t round_id,
                                BitSpan answers) override;
  bool Close(SessionId id) override;
  std::vector<PendingRound> PendingRounds() override;
  void Drain() override;
  std::optional<SessionStatus> status(SessionId id) override;
  QuerySession& session(SessionId id) override;
  ServiceStats stats() override;

  /// Process death: destroys the router (a dead process holds no state),
  /// drops every unsynced byte (MemFs::CrashAll on `mem`), recovers from
  /// the log into a fresh router. `report` accumulates across calls.
  /// False + error() on a recovery the log could not support.
  bool CrashAndRecover(MemFs* mem, RecoveryReport* report);

 private:
  Fs* fs_;
  std::string log_dir_;
  DurableRouterOptions options_;
  std::unique_ptr<DurableRouter> router_;
  std::string error_;
};

/// Seeded failing machine. Decides per sweep whether to kill the service
/// outright (round-boundary crash) or to arm a FaultFs append/sync fault
/// that fires mid-run; answers the driver's OnLogWriteFailed by
/// recovering (torn append — the log is poisoned) or by green-lighting a
/// plain retry (sync failure — the record is buffered whole, and the
/// retry's duplicate exercises Recover's idempotent skip).
class SeededCrashController : public CrashController {
 public:
  SeededCrashController(uint64_t seed, DurableEndpoint* endpoint, MemFs* mem,
                        FaultFs* faults);

  bool MaybeCrashAtSweep(int64_t sweep) override;
  bool OnLogWriteFailed() override;

  int64_t crashes() const { return crashes_; }
  int64_t soft_retries() const { return soft_retries_; }
  const RecoveryReport& report() const { return report_; }
  const std::string& failure() const { return failure_; }

 private:
  bool CrashRecover();

  DurableEndpoint* endpoint_;
  MemFs* mem_;
  FaultFs* faults_;
  Rng rng_;
  int64_t next_crash_sweep_;
  int crash_budget_;
  int64_t crashes_ = 0;
  int64_t soft_retries_ = 0;
  int64_t torn_seen_ = 0;
  int64_t sync_seen_ = 0;
  RecoveryReport report_;
  std::string failure_;
};

/// The crash differential's full outcome: both arms, the comparison, and
/// the fault/recovery accounting the tests assert vacuity on.
struct CrashOutcome {
  bool ok = false;
  std::string failure;  ///< empty iff ok; carries the seed repro line
  FleetResult hostile;
  FleetResult synchronous;
  int64_t crashes = 0;            ///< full kill+recover cycles
  int64_t soft_retries = 0;       ///< sync-failure retries (no crash)
  RecoveryReport recovery;        ///< accumulated over every recovery
  RecoveryReport final_recovery;  ///< the post-completion recovery check
};

/// Generates the fleet, runs the hostile arm under a seeded failing
/// machine, runs the synchronous reference, compares fingerprints — then
/// crashes the *completed* service one last time and checks that a
/// recovery from the final log reproduces the same fingerprints.
/// `mode` selects the router's resume protocol for the durable service
/// (every recovered incarnation included); kDefault derives it from the
/// spec (`replay_resume` → kReplay, else kSnapshot), so the crash
/// differential covers both protocols across the fuzz seeds.
CrashOutcome RunCrashDifferential(const WorkloadSpec& spec,
                                  ResumeMode mode = ResumeMode::kDefault);

}  // namespace qhorn

#endif  // QHORN_DURABLE_CRASH_HARNESS_H_
