#include "src/durable/durable_router.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/util/bit_span.h"
#include "src/util/check.h"
#include "src/workload/fleet_driver.h"

namespace qhorn {

DurableRouter::DurableRouter(Fs* fs, std::string log_dir,
                             DurableRouterOptions options)
    : fs_(fs), log_dir_(std::move(log_dir)), options_(options) {
  QHORN_CHECK(options_.shards >= 1);
  // One router shard per WAL shard (see DurableRouterOptions::shards);
  // lanes, session options and resume mode come from the wrapped router
  // options unchanged.
  ShardedRouter::Options sharded;
  sharded.shards = options_.shards;
  sharded.threads = options_.router.threads;
  sharded.session = options_.router.session;
  sharded.resume_mode = options_.router.resume_mode;
  router_ = std::make_unique<ShardedRouter>(sharded);
}

DurableRouter::~DurableRouter() = default;

std::string DurableRouter::ShardPath(const std::string& log_dir, int shard) {
  return log_dir + "/shard-" + std::to_string(shard) + ".qlog";
}

bool DurableRouter::OpenLogs(std::string* error) {
  if (!fs_->CreateDirs(log_dir_)) {
    *error = "cannot create log directory " + log_dir_;
    return false;
  }
  shards_.reserve(options_.shards);
  for (int i = 0; i < options_.shards; ++i) {
    auto log = SessionLog::Open(fs_, ShardPath(log_dir_, i), options_.log,
                                error);
    if (log == nullptr) return false;
    shards_.push_back(std::move(log));
  }
  return true;
}

std::unique_ptr<DurableRouter> DurableRouter::Create(
    Fs* fs, const std::string& log_dir, const DurableRouterOptions& options,
    std::string* error) {
  auto router = std::unique_ptr<DurableRouter>(
      new DurableRouter(fs, log_dir, options));
  if (!router->OpenLogs(error)) return nullptr;
  return router;
}

SessionLog* DurableRouter::ShardFor(SessionId external_id) {
  return shards_[static_cast<size_t>(external_id) %
                 static_cast<size_t>(options_.shards)]
      .get();
}

DurableRouter::SessionId DurableRouter::OpenPending(const SessionSpec& spec) {
  SessionId external;
  {
    MutexLock lock(&mutex_);
    external = next_external_;
  }
  // Log before ack. A crash after this append but before OpenPending
  // returns re-creates a session whose id the caller never learned — an
  // orphan that waits forever, which is the durable-service analogue of
  // an abandoned session, not a correctness hole: nothing was
  // acknowledged, so nothing is owed.
  if (!ShardFor(external)->AppendSessionOpened(external, spec)) return 0;
  // Pin the session to the router shard matching its WAL shard: this
  // session's commit hooks will append to WAL `external % shards` while
  // holding router shard `external % shards`'s mutex — a 1:1 mapping, so
  // two sessions contend on a router lock iff they share a WAL anyway.
  SessionId internal = router_->OpenPendingOnShard(
      static_cast<int>(external % options_.shards), spec.n);
  SubmitSpecJobs(*router_, internal, spec);
  MutexLock lock(&mutex_);
  to_internal_.emplace(external, internal);
  to_external_.emplace(internal, external);
  ++next_external_;
  return external;
}

ProvideOutcome DurableRouter::ProvideAnswers(SessionId id, int64_t round_id,
                                             BitSpan answers) {
  SessionId internal;
  SessionLog* shard;
  {
    MutexLock lock(&mutex_);
    auto it = to_internal_.find(id);
    if (it == to_internal_.end()) return ProvideOutcome::kUnknownSession;
    internal = it->second;
    shard = ShardFor(id);
  }
  // The append runs inside the router's commit hook: after validation,
  // before mutation, atomic with the fold. Anything the log did not
  // accept was never acknowledged and never happened in memory.
  auto commit = [&]() -> bool {
    return shard->AppendRoundAnswered(id, round_id, answers);
  };
  return router_->ProvideAnswers(internal, round_id, answers,
                                 SessionRouter::CommitHook(commit));
}

bool DurableRouter::Close(SessionId id) {
  SessionId internal;
  {
    MutexLock lock(&mutex_);
    auto it = to_internal_.find(id);
    if (it == to_internal_.end()) return false;
    internal = it->second;
  }
  // Log before ack; a duplicate close record (append ok but the router
  // reports already-closed, or a caller retry after a sync failure) is
  // skipped idempotently by Recover.
  if (!ShardFor(id)->AppendSessionClosed(id)) return false;
  return router_->Close(internal);
}

std::vector<PendingRound> DurableRouter::PendingRounds() {
  std::vector<PendingRound> rounds = router_->PendingRounds();
  {
    MutexLock lock(&mutex_);
    for (PendingRound& round : rounds) {
      auto it = to_external_.find(round.session_id);
      QHORN_CHECK_MSG(it != to_external_.end(),
                      "pending round for unmapped session "
                          << round.session_id);
      round.session_id = it->second;
    }
  }
  std::sort(rounds.begin(), rounds.end(),
            [](const PendingRound& a, const PendingRound& b) {
              return a.session_id < b.session_id;
            });
  return rounds;
}

void DurableRouter::Drain() { router_->Drain(); }

std::optional<SessionStatus> DurableRouter::status(SessionId id) {
  SessionId internal;
  {
    MutexLock lock(&mutex_);
    auto it = to_internal_.find(id);
    if (it == to_internal_.end()) return std::nullopt;
    internal = it->second;
  }
  return router_->status(internal);
}

QuerySession& DurableRouter::session(SessionId id) {
  SessionId internal;
  {
    MutexLock lock(&mutex_);
    auto it = to_internal_.find(id);
    QHORN_CHECK_MSG(it != to_internal_.end(), "no durable session " << id);
    internal = it->second;
  }
  return router_->session(internal);
}

ServiceStats DurableRouter::stats() { return router_->stats(); }

int64_t DurableRouter::records_logged() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->records_appended();
  return total;
}

// ---------------------------------------------------------------------------
// Recovery

namespace {

/// Everything the log says about one session, folded shard-by-shard.
struct SessionImage {
  SessionSpec spec;
  bool opened = false;
  bool closed = false;
  std::vector<std::vector<bool>> rounds;  // indexed by round id
};

}  // namespace

std::unique_ptr<DurableRouter> DurableRouter::Recover(
    Fs* fs, const std::string& log_dir, const DurableRouterOptions& options,
    RecoveryReport* report, std::string* error) {
  *report = RecoveryReport();
  error->clear();

  // Phase 1 — scan: CRC-check every shard, truncate torn tails loudly,
  // reject anything typed-bad before touching any state.
  std::map<SessionId, SessionImage> images;
  for (int i = 0; i < options.shards; ++i) {
    const std::string path = ShardPath(log_dir, i);
    LogReadResult read = ReadLog(fs, path);
    if (read.status != LogReadStatus::kOk) {
      *error = std::string("recovery rejected shard ") + std::to_string(i) +
               " (" + ToString(read.status) + "): " + read.error;
      return nullptr;
    }
    if (read.existed && read.torn_tail) {
      if (!fs->Truncate(path, read.valid_bytes)) {
        *error = "cannot truncate torn tail of " + path;
        return nullptr;
      }
      ++report->torn_tails_truncated;
      report->torn_bytes_dropped += static_cast<int64_t>(read.dropped_bytes);
    }
    // Phase 2 — fold: build per-session images. Round ids totally order a
    // session's answers, so duplicates (retry echoes) are recognizable as
    // already-seen ids and gaps are recognizable as impossible futures.
    for (LogRecord& rec : read.records) {
      ++report->records_read;
      SessionImage& image = images[rec.session_id];
      switch (rec.type) {
        case LogRecordType::kSessionOpened:
          if (image.opened) {
            ++report->duplicate_records_skipped;
            break;
          }
          image.opened = true;
          image.spec = std::move(rec.spec);
          break;
        case LogRecordType::kRoundAnswered: {
          if (!image.opened) {
            *error = "shard " + std::to_string(i) +
                     ": RoundAnswered for never-opened session " +
                     std::to_string(rec.session_id);
            return nullptr;
          }
          auto next = static_cast<int64_t>(image.rounds.size());
          if (rec.round_id < next) {
            ++report->duplicate_records_skipped;
            if (image.rounds[static_cast<size_t>(rec.round_id)] !=
                rec.answers) {
              *error = "session " + std::to_string(rec.session_id) +
                       ": duplicate record for round " +
                       std::to_string(rec.round_id) +
                       " carries different answers";
              return nullptr;
            }
            break;
          }
          if (rec.round_id > next) {
            *error = "session " + std::to_string(rec.session_id) +
                     ": round " + std::to_string(rec.round_id) +
                     " logged but round " + std::to_string(next) +
                     " is missing";
            return nullptr;
          }
          image.rounds.push_back(std::move(rec.answers));
          break;
        }
        case LogRecordType::kSessionClosed:
          if (!image.opened) {
            *error = "shard " + std::to_string(i) +
                     ": SessionClosed for never-opened session " +
                     std::to_string(rec.session_id);
            return nullptr;
          }
          if (image.closed) {
            ++report->duplicate_records_skipped;
            break;
          }
          image.closed = true;
          break;
      }
    }
  }

  // Phase 3 — rebuild: fresh router, every session re-opened (in id
  // order) with its job plan resubmitted.
  auto durable = std::unique_ptr<DurableRouter>(
      new DurableRouter(fs, log_dir, options));
  if (!durable->OpenLogs(error)) return nullptr;
  for (const auto& [external, image] : images) {
    SessionId internal = durable->router_->OpenPendingOnShard(
        static_cast<int>(external % options.shards), image.spec.n);
    SubmitSpecJobs(*durable->router_, internal, image.spec);
    // Recovery is single-threaded, but the id maps are guarded members:
    // take the (uncontended) lock so the annotations stay honest.
    MutexLock lock(&durable->mutex_);
    durable->to_internal_.emplace(external, internal);
    durable->to_external_.emplace(internal, external);
    durable->next_external_ = std::max(durable->next_external_, external + 1);
    ++report->sessions_recovered;
  }

  // Phase 4 — replay: feed the logged answers back through the ordinary
  // pending protocol, in round order per session. Determinism does the
  // rest — the re-run learners ask the identical questions, so each
  // logged round must surface with exactly its logged id; anything else
  // is a divergence the recovery refuses to paper over.
  std::map<SessionId, size_t> fed;
  BitVec bits;
  for (;;) {
    durable->router_->Drain();
    bool progress = false;
    for (const auto& [external, image] : images) {
      size_t& next = fed[external];
      if (next >= image.rounds.size()) continue;
      SessionId internal;
      {
        MutexLock lock(&durable->mutex_);
        internal = durable->to_internal_.at(external);
      }
      std::optional<PendingRound> round =
          durable->router_->pending_round(internal);
      if (!round.has_value()) continue;  // checked after the fixpoint
      const std::vector<bool>& answers = image.rounds[next];
      if (round->round_id != static_cast<int64_t>(next)) {
        std::ostringstream os;
        os << "session " << external << ": replay surfaced round "
           << round->round_id << " where the log expects round " << next;
        *error = os.str();
        return nullptr;
      }
      if (round->questions.size() != answers.size()) {
        std::ostringstream os;
        os << "session " << external << ": replay round " << next << " asks "
           << round->questions.size() << " question(s) but the log recorded "
           << answers.size() << " answer(s)";
        *error = os.str();
        return nullptr;
      }
      BitSpan span = bits.Prepare(answers.size());
      for (size_t q = 0; q < answers.size(); ++q) span.Set(q, answers[q]);
      // The three-argument overload: replay must not re-log what the log
      // just said.
      ProvideOutcome out = durable->router_->ProvideAnswers(
          internal, round->round_id, span);
      if (out != ProvideOutcome::kResumed) {
        std::ostringstream os;
        os << "session " << external << ": replay of round " << next
           << " was rejected (" << ToString(out) << ")";
        *error = os.str();
        return nullptr;
      }
      ++next;
      ++report->rounds_replayed;
      progress = true;
    }
    if (!progress) break;
  }
  for (const auto& [external, image] : images) {
    if (fed[external] < image.rounds.size()) {
      std::ostringstream os;
      os << "session " << external << ": log records round " << fed[external]
         << " but the replayed session never asked it";
      *error = os.str();
      return nullptr;
    }
  }

  // Phase 5 — re-close what the log says was closed (after replay, so a
  // session closed mid-round abandons the same round it abandoned then).
  for (const auto& [external, image] : images) {
    if (!image.closed) continue;
    SessionId internal;
    {
      MutexLock lock(&durable->mutex_);
      internal = durable->to_internal_.at(external);
    }
    durable->router_->Close(internal);
    ++report->sessions_closed;
  }
  durable->router_->Drain();
  return durable;
}

}  // namespace qhorn
