#include "src/durable/fs.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "src/util/check.h"

namespace qhorn {

// ---------------------------------------------------------------------------
// RealFs

namespace {

class RealFile : public WritableFile {
 public:
  explicit RealFile(std::FILE* f) : f_(f) {}
  ~RealFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  bool Append(std::string_view data) override {
    if (f_ == nullptr) return false;
    return std::fwrite(data.data(), 1, data.size(), f_) == data.size();
  }

  bool Sync() override {
    if (f_ == nullptr) return false;
    if (std::fflush(f_) != 0) return false;
#ifndef _WIN32
    return ::fsync(::fileno(f_)) == 0;
#else
    return true;
#endif
  }

 private:
  std::FILE* f_;
};

}  // namespace

std::unique_ptr<WritableFile> RealFs::OpenAppend(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return nullptr;
  return std::make_unique<RealFile>(f);
}

bool RealFs::ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, got);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool RealFs::FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

bool RealFs::Truncate(const std::string& path, uint64_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  return !ec;
}

bool RealFs::CreateDirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return std::filesystem::is_directory(dir, ec);
}

// ---------------------------------------------------------------------------
// MemFs

class MemFile : public WritableFile {
 public:
  MemFile(MemFs* fs, std::string path) : fs_(fs), path_(std::move(path)) {}

  bool Append(std::string_view data) override;
  bool Sync() override;

 private:
  MemFs* fs_;
  std::string path_;
};

bool MemFile::Append(std::string_view data) {
  MutexLock lock(&fs_->mutex_);
  fs_->files_[path_].buffered.append(data);
  return true;
}

bool MemFile::Sync() {
  MutexLock lock(&fs_->mutex_);
  MemFs::FileState& f = fs_->files_[path_];
  f.durable.append(f.buffered);
  f.buffered.clear();
  return true;
}

std::unique_ptr<WritableFile> MemFs::OpenAppend(const std::string& path) {
  MutexLock lock(&mutex_);
  files_.try_emplace(path);  // creation is immediate, like open(O_CREAT)
  return std::make_unique<MemFile>(this, path);
}

bool MemFs::ReadFile(const std::string& path, std::string* out) {
  MutexLock lock(&mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  *out = it->second.durable + it->second.buffered;
  return true;
}

bool MemFs::FileExists(const std::string& path) {
  MutexLock lock(&mutex_);
  return files_.count(path) != 0;
}

bool MemFs::Truncate(const std::string& path, uint64_t size) {
  MutexLock lock(&mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  // Truncation is a metadata operation the recovery path performs before
  // any new append; model its result as fully durable.
  std::string all = it->second.durable + it->second.buffered;
  if (size < all.size()) all.resize(size);
  it->second.durable = std::move(all);
  it->second.buffered.clear();
  return true;
}

bool MemFs::CreateDirs(const std::string&) { return true; }

void MemFs::CrashAll() {
  MutexLock lock(&mutex_);
  for (auto& [path, f] : files_) {
    f.buffered.clear();
  }
}

uint64_t MemFs::DurableSize(const std::string& path) {
  MutexLock lock(&mutex_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.durable.size();
}

uint64_t MemFs::TotalSize(const std::string& path) {
  MutexLock lock(&mutex_);
  auto it = files_.find(path);
  return it == files_.end()
             ? 0
             : it->second.durable.size() + it->second.buffered.size();
}

void MemFs::FlipDurableBitForTest(const std::string& path, uint64_t bit) {
  MutexLock lock(&mutex_);
  auto it = files_.find(path);
  QHORN_CHECK_MSG(it != files_.end(), "no file " << path);
  QHORN_CHECK_MSG(bit / 8 < it->second.durable.size(),
                  "bit " << bit << " beyond durable size of " << path);
  it->second.durable[bit / 8] ^= static_cast<char>(1u << (bit % 8));
}

// ---------------------------------------------------------------------------
// FaultFs

class FaultFile : public WritableFile {
 public:
  FaultFile(FaultFs* fs, std::unique_ptr<WritableFile> base)
      : fs_(fs), base_(std::move(base)) {}

  bool Append(std::string_view data) override {
    return fs_->OnAppend(base_.get(), data);
  }

  bool Sync() override { return fs_->OnSync(base_.get()); }

 private:
  FaultFs* fs_;
  std::unique_ptr<WritableFile> base_;
};

std::unique_ptr<WritableFile> FaultFs::OpenAppend(const std::string& path) {
  auto base = base_->OpenAppend(path);
  if (base == nullptr) return nullptr;
  return std::make_unique<FaultFile>(this, std::move(base));
}

bool FaultFs::ReadFile(const std::string& path, std::string* out) {
  return base_->ReadFile(path, out);
}

bool FaultFs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

bool FaultFs::Truncate(const std::string& path, uint64_t size) {
  return base_->Truncate(path, size);
}

bool FaultFs::CreateDirs(const std::string& dir) {
  return base_->CreateDirs(dir);
}

void FaultFs::ArmTornAppend(int after) {
  QHORN_CHECK(after >= 1);
  MutexLock lock(&mutex_);
  append_fault_ = FaultKind::kTornAppend;
  append_fault_at_ = appends_ + after;
}

void FaultFs::ArmShortWrite(int after) {
  QHORN_CHECK(after >= 1);
  MutexLock lock(&mutex_);
  append_fault_ = FaultKind::kShortWrite;
  append_fault_at_ = appends_ + after;
}

void FaultFs::ArmSyncFailure(int after) {
  QHORN_CHECK(after >= 1);
  MutexLock lock(&mutex_);
  sync_fault_at_ = syncs_ + after;
}

void FaultFs::ArmBitFlip(int after, int64_t bit) {
  QHORN_CHECK(after >= 1);
  MutexLock lock(&mutex_);
  append_fault_ = FaultKind::kBitFlip;
  append_fault_at_ = appends_ + after;
  append_fault_bit_ = bit;
}

bool FaultFs::OnAppend(WritableFile* file, std::string_view data) {
  FaultKind fault = FaultKind::kNone;
  size_t prefix = 0;
  int64_t flip_bit = -1;
  {
    MutexLock lock(&mutex_);
    ++appends_;
    if (append_fault_ != FaultKind::kNone && appends_ == append_fault_at_) {
      fault = append_fault_;
      append_fault_ = FaultKind::kNone;
      switch (fault) {
        case FaultKind::kTornAppend:
          ++torn_fired_;
          prefix = data.empty() ? 0 : rng_.Below(data.size());
          break;
        case FaultKind::kShortWrite:
          ++short_fired_;
          prefix = data.empty() ? 0 : rng_.Below(data.size());
          break;
        case FaultKind::kBitFlip:
          ++flip_fired_;
          flip_bit = append_fault_bit_ >= 0
                         ? append_fault_bit_
                         : static_cast<int64_t>(rng_.Below(data.size() * 8));
          break;
        default:
          break;
      }
    }
  }
  switch (fault) {
    case FaultKind::kNone:
      return file->Append(data);
    case FaultKind::kTornAppend:
      // The OS flushed a partial page, then the machine died: the prefix
      // is durable, the rest never existed, and the writer saw an error.
      file->Append(data.substr(0, prefix));
      file->Sync();
      return false;
    case FaultKind::kShortWrite:
      file->Append(data.substr(0, prefix));
      return false;
    case FaultKind::kBitFlip: {
      QHORN_CHECK_MSG(flip_bit >= 0 &&
                          static_cast<size_t>(flip_bit) < data.size() * 8,
                      "bit-flip offset " << flip_bit
                                         << " beyond record of "
                                         << data.size() << " bytes");
      std::string corrupted(data);
      corrupted[static_cast<size_t>(flip_bit) / 8] ^=
          static_cast<char>(1u << (flip_bit % 8));
      return file->Append(corrupted);
    }
  }
  return false;
}

bool FaultFs::OnSync(WritableFile* file) {
  {
    MutexLock lock(&mutex_);
    ++syncs_;
    if (sync_fault_at_ != 0 && syncs_ == sync_fault_at_) {
      sync_fault_at_ = 0;
      ++sync_fail_fired_;
      return false;
    }
  }
  return file->Sync();
}

int64_t FaultFs::appends() const {
  MutexLock lock(&mutex_);
  return appends_;
}

int64_t FaultFs::syncs() const {
  MutexLock lock(&mutex_);
  return syncs_;
}

int64_t FaultFs::torn_appends_fired() const {
  MutexLock lock(&mutex_);
  return torn_fired_;
}

int64_t FaultFs::short_writes_fired() const {
  MutexLock lock(&mutex_);
  return short_fired_;
}

int64_t FaultFs::sync_failures_fired() const {
  MutexLock lock(&mutex_);
  return sync_fail_fired_;
}

int64_t FaultFs::bit_flips_fired() const {
  MutexLock lock(&mutex_);
  return flip_fired_;
}

bool FaultFs::fault_armed() const {
  MutexLock lock(&mutex_);
  return append_fault_ != FaultKind::kNone || sync_fault_at_ != 0;
}

}  // namespace qhorn
