#include "src/durable/codec.h"

#include <bit>
#include <cstring>

namespace qhorn {

// ---------------------------------------------------------------------------
// Primitives

void Encoder::PutU32(uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out_->append(buf, 4);
}

void Encoder::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void Encoder::PutDouble(double v) {
  PutU64(std::bit_cast<uint64_t>(v));
}

void Encoder::PutBytes(std::string_view bytes) {
  PutU32(static_cast<uint32_t>(bytes.size()));
  out_->append(bytes);
}

bool Decoder::GetU8(uint8_t* v) {
  if (data_.empty()) return false;
  *v = static_cast<uint8_t>(data_[0]);
  data_.remove_prefix(1);
  return true;
}

bool Decoder::GetU32(uint32_t* v) {
  if (data_.size() < 4) return false;
  *v = static_cast<uint32_t>(static_cast<uint8_t>(data_[0])) |
       static_cast<uint32_t>(static_cast<uint8_t>(data_[1])) << 8 |
       static_cast<uint32_t>(static_cast<uint8_t>(data_[2])) << 16 |
       static_cast<uint32_t>(static_cast<uint8_t>(data_[3])) << 24;
  data_.remove_prefix(4);
  return true;
}

bool Decoder::GetU64(uint64_t* v) {
  uint32_t lo, hi;
  if (!GetU32(&lo) || !GetU32(&hi)) return false;
  *v = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
  return true;
}

bool Decoder::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Decoder::GetDouble(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool Decoder::GetBytes(std::string* out) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (data_.size() < len) return false;
  out->assign(data_.data(), len);
  data_.remove_prefix(len);
  return true;
}

// ---------------------------------------------------------------------------
// Query

void EncodeQuery(const Query& query, std::string* out) {
  Encoder e(out);
  e.PutU32(static_cast<uint32_t>(query.n()));
  e.PutU32(static_cast<uint32_t>(query.universal().size()));
  for (const UniversalHorn& u : query.universal()) {
    e.PutU64(u.body);
    e.PutU32(static_cast<uint32_t>(u.head));
  }
  e.PutU32(static_cast<uint32_t>(query.existential().size()));
  for (const ExistentialConj& x : query.existential()) {
    e.PutU64(x.vars);
  }
}

bool DecodeQuery(Decoder& in, Query* out) {
  uint32_t n, n_universal, n_existential;
  if (!in.GetU32(&n)) return false;
  // Schemas are ≤ 64 variables (VarSet is a u64 bitmask); a larger n is
  // not a valid encoding, just bytes that happened to frame-check.
  if (n > 64) return false;
  Query q(static_cast<int>(n));
  if (!in.GetU32(&n_universal)) return false;
  for (uint32_t i = 0; i < n_universal; ++i) {
    uint64_t body;
    uint32_t head;
    if (!in.GetU64(&body) || !in.GetU32(&head)) return false;
    if (head >= 64) return false;
    q.AddUniversal(body, static_cast<int>(head));
  }
  if (!in.GetU32(&n_existential)) return false;
  for (uint32_t i = 0; i < n_existential; ++i) {
    uint64_t vars;
    if (!in.GetU64(&vars)) return false;
    if (vars == 0) return false;  // AddExistential aborts on empty sets
    q.AddExistential(vars);
  }
  *out = std::move(q);
  return true;
}

// ---------------------------------------------------------------------------
// SessionSpec

void EncodeSessionSpec(const SessionSpec& spec, std::string* out) {
  Encoder e(out);
  e.PutU8(static_cast<uint8_t>(spec.query_class));
  e.PutU32(static_cast<uint32_t>(spec.n));
  EncodeQuery(spec.target, out);
  EncodeQuery(spec.mutant, out);
  e.PutDouble(spec.flip_rate);
  e.PutU64(spec.noise_seed);
  e.PutU32(static_cast<uint32_t>(spec.jobs.size()));
  for (WorkloadJob j : spec.jobs) {
    e.PutU8(static_cast<uint8_t>(j));
  }
  e.PutU8(spec.abandon ? 1 : 0);
  e.PutU32(static_cast<uint32_t>(spec.abandon_after_rounds));
}

bool DecodeSessionSpec(Decoder& in, SessionSpec* out) {
  SessionSpec spec;
  uint8_t query_class, abandon;
  uint32_t n, n_jobs, abandon_after;
  if (!in.GetU8(&query_class)) return false;
  if (query_class > static_cast<uint8_t>(QueryClass::kRpUniversal)) {
    return false;
  }
  spec.query_class = static_cast<QueryClass>(query_class);
  if (!in.GetU32(&n) || n > 64) return false;
  spec.n = static_cast<int>(n);
  if (!DecodeQuery(in, &spec.target)) return false;
  if (!DecodeQuery(in, &spec.mutant)) return false;
  if (!in.GetDouble(&spec.flip_rate)) return false;
  if (!in.GetU64(&spec.noise_seed)) return false;
  if (!in.GetU32(&n_jobs)) return false;
  spec.jobs.reserve(n_jobs);
  for (uint32_t i = 0; i < n_jobs; ++i) {
    uint8_t j;
    if (!in.GetU8(&j)) return false;
    if (j > static_cast<uint8_t>(WorkloadJob::kRevise)) return false;
    spec.jobs.push_back(static_cast<WorkloadJob>(j));
  }
  if (!in.GetU8(&abandon) || abandon > 1) return false;
  spec.abandon = abandon != 0;
  if (!in.GetU32(&abandon_after)) return false;
  spec.abandon_after_rounds = static_cast<int>(abandon_after);
  *out = std::move(spec);
  return true;
}

// ---------------------------------------------------------------------------
// WorkloadSpec

void EncodeWorkloadSpec(const WorkloadSpec& spec, std::string* out) {
  Encoder e(out);
  e.PutU64(spec.seed);
  e.PutU32(static_cast<uint32_t>(spec.sessions));
  e.PutU32(static_cast<uint32_t>(spec.lanes));
  e.PutU32(static_cast<uint32_t>(spec.n_min));
  e.PutU32(static_cast<uint32_t>(spec.n_max));
  e.PutDouble(spec.qhorn1_weight);
  e.PutDouble(spec.rp_existential_weight);
  e.PutDouble(spec.rp_universal_weight);
  e.PutDouble(spec.noisy_fraction);
  e.PutDouble(spec.flip_min);
  e.PutDouble(spec.flip_max);
  e.PutDouble(spec.abandon_fraction);
  e.PutDouble(spec.answer_fraction);
  e.PutDouble(spec.malformed_rate);
  e.PutDouble(spec.duplicate_rate);
  e.PutDouble(spec.latency_alpha);
  e.PutU32(static_cast<uint32_t>(spec.latency_cap_ticks));
}

bool DecodeWorkloadSpec(Decoder& in, WorkloadSpec* out) {
  WorkloadSpec spec;
  uint32_t sessions, lanes, n_min, n_max, latency_cap;
  if (!in.GetU64(&spec.seed)) return false;
  if (!in.GetU32(&sessions) || !in.GetU32(&lanes) || !in.GetU32(&n_min) ||
      !in.GetU32(&n_max)) {
    return false;
  }
  spec.sessions = static_cast<int>(sessions);
  spec.lanes = static_cast<int>(lanes);
  spec.n_min = static_cast<int>(n_min);
  spec.n_max = static_cast<int>(n_max);
  if (!in.GetDouble(&spec.qhorn1_weight) ||
      !in.GetDouble(&spec.rp_existential_weight) ||
      !in.GetDouble(&spec.rp_universal_weight) ||
      !in.GetDouble(&spec.noisy_fraction) || !in.GetDouble(&spec.flip_min) ||
      !in.GetDouble(&spec.flip_max) || !in.GetDouble(&spec.abandon_fraction) ||
      !in.GetDouble(&spec.answer_fraction) ||
      !in.GetDouble(&spec.malformed_rate) ||
      !in.GetDouble(&spec.duplicate_rate) ||
      !in.GetDouble(&spec.latency_alpha)) {
    return false;
  }
  if (!in.GetU32(&latency_cap)) return false;
  spec.latency_cap_ticks = static_cast<int>(latency_cap);
  *out = spec;
  return true;
}

}  // namespace qhorn
