// File-system abstraction for the durable session log.
//
// SessionLog and DurableRouter never touch the OS directly; they write
// through this narrow seam so the crash-recovery suites can run against an
// in-memory filesystem with *simulatable power loss* and a fault-injecting
// decorator, while the real server path uses RealFs.
//
// The durability model every implementation shares:
//
//   * Append(data) buffers bytes. Buffered bytes are visible to reads
//     (the OS page cache) but are NOT durable.
//   * Sync() makes everything appended so far durable (fsync).
//   * A crash (MemFs::CrashAll, or the real machine losing power) keeps
//     all durable bytes and an *arbitrary prefix-truncation* of the
//     buffered tail — which is exactly why the log is CRC-framed.
//
// FaultFs decorates any Fs with seeded injected faults, armed one at a
// time by the crash harness:
//
//   * torn append  — a strict prefix of the record reaches durable
//     storage (the OS flushed a partial page just before power loss) and
//     the append reports failure;
//   * short write  — a strict prefix is buffered, the append reports
//     failure, and nothing was made durable (the crash-free analogue);
//   * sync failure — bytes stay buffered, Sync reports failure;
//   * bit flip     — one bit of the appended record is silently inverted
//     (disk bit-rot; the append reports success).

#ifndef QHORN_DURABLE_FS_H_
#define QHORN_DURABLE_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/checked_mutex.h"
#include "src/util/rng.h"

namespace qhorn {

/// Append-only file handle. Not thread-safe; callers serialize.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffers `data` at the end of the file. False = I/O error; the file's
  /// tail is indeterminate (a prefix of `data` may have been written) and
  /// the caller must treat the handle as poisoned.
  virtual bool Append(std::string_view data) = 0;

  /// Makes every appended byte durable. False = fsync failure; the bytes
  /// remain buffered (whole) and a later Sync may succeed.
  virtual bool Sync() = 0;
};

/// Minimal filesystem surface: append-only writes, whole-file reads, and
/// the truncate recovery needs to chop a torn tail.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens (creating if absent) `path` for appending.
  virtual std::unique_ptr<WritableFile> OpenAppend(const std::string& path) = 0;

  /// Reads the whole file (durable + buffered bytes — what a live process
  /// sees). False if the file does not exist or cannot be read.
  virtual bool ReadFile(const std::string& path, std::string* out) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (recovery chopping a torn tail; the
  /// result is durable). False on error or missing file.
  virtual bool Truncate(const std::string& path, uint64_t size) = 0;

  /// Creates `dir` (and parents). True if it exists afterwards.
  virtual bool CreateDirs(const std::string& dir) = 0;
};

/// POSIX-backed implementation for real deployments and the benchmarks
/// that want genuine fsync cost.
class RealFs : public Fs {
 public:
  std::unique_ptr<WritableFile> OpenAppend(const std::string& path) override;
  bool ReadFile(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  bool Truncate(const std::string& path, uint64_t size) override;
  bool CreateDirs(const std::string& dir) override;
};

/// In-memory filesystem with simulatable power loss. Thread-safe.
class MemFs : public Fs {
 public:
  std::unique_ptr<WritableFile> OpenAppend(const std::string& path) override;
  bool ReadFile(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  bool Truncate(const std::string& path, uint64_t size) override;
  bool CreateDirs(const std::string& dir) override;

  /// Simulated power loss: every file keeps its durable bytes and loses
  /// its buffered (unsynced) tail. Open handles keep working (the crash
  /// harness drops them anyway — a dead process holds no handles).
  void CrashAll();

  /// Durable byte count (what would survive a crash right now).
  uint64_t DurableSize(const std::string& path);
  /// Total byte count (durable + buffered) as ReadFile sees it.
  uint64_t TotalSize(const std::string& path);

  /// Test support: flips one bit of the durable image of `path` in place
  /// (simulated at-rest bit-rot, for corruption-detection tests).
  /// Aborts if `bit` is out of range.
  void FlipDurableBitForTest(const std::string& path, uint64_t bit);

 private:
  friend class MemFile;
  struct FileState {
    std::string durable;
    std::string buffered;
  };

  // Leaf lock of the durability stack (LockRank::kFs): WAL appends hold
  // the kWalShard mutex above, and MemFs never calls out under it.
  Mutex mutex_{"mem-fs", LockRank::kFs};
  std::map<std::string, FileState> files_ QHORN_GUARDED_BY(mutex_);
};

/// Fault-injecting decorator over any Fs. Faults are armed ahead of time
/// ("the k-th append from now tears") and fire exactly once; counters make
/// the harnesses assert their faults actually fired. Thread-safe; the
/// fault schedule is global across every file opened through it.
class FaultFs : public Fs {
 public:
  explicit FaultFs(Fs* base, uint64_t seed) : base_(base), rng_(seed) {}

  std::unique_ptr<WritableFile> OpenAppend(const std::string& path) override;
  bool ReadFile(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  bool Truncate(const std::string& path, uint64_t size) override;
  bool CreateDirs(const std::string& dir) override;

  /// The `after`-th append from now (1 = the very next) writes only a
  /// seeded strict prefix, makes it durable, and reports failure — the
  /// power-loss-mid-append shape recovery must truncate loudly.
  void ArmTornAppend(int after);

  /// The `after`-th append buffers a seeded strict prefix and reports
  /// failure without making anything durable.
  void ArmShortWrite(int after);

  /// The `after`-th Sync from now reports failure; bytes stay buffered.
  void ArmSyncFailure(int after);

  /// The `after`-th append has one bit inverted and reports success.
  /// `bit` < 0 picks a seeded bit anywhere in the record; a non-negative
  /// value pins the flipped bit (tests target the payload region).
  void ArmBitFlip(int after, int64_t bit = -1);

  int64_t appends() const;
  int64_t syncs() const;
  int64_t torn_appends_fired() const;
  int64_t short_writes_fired() const;
  int64_t sync_failures_fired() const;
  int64_t bit_flips_fired() const;
  /// True iff some armed fault has not fired yet.
  bool fault_armed() const;

 private:
  friend class FaultFile;
  enum class FaultKind { kNone, kTornAppend, kShortWrite, kBitFlip };

  // Called by FaultFile under mutex_-free fast paths; internally locked.
  bool OnAppend(WritableFile* file, std::string_view data);
  bool OnSync(WritableFile* file);

  Fs* base_;
  // Ranked just below the base filesystem's lock (kFaultFs < kFs):
  // OnAppend/OnSync release this mutex before delegating to the base
  // file, but the rank keeps even a held-across-delegation path legal.
  mutable Mutex mutex_{"fault-fs", LockRank::kFaultFs};
  Rng rng_ QHORN_GUARDED_BY(mutex_);
  int64_t appends_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t syncs_ QHORN_GUARDED_BY(mutex_) = 0;
  // Armed faults: fire when the corresponding counter reaches the mark.
  FaultKind append_fault_ QHORN_GUARDED_BY(mutex_) = FaultKind::kNone;
  // fires on the append_fault_at_-th append
  int64_t append_fault_at_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t append_fault_bit_ QHORN_GUARDED_BY(mutex_) = -1;  // ArmBitFlip pin
  // fires on the sync_fault_at_-th sync
  int64_t sync_fault_at_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t torn_fired_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t short_fired_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t sync_fail_fired_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t flip_fired_ QHORN_GUARDED_BY(mutex_) = 0;
};

}  // namespace qhorn

#endif  // QHORN_DURABLE_FS_H_
