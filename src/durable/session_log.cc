#include "src/durable/session_log.h"

#include <sstream>
#include <utility>

#include "src/durable/codec.h"
#include "src/util/crc32c.h"

namespace qhorn {

namespace {

// "qhLG" little-endian, followed by the format version. Bumping the
// version makes old readers reject new logs loudly (kBadHeader) instead of
// misdecoding them.
constexpr uint32_t kLogMagic = 0x474c6871;
constexpr uint32_t kLogVersion = 1;
constexpr uint64_t kFrameHeaderSize = 8;  // u32 len + u32 masked crc
// Frames are small (a SessionSpec is hundreds of bytes, a round is a few
// dozen); a length beyond this bound is corruption, not a big record, and
// refusing it keeps a flipped length bit from driving a huge allocation.
constexpr uint32_t kMaxPayload = 1u << 24;

std::string HeaderBytes() {
  std::string header;
  Encoder e(&header);
  e.PutU32(kLogMagic);
  e.PutU32(kLogVersion);
  return header;
}

void EncodeRecordPayload(const LogRecord& rec, std::string* out) {
  Encoder e(out);
  e.PutU8(static_cast<uint8_t>(rec.type));
  e.PutI64(rec.session_id);
  switch (rec.type) {
    case LogRecordType::kSessionOpened:
      EncodeSessionSpec(rec.spec, out);
      break;
    case LogRecordType::kRoundAnswered: {
      e.PutI64(rec.round_id);
      e.PutU32(static_cast<uint32_t>(rec.answers.size()));
      uint8_t byte = 0;
      for (size_t i = 0; i < rec.answers.size(); ++i) {
        if (rec.answers[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
        if (i % 8 == 7) {
          e.PutU8(byte);
          byte = 0;
        }
      }
      if (rec.answers.size() % 8 != 0) e.PutU8(byte);
      break;
    }
    case LogRecordType::kSessionClosed:
      break;
  }
}

bool DecodeRecordPayload(std::string_view payload, LogRecord* out) {
  Decoder in(payload);
  uint8_t type;
  if (!in.GetU8(&type)) return false;
  if (type < static_cast<uint8_t>(LogRecordType::kSessionOpened) ||
      type > static_cast<uint8_t>(LogRecordType::kSessionClosed)) {
    return false;
  }
  LogRecord rec;
  rec.type = static_cast<LogRecordType>(type);
  if (!in.GetI64(&rec.session_id)) return false;
  switch (rec.type) {
    case LogRecordType::kSessionOpened:
      if (!DecodeSessionSpec(in, &rec.spec)) return false;
      break;
    case LogRecordType::kRoundAnswered: {
      uint32_t count;
      if (!in.GetI64(&rec.round_id) || !in.GetU32(&count)) return false;
      if (in.remaining() < (count + 7) / 8) return false;
      rec.answers.resize(count);
      uint8_t byte = 0;
      for (uint32_t i = 0; i < count; ++i) {
        if (i % 8 == 0 && !in.GetU8(&byte)) return false;
        rec.answers[i] = (byte >> (i % 8)) & 1;
      }
      break;
    }
    case LogRecordType::kSessionClosed:
      break;
  }
  if (!in.empty()) return false;  // trailing garbage inside a valid CRC
  *out = std::move(rec);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionLog (append side)

SessionLog::SessionLog(std::unique_ptr<WritableFile> file, std::string path,
                       SessionLogOptions options)
    : file_(std::move(file)), path_(std::move(path)), options_(options) {}

std::unique_ptr<SessionLog> SessionLog::Open(Fs* fs, const std::string& path,
                                             const SessionLogOptions& options,
                                             std::string* error) {
  bool needs_header = true;
  if (fs->FileExists(path)) {
    std::string contents;
    if (!fs->ReadFile(path, &contents)) {
      *error = "cannot read existing log " + path;
      return nullptr;
    }
    if (!contents.empty()) {
      if (contents.size() < kHeaderSize) {
        *error = "log " + path + " has a torn header; recover it first";
        return nullptr;
      }
      Decoder in(std::string_view(contents).substr(0, kHeaderSize));
      uint32_t magic = 0, version = 0;
      in.GetU32(&magic);
      in.GetU32(&version);
      if (magic != kLogMagic || version != kLogVersion) {
        std::ostringstream os;
        os << "log " << path << " has foreign header (magic=" << std::hex
           << magic << " version=" << std::dec << version << ")";
        *error = os.str();
        return nullptr;
      }
      needs_header = false;
    }
  }
  auto file = fs->OpenAppend(path);
  if (file == nullptr) {
    *error = "cannot open " + path + " for append";
    return nullptr;
  }
  auto log = std::unique_ptr<SessionLog>(
      new SessionLog(std::move(file), path, options));
  if (needs_header) {
    // The header is synced unconditionally: a crash between creation and
    // the first record must leave a recognizable (empty) log, not a
    // zero-byte file that reads as torn.
    if (!log->file_->Append(HeaderBytes())) {
      *error = "cannot write header of " + path;
      return nullptr;
    }
    if (!log->file_->Sync()) {
      *error = "cannot sync header of " + path;
      return nullptr;
    }
  }
  return log;
}

bool SessionLog::AppendRecord(std::string_view payload) {
  MutexLock lock(&mutex_);
  if (poisoned_) return false;
  std::string frame;
  Encoder e(&frame);
  e.PutU32(static_cast<uint32_t>(payload.size()));
  e.PutU32(MaskCrc32c(Crc32c(payload)));
  frame.append(payload);
  if (!file_->Append(frame)) {
    // The tail is indeterminate — a prefix of the frame may be on disk.
    // Appending anything more would interleave with garbage, so the
    // handle is done; only recovery (read, truncate, reopen) continues.
    poisoned_ = true;
    return false;
  }
  ++records_;
  ++records_since_sync_;
  bool needs_sync = false;
  switch (options_.fsync_policy) {
    case FsyncPolicy::kEveryAppend:
      needs_sync = true;
      break;
    case FsyncPolicy::kEveryN:
      needs_sync = records_since_sync_ >= options_.fsync_every_n;
      break;
    case FsyncPolicy::kNever:
      break;
  }
  if (needs_sync) {
    if (!file_->Sync()) {
      // Not poisoned: the frame is buffered whole. The caller must not
      // acknowledge, but may retry with a fresh append of the same record
      // — recovery treats the resulting duplicate as a no-op.
      return false;
    }
    ++syncs_;
    records_since_sync_ = 0;
  }
  return true;
}

bool SessionLog::AppendSessionOpened(int64_t session_id,
                                     const SessionSpec& spec) {
  LogRecord rec;
  rec.type = LogRecordType::kSessionOpened;
  rec.session_id = session_id;
  rec.spec = spec;
  std::string payload;
  EncodeRecordPayload(rec, &payload);
  return AppendRecord(payload);
}

bool SessionLog::AppendRoundAnswered(int64_t session_id, int64_t round_id,
                                     BitSpan answers) {
  LogRecord rec;
  rec.type = LogRecordType::kRoundAnswered;
  rec.session_id = session_id;
  rec.round_id = round_id;
  rec.answers.resize(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) rec.answers[i] = answers.Get(i);
  std::string payload;
  EncodeRecordPayload(rec, &payload);
  return AppendRecord(payload);
}

bool SessionLog::AppendSessionClosed(int64_t session_id) {
  LogRecord rec;
  rec.type = LogRecordType::kSessionClosed;
  rec.session_id = session_id;
  std::string payload;
  EncodeRecordPayload(rec, &payload);
  return AppendRecord(payload);
}

bool SessionLog::SyncNow() {
  MutexLock lock(&mutex_);
  if (poisoned_) return false;
  if (!file_->Sync()) return false;
  ++syncs_;
  records_since_sync_ = 0;
  return true;
}

bool SessionLog::poisoned() const {
  MutexLock lock(&mutex_);
  return poisoned_;
}

int64_t SessionLog::records_appended() const {
  MutexLock lock(&mutex_);
  return records_;
}

int64_t SessionLog::syncs() const {
  MutexLock lock(&mutex_);
  return syncs_;
}

// ---------------------------------------------------------------------------
// ReadLog (scan side)

const char* ToString(LogReadStatus s) {
  switch (s) {
    case LogReadStatus::kOk:
      return "ok";
    case LogReadStatus::kBadHeader:
      return "bad-header";
    case LogReadStatus::kCorruptRecord:
      return "corrupt-record";
    case LogReadStatus::kBadRecord:
      return "bad-record";
  }
  return "?";
}

LogReadResult ReadLog(Fs* fs, const std::string& path) {
  LogReadResult result;
  if (!fs->FileExists(path)) return result;
  result.existed = true;
  std::string contents;
  if (!fs->ReadFile(path, &contents)) {
    result.status = LogReadStatus::kBadHeader;
    result.error = "cannot read " + path;
    return result;
  }
  if (contents.size() < SessionLog::kHeaderSize) {
    // A header prefix is a torn first write, not a foreign file: keep the
    // torn-tail contract (truncate to zero, reopen rewrites the header).
    result.torn_tail = !contents.empty();
    result.dropped_bytes = contents.size();
    if (result.torn_tail) {
      result.error = "torn header (" + std::to_string(contents.size()) +
                     " of 8 bytes) in " + path;
    }
    return result;
  }
  {
    Decoder in(std::string_view(contents).substr(0, SessionLog::kHeaderSize));
    uint32_t magic = 0, version = 0;
    in.GetU32(&magic);
    in.GetU32(&version);
    if (magic != kLogMagic || version != kLogVersion) {
      result.status = LogReadStatus::kBadHeader;
      std::ostringstream os;
      os << "foreign header in " << path << " (magic=" << std::hex << magic
         << " version=" << std::dec << version << ")";
      result.error = os.str();
      return result;
    }
  }

  uint64_t offset = SessionLog::kHeaderSize;
  result.valid_bytes = offset;
  std::string_view data(contents);
  while (offset < data.size()) {
    // Anything short of a complete frame is a torn tail: a crashed append
    // leaves a prefix of a valid frame, so "not enough bytes" is the
    // expected post-crash shape and is truncated loudly, never decoded.
    if (data.size() - offset < kFrameHeaderSize) break;
    Decoder fh(data.substr(offset, kFrameHeaderSize));
    uint32_t len = 0, masked_crc = 0;
    fh.GetU32(&len);
    fh.GetU32(&masked_crc);
    if (len > kMaxPayload) {
      result.status = LogReadStatus::kCorruptRecord;
      std::ostringstream os;
      os << "frame at offset " << offset << " of " << path
         << " claims implausible length " << len;
      result.error = os.str();
      return result;
    }
    if (data.size() - offset - kFrameHeaderSize < len) break;  // torn tail
    std::string_view payload = data.substr(offset + kFrameHeaderSize, len);
    if (MaskCrc32c(Crc32c(payload)) != masked_crc) {
      // The frame is *complete* — this is bit rot or a torn middle, not a
      // torn tail. Replaying around it would acknowledge-then-forget, so
      // the whole log is rejected.
      result.status = LogReadStatus::kCorruptRecord;
      std::ostringstream os;
      os << "CRC mismatch in frame at offset " << offset << " of " << path
         << " (record " << result.records.size() << ")";
      result.error = os.str();
      return result;
    }
    LogRecord rec;
    if (!DecodeRecordPayload(payload, &rec)) {
      result.status = LogReadStatus::kBadRecord;
      std::ostringstream os;
      os << "CRC-valid frame at offset " << offset << " of " << path
         << " does not decode (record " << result.records.size() << ")";
      result.error = os.str();
      return result;
    }
    result.records.push_back(std::move(rec));
    offset += kFrameHeaderSize + len;
    result.valid_bytes = offset;
  }
  if (offset < data.size()) {
    result.torn_tail = true;
    result.dropped_bytes = data.size() - offset;
    std::ostringstream os;
    os << "torn tail: " << result.dropped_bytes << " byte(s) past offset "
       << offset << " of " << path;
    result.error = os.str();
  }
  return result;
}

}  // namespace qhorn
