// Append-only, CRC-framed session log — the durability substrate of
// DurableRouter (durable_router.h).
//
// One log file is one *shard*: an 8-byte header (magic + version) followed
// by length-prefixed frames
//
//   [u32 payload_len][u32 masked_crc32c(payload)][payload]
//   payload = [u8 record_type][record body, codec.h encoding]
//
// Three record types cover the whole pending-session protocol:
//
//   SessionOpened  {session_id, SessionSpec} — everything needed to
//                  re-create the session (target/mutant queries, noise
//                  seed, job plan);
//   RoundAnswered  {session_id, round_id, answer bits} — one accepted
//                  ProvideAnswers call;
//   SessionClosed  {session_id}.
//
// Sessions are deterministic functions of (spec, answer sequence), so this
// *is* the whole state: replaying a shard's records through a fresh router
// reproduces every transcript bit for bit — there are no checkpoint
// records and no state snapshots to keep consistent.
//
// Failure taxonomy, which ReadLog distinguishes loudly rather than
// papering over:
//
//   * torn tail   — the final frame is incomplete (power loss mid-append).
//     Expected after any crash; ReadLog reports the valid prefix length so
//     recovery can truncate, and keeps every complete record.
//   * corruption  — a *complete* frame whose CRC does not match (bit rot,
//     torn middle, alien bytes). Never silently skipped: the log is
//     rejected with a typed error, because a missing middle record means
//     the replay suffix would diverge from what was acknowledged.
//   * bad record  — CRC-valid frame whose payload does not decode (foreign
//     or future record type). Also a typed rejection: the CRC says the
//     bytes are what was written, so the *writer* was wrong, and guessing
//     is worse than stopping.

#ifndef QHORN_DURABLE_SESSION_LOG_H_
#define QHORN_DURABLE_SESSION_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/durable/fs.h"
#include "src/util/bit_span.h"
#include "src/util/checked_mutex.h"
#include "src/workload/workload.h"

namespace qhorn {

enum class LogRecordType : uint8_t {
  kSessionOpened = 1,
  kRoundAnswered = 2,
  kSessionClosed = 3,
};

/// One decoded log record (tagged union, `type` selects the live fields).
struct LogRecord {
  LogRecordType type = LogRecordType::kSessionOpened;
  int64_t session_id = 0;
  SessionSpec spec;            // kSessionOpened
  int64_t round_id = 0;        // kRoundAnswered
  std::vector<bool> answers;   // kRoundAnswered
};

/// When appended records become durable. Only kEveryAppend gives the full
/// log-before-ack guarantee (an acknowledged answer survives any crash);
/// the relaxed policies trade the tail of un-synced acknowledgements for
/// fewer fsyncs and exist for benchmarks and tests.
enum class FsyncPolicy {
  kEveryAppend,  ///< sync after every record — the durable default
  kEveryN,       ///< sync after every N records
  kNever,        ///< never sync (a crash loses every buffered record)
};

struct SessionLogOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryAppend;
  int fsync_every_n = 32;  ///< used by kEveryN
};

/// Append side of one shard. Thread-safe (appends serialize internally;
/// DurableRouter's commit hooks call in from executor lanes).
class SessionLog {
 public:
  /// Opens `path` for appending, creating it (and writing the header,
  /// synced) if absent or empty. The caller is responsible for having
  /// validated/truncated an existing file first (Recover does); Open never
  /// reads back more than the header. Returns nullptr with `*error` set on
  /// I/O failure or a foreign header.
  static std::unique_ptr<SessionLog> Open(Fs* fs, const std::string& path,
                                          const SessionLogOptions& options,
                                          std::string* error);

  /// Appends one record; true iff the record is on storage per the fsync
  /// policy. A false return distinguishes two caller-visible states via
  /// poisoned(): a failed *write* poisons the log (the tail is
  /// indeterminate, every later append is refused), while a failed *sync*
  /// leaves the record buffered and whole — the caller may retry by
  /// appending the record again (recovery skips the duplicate).
  bool AppendSessionOpened(int64_t session_id, const SessionSpec& spec);
  bool AppendRoundAnswered(int64_t session_id, int64_t round_id,
                           BitSpan answers);
  bool AppendSessionClosed(int64_t session_id);

  /// Forces a sync regardless of policy (shutdown barrier). False on
  /// fsync failure (retryable) or a poisoned log.
  bool SyncNow();

  /// True once an append failed at the write (not sync) stage: the file
  /// tail is indeterminate and this handle refuses all further appends.
  /// The only way forward is crash-style recovery (re-read + truncate).
  bool poisoned() const;

  int64_t records_appended() const;
  int64_t syncs() const;

  const std::string& path() const { return path_; }

  /// Size of the log header, and the first byte offset of frame data.
  static constexpr uint64_t kHeaderSize = 8;

 private:
  SessionLog(std::unique_ptr<WritableFile> file, std::string path,
             SessionLogOptions options);

  bool AppendRecord(std::string_view payload);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  SessionLogOptions options_;

  // Held across the file Append/Sync (LockRank::kWalShard < kFaultFs/kFs:
  // the filesystem locks nest inside). Acquired from DurableRouter commit
  // hooks, which hold exactly one router-shard mutex (kRouterShard) above.
  mutable Mutex mutex_{"wal-shard", LockRank::kWalShard};
  bool poisoned_ QHORN_GUARDED_BY(mutex_) = false;
  int64_t records_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t records_since_sync_ QHORN_GUARDED_BY(mutex_) = 0;
  int64_t syncs_ QHORN_GUARDED_BY(mutex_) = 0;
};

enum class LogReadStatus {
  kOk,             ///< every complete frame decoded (torn tail possible)
  kBadHeader,      ///< header complete but wrong magic/version
  kCorruptRecord,  ///< a complete frame failed its CRC — log rejected
  kBadRecord,      ///< a CRC-valid frame failed to decode — log rejected
};

const char* ToString(LogReadStatus s);

/// Result of scanning one shard file.
struct LogReadResult {
  LogReadStatus status = LogReadStatus::kOk;
  bool existed = false;  ///< false: no such file (status stays kOk, empty)
  std::vector<LogRecord> records;
  /// Header + every complete valid frame. On kOk with a torn tail this is
  /// the truncation point; on a typed rejection it marks where the bad
  /// frame starts (diagnostic only — a rejected log must not be replayed).
  uint64_t valid_bytes = 0;
  uint64_t dropped_bytes = 0;  ///< torn-tail bytes past valid_bytes
  bool torn_tail = false;
  std::string error;  ///< human-readable detail for any non-clean outcome
};

/// Scans a shard: validates the header, CRC-checks and decodes every
/// frame. Pure read — never truncates or repairs (Recover owns that).
LogReadResult ReadLog(Fs* fs, const std::string& path);

}  // namespace qhorn

#endif  // QHORN_DURABLE_SESSION_LOG_H_
