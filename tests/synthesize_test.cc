// Question materialization: synthesis, database selection (§5), and the
// data-domain oracle round trip.

#include "src/relation/synthesize.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/learn/rp_learner.h"
#include "src/relation/chocolate.h"

namespace qhorn {
namespace {

class SynthesizeTest : public ::testing::Test {
 protected:
  SynthesizeTest()
      : binding_(ChocolateSchema(), ChocolatePropositions()),
        synthesizer_(&binding_) {}

  BooleanBinding binding_;
  TupleSynthesizer synthesizer_;
};

TEST_F(SynthesizeTest, EveryAssignmentRoundTrips) {
  // All 2^3 Boolean chocolate classes must be constructible (§2: with 3
  // propositions there are 8 chocolate classes).
  for (Tuple t = 0; t < 8; ++t) {
    DataTuple data = synthesizer_.Synthesize(t);
    EXPECT_EQ(binding_.ToBoolean(data), t) << FormatTuple(t, 3);
  }
}

TEST_F(SynthesizeTest, ObjectRoundTrips) {
  TupleSet question = TupleSet::Parse({"111", "011", "100"});
  NestedObject box = synthesizer_.SynthesizeObject(question, "box-1");
  EXPECT_EQ(box.name, "box-1");
  EXPECT_EQ(box.tuples.size(), 3u);
  EXPECT_EQ(binding_.ObjectToBoolean(box), question);
}

TEST_F(SynthesizeTest, NegatedEqualsGetsFreshValue) {
  // p3 false → origin must differ from Madagascar.
  DataTuple data = synthesizer_.Synthesize(ParseTuple("110"));
  EXPECT_NE(data[4].string_value(), "Madagascar");
}

TEST(DatabaseSelectorTest, PrefersPoolTuples) {
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  Rng rng(3);
  FlatRelation pool = RandomChocolateDatabase(500, rng);
  DatabaseSelector selector(&pool, &binding);
  // With 500 random chocolates every Boolean class almost surely has a
  // real representative.
  int64_t pool_hits = 0;
  for (Tuple t = 0; t < 8; ++t) {
    DataTuple picked = selector.PickOrSynthesize(t, rng);
    EXPECT_EQ(binding.ToBoolean(picked), t);
  }
  pool_hits = selector.from_pool();
  EXPECT_GT(pool_hits, 4);
}

TEST(DatabaseSelectorTest, FallsBackToSynthesisOnEmptyPool) {
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  FlatRelation empty_pool(ChocolateSchema());
  DatabaseSelector selector(&empty_pool, &binding);
  Rng rng(4);
  DataTuple t = selector.PickOrSynthesize(ParseTuple("101"), rng);
  EXPECT_EQ(binding.ToBoolean(t), ParseTuple("101"));
  EXPECT_EQ(selector.from_pool(), 0);
  EXPECT_EQ(selector.synthesized(), 1);
}

TEST(DatabaseSelectorTest, MaterializesWholeObjects) {
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  Rng rng(5);
  FlatRelation pool = RandomChocolateDatabase(100, rng);
  DatabaseSelector selector(&pool, &binding);
  TupleSet question = TupleSet::Parse({"111", "010"});
  NestedObject box = selector.MaterializeObject(question, "box", rng);
  EXPECT_EQ(binding.ObjectToBoolean(box), question);
}

TEST(DataDomainOracleTest, AgreesWithBooleanOracle) {
  Query intended = IntroChocolateQuery();
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  DataDomainOracle data_oracle(intended, &binding);
  QueryOracle bool_oracle(intended);
  for (Tuple a = 0; a < 8; ++a) {
    for (Tuple b = a; b < 8; ++b) {
      TupleSet question{a, b};
      EXPECT_EQ(data_oracle.IsAnswer(question), bool_oracle.IsAnswer(question))
          << question.ToString(3);
    }
  }
  EXPECT_EQ(data_oracle.shown_objects().size(), 36u);
}

TEST(DataDomainOracleTest, EndToEndLearningThroughTheDataDomain) {
  // Learn the intro chocolate query by showing synthesized boxes to the
  // simulated user — the full DataPlay-style loop.
  Query intended = IntroChocolateQuery();
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  DataDomainOracle user(intended, &binding);
  RpLearnerResult result = LearnRolePreserving(3, &user);
  EXPECT_TRUE(Equivalent(result.query, intended))
      << result.query.ToString();
  EXPECT_GT(user.shown_objects().size(), 0u);
}

}  // namespace
}  // namespace qhorn
