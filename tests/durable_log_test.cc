// SessionLog + ReadLog + the fault-injection filesystems: the unit family
// under the crash-recovery differential (durable_crash_test.cc).
//
// The contracts pinned here, one per failure shape:
//   * torn tail       → kOk + torn_tail, valid prefix kept, drop reported;
//   * bit rot         → kCorruptRecord, whole log rejected;
//   * undecodable     → kBadRecord (CRC says written-as-is, writer wrong);
//   * failed append   → log poisoned, all later appends refused;
//   * failed sync     → retryable, the duplicate is recovery's problem.
//
// CTest label: durable.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/durable/fs.h"
#include "src/durable/session_log.h"
#include "src/util/bit_span.h"
#include "src/util/check.h"
#include "src/util/crc32c.h"
#include "src/workload/workload.h"

namespace qhorn {
namespace {

constexpr char kPath[] = "shard-0.qlog";

// RFC 3720 (iSCSI) known-answer vectors: the framing is only as good as
// the polynomial actually implemented.
TEST(Crc32cTest, KnownAnswerVectors) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalEqualsOneShot) {
  EXPECT_EQ(Crc32c(std::string_view("456789"), Crc32c(std::string_view("123"))),
            Crc32c(std::string_view("123456789")));
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc) << "masking must actually move the bits";
  }
}

SessionSpec SampleSpec(size_t index = 0) {
  Fleet fleet = GenerateFleet(WorkloadSpec::FromSeed(7));
  QHORN_CHECK(index < fleet.sessions.size());
  return fleet.sessions[index];
}

std::unique_ptr<SessionLog> MustOpen(Fs* fs,
                                     SessionLogOptions options = {}) {
  std::string error;
  auto log = SessionLog::Open(fs, kPath, options, &error);
  EXPECT_NE(log, nullptr) << error;
  return log;
}

BitSpan MakeAnswers(BitVec& vec, std::initializer_list<bool> bits) {
  BitSpan span = vec.Prepare(bits.size());
  size_t i = 0;
  for (bool b : bits) span.Set(i++, b);
  return span;
}

TEST(SessionLogTest, OpenWritesSyncedHeader) {
  MemFs mem;
  auto log = MustOpen(&mem);
  ASSERT_NE(log, nullptr);
  // The header is durable before any record: a crash between open and the
  // first append must leave a recognizable (empty) log, not garbage.
  EXPECT_EQ(mem.DurableSize(kPath), SessionLog::kHeaderSize);

  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kOk);
  EXPECT_TRUE(r.existed);
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.valid_bytes, SessionLog::kHeaderSize);
}

TEST(SessionLogTest, ReadMissingFileIsCleanAndEmpty) {
  MemFs mem;
  LogReadResult r = ReadLog(&mem, "never-created.qlog");
  EXPECT_EQ(r.status, LogReadStatus::kOk);
  EXPECT_FALSE(r.existed);
  EXPECT_TRUE(r.records.empty());
}

TEST(SessionLogTest, RecordsRoundTrip) {
  MemFs mem;
  SessionSpec spec = SampleSpec();
  {
    auto log = MustOpen(&mem);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->AppendSessionOpened(17, spec));
    BitVec vec;
    ASSERT_TRUE(
        log->AppendRoundAnswered(17, 0, MakeAnswers(vec, {true, false, true})));
    ASSERT_TRUE(log->AppendRoundAnswered(17, 1, MakeAnswers(vec, {false})));
    ASSERT_TRUE(log->AppendSessionClosed(17));
    EXPECT_EQ(log->records_appended(), 4);
    EXPECT_FALSE(log->poisoned());
  }

  LogReadResult r = ReadLog(&mem, kPath);
  ASSERT_EQ(r.status, LogReadStatus::kOk) << r.error;
  ASSERT_EQ(r.records.size(), 4u);

  EXPECT_EQ(r.records[0].type, LogRecordType::kSessionOpened);
  EXPECT_EQ(r.records[0].session_id, 17);
  EXPECT_EQ(r.records[0].spec.n, spec.n);
  EXPECT_EQ(r.records[0].spec.target, spec.target);
  EXPECT_EQ(r.records[0].spec.mutant, spec.mutant);
  EXPECT_EQ(r.records[0].spec.jobs, spec.jobs);
  EXPECT_EQ(r.records[0].spec.noise_seed, spec.noise_seed);

  EXPECT_EQ(r.records[1].type, LogRecordType::kRoundAnswered);
  EXPECT_EQ(r.records[1].session_id, 17);
  EXPECT_EQ(r.records[1].round_id, 0);
  EXPECT_EQ(r.records[1].answers, (std::vector<bool>{true, false, true}));

  EXPECT_EQ(r.records[2].round_id, 1);
  EXPECT_EQ(r.records[2].answers, std::vector<bool>{false});

  EXPECT_EQ(r.records[3].type, LogRecordType::kSessionClosed);
  EXPECT_EQ(r.records[3].session_id, 17);
  EXPECT_EQ(r.valid_bytes, mem.DurableSize(kPath));
  EXPECT_EQ(r.dropped_bytes, 0u);
}

TEST(SessionLogTest, WideAnswerRoundSurvivesByteBoundaries) {
  MemFs mem;
  auto log = MustOpen(&mem);
  ASSERT_NE(log, nullptr);
  // 67 bits: crosses byte and word boundaries, with a ragged final byte.
  BitVec vec;
  BitSpan span = vec.Prepare(67);
  std::vector<bool> expect(67);
  for (size_t i = 0; i < 67; ++i) {
    bool bit = (i % 3) == 0 || i == 66;
    span.Set(i, bit);
    expect[i] = bit;
  }
  ASSERT_TRUE(log->AppendRoundAnswered(5, 9, span));

  LogReadResult r = ReadLog(&mem, kPath);
  ASSERT_EQ(r.status, LogReadStatus::kOk) << r.error;
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].answers, expect);
}

TEST(SessionLogTest, TornTailIsTruncatedLoudlyNotRejected) {
  MemFs mem;
  uint64_t after_first = 0;
  {
    auto log = MustOpen(&mem);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->AppendSessionOpened(1, SampleSpec()));
    after_first = mem.DurableSize(kPath);
    ASSERT_TRUE(log->AppendSessionClosed(1));
  }
  // Power loss mid-append: keep the first record plus a strict prefix of
  // the second frame.
  uint64_t torn = after_first + 5;
  ASSERT_LT(torn, mem.DurableSize(kPath));
  ASSERT_TRUE(mem.Truncate(kPath, torn));

  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kOk) << r.error;
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].type, LogRecordType::kSessionOpened);
  EXPECT_EQ(r.valid_bytes, after_first);
  EXPECT_EQ(r.dropped_bytes, 5u);
  EXPECT_FALSE(r.error.empty()) << "torn tails must be reported loudly";
}

TEST(SessionLogTest, TruncatedHeaderIsATornTail) {
  MemFs mem;
  { MustOpen(&mem); }
  ASSERT_TRUE(mem.Truncate(kPath, 3));
  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kOk);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_EQ(r.dropped_bytes, 3u);
}

TEST(SessionLogTest, ForeignHeaderIsRejected) {
  MemFs mem;
  auto f = mem.OpenAppend(kPath);
  ASSERT_TRUE(f->Append("NOTQHORN-and-more-bytes"));
  ASSERT_TRUE(f->Sync());

  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kBadHeader);

  std::string error;
  auto log = SessionLog::Open(&mem, kPath, {}, &error);
  EXPECT_EQ(log, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(SessionLogTest, BitRotInACompleteFrameRejectsTheLog) {
  MemFs mem;
  {
    auto log = MustOpen(&mem);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->AppendSessionOpened(1, SampleSpec()));
    ASSERT_TRUE(log->AppendSessionClosed(1));
  }
  // Flip one payload bit of the *first* record: both frames stay complete,
  // so this must read as corruption, not as a torn tail.
  mem.FlipDurableBitForTest(kPath, (SessionLog::kHeaderSize + 9) * 8 + 2);

  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kCorruptRecord);
  EXPECT_FALSE(r.error.empty());
}

TEST(SessionLogTest, CrcValidButUndecodableFrameIsBadRecord) {
  MemFs mem;
  { MustOpen(&mem); }
  // Hand-craft a frame whose CRC is correct but whose record type (0x7f)
  // no release has ever written.
  std::string payload;
  payload.push_back(0x7f);
  payload += "junk-body";
  std::string frame;
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = MaskCrc32c(Crc32c(payload));
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(len >> (8 * i)));
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(crc >> (8 * i)));
  frame += payload;

  auto f = mem.OpenAppend(kPath);
  ASSERT_TRUE(f->Append(frame));
  ASSERT_TRUE(f->Sync());

  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kBadRecord);
  EXPECT_FALSE(r.error.empty());
}

TEST(SessionLogTest, FailedAppendPoisonsTheLog) {
  MemFs mem;
  FaultFs faults(&mem, /*seed=*/11);
  auto log = MustOpen(&faults);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendSessionOpened(1, SampleSpec()));

  faults.ArmTornAppend(/*after=*/1);
  EXPECT_FALSE(log->AppendSessionClosed(1));
  EXPECT_TRUE(log->poisoned());
  EXPECT_EQ(faults.torn_appends_fired(), 1);

  // Poison is sticky: the tail is indeterminate, so even a clean append
  // must be refused — only crash-style recovery may touch this file again.
  EXPECT_FALSE(log->AppendSessionClosed(1));
  EXPECT_FALSE(log->SyncNow());

  // And the torn tail on disk is exactly what recovery expects to chop.
  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kOk) << r.error;
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_TRUE(r.torn_tail || r.dropped_bytes == 0)
      << "a strict prefix either tears the tail or vanishes";
}

TEST(SessionLogTest, FailedSyncIsRetryableNotPoison) {
  MemFs mem;
  FaultFs faults(&mem, /*seed=*/12);
  auto log = MustOpen(&faults);  // kEveryAppend
  ASSERT_NE(log, nullptr);

  faults.ArmSyncFailure(/*after=*/1);
  SessionSpec spec = SampleSpec();
  EXPECT_FALSE(log->AppendSessionOpened(3, spec));
  EXPECT_FALSE(log->poisoned()) << "a failed fsync leaves the record whole";
  EXPECT_EQ(faults.sync_failures_fired(), 1);

  // The caller's contract: retry by appending again. The log now carries a
  // duplicate record — recovery's idempotent-skip handles that, not us.
  EXPECT_TRUE(log->AppendSessionOpened(3, spec));

  LogReadResult r = ReadLog(&mem, kPath);
  ASSERT_EQ(r.status, LogReadStatus::kOk) << r.error;
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].session_id, r.records[1].session_id);
}

TEST(SessionLogTest, FsyncPolicyNeverLosesBufferedTailOnCrash) {
  MemFs mem;
  SessionLogOptions opts;
  opts.fsync_policy = FsyncPolicy::kNever;
  auto log = MustOpen(&mem, opts);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendSessionOpened(1, SampleSpec()));
  ASSERT_TRUE(log->AppendSessionClosed(1));

  // Both records are readable live but nothing beyond the header is
  // durable; the simulated power cut erases them.
  EXPECT_EQ(mem.DurableSize(kPath), SessionLog::kHeaderSize);
  EXPECT_GT(mem.TotalSize(kPath), SessionLog::kHeaderSize);
  mem.CrashAll();
  LogReadResult r = ReadLog(&mem, kPath);
  EXPECT_EQ(r.status, LogReadStatus::kOk) << r.error;
  EXPECT_TRUE(r.records.empty());
}

TEST(SessionLogTest, FsyncPolicyEveryNBatchesSyncs) {
  MemFs mem;
  SessionLogOptions opts;
  opts.fsync_policy = FsyncPolicy::kEveryN;
  opts.fsync_every_n = 2;
  auto log = MustOpen(&mem, opts);
  ASSERT_NE(log, nullptr);
  int64_t header_syncs = log->syncs();

  ASSERT_TRUE(log->AppendSessionClosed(1));
  EXPECT_EQ(log->syncs(), header_syncs) << "first of a pair stays buffered";
  uint64_t durable_before = mem.DurableSize(kPath);
  ASSERT_TRUE(log->AppendSessionClosed(2));
  EXPECT_EQ(log->syncs(), header_syncs + 1);
  EXPECT_GT(mem.DurableSize(kPath), durable_before);

  // SyncNow is the shutdown barrier regardless of policy.
  ASSERT_TRUE(log->AppendSessionClosed(3));
  EXPECT_LT(mem.DurableSize(kPath), mem.TotalSize(kPath));
  ASSERT_TRUE(log->SyncNow());
  EXPECT_EQ(mem.DurableSize(kPath), mem.TotalSize(kPath));
}

TEST(SessionLogTest, MemFsCrashKeepsDurablePrefixOnly) {
  MemFs mem;
  auto f = mem.OpenAppend("file");
  ASSERT_TRUE(f->Append("durable-part"));
  ASSERT_TRUE(f->Sync());
  ASSERT_TRUE(f->Append("buffered-tail"));
  EXPECT_EQ(mem.TotalSize("file"), 25u);
  EXPECT_EQ(mem.DurableSize("file"), 12u);

  mem.CrashAll();
  std::string back;
  ASSERT_TRUE(mem.ReadFile("file", &back));
  EXPECT_EQ(back, "durable-part");
}

TEST(SessionLogTest, FaultFsShortWriteBuffersPrefixWithoutDurability) {
  MemFs mem;
  FaultFs faults(&mem, /*seed=*/99);
  auto f = faults.OpenAppend("file");
  faults.ArmShortWrite(/*after=*/1);
  EXPECT_FALSE(f->Append("0123456789"));
  EXPECT_EQ(faults.short_writes_fired(), 1);
  EXPECT_FALSE(faults.fault_armed());
  // A strict prefix may be buffered, but none of it is durable: the
  // crash-free analogue of a torn append.
  EXPECT_LT(mem.TotalSize("file"), 10u);
  EXPECT_EQ(mem.DurableSize("file"), 0u);
}

TEST(SessionLogTest, FaultFsBitFlipIsSilent) {
  MemFs mem;
  FaultFs faults(&mem, /*seed=*/5);
  auto f = faults.OpenAppend("file");
  faults.ArmBitFlip(/*after=*/1, /*bit=*/1);
  EXPECT_TRUE(f->Append("A"))
      << "bit rot reports success — that is what makes it rot";
  EXPECT_EQ(faults.bit_flips_fired(), 1);
  std::string back;
  ASSERT_TRUE(mem.ReadFile("file", &back));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], 'C');  // 'A' (0x41) with bit 1 inverted
}

}  // namespace
}  // namespace qhorn
