// Version-space adversary: consistency and maximal-survival behaviour.

#include "src/oracle/adversary.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

TEST(AdversaryTest, NeverContradictsAllCandidates) {
  std::vector<Query> candidates = {Query::Parse("∃x1", 2),
                                   Query::Parse("∃x2", 2)};
  AdversaryOracle adversary(candidates);
  // {11} is an answer for both; the adversary must say answer.
  EXPECT_TRUE(adversary.IsAnswer(TupleSet::Parse({"11"})));
  EXPECT_EQ(adversary.candidates().size(), 2u);
}

TEST(AdversaryTest, KeepsTheLargerSide) {
  std::vector<Query> candidates = {
      Query::Parse("∃x1", 2),  // {10}: answer
      Query::Parse("∃x2", 2),  // {10}: non-answer
      Query::Parse("∃x1x2", 2),  // {10}: non-answer
  };
  AdversaryOracle adversary(candidates);
  EXPECT_FALSE(adversary.IsAnswer(TupleSet::Parse({"10"})));
  EXPECT_EQ(adversary.candidates().size(), 2u);
}

TEST(AdversaryTest, TieFavoursNonAnswer) {
  std::vector<Query> candidates = {Query::Parse("∃x1", 2),
                                   Query::Parse("∃x2", 2)};
  AdversaryOracle adversary(candidates);
  // {10}: one candidate says answer, one non-answer → non-answer wins.
  EXPECT_FALSE(adversary.IsAnswer(TupleSet::Parse({"10"})));
  EXPECT_EQ(adversary.candidates().size(), 1u);
  EXPECT_TRUE(adversary.Pinned());
}

TEST(AdversaryTest, StaysConsistentAcrossQuestions) {
  // Whatever it answered earlier must remain true of the survivors.
  std::vector<Query> candidates;
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      Query q(4);
      q.AddExistential(VarBit(i) | VarBit(j));
      candidates.push_back(q);
    }
  }
  AdversaryOracle adversary(candidates);
  TupleSet q1 = TupleSet::Parse({"1100"});
  bool r1 = adversary.IsAnswer(q1);
  TupleSet q2 = TupleSet::Parse({"0011"});
  adversary.IsAnswer(q2);
  for (const Query& survivor : adversary.candidates()) {
    EXPECT_EQ(survivor.Evaluate(q1), r1);
  }
}

TEST(AdversaryDeathTest, EmptyCandidateSetAborts) {
  EXPECT_DEATH(AdversaryOracle(std::vector<Query>{}), "");
}

}  // namespace
}  // namespace qhorn
