// Runtime lock-rank checker: every discipline violation must abort with a
// diagnostic naming both locks and the full held stack — before the
// would-be deadlock blocks — and a rank-clean multi-threaded walk of the
// real lock chain must run silently.
//
// The whole suite is gated on kLockRankChecksEnabled: release builds
// compile the checker out (the BM_RouterContention gate pins that this
// costs nothing), so the death tests would not die there and are skipped.
//
// CTest label: continuation (the checker guards the same machinery the
// continuation suites stress).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/session/router.h"
#include "src/util/bit_span.h"
#include "src/util/checked_mutex.h"
#include "src/util/executor.h"
#include "src/util/fiber.h"
#include "src/util/lock_ranks.h"

namespace qhorn {
namespace {

#define SKIP_WITHOUT_RANK_CHECKS()                                     \
  do {                                                                 \
    if (!kLockRankChecksEnabled) {                                     \
      GTEST_SKIP() << "lock-rank checker compiled out (release build)"; \
    }                                                                  \
  } while (0)

TEST(LockRankTest, InOrderAcquisitionIsClean) {
  Mutex low("low-mutex", LockRank::kDurableRouter);
  Mutex mid("mid-mutex", LockRank::kRouterShard);
  Mutex high("high-mutex", LockRank::kWalShard);
  {
    MutexLock a(&low);
    MutexLock b(&mid);
    MutexLock c(&high);
    if (kLockRankChecksEnabled) {
      EXPECT_EQ(LockRankChecker::HeldCount(), 3);
      EXPECT_EQ(LockRankChecker::HeldCountAtRank(LockRank::kRouterShard), 1);
    }
  }
  EXPECT_EQ(LockRankChecker::HeldCount(), 0);
}

TEST(LockRankDeathTest, OutOfRankAcquisitionDiesNamingBothLocks) {
  SKIP_WITHOUT_RANK_CHECKS();
  Mutex stripe("cache-stripe-mutex", LockRank::kCacheStripe);
  Mutex shard("router-shard-mutex", LockRank::kRouterShard);
  EXPECT_DEATH(
      {
        MutexLock outer(&stripe);
        MutexLock inner(&shard);
      },
      "lock-rank violation: acquiring 'router-shard-mutex'.*"
      "while holding 'cache-stripe-mutex'");
}

TEST(LockRankDeathTest, SameRankAcquisitionDies) {
  SKIP_WITHOUT_RANK_CHECKS();
  // Two locks of one rank held together is the cross-shard deadlock shape
  // (two threads, opposite orders); the checker forbids it outright.
  Mutex a("shard-a", LockRank::kRouterShard);
  Mutex b("shard-b", LockRank::kRouterShard);
  EXPECT_DEATH(
      {
        MutexLock outer(&a);
        MutexLock inner(&b);
      },
      "lock-rank violation: acquiring 'shard-b'.*while holding 'shard-a'");
}

TEST(LockRankDeathTest, RecursiveAcquisitionDies) {
  SKIP_WITHOUT_RANK_CHECKS();
  Mutex mu("recursive-victim", LockRank::kRouterShard);
  EXPECT_DEATH(
      {
        MutexLock outer(&mu);
        mu.Lock();  // would self-deadlock; the checker aborts first
      },
      "lock-rank: recursive acquisition of 'recursive-victim'");
}

TEST(LockRankDeathTest, UnheldReleaseDies) {
  SKIP_WITHOUT_RANK_CHECKS();
  Mutex mu("never-locked", LockRank::kRouterShard);
  EXPECT_DEATH(mu.Unlock(),
               "lock-rank: releasing 'never-locked' which this thread does "
               "not hold");
}

TEST(LockRankDeathTest, SharedLockObeysRanksToo) {
  SKIP_WITHOUT_RANK_CHECKS();
  SharedMutex stripe("stripe", LockRank::kCacheStripe);
  Mutex shard("shard", LockRank::kRouterShard);
  EXPECT_DEATH(
      {
        ReaderLock outer(&stripe);
        MutexLock inner(&shard);
      },
      "lock-rank violation: acquiring 'shard'.*while holding 'stripe'");
}

TEST(LockRankDeathTest, RecursiveSharedAcquisitionDies) {
  SKIP_WITHOUT_RANK_CHECKS();
  // A second shared lock from one thread can deadlock against a queued
  // writer, so the checker treats it like any recursive acquisition.
  SharedMutex mu("reread-stripe", LockRank::kCacheStripe);
  EXPECT_DEATH(
      {
        ReaderLock outer(&mu);
        ReaderLock inner(&mu);
      },
      "lock-rank: recursive acquisition of 'reread-stripe'");
}

TEST(LockRankDeathTest, PostingUnderALockDiesAtConcurrencyOne) {
  SKIP_WITHOUT_RANK_CHECKS();
  // At one lane Post() runs the task inline in the caller — under the
  // caller's locks. Rank ordering cannot see this (no executor mutex is
  // touched); the task-entry AssertNoneHeld catches it.
  EXPECT_DEATH(
      {
        Executor exec(1);
        Mutex mu("service-lock", LockRank::kRouterShard);
        MutexLock lock(&mu);
        exec.Post([] {});
      },
      "lock-rank: an executor task must run with no checked locks held");
}

TEST(LockRankDeathTest, FiberParkingUnderALockDies) {
  SKIP_WITHOUT_RANK_CHECKS();
  // A parked continuation may resume on another OS thread; the held-lock
  // stack is thread-local, so parking with a lock held must abort.
  EXPECT_DEATH(
      {
        std::unique_ptr<Fiber> fiber;
        Mutex mu("parked-lock", LockRank::kRouterShard);
        fiber = std::make_unique<Fiber>([&] {
          MutexLock lock(&mu);
          fiber->Yield();
        });
        fiber->Resume();
      },
      "lock-rank: a parking fiber must run with no checked locks held");
}

TEST(LockRankDeathTest, AssertHeldCountAtRankDiesOnMismatch) {
  SKIP_WITHOUT_RANK_CHECKS();
  EXPECT_DEATH(LockRankChecker::AssertHeldCountAtRank(
                   LockRank::kRouterShard, 1, "a DurableRouter commit hook"),
               "lock-rank: a DurableRouter commit hook must hold exactly 1 "
               "lock\\(s\\) of rank router-shard, holds 0");
}

// ---------------------------------------------------------------------------
// The commit-hook invariant (PR 9): a DurableRouter commit hook runs under
// exactly one router-shard mutex — never zero, never two.

/// Opens one pending session, drives it to its first pending round, and
/// returns (router is 1-lane synchronous, so Drain() surfaces the round).
SessionRouter::SessionId FirstPendingRound(SessionRouter* router,
                                           PendingRound* round) {
  SessionRouter::SessionId id = router->OpenPending(5);
  EXPECT_TRUE(router->SubmitLearn(id));
  router->Drain();
  std::vector<PendingRound> rounds = router->PendingRounds();
  EXPECT_EQ(rounds.size(), 1u);
  *round = rounds.front();
  return id;
}

TEST(LockRankTest, CommitHookRunsUnderExactlyOneShardMutex) {
  SessionRouter::Options opts;
  opts.threads = 1;
  SessionRouter router(opts);
  PendingRound round;
  SessionRouter::SessionId id = FirstPendingRound(&router, &round);

  BitVec bits;
  BitSpan span = bits.Prepare(round.questions.size());
  for (size_t i = 0; i < round.questions.size(); ++i) span.Set(i, false);
  bool hook_ran = false;
  auto hook = [&]() -> bool {
    hook_ran = true;
    if (kLockRankChecksEnabled) {
      EXPECT_EQ(LockRankChecker::HeldCountAtRank(LockRank::kRouterShard), 1);
    }
    return true;
  };
  EXPECT_EQ(router.ProvideAnswers(id, round.round_id, span,
                                  SessionRouter::CommitHook(hook)),
            ProvideOutcome::kResumed);
  EXPECT_TRUE(hook_ran);
}

TEST(LockRankDeathTest, CommitHookGrabbingASecondShardMutexDies) {
  SKIP_WITHOUT_RANK_CHECKS();
  SessionRouter::Options opts;
  opts.threads = 1;
  SessionRouter router(opts);
  PendingRound round;
  SessionRouter::SessionId id = FirstPendingRound(&router, &round);

  BitVec bits;
  BitSpan span = bits.Prepare(round.questions.size());
  for (size_t i = 0; i < round.questions.size(); ++i) span.Set(i, false);
  Mutex second("second-router-shard", LockRank::kRouterShard);
  auto hook = [&]() -> bool {
    MutexLock cross_shard(&second);  // same rank as the held shard mutex
    return true;
  };
  EXPECT_DEATH(
      router.ProvideAnswers(id, round.round_id, span,
                            SessionRouter::CommitHook(hook)),
      "lock-rank violation: acquiring 'second-router-shard'.*"
      "while holding 'router-shard'");
}

// ---------------------------------------------------------------------------
// Positive stress: the real lock chain, walked concurrently, stays silent.

TEST(LockRankTest, RankCleanChainStress) {
  // The deepest legitimate chain in the tree, one local replica per
  // thread plus shared leaves, hammered from several threads at once:
  // the checker must stay silent and the per-thread stacks must balance.
  Mutex durable("stress-durable", LockRank::kDurableRouter);
  Mutex wal("stress-wal", LockRank::kWalShard);
  Mutex fs("stress-fs", LockRank::kFs);
  SharedMutex stripe("stress-stripe", LockRank::kCacheStripe);
  Mutex memo("stress-memo", LockRank::kMemo);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Mutex shard("stress-shard", LockRank::kRouterShard);
      for (int i = 0; i < kIters; ++i) {
        MutexLock a(&durable);
        MutexLock b(&shard);
        MutexLock c(&wal);
        MutexLock d(&fs);
        if ((i + t) % 2 == 0) {
          ReaderLock e(&stripe);
          MutexLock f(&memo);
        } else {
          WriterLock e(&stripe);
        }
      }
      EXPECT_EQ(LockRankChecker::HeldCount(), 0);
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(LockRankTest, TryLockParticipatesInRankTracking) {
  Mutex mu("trylock-mutex", LockRank::kRouterShard);
  ASSERT_TRUE(mu.TryLock());
  if (kLockRankChecksEnabled) {
    EXPECT_EQ(LockRankChecker::HeldCount(), 1);
  }
  mu.Unlock();
  EXPECT_EQ(LockRankChecker::HeldCount(), 0);
}

}  // namespace
}  // namespace qhorn

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Death-test children re-exec through threaded code (executor, fiber);
  // the threadsafe style forks from a clean re-exec instead of the
  // already-threaded parent.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  return RUN_ALL_TESTS();
}
