// Shared test helper, now promoted to the workload library so the fleet
// driver, the fuzz harness and the macro benchmark enforce the identical
// determinism contract as the test suites: a session's full observable
// surface, rendered to a string — two runs are "bit-identical" iff their
// fingerprints compare equal. The one definition lives in
// src/workload/fingerprint.h; extend it there and every consumer (router
// stress, continuation suites, workload differential, bench_workload)
// tightens together.

#ifndef QHORN_TESTS_SESSION_FINGERPRINT_H_
#define QHORN_TESTS_SESSION_FINGERPRINT_H_

#include "src/workload/fingerprint.h"

#endif  // QHORN_TESTS_SESSION_FINGERPRINT_H_
