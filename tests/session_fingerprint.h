// Shared test helper: a session's full observable surface, rendered to a
// string. This IS the determinism contract the service-layer suites
// enforce — two runs are "bit-identical" iff their fingerprints compare
// equal — so it must stay one definition: the router stress tests, the
// continuation protocol tests and the 256-session continuation stress all
// compare fingerprints of a concurrent/pending run against a
// single-threaded synchronous replay. If a new observable is added to
// QuerySession, extend it here and every suite tightens together.

#ifndef QHORN_TESTS_SESSION_FINGERPRINT_H_
#define QHORN_TESTS_SESSION_FINGERPRINT_H_

#include <string>

#include "src/session/session.h"

namespace qhorn {

inline std::string SessionFingerprint(QuerySession& session) {
  std::string out;
  out += "q=" + std::to_string(session.questions_asked());
  out += " rounds=" + std::to_string(session.rounds());
  out += " hits=" + std::to_string(session.cache_hits());
  out += " batched=" + std::to_string(session.oracle_stats().batched_questions);
  if (session.current_query().has_value()) {
    out += " current=" + session.current_query()->ToString();
  }
  out += "\n";
  for (const TranscriptEntry& e : session.history()) {
    out += std::to_string(e.round) + ":" + e.question.ToString(session.n());
    out += e.response ? "+" : "-";
    out += "\n";
  }
  return out;
}

}  // namespace qhorn

#endif  // QHORN_TESTS_SESSION_FINGERPRINT_H_
