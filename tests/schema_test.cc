// Schemas.

#include "src/relation/schema.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

Schema Choc() {
  return Schema({{"isDark", ValueType::kBool}, {"origin", ValueType::kString}});
}

TEST(SchemaTest, IndexLookups) {
  Schema s = Choc();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.IndexOf("isDark"), 0);
  EXPECT_EQ(s.IndexOf("origin"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_EQ(s.RequireIndex("origin"), 1u);
}

TEST(SchemaTest, AttributeAccess) {
  Schema s = Choc();
  EXPECT_EQ(s.attribute(0).name, "isDark");
  EXPECT_EQ(s.attribute(1).type, ValueType::kString);
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_EQ(Choc(), Choc());
  EXPECT_NE(Choc(), Schema({{"isDark", ValueType::kBool}}));
  EXPECT_EQ(Choc().ToString(), "(isDark:bool, origin:string)");
}

TEST(SchemaDeathTest, DuplicateNameAborts) {
  EXPECT_DEATH(Schema({{"a", ValueType::kBool}, {"a", ValueType::kInt}}),
               "duplicate attribute");
}

TEST(SchemaDeathTest, MissingAttributeAborts) {
  EXPECT_DEATH(Choc().RequireIndex("nope"), "no attribute");
}

TEST(SchemaDeathTest, EmptyNameAborts) {
  EXPECT_DEATH(Schema({{"", ValueType::kBool}}), "empty");
}

}  // namespace
}  // namespace qhorn
