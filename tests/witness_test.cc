// Counterexample construction and the equivalence-question oracle.

#include "src/core/witness.h"

#include <gtest/gtest.h>

#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"

namespace qhorn {
namespace {

TEST(WitnessTest, NoneForEquivalentQueries) {
  Query a = Query::Parse("∀x1→x2 ∃x1x2", 2);
  Query b = Query::Parse("∀x1→x2", 2);  // guarantee makes them equal
  EXPECT_FALSE(DistinguishingWitness(a, b).has_value());
}

TEST(WitnessTest, WitnessActuallySeparates) {
  Query a = Query::Parse("∃x1x2", 3);
  Query b = Query::Parse("∃x1x2 ∃x3", 3);
  auto witness = DistinguishingWitness(a, b);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(a.Evaluate(*witness), b.Evaluate(*witness));
}

TEST(WitnessTest, EmptyQueryAgainstNonEmpty) {
  Query top(2);  // ⊤
  Query b = Query::Parse("∃x1", 2);
  auto witness = DistinguishingWitness(top, b);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(top.Evaluate(*witness), b.Evaluate(*witness));
}

TEST(WitnessTest, ExhaustivePairsHaveWitnesses) {
  std::vector<Query> world = EnumerateRolePreserving(3);
  for (const Query& a : world) {
    for (const Query& b : world) {
      auto witness = DistinguishingWitness(a, b);
      if (Equivalent(a, b)) {
        EXPECT_FALSE(witness.has_value());
      } else {
        ASSERT_TRUE(witness.has_value())
            << a.ToString() << " vs " << b.ToString();
        EXPECT_NE(a.Evaluate(*witness), b.Evaluate(*witness))
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST(WitnessTest, RandomPairsAtScale) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = static_cast<int>(rng.Range(0, 3));
    opts.theta = static_cast<int>(rng.Range(1, 2));
    opts.num_conjunctions = static_cast<int>(rng.Range(1, 4));
    Query a = RandomRolePreserving(10, rng, opts);
    Query b = RandomRolePreserving(10, rng, opts);
    auto witness = DistinguishingWitness(a, b);
    if (Equivalent(a, b)) {
      EXPECT_FALSE(witness.has_value());
    } else {
      ASSERT_TRUE(witness.has_value());
      EXPECT_NE(a.Evaluate(*witness), b.Evaluate(*witness));
    }
  }
}

TEST(EquivalenceOracleTest, AcceptsExactHypothesis) {
  Query target = Query::Parse("∀x1x2→x4 ∃x3", 4);
  EquivalenceOracle oracle(target);
  EXPECT_FALSE(oracle.Counterexample(target).has_value());
  EXPECT_FALSE(
      oracle.Counterexample(Query::Parse("∀x1x2→x4 ∃x3 ∃x1x2x4", 4))
          .has_value());
  EXPECT_EQ(oracle.asked(), 2);
}

TEST(EquivalenceOracleTest, ReturnsLabelledCounterexample) {
  Query target = Query::Parse("∀x1 ∃x2", 2);
  EquivalenceOracle oracle(target);
  Query hypothesis = Query::Parse("∃x1 ∃x2", 2);
  auto counterexample = oracle.Counterexample(hypothesis);
  ASSERT_TRUE(counterexample.has_value());
  EXPECT_NE(target.Evaluate(*counterexample),
            hypothesis.Evaluate(*counterexample));
}

}  // namespace
}  // namespace qhorn
