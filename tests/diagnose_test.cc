// Class-membership diagnosis (§6 future work): consistent role-preserving
// users are certified; alias-class (non-role-preserving) intentions and
// lying users are flagged with a concrete counterexample.

#include "src/learn/diagnose.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/lower_bounds/alias_class.h"

namespace qhorn {
namespace {

TEST(DiagnoseTest, CertifiesRolePreservingIntentions) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = static_cast<int>(rng.Range(0, 2));
    opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
    Query intended = RandomRolePreserving(6, rng, opts);
    QueryOracle user(intended);
    DiagnosisReport report = DiagnoseRolePreserving(6, &user, seed);
    EXPECT_EQ(report.diagnosis, ClassDiagnosis::kConsistentRolePreserving)
        << intended.ToString();
    EXPECT_TRUE(Equivalent(report.learned, intended));
  }
}

// Alias intentions disagree with the best role-preserving hypothesis only
// on objects built from very specific tuples, so the PAC sample must be
// strict enough (small ε) to hit the gap with near-certainty.
PacOptions StrictPac() {
  PacOptions pac;
  pac.epsilon = 0.0005;
  pac.delta = 0.01;
  pac.max_tuples_per_object = 2;
  return pac;
}

TEST(DiagnoseTest, FlagsAliasClassIntentions) {
  // ∀x1 ∧ Alias({x2,x3,x4}) repeats variables across universal Horn
  // expressions — outside role-preserving qhorn. The learner mislearns
  // and the check-back catches it.
  Query intended = AliasInstance(4, VarBit(0));
  QueryOracle user(intended);
  DiagnosisReport report = DiagnoseRolePreserving(4, &user, 7, StrictPac());
  EXPECT_EQ(report.diagnosis, ClassDiagnosis::kOutsideClassOrInconsistent);
  ASSERT_TRUE(report.counterexample_valid);
  // The counterexample genuinely separates the learned query from the
  // intention.
  EXPECT_NE(report.learned.Evaluate(report.counterexample),
            intended.Evaluate(report.counterexample));
}

TEST(DiagnoseTest, DefaultPacCertifiesWithinEpsilon) {
  // With the default ε = 0.1 the same intention is certified: the learned
  // role-preserving query agrees with the alias intention on all but an
  // ≈0.4% slice of the object distribution — "probably approximately"
  // in-class, which is exactly the §6 PAC semantics.
  Query intended = AliasInstance(4, VarBit(0));
  QueryOracle user(intended);
  DiagnosisReport report = DiagnoseRolePreserving(4, &user, 7);
  EXPECT_EQ(report.diagnosis, ClassDiagnosis::kConsistentRolePreserving);
  Rng rng(123);
  EXPECT_LT(EstimateDisagreement(report.learned, intended, 20000, rng, 2),
            0.02);
}

TEST(DiagnoseTest, FlagsSeveralAliasSplits) {
  for (VarSet x : {VarSet{0b0001}, VarSet{0b0011}, VarSet{0b1001}}) {
    Query intended = AliasInstance(4, x);
    QueryOracle user(intended);
    DiagnosisReport report =
        DiagnoseRolePreserving(4, &user, 11, StrictPac());
    EXPECT_EQ(report.diagnosis, ClassDiagnosis::kOutsideClassOrInconsistent)
        << intended.ToString();
  }
}

TEST(DiagnoseTest, FlagsPersistentlyLyingUsers) {
  // A user who answers at random cannot be consistent with any learned
  // query for long.
  struct RandomUser : MembershipOracle {
    Rng rng{99};
    bool IsAnswer(const TupleSet&) override { return rng.Chance(0.5); }
  } user;
  DiagnosisReport report = DiagnoseRolePreserving(5, &user, 3);
  EXPECT_EQ(report.diagnosis, ClassDiagnosis::kOutsideClassOrInconsistent);
}

TEST(DiagnoseTest, ReportsQuestionBudget) {
  QueryOracle user(Query::Parse("∃x1x2 ∃x3", 3));
  DiagnosisReport report = DiagnoseRolePreserving(3, &user, 5);
  EXPECT_GT(report.questions, 0);
  EXPECT_EQ(report.diagnosis, ClassDiagnosis::kConsistentRolePreserving);
}

}  // namespace
}  // namespace qhorn
