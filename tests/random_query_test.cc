// Random query generators: structural invariants and parameter fidelity.

#include "src/core/random_query.h"

#include <gtest/gtest.h>

#include "src/core/classify.h"

namespace qhorn {
namespace {

class RandomQhorn1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQhorn1Test, StructuresAreValidAndCovering) {
  Rng rng(GetParam());
  for (int n : {1, 2, 5, 13, 40, 64}) {
    Qhorn1Structure s = RandomQhorn1(n, rng);
    EXPECT_TRUE(IsQhorn1(s)) << s.ToString();
    EXPECT_TRUE(s.CoversAllVars()) << s.ToString();
    EXPECT_EQ(s.n(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQhorn1Test,
                         ::testing::Range<uint64_t>(0, 10));

TEST(RandomQhorn1Test, MaxPartSizeRespected) {
  Rng rng(7);
  Qhorn1Options opts;
  opts.max_part_size = 2;
  Qhorn1Structure s = RandomQhorn1(20, rng, opts);
  for (const Qhorn1Part& p : s.parts()) {
    EXPECT_LE(Popcount(p.vars()), 2);
  }
}

TEST(RandomQhorn1Test, AllUniversalProbability) {
  Rng rng(3);
  Qhorn1Options opts;
  opts.max_part_size = 1;
  opts.universal_head_prob = 1.0;
  Qhorn1Structure s = RandomQhorn1(10, rng, opts);
  for (const Qhorn1Part& p : s.parts()) {
    EXPECT_EQ(p.existential_heads, 0u);
    EXPECT_EQ(Popcount(p.universal_heads), 1);
  }
}

class RandomRpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRpTest, QueriesAreRolePreservingAndCovering) {
  Rng rng(GetParam());
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(0, 3));
  opts.theta = static_cast<int>(rng.Range(1, 3));
  opts.num_conjunctions = static_cast<int>(rng.Range(0, 4));
  Query q = RandomRolePreserving(10, rng, opts);
  EXPECT_TRUE(IsRolePreserving(q));
  EXPECT_EQ(q.MentionedVars(), AllTrue(10));
  EXPECT_EQ(q.n(), 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRpTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(RandomRpTest, CausalDensityMatchesTheta) {
  Rng rng(11);
  RpOptions opts;
  opts.num_heads = 2;
  opts.theta = 3;
  opts.body_size = 2;
  opts.num_conjunctions = 0;
  Query q = RandomRolePreserving(12, rng, opts);
  EXPECT_EQ(CausalDensity(q), 3) << q.ToString();
}

TEST(RandomRpTest, HeadCountRespected) {
  Rng rng(13);
  RpOptions opts;
  opts.num_heads = 4;
  Query q = RandomRolePreserving(12, rng, opts);
  EXPECT_EQ(Popcount(q.UniversalHeadVars()), 4);
}

TEST(RandomRpTest, BodylessHeads) {
  Rng rng(17);
  RpOptions opts;
  opts.num_heads = 3;
  opts.bodyless_prob = 1.0;
  Query q = RandomRolePreserving(8, rng, opts);
  for (const UniversalHorn& u : q.universal()) {
    EXPECT_EQ(u.body, 0u);
  }
}

TEST(RandomRpTest, NoCoverageLeavesVarsUnmentioned) {
  Rng rng(19);
  RpOptions opts;
  opts.num_heads = 0;
  opts.num_conjunctions = 1;
  opts.conj_size_max = 1;
  opts.cover_all_vars = false;
  Query q = RandomRolePreserving(10, rng, opts);
  EXPECT_LT(Popcount(q.MentionedVars()), 10);
}

TEST(RandomRpTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  EXPECT_EQ(RandomRolePreserving(9, a).ToString(),
            RandomRolePreserving(9, b).ToString());
}

}  // namespace
}  // namespace qhorn
