// Query revision (§6 extension): accepted queries return unchanged; close
// queries revise with the seeded descent; distant ones fall back and still
// converge.

#include "src/learn/revision.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/random_query.h"

namespace qhorn {
namespace {

TEST(RevisionTest, AcceptedQueryIsReturnedVerbatim) {
  Query q = Query::Parse("∀x1x2→x4 ∃x3", 4);
  QueryOracle user(q);
  RevisionResult r = ReviseQuery(q, &user);
  EXPECT_TRUE(r.verified_unchanged);
  EXPECT_TRUE(Equivalent(r.query, q));
  EXPECT_EQ(r.learning_questions, 0);
}

TEST(RevisionTest, SmallConjunctionEditUsesTheSeed) {
  // The intended query shrinks one conjunction by a variable — distance 1.
  Query given = Query::Parse("∃x1x2x3 ∃x4", 4);
  Query intended = Query::Parse("∃x1x2 ∃x4", 4);
  QueryOracle user(intended);
  RevisionResult r = ReviseQuery(given, &user);
  EXPECT_FALSE(r.verified_unchanged);
  EXPECT_TRUE(Equivalent(r.query, intended)) << r.query.ToString();
  EXPECT_TRUE(r.used_seed);
}

TEST(RevisionTest, GrownConjunctionFallsBackAndStillConverges) {
  // The intended conjunction is larger — qg's tuples no longer dominate,
  // so the seed test fails and a full search runs.
  Query given = Query::Parse("∃x1x2 ∃x4", 4);
  Query intended = Query::Parse("∃x1x2x3 ∃x4", 4);
  QueryOracle user(intended);
  RevisionResult r = ReviseQuery(given, &user);
  EXPECT_TRUE(Equivalent(r.query, intended)) << r.query.ToString();
}

TEST(RevisionTest, UniversalEditsAreRelearned) {
  Query given = Query::Parse("∀x1→x3 ∃x2", 3);
  Query intended = Query::Parse("∀x2→x3 ∃x1", 3);
  QueryOracle user(intended);
  RevisionResult r = ReviseQuery(given, &user);
  EXPECT_TRUE(Equivalent(r.query, intended)) << r.query.ToString();
}

TEST(RevisionTest, SeedCheapensCloseRevisions) {
  // Revising a distance-1 edit must cost fewer questions than learning
  // from scratch when the seed applies.
  Query intended = Query::Parse("∃x1x2x3x4x5 ∃x6x7 ∃x8", 8);
  Query given = Query::Parse("∃x1x2x3x4x5x8 ∃x6x7 ∃x8", 8);  // one edit

  QueryOracle user1(intended);
  RevisionResult revised = ReviseQuery(given, &user1);
  ASSERT_TRUE(Equivalent(revised.query, intended));
  ASSERT_TRUE(revised.used_seed);

  QueryOracle user2(intended);
  CountingOracle scratch(&user2);
  RpLearnerResult full = LearnRolePreserving(8, &scratch);
  ASSERT_TRUE(Equivalent(full.query, intended));

  EXPECT_LT(revised.learning_questions, scratch.stats().questions);
}

TEST(RevisionTest, RandomizedRevisionsConverge) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = static_cast<int>(rng.Range(0, 2));
    opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
    Query given = RandomRolePreserving(6, rng, opts);
    Query intended = RandomRolePreserving(6, rng, opts);
    QueryOracle user(intended);
    RevisionResult r = ReviseQuery(given, &user);
    EXPECT_TRUE(Equivalent(r.query, intended))
        << "given: " << given.ToString()
        << "\nintended: " << intended.ToString()
        << "\nrevised: " << r.query.ToString();
  }
}

TEST(QueryDistanceTest, ZeroForEquivalentQueries) {
  Query a = Query::Parse("∃x1x2 ∀x3", 3);
  Query b = Query::Parse("∀x3 ∃x1x2x3 ∃x1x2", 3);  // equivalent rewriting
  EXPECT_EQ(QueryDistance(a, b), 0);
}

TEST(QueryDistanceTest, CountsLatticeFlips) {
  Query a = Query::Parse("∃x1x2x3 ∃x4", 4);
  Query b = Query::Parse("∃x1x2 ∃x4", 4);
  EXPECT_EQ(QueryDistance(a, b), 1);
  Query c = Query::Parse("∃x1x2 ∃x3", 4);
  EXPECT_EQ(QueryDistance(b, c), 2);  // x4 → x3
}

}  // namespace
}  // namespace qhorn
