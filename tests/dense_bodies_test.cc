// Theorem 3.6: the dense-body family forcing (n/θ)^(θ−1) questions.

#include "src/lower_bounds/dense_bodies.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/classify.h"
#include "src/core/normalize.h"
#include "src/learn/rp_universal.h"

namespace qhorn {
namespace {

TEST(DenseBodyFamilyTest, PaperExampleShape) {
  // n=12, θ=4: three fixed bodies of size 4 plus a 9-variable last body.
  DenseBodyFamily family = MakeDenseBodyFamily(12, 4);
  EXPECT_EQ(family.fixed_bodies.size(), 3u);
  for (VarSet b : family.fixed_bodies) EXPECT_EQ(Popcount(b), 4);

  VarSet excluded = 0;
  for (VarSet b : family.fixed_bodies) excluded |= b & (~b + 1);
  Query q = DenseBodyInstance(family, excluded);
  EXPECT_EQ(q.universal().size(), 4u);
  EXPECT_EQ(Popcount(q.universal().back().body), 12 - 3);
  EXPECT_TRUE(IsRolePreserving(q));
  EXPECT_EQ(CausalDensity(q), 4);
}

TEST(DenseBodyClassTest, SizeIsWidthToThetaMinus1) {
  DenseBodyFamily family = MakeDenseBodyFamily(9, 4);  // width 3
  EXPECT_EQ(DenseBodyClass(family).size(), 27u);       // 3^3
  DenseBodyFamily f2 = MakeDenseBodyFamily(8, 3);      // width 4
  EXPECT_EQ(DenseBodyClass(f2).size(), 16u);           // 4^2
}

TEST(DenseBodyClassTest, CandidatesArePairwiseInequivalent) {
  DenseBodyFamily family = MakeDenseBodyFamily(6, 3);
  std::vector<Query> cls = DenseBodyClass(family);
  for (size_t i = 0; i < cls.size(); ++i) {
    for (size_t j = i + 1; j < cls.size(); ++j) {
      EXPECT_FALSE(Equivalent(cls[i], cls[j]));
    }
  }
}

TEST(DenseBodyLearnerTest, LearnsEachCandidateExactly) {
  DenseBodyFamily family = MakeDenseBodyFamily(6, 3);
  for (const Query& target : DenseBodyClass(family)) {
    QueryOracle oracle(target);
    RpUniversalResult r = LearnUniversalHorns(family.n + 1, &oracle);
    Query learned(family.n + 1);
    for (const UniversalHorn& u : r.horns) learned.AddUniversal(u.body, u.head);
    // Compare just the universal canonical part.
    CanonicalForm lf = Canonicalize(learned);
    CanonicalForm tf = Canonicalize(target);
    EXPECT_EQ(lf.universal, tf.universal) << target.ToString();
  }
}

TEST(DenseBodyLearnerTest, AdversaryForcesTheProduct) {
  for (int theta : {2, 3}) {
    int width = 4;
    int n = width * (theta - 1);
    DenseBodyFamily family = MakeDenseBodyFamily(n, theta);
    AdversaryOracle adversary(DenseBodyClass(family));
    int64_t questions = RunDenseBodyLearner(family, &adversary);
    double product = std::pow(width, theta - 1);
    EXPECT_GE(static_cast<double>(questions), product)
        << "θ=" << theta;
  }
}

TEST(DenseBodyFamilyDeathTest, RequiresDivisibility) {
  EXPECT_DEATH(MakeDenseBodyFamily(10, 4), "divisible");
}

}  // namespace
}  // namespace qhorn
