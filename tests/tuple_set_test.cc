// Objects (tuple sets): canonical form, set algebra, hashing.

#include "src/bool/tuple_set.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace qhorn {
namespace {

TEST(TupleSetTest, DeduplicatesAndSorts) {
  TupleSet s{0b11, 0b01, 0b11, 0b10};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.tuples(), (std::vector<Tuple>{0b01, 0b10, 0b11}));
}

TEST(TupleSetTest, ParseMatchesManual) {
  // The §3.1.1 question {111, 011}.
  TupleSet parsed = TupleSet::Parse({"111", "011"});
  TupleSet manual{ParseTuple("111"), ParseTuple("011")};
  EXPECT_EQ(parsed, manual);
}

TEST(TupleSetTest, AddRemoveContains) {
  TupleSet s;
  EXPECT_TRUE(s.empty());
  s.Add(5);
  s.Add(3);
  s.Add(5);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(5));
  s.Remove(5);
  EXPECT_FALSE(s.Contains(5));
  s.Remove(99);  // no-op
  EXPECT_EQ(s.size(), 1u);
}

TEST(TupleSetTest, UnionKeepsCanonicalForm) {
  TupleSet a{1, 3};
  TupleSet b{2, 3};
  TupleSet u = a.Union(b);
  EXPECT_EQ(u.tuples(), (std::vector<Tuple>{1, 2, 3}));
}

TEST(TupleSetTest, SatisfiesConjunction) {
  TupleSet s = TupleSet::Parse({"101", "011"});
  EXPECT_TRUE(s.SatisfiesConjunction(ParseTuple("100")));   // x1 ⊆ 101
  EXPECT_TRUE(s.SatisfiesConjunction(ParseTuple("011")));   // x2x3 ⊆ 011
  EXPECT_FALSE(s.SatisfiesConjunction(ParseTuple("110")));  // x1x2 nowhere
  EXPECT_TRUE(s.SatisfiesConjunction(0));                   // trivial
  EXPECT_FALSE(TupleSet().SatisfiesConjunction(0));  // empty object has no tuple
}

TEST(TupleSetTest, EqualityIsOrderInsensitive) {
  EXPECT_EQ(TupleSet::Parse({"10", "01"}), TupleSet::Parse({"01", "10"}));
  EXPECT_NE(TupleSet::Parse({"10"}), TupleSet::Parse({"01"}));
}

TEST(TupleSetTest, HashAgreesWithEquality) {
  TupleSet a = TupleSet::Parse({"110", "011"});
  TupleSet b = TupleSet::Parse({"011", "110", "110"});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), TupleSet::Parse({"110"}).Hash());
}

TEST(TupleSetTest, ToStringUsesPaperNotation) {
  TupleSet s = TupleSet::Parse({"111", "011"});
  EXPECT_EQ(s.ToString(3), "{011, 111}");
}

TEST(TupleSetTest, CachedHashStaysInSyncThroughMutations) {
  // Hash() is cached and updated on mutation; it must always equal the
  // hash of a freshly constructed set with the same tuples.
  Rng rng(5);
  TupleSet s;
  for (int step = 0; step < 200; ++step) {
    Tuple t = rng.Below(64);
    if (rng.Chance(0.3)) {
      s.Remove(t);
    } else {
      s.Add(t);
    }
    TupleSet fresh(s.tuples());
    ASSERT_EQ(s.Hash(), fresh.Hash());
    ASSERT_EQ(s, fresh);
  }
  TupleSet u = s.Union(TupleSet{1, 2, 3});
  EXPECT_EQ(u.Hash(), TupleSet(u.tuples()).Hash());
}

TEST(TupleSetTest, SatisfiesConjunctionAllMatchesPerMaskScans) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    TupleSet s;
    size_t tuples = rng.Below(12);
    for (size_t i = 0; i < tuples; ++i) s.Add(rng.Next() & 0xffff);
    std::vector<VarSet> masks;
    size_t count = rng.Below(20);
    for (size_t i = 0; i < count; ++i) masks.push_back(rng.Next() & 0xffff);
    bool all = true;
    for (VarSet m : masks) all = all && s.SatisfiesConjunction(m);
    ASSERT_EQ(s.SatisfiesConjunctionAll(masks), all)
        << "trial " << trial << " tuples=" << tuples
        << " masks=" << masks.size();
  }
}

TEST(TupleSetTest, SatisfiesConjunctionAllEdgeCases) {
  TupleSet s = TupleSet::Parse({"101", "011"});
  EXPECT_TRUE(s.SatisfiesConjunctionAll({}));        // no masks
  EXPECT_TRUE(TupleSet().SatisfiesConjunctionAll({}));
  std::vector<VarSet> one = {ParseTuple("100")};
  EXPECT_FALSE(TupleSet().SatisfiesConjunctionAll(one));  // empty object
  // More masks than the stack bitset holds (heap path, > 512 masks).
  std::vector<VarSet> many(600, ParseTuple("001"));
  many.push_back(ParseTuple("110"));  // unsatisfied
  EXPECT_FALSE(s.SatisfiesConjunctionAll(many));
  many.pop_back();
  EXPECT_TRUE(s.SatisfiesConjunctionAll(many));
}

}  // namespace
}  // namespace qhorn
