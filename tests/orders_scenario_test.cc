// A second data-domain scenario: customer orders with line items, using
// integer threshold propositions (Less / Greater) that the chocolate
// example does not exercise — interference analysis, synthesis of integer
// values, the full learn → verify → execute pipeline.

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/learn/rp_learner.h"
#include "src/relation/execute.h"
#include "src/relation/synthesize.h"
#include "src/verify/verifier.h"

namespace qhorn {
namespace {

Schema LineItemSchema() {
  return Schema({
      {"price", ValueType::kInt},
      {"quantity", ValueType::kInt},
      {"expedited", ValueType::kBool},
      {"category", ValueType::kString},
  });
}

DataTuple MakeItem(int64_t price, int64_t quantity, bool expedited,
                   const std::string& category) {
  return {Value::Int(price), Value::Int(quantity), Value::Bool(expedited),
          Value::Str(category)};
}

// p1: price > 100 ("premium item"), p2: expedited,
// p3: category = electronics, p4: quantity > 10 ("bulk line").
std::vector<Proposition> OrderPropositions() {
  return {
      Proposition::Greater("price", 100),
      Proposition::BoolAttr("expedited"),
      Proposition::Equals("category", Value::Str("electronics")),
      Proposition::Greater("quantity", 10),
  };
}

class OrdersScenarioTest : public ::testing::Test {
 protected:
  OrdersScenarioTest()
      : binding_(LineItemSchema(), OrderPropositions()),
        orders_("Order", LineItemSchema()) {
    // Order A: all premium, one expedited bulk electronics line.
    NestedObject a;
    a.name = "A";
    a.tuples = FlatRelation(LineItemSchema());
    a.tuples.AddRow(MakeItem(250, 20, true, "electronics"));
    a.tuples.AddRow(MakeItem(120, 1, false, "furniture"));
    orders_.AddObject(std::move(a));
    // Order B: has a cheap line.
    NestedObject b;
    b.name = "B";
    b.tuples = FlatRelation(LineItemSchema());
    b.tuples.AddRow(MakeItem(20, 50, true, "electronics"));
    b.tuples.AddRow(MakeItem(500, 2, true, "electronics"));
    orders_.AddObject(std::move(b));
    // Order C: all premium but nothing expedited.
    NestedObject c;
    c.name = "C";
    c.tuples = FlatRelation(LineItemSchema());
    c.tuples.AddRow(MakeItem(101, 11, false, "electronics"));
    orders_.AddObject(std::move(c));
  }

  BooleanBinding binding_;
  NestedRelation orders_;
};

TEST_F(OrdersScenarioTest, ThresholdPropositionsDoNotInterfere) {
  // price > 100 and quantity > 10 live on different attributes; the whole
  // set is interference-free.
  EXPECT_TRUE(FindInterference(OrderPropositions()).empty());
}

TEST_F(OrdersScenarioTest, AddingAConflictingThresholdIsRejected) {
  std::vector<Proposition> props = OrderPropositions();
  props.push_back(Proposition::Less("price", 50));  // vs price > 100
  EXPECT_FALSE(FindInterference(props).empty());
  EXPECT_DEATH(BooleanBinding(LineItemSchema(), props), "interfere");
}

TEST_F(OrdersScenarioTest, IntegerSynthesisRealizesEveryClass) {
  TupleSynthesizer synthesizer(&binding_);
  for (Tuple t = 0; t < 16; ++t) {
    DataTuple item = synthesizer.Synthesize(t);
    EXPECT_EQ(binding_.ToBoolean(item), t) << FormatTuple(t, 4);
  }
}

TEST_F(OrdersScenarioTest, BooleanImagesOfTheOrders) {
  // A: {1011 (premium expedited bulk electronics), 1000}.
  EXPECT_EQ(binding_.ObjectToBoolean(orders_.objects()[0]),
            TupleSet::Parse({"1111", "1000"}));
  // B: {0111, 1110}.
  EXPECT_EQ(binding_.ObjectToBoolean(orders_.objects()[1]),
            TupleSet::Parse({"0111", "1110"}));
  // C: {1011}.
  EXPECT_EQ(binding_.ObjectToBoolean(orders_.objects()[2]),
            TupleSet::Parse({"1011"}));
}

TEST_F(OrdersScenarioTest, LearnVerifyExecutePipeline) {
  // Intention: "every line is premium, and some line is an expedited
  // electronics order" — ∀x1 ∃x2x3.
  Query intended = Query::Parse("∀x1 ∃x2x3", 4);
  DataDomainOracle user(intended, &binding_);

  RpLearnerResult learned = LearnRolePreserving(4, &user);
  ASSERT_TRUE(Equivalent(learned.query, intended))
      << learned.query.ToString();
  EXPECT_TRUE(VerifyQuery(learned.query, &user).accepted);

  auto answers = SelectAnswers(learned.query, binding_, orders_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0]->name, "A");
}

TEST_F(OrdersScenarioTest, BulkDiscountQuery) {
  // "Some expedited bulk line" — ∃x2x4: orders A and B (C's bulk line is
  // not expedited).
  Query q = Query::Parse("∃x2x4", 4);
  std::vector<size_t> answers = ExecuteQuery(q, binding_, orders_);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(orders_.objects()[answers[0]].name, "A");
  EXPECT_EQ(orders_.objects()[answers[1]].name, "B");
}

TEST_F(OrdersScenarioTest, HornQueryOverThresholds) {
  // "Expedited lines must be premium" — ∀x2→x1 (with guarantee).
  Query q = Query::Parse("∀x2→x1", 4);
  std::vector<size_t> answers = ExecuteQuery(q, binding_, orders_);
  // A: expedited line is premium ✓ (and one exists). B: the cheap line is
  // expedited → violation. C: nothing expedited → guarantee ∃x2x1 fails.
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(orders_.objects()[answers[0]].name, "A");
}

TEST_F(OrdersScenarioTest, DatabaseSelectionWithIntegers) {
  FlatRelation pool(LineItemSchema());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    pool.AddRow(MakeItem(rng.Range(1, 300), rng.Range(1, 30),
                         rng.Chance(0.5),
                         rng.Chance(0.5) ? "electronics" : "books"));
  }
  DatabaseSelector selector(&pool, &binding_);
  for (Tuple t = 0; t < 16; ++t) {
    DataTuple item = selector.PickOrSynthesize(t, rng);
    EXPECT_EQ(binding_.ToBoolean(item), t);
  }
  EXPECT_GT(selector.from_pool(), 8);
}

}  // namespace
}  // namespace qhorn
