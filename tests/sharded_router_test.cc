// ShardedRouter — the N-shard facade over SessionRouter — plus the two
// concurrency structures PR 9 slid underneath it: the striped
// CompiledQueryCache every shard shares and the lock-free MPSC
// pending-round drain. Also covers the parked-fiber cold-stack trim.
//
// The load-bearing property is the facade contract: a session's
// observables depend only on its own job and answer sequence, never on
// the shard count — a 1-shard facade is bit-identical (ids included) to a
// bare SessionRouter, and 2/8-shard runs produce fingerprints equal to
// the 1-shard run session for session. The lock-free poll is raced
// against live suspensions/resumes under TSan.
//
// Runs under the tsan preset in CI (ctest label: continuation).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/normalize.h"
#include "src/oracle/oracle.h"
#include "src/session/router.h"
#include "src/session/sharded_router.h"
#include "src/util/bit_span.h"
#include "src/util/fiber.h"
#include "src/util/mpsc.h"
#include "tests/session_fingerprint.h"

namespace qhorn {
namespace {

// ---------------------------------------------------------------------------
// Shared drive helper: verification fleets over the pending protocol.

/// Opens `count` pending sessions, submits one verification of `target`
/// to each, answers every surfaced round from ground truth, and returns
/// the per-session fingerprints in open order. Templated so the same
/// driver runs a bare SessionRouter and the facade.
template <typename RouterT>
std::vector<std::string> DriveVerifyFleet(
    RouterT& router, const Query& target, int count,
    std::vector<int64_t>* ids_out = nullptr) {
  QueryOracle truth(target);
  std::vector<int64_t> ids;
  for (int i = 0; i < count; ++i) {
    int64_t id = router.OpenPending(target.n());
    EXPECT_TRUE(router.SubmitVerify(id, target));
    ids.push_back(id);
  }
  BitVec bits;
  for (;;) {
    router.Drain();
    std::vector<PendingRound> rounds = router.PendingRounds();
    if (rounds.empty()) break;
    for (const PendingRound& round : rounds) {
      BitSpan span = bits.Prepare(round.questions.size());
      truth.IsAnswerBatch(round.questions, span);
      EXPECT_EQ(router.ProvideAnswers(round.session_id, round.round_id, span),
                ProvideOutcome::kResumed);
    }
  }
  std::vector<std::string> prints;
  prints.reserve(ids.size());
  for (int64_t id : ids) {
    prints.push_back(SessionFingerprint(router.session(id)));
  }
  if (ids_out != nullptr) *ids_out = ids;
  return prints;
}

Query TestTarget() { return Query::Parse("∀x1x2→x4 ∃x3", 4); }

// ---------------------------------------------------------------------------
// Facade equivalence.

TEST(ShardedRouterTest, OneShardIsBitIdenticalToBareRouterIdsIncluded) {
  const Query target = TestTarget();
  SessionRouter::Options bopts;
  bopts.threads = 1;
  SessionRouter bare(bopts);
  std::vector<int64_t> bare_ids;
  std::vector<std::string> bare_prints =
      DriveVerifyFleet(bare, target, 12, &bare_ids);

  ShardedRouter::Options sopts;
  sopts.shards = 1;
  sopts.threads = 1;
  ShardedRouter facade(sopts);
  std::vector<int64_t> facade_ids;
  std::vector<std::string> facade_prints =
      DriveVerifyFleet(facade, target, 12, &facade_ids);

  // At shards == 1 the id encoding is the identity: same ids, same
  // rounds, same fingerprints — a drop-in replacement, byte for byte.
  EXPECT_EQ(facade_ids, bare_ids);
  EXPECT_EQ(facade_prints, bare_prints);
}

TEST(ShardedRouterTest, FingerprintsBitIdenticalAcrossShardCounts) {
  const Query target = TestTarget();
  ShardedRouter::Options base;
  base.shards = 1;
  base.threads = 1;
  ShardedRouter one(base);
  std::vector<std::string> reference = DriveVerifyFleet(one, target, 16);

  for (int shards : {2, 8}) {
    ShardedRouter::Options sopts;
    sopts.shards = shards;
    sopts.threads = 4;
    ShardedRouter router(sopts);
    std::vector<std::string> prints = DriveVerifyFleet(router, target, 16);
    ASSERT_EQ(prints.size(), reference.size());
    for (size_t i = 0; i < prints.size(); ++i) {
      EXPECT_EQ(prints[i], reference[i])
          << "session " << i << " diverged at " << shards << " shards";
    }
  }
}

// ---------------------------------------------------------------------------
// Id encoding and garbage tolerance.

TEST(ShardedRouterTest, PinnedOpensLandOnTheirShardAndGarbageIdsBounce) {
  ShardedRouter::Options sopts;
  sopts.shards = 4;
  sopts.threads = 1;
  ShardedRouter router(sopts);

  std::set<int64_t> seen;
  for (int s = 0; s < 4; ++s) {
    for (int k = 0; k < 3; ++k) {
      int64_t id = router.OpenPendingOnShard(s, 3);
      EXPECT_EQ(router.ShardOf(id), s);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate external id " << id;
      EXPECT_EQ(router.status(id), SessionStatus::kIdle);
    }
  }

  // Garbage ids: zero, negative, an encoding whose internal part is zero
  // (external < shards), and a well-formed encoding nobody opened. All
  // rejected without a crash.
  for (int64_t garbage : {int64_t{0}, int64_t{-7}, int64_t{3}, int64_t{4004}}) {
    EXPECT_EQ(router.status(garbage), std::nullopt) << garbage;
    EXPECT_FALSE(router.Close(garbage)) << garbage;
    EXPECT_EQ(router.suspensions(garbage), -1) << garbage;
    BitVec bits;
    EXPECT_EQ(router.ProvideAnswers(garbage, 0, bits.Prepare(1)),
              ProvideOutcome::kUnknownSession)
        << garbage;
  }
}

TEST(ShardedRouterTest, PendingRoundsMergeCarriesExternalIdsSorted) {
  const Query target = TestTarget();
  ShardedRouter::Options sopts;
  sopts.shards = 4;
  sopts.threads = 2;
  ShardedRouter router(sopts);

  std::vector<int64_t> ids;
  for (int i = 0; i < 12; ++i) {
    int64_t id = router.OpenPending(target.n());
    ASSERT_TRUE(router.SubmitVerify(id, target));
    ids.push_back(id);
  }
  router.Drain();
  std::vector<PendingRound> rounds = router.PendingRounds();
  ASSERT_EQ(rounds.size(), ids.size());
  std::set<int64_t> expected(ids.begin(), ids.end());
  for (size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(expected.count(rounds[i].session_id), 1u);
    if (i > 0) {
      EXPECT_LT(rounds[i - 1].session_id, rounds[i].session_id);
    }
    // The per-id view speaks the same external ids as the merged poll.
    std::optional<PendingRound> single =
        router.pending_round(rounds[i].session_id);
    ASSERT_TRUE(single.has_value());
    EXPECT_EQ(single->session_id, rounds[i].session_id);
    EXPECT_EQ(single->round_id, rounds[i].round_id);
  }
  for (int64_t id : ids) router.Close(id);
}

TEST(ShardedRouterTest, StatsSumShardsButCountTheSharedCacheOnce) {
  const Query target = TestTarget();
  ShardedRouter::Options sopts;
  sopts.shards = 4;
  sopts.threads = 2;
  ShardedRouter router(sopts);
  for (int i = 0; i < 8; ++i) {
    int64_t id = router.OpenSimulated(target);
    ASSERT_TRUE(router.SubmitVerify(id, target));
  }
  router.Drain();
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.sessions, 8);
  EXPECT_EQ(stats.verifies, 8);
  // All eight simulated opens share one compiled-query cache across the
  // four shards: one compile, seven hits — not 4× either number.
  EXPECT_EQ(stats.compiled_misses, 1);
  EXPECT_EQ(stats.compiled_hits, 7);
}

// ---------------------------------------------------------------------------
// The lock-free poll, raced against live suspensions and resumes (TSan).

TEST(ShardedRouterTest, LockFreePollRacesSuspensionsAndResumes) {
  const Query target = TestTarget();
  ShardedRouter::Options sopts;
  sopts.shards = 2;
  sopts.threads = 4;
  ShardedRouter router(sopts);

  std::atomic<bool> stop{false};
  // The racy poller: hammers PendingRounds with no synchronization
  // against the driver below. It may transiently miss a suspending round
  // or see one being answered; it must never crash, corrupt the retained
  // node set, or return a malformed round.
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<PendingRound> rounds = router.PendingRounds();
      for (const PendingRound& round : rounds) {
        if (round.session_id <= 0) {
          ADD_FAILURE() << "malformed polled round id " << round.session_id;
          return;
        }
      }
    }
  });

  std::vector<std::string> prints = DriveVerifyFleet(router, target, 24);
  stop.store(true, std::memory_order_release);
  poller.join();

  // The drive loop itself used the lock-free poll; the sessions must all
  // have finished their verification exactly once.
  EXPECT_EQ(prints.size(), 24u);
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.verifies, 24);
  EXPECT_GE(stats.suspensions, 24);
  EXPECT_EQ(stats.awaiting_sessions, 0);
}

TEST(ShardedRouterTest, MpscStackDeliversEveryPushAcrossThreads) {
  MpscStack<int> stack;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&stack, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stack.Push(new MpscStack<int>::Node(t * kPerThread + i));
      }
    });
  }
  std::set<int> seen;
  // Consume concurrently with the producers, then drain the remainder.
  for (int spin = 0; spin < 10000 && seen.size() < kThreads * kPerThread;
       ++spin) {
    for (MpscStack<int>::Node* node = stack.PopAll(); node != nullptr;) {
      MpscStack<int>::Node* next = node->next;
      EXPECT_TRUE(seen.insert(node->value).second)
          << "value " << node->value << " delivered twice";
      delete node;
      node = next;
    }
  }
  for (auto& p : producers) p.join();
  for (MpscStack<int>::Node* node = stack.PopAll(); node != nullptr;) {
    MpscStack<int>::Node* next = node->next;
    EXPECT_TRUE(seen.insert(node->value).second);
    delete node;
    node = next;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_TRUE(stack.Empty());
}

// ---------------------------------------------------------------------------
// Striped CompiledQueryCache under concurrent Get.

TEST(CompiledQueryCacheTest, StripedGetIsCoherentUnderConcurrentHammer) {
  CompiledQueryCache cache;
  constexpr int kDistinct = 16;
  constexpr int kThreads = 8;
  constexpr int kGetsPerThread = 64;
  std::vector<Query> queries;
  for (int i = 0; i < kDistinct; ++i) {
    std::string body = "∃";
    for (int v = 1; v <= i + 1; ++v) body += "x" + std::to_string(v);
    queries.push_back(Query::Parse(body, kDistinct));
  }
  EvalOptions opts;
  std::vector<std::vector<std::shared_ptr<const CompiledQuery>>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kGetsPerThread; ++i) {
        got[static_cast<size_t>(t)].push_back(
            cache.Get(queries[static_cast<size_t>((i + t) % kDistinct)], opts));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Coherence: every thread's Get for one query must have returned the
  // same shared compiled form (first insert wins; losers adopt it).
  std::vector<const CompiledQuery*> canonical(kDistinct, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kGetsPerThread; ++i) {
      size_t q = static_cast<size_t>((i + t) % kDistinct);
      const CompiledQuery* p = got[static_cast<size_t>(t)][static_cast<size_t>(i)].get();
      if (canonical[q] == nullptr) canonical[q] = p;
      EXPECT_EQ(canonical[q], p) << "query " << q << " compiled twice visibly";
    }
  }
  // Counter accounting: every Get was a hit or a miss; racing first-time
  // compiles may each count a miss, but at least one per distinct key.
  const int64_t total = int64_t{kThreads} * kGetsPerThread;
  EXPECT_EQ(cache.hits() + cache.misses(), total);
  EXPECT_GE(cache.misses(), kDistinct);
  EXPECT_LE(cache.misses(), int64_t{kDistinct} * kThreads);
}

// ---------------------------------------------------------------------------
// Parked-fiber cold-stack trim.

#if defined(__linux__) && defined(__x86_64__)

__attribute__((noinline)) int DeepTouch(int depth) {
  volatile char buf[4096];
  buf[0] = static_cast<char>(depth);
  buf[sizeof(buf) - 1] = 1;
  if (depth == 0) return buf[0];
  return DeepTouch(depth - 1) + buf[sizeof(buf) - 1];
}

TEST(FiberTrimTest, TrimReleasesColdPagesAndTheFiberStillResumes) {
  int deep_sum = 0;
  bool finished_cleanly = false;
  Fiber* self = nullptr;
  Fiber fiber([&] {
    deep_sum += DeepTouch(40);  // dirty ~160 KiB of stack, then pop it all
    self->Yield();              // park shallow
    deep_sum += DeepTouch(40);  // re-dirty the trimmed region after resume
    finished_cleanly = true;
  });
  self = &fiber;
  fiber.Resume();  // runs to the Yield
  ASSERT_FALSE(fiber.finished());

  size_t resident = fiber.TrimColdStack();
  // Parked at shallow depth, nearly the whole 512 KiB stack below the
  // parked frame is cold; the trim must reclaim at least the ~160 KiB the
  // deep recursion dirtied.
  EXPECT_GT(fiber.trimmed_bytes(), size_t{160} * 1024);
  EXPECT_EQ(resident, fiber.stack_bytes() - fiber.trimmed_bytes());
  EXPECT_LT(resident, fiber.stack_bytes());

  // The proof that the trim was safe: the resumed continuation recurses
  // straight back through the madvised region and completes.
  fiber.Resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_TRUE(finished_cleanly);
  EXPECT_EQ(fiber.trimmed_bytes(), 0u);  // reset on resume
}

TEST(FiberTrimTest, RouterReportsTrimmedResidencyForParkedSessions) {
  const Query target = TestTarget();
  SessionRouter::Options ropts;
  ropts.threads = 1;
  ropts.resume_mode = ResumeMode::kFiber;
  SessionRouter router(ropts);
  int64_t id = router.OpenPending(target.n());
  ASSERT_TRUE(router.SubmitVerify(id, target));
  router.Drain();
  ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.awaiting_sessions, 1);
  // Resident, not mapped: more than zero (the parked frame itself) but
  // well under the 512 KiB the pre-trim accounting used to report.
  EXPECT_GT(stats.snapshot_bytes, 0);
  EXPECT_LT(stats.snapshot_bytes, 256 * 1024);
  router.Close(id);
}

#endif  // __linux__ && __x86_64__

}  // namespace
}  // namespace qhorn
