// DurableRouter: log-before-ack, typed refusal on a failed commit, and
// recovery that is observably a service that never crashed.
//
// The kLogWriteFailed pin lives here: a refused durable append must
// surface as a typed outcome with the session — pending round included —
// untouched, and the identical retried call must succeed. The crash
// differential (durable_crash_test.cc) exercises the same paths under a
// seeded failing machine; this suite pins each path in isolation.
//
// CTest label: durable.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/durable/durable_router.h"
#include "src/durable/fs.h"
#include "src/durable/session_log.h"
#include "src/oracle/oracle.h"
#include "src/util/bit_span.h"
#include "src/workload/fingerprint.h"
#include "src/workload/workload.h"

namespace qhorn {
namespace {

constexpr char kLogDir[] = "qlog";

DurableRouterOptions Opts(int shards = 2) {
  DurableRouterOptions opts;
  opts.router.threads = 1;  // synchronous lanes: simplest deterministic base
  opts.log.fsync_policy = FsyncPolicy::kEveryAppend;
  opts.shards = shards;
  return opts;
}

/// Clean (reliable, completing) specs drawn from a generated fleet, so the
/// sessions exercised here are the same shapes the fuzz fleets produce.
std::vector<SessionSpec> CleanSpecs(size_t want) {
  std::vector<SessionSpec> out;
  for (uint64_t seed = 1; out.size() < want; ++seed) {
    Fleet fleet = GenerateFleet(WorkloadSpec::FromSeed(seed));
    for (const SessionSpec& s : fleet.sessions) {
      if (!s.noisy() && !s.abandon && !s.jobs.empty()) out.push_back(s);
      if (out.size() == want) break;
    }
  }
  return out;
}

/// Answers every pending round of `id` with ground truth until the session
/// runs out of jobs. Returns rounds answered.
int64_t DriveToCompletion(DurableRouter& dr, DurableRouter::SessionId id,
                          const SessionSpec& spec) {
  QueryOracle truth(spec.target);
  BitVec bits;
  int64_t answered = 0;
  for (;;) {
    dr.Drain();
    std::vector<PendingRound> rounds = dr.PendingRounds();
    const PendingRound* mine = nullptr;
    for (const PendingRound& r : rounds) {
      if (r.session_id == id) mine = &r;
    }
    if (mine == nullptr) break;
    BitSpan span = bits.Prepare(mine->questions.size());
    truth.IsAnswerBatch(mine->questions, span);
    ProvideOutcome out = dr.ProvideAnswers(id, mine->round_id, span);
    if (out != ProvideOutcome::kResumed) {
      ADD_FAILURE() << "ProvideAnswers: " << ToString(out);
      break;
    }
    ++answered;
  }
  return answered;
}

TEST(DurableRouterTest, CreateWritesShardHeadersUpFront) {
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(/*shards=*/3), &error);
  ASSERT_NE(dr, nullptr) << error;
  EXPECT_EQ(dr->records_logged(), 0);
  for (int s = 0; s < 3; ++s) {
    std::string path = DurableRouter::ShardPath(kLogDir, s);
    EXPECT_TRUE(mem.FileExists(path)) << path;
    EXPECT_EQ(mem.DurableSize(path), SessionLog::kHeaderSize) << path;
  }
}

TEST(DurableRouterTest, EveryProtocolCallIsLoggedBeforeAck) {
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(), &error);
  ASSERT_NE(dr, nullptr) << error;

  SessionSpec spec = CleanSpecs(1)[0];
  DurableRouter::SessionId id = dr->OpenPending(spec);
  EXPECT_EQ(id, 1) << "external ids are sequential from 1";
  EXPECT_EQ(dr->records_logged(), 1);

  int64_t rounds = 0;
  { SCOPED_TRACE("drive"); rounds = DriveToCompletion(*dr, id, spec); }
  EXPECT_GT(rounds, 0) << "a clean spec with jobs must ask something";
  EXPECT_EQ(dr->records_logged(), 1 + rounds);

  EXPECT_TRUE(dr->Close(id));
  EXPECT_EQ(dr->records_logged(), 2 + rounds);
  // Log-before-ack holds even for the refusal path: the duplicate close is
  // appended before the router reports already-closed, and Recover skips
  // it idempotently (RecoverReclosesClosedSessions covers the replay side).
  EXPECT_FALSE(dr->Close(id));
  EXPECT_EQ(dr->records_logged(), 3 + rounds);

  // The shard really carries the session: opened first, closed last.
  std::string path = DurableRouter::ShardPath(kLogDir, /*shard=*/id % 2);
  LogReadResult r = ReadLog(&mem, path);
  ASSERT_EQ(r.status, LogReadStatus::kOk) << r.error;
  ASSERT_EQ(r.records.size(), static_cast<size_t>(3 + rounds));
  EXPECT_EQ(r.records.front().type, LogRecordType::kSessionOpened);
  EXPECT_EQ(r.records.back().type, LogRecordType::kSessionClosed);
}

TEST(DurableRouterTest, SessionsShardByExternalId) {
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(/*shards=*/2), &error);
  ASSERT_NE(dr, nullptr) << error;
  std::vector<SessionSpec> specs = CleanSpecs(3);
  for (const SessionSpec& s : specs) ASSERT_GT(dr->OpenPending(s), 0);

  // External ids 1, 2, 3 over 2 shards: shard-1 gets two opens, shard-0 one.
  LogReadResult s0 = ReadLog(&mem, DurableRouter::ShardPath(kLogDir, 0));
  LogReadResult s1 = ReadLog(&mem, DurableRouter::ShardPath(kLogDir, 1));
  ASSERT_EQ(s0.status, LogReadStatus::kOk);
  ASSERT_EQ(s1.status, LogReadStatus::kOk);
  ASSERT_EQ(s0.records.size(), 1u);
  ASSERT_EQ(s1.records.size(), 2u);
  EXPECT_EQ(s0.records[0].session_id, 2);
  EXPECT_EQ(s1.records[0].session_id, 1);
  EXPECT_EQ(s1.records[1].session_id, 3);
}

TEST(DurableRouterTest, GarbageIdsAreRefusedNotLogged) {
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(), &error);
  ASSERT_NE(dr, nullptr) << error;

  BitVec bits;
  EXPECT_EQ(dr->ProvideAnswers(42, 0, bits.Prepare(1)),
            ProvideOutcome::kUnknownSession);
  EXPECT_FALSE(dr->Close(42));
  EXPECT_EQ(dr->status(42), std::nullopt);
  EXPECT_EQ(dr->records_logged(), 0)
      << "refused calls must not leave records behind";
}

TEST(DurableRouterTest, RecoverOnEmptyLogsIsAFreshService) {
  MemFs mem;
  std::string error;
  { ASSERT_NE(DurableRouter::Create(&mem, kLogDir, Opts(), &error), nullptr); }
  RecoveryReport report;
  auto dr = DurableRouter::Recover(&mem, kLogDir, Opts(), &report, &error);
  ASSERT_NE(dr, nullptr) << error;
  EXPECT_EQ(report.records_read, 0);
  EXPECT_EQ(report.sessions_recovered, 0);
  EXPECT_GT(dr->OpenPending(CleanSpecs(1)[0]), 0);
}

// The tentpole contract: kill the service mid-fleet, recover from the log
// alone, and the observable state — pending rounds, round ids, and the
// final fingerprints after the fleet finishes — is bit-identical to a
// service that never crashed.
TEST(DurableRouterTest, RecoveryIsObservablyIdenticalMidSession) {
  std::vector<SessionSpec> specs = CleanSpecs(3);

  // Reference arm: same specs, no crash.
  std::vector<std::string> want_prints(specs.size());
  {
    MemFs ref_mem;
    std::string error;
    auto ref = DurableRouter::Create(&ref_mem, kLogDir, Opts(), &error);
    ASSERT_NE(ref, nullptr) << error;
    for (size_t i = 0; i < specs.size(); ++i) {
      DurableRouter::SessionId id = ref->OpenPending(specs[i]);
      ASSERT_EQ(id, static_cast<DurableRouter::SessionId>(i + 1));
      DriveToCompletion(*ref, id, specs[i]);
      want_prints[i] = SessionFingerprint(ref->session(id));
    }
  }

  // Crash arm: open everything, answer exactly one round each, die.
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(), &error);
  ASSERT_NE(dr, nullptr) << error;
  for (const SessionSpec& s : specs) ASSERT_GT(dr->OpenPending(s), 0);
  dr->Drain();
  std::vector<PendingRound> before = dr->PendingRounds();
  ASSERT_EQ(before.size(), specs.size());
  BitVec bits;
  for (const PendingRound& r : before) {
    QueryOracle truth(specs[r.session_id - 1].target);
    BitSpan span = bits.Prepare(r.questions.size());
    truth.IsAnswerBatch(r.questions, span);
    ASSERT_EQ(dr->ProvideAnswers(r.session_id, r.round_id, span),
              ProvideOutcome::kResumed);
  }
  dr->Drain();
  std::vector<PendingRound> acked = dr->PendingRounds();

  dr.reset();      // the process dies…
  mem.CrashAll();  // …and every unsynced byte dies with it

  RecoveryReport report;
  auto rec = DurableRouter::Recover(&mem, kLogDir, Opts(), &report, &error);
  ASSERT_NE(rec, nullptr) << error;
  EXPECT_EQ(report.sessions_recovered,
            static_cast<int64_t>(specs.size()));
  EXPECT_EQ(report.sessions_closed, 0);
  EXPECT_EQ(report.rounds_replayed, static_cast<int64_t>(specs.size()));

  // Acknowledged answers survived: the rounds pending now are exactly the
  // rounds that were pending at the moment of death.
  rec->Drain();
  std::vector<PendingRound> after = rec->PendingRounds();
  ASSERT_EQ(after.size(), acked.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].session_id, acked[i].session_id);
    EXPECT_EQ(after[i].round_id, acked[i].round_id);
    EXPECT_EQ(after[i].questions, acked[i].questions);
  }

  // Finish the fleet on the recovered service; observables must match the
  // never-crashed reference bit for bit.
  for (size_t i = 0; i < specs.size(); ++i) {
    DurableRouter::SessionId id = static_cast<DurableRouter::SessionId>(i + 1);
    DriveToCompletion(*rec, id, specs[i]);
    EXPECT_EQ(SessionFingerprint(rec->session(id)), want_prints[i])
        << "session " << id << " diverged after recovery";
  }
}

TEST(DurableRouterTest, RecoverReclosesClosedSessions) {
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(), &error);
  ASSERT_NE(dr, nullptr) << error;
  SessionSpec spec = CleanSpecs(1)[0];
  DurableRouter::SessionId id = dr->OpenPending(spec);
  DriveToCompletion(*dr, id, spec);
  ASSERT_TRUE(dr->Close(id));
  dr.reset();
  mem.CrashAll();

  RecoveryReport report;
  auto rec = DurableRouter::Recover(&mem, kLogDir, Opts(), &report, &error);
  ASSERT_NE(rec, nullptr) << error;
  EXPECT_EQ(report.sessions_recovered, 1);
  EXPECT_EQ(report.sessions_closed, 1);
  EXPECT_FALSE(rec->Close(id)) << "the close outlived the crash";
  BitVec bits;
  EXPECT_EQ(rec->ProvideAnswers(id, 0, bits.Prepare(1)),
            ProvideOutcome::kSessionClosed);
}

TEST(DurableRouterTest, TornShardTailIsTruncatedLoudly) {
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(), &error);
  ASSERT_NE(dr, nullptr) << error;
  SessionSpec spec = CleanSpecs(1)[0];
  DurableRouter::SessionId id = dr->OpenPending(spec);
  dr->Drain();
  dr.reset();

  // Power loss mid-append: a partial frame lands durably on the session's
  // shard past the last complete record.
  std::string shard = DurableRouter::ShardPath(kLogDir, id % 2);
  auto f = mem.OpenAppend(shard);
  // 3 bytes of a length prefix (explicit length: the bytes include NULs).
  ASSERT_TRUE(f->Append(std::string_view("\x09\x00\x00", 3)));
  ASSERT_TRUE(f->Sync());
  mem.CrashAll();

  RecoveryReport report;
  auto rec = DurableRouter::Recover(&mem, kLogDir, Opts(), &report, &error);
  ASSERT_NE(rec, nullptr) << error;
  EXPECT_EQ(report.torn_tails_truncated, 1);
  EXPECT_EQ(report.torn_bytes_dropped, 3);
  EXPECT_EQ(report.sessions_recovered, 1);
  // The shard file itself was chopped: a second recovery sees a clean log.
  RecoveryReport again;
  rec.reset();
  auto rec2 = DurableRouter::Recover(&mem, kLogDir, Opts(), &again, &error);
  ASSERT_NE(rec2, nullptr) << error;
  EXPECT_EQ(again.torn_tails_truncated, 0);
}

TEST(DurableRouterTest, BitRotMakesRecoveryRefuseTheLog) {
  MemFs mem;
  std::string error;
  auto dr = DurableRouter::Create(&mem, kLogDir, Opts(), &error);
  ASSERT_NE(dr, nullptr) << error;
  SessionSpec spec = CleanSpecs(1)[0];
  DurableRouter::SessionId id = dr->OpenPending(spec);
  dr->Drain();
  dr.reset();

  std::string shard = DurableRouter::ShardPath(kLogDir, id % 2);
  mem.FlipDurableBitForTest(shard, (SessionLog::kHeaderSize + 9) * 8 + 4);

  RecoveryReport report;
  auto rec = DurableRouter::Recover(&mem, kLogDir, Opts(), &report, &error);
  EXPECT_EQ(rec, nullptr)
      << "a log recovery cannot vouch for must never be half-replayed";
  EXPECT_NE(error.find("corrupt"), std::string::npos) << error;
}

// Satellite 6: the typed refusal. A durable append that fails must surface
// as kLogWriteFailed with the session untouched, and the identical call
// must succeed once the log is healthy.
TEST(DurableRouterTest, LogWriteFailedLeavesSessionUntouchedAndRetries) {
  MemFs mem;
  FaultFs faults(&mem, /*seed=*/21);
  std::string error;
  auto dr = DurableRouter::Create(&faults, kLogDir, Opts(), &error);
  ASSERT_NE(dr, nullptr) << error;

  SessionSpec spec = CleanSpecs(1)[0];
  DurableRouter::SessionId id = dr->OpenPending(spec);
  dr->Drain();
  std::vector<PendingRound> rounds = dr->PendingRounds();
  ASSERT_EQ(rounds.size(), 1u);
  PendingRound round = rounds[0];
  int64_t logged_before = dr->records_logged();

  QueryOracle truth(spec.target);
  BitVec bits;
  BitSpan span = bits.Prepare(round.questions.size());
  truth.IsAnswerBatch(round.questions, span);

  // A sync failure refuses the commit (kEveryAppend: un-synced is un-acked).
  faults.ArmSyncFailure(/*after=*/1);
  EXPECT_EQ(dr->ProvideAnswers(id, round.round_id, span),
            ProvideOutcome::kLogWriteFailed);
  EXPECT_EQ(faults.sync_failures_fired(), 1);

  // Nothing mutated: still awaiting, same round, same questions.
  EXPECT_EQ(dr->status(id), SessionStatus::kAwaitingUser);
  std::vector<PendingRound> still = dr->PendingRounds();
  ASSERT_EQ(still.size(), 1u);
  EXPECT_EQ(still[0].round_id, round.round_id);
  EXPECT_EQ(still[0].questions, round.questions);

  // The identical retry goes through (the record is appended again; the
  // duplicate is Recover's to skip).
  EXPECT_EQ(dr->ProvideAnswers(id, round.round_id, span),
            ProvideOutcome::kResumed);
  EXPECT_EQ(dr->records_logged(), logged_before + 2)
      << "retry-after-sync-failure leaves a duplicate record";
  DriveToCompletion(*dr, id, spec);
  std::string print = SessionFingerprint(dr->session(id));

  // And the duplicate folds idempotently on recovery.
  dr.reset();
  mem.CrashAll();
  RecoveryReport report;
  auto rec = DurableRouter::Recover(&mem, kLogDir, Opts(), &report, &error);
  ASSERT_NE(rec, nullptr) << error;
  EXPECT_GE(report.duplicate_records_skipped, 1);
  rec->Drain();
  EXPECT_TRUE(rec->PendingRounds().empty());
  EXPECT_EQ(SessionFingerprint(rec->session(id)), print);
}

TEST(DurableRouterTest, PoisonedLogKeepsRefusingUntilRecovery) {
  MemFs mem;
  FaultFs faults(&mem, /*seed=*/22);
  std::string error;
  auto dr =
      DurableRouter::Create(&faults, kLogDir, Opts(/*shards=*/1), &error);
  ASSERT_NE(dr, nullptr) << error;

  SessionSpec spec = CleanSpecs(1)[0];
  DurableRouter::SessionId id = dr->OpenPending(spec);
  dr->Drain();
  std::vector<PendingRound> rounds = dr->PendingRounds();
  ASSERT_EQ(rounds.size(), 1u);
  QueryOracle truth(spec.target);
  BitVec bits;
  BitSpan span = bits.Prepare(rounds[0].questions.size());
  truth.IsAnswerBatch(rounds[0].questions, span);

  // A torn append poisons the shard: the refusal is sticky — retrying
  // without recovery cannot succeed, unlike the sync-failure case.
  faults.ArmTornAppend(/*after=*/1);
  EXPECT_EQ(dr->ProvideAnswers(id, rounds[0].round_id, span),
            ProvideOutcome::kLogWriteFailed);
  EXPECT_EQ(dr->ProvideAnswers(id, rounds[0].round_id, span),
            ProvideOutcome::kLogWriteFailed);
  EXPECT_EQ(dr->status(id), SessionStatus::kAwaitingUser);
}

}  // namespace
}  // namespace qhorn
