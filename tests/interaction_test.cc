// Interaction questions (§6 extension): the oracle's answers and the
// O(n²)-question reconstruction of qhorn-1 queries.

#include "src/learn/interaction.h"

#include <gtest/gtest.h>

#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"

namespace qhorn {
namespace {

Qhorn1Structure Fig2Target() {
  // ∀x1x2→x4 ∃x1x2→x5 ∃x3→x6.
  Qhorn1Structure s(6);
  s.AddPart(Qhorn1Part{VarBit(0) | VarBit(1), VarBit(3), VarBit(4)});
  s.AddPart(Qhorn1Part{VarBit(2), 0, VarBit(5)});
  return s;
}

TEST(InteractionOracleTest, MustAlwaysHold) {
  InteractionOracle oracle(Fig2Target());
  EXPECT_FALSE(oracle.MustAlwaysHold(0));  // body variable
  EXPECT_TRUE(oracle.MustAlwaysHold(3));   // ∀ head
  EXPECT_FALSE(oracle.MustAlwaysHold(4));  // ∃ head
  EXPECT_FALSE(oracle.MustAlwaysHold(5));
}

TEST(InteractionOracleTest, ShareExpression) {
  InteractionOracle oracle(Fig2Target());
  EXPECT_TRUE(oracle.ShareExpression(0, 1));   // co-body
  EXPECT_TRUE(oracle.ShareExpression(0, 3));   // body–head
  EXPECT_TRUE(oracle.ShareExpression(1, 4));
  EXPECT_FALSE(oracle.ShareExpression(3, 4));  // two heads never co-occur
  EXPECT_FALSE(oracle.ShareExpression(0, 5));  // different parts
  EXPECT_TRUE(oracle.ShareExpression(2, 5));
}

TEST(InteractionOracleTest, Causes) {
  InteractionOracle oracle(Fig2Target());
  EXPECT_TRUE(oracle.Causes(0, 3));
  EXPECT_TRUE(oracle.Causes(1, 4));
  EXPECT_FALSE(oracle.Causes(3, 0));  // heads cause nothing
  EXPECT_FALSE(oracle.Causes(2, 4));  // wrong part
  EXPECT_TRUE(oracle.Causes(2, 5));
}

TEST(InteractionLearnerTest, RecoversFig2Exactly) {
  Qhorn1Structure target = Fig2Target();
  InteractionOracle oracle(target);
  InteractionTrace trace;
  Qhorn1Structure learned = LearnQhorn1ByInteraction(6, &oracle, &trace);
  EXPECT_TRUE(Equivalent(learned.ToQuery(), target.ToQuery()))
      << learned.ToString();
  EXPECT_EQ(trace.role_questions, 6);
  EXPECT_EQ(trace.share_questions, 15);  // C(6,2)
}

// Exhaustive over every syntactic qhorn-1 query on small n.
class InteractionExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(InteractionExhaustiveTest, ReconstructsEveryQuery) {
  int n = GetParam();
  for (const Qhorn1Structure& target : EnumerateQhorn1(n)) {
    InteractionOracle oracle(target);
    Qhorn1Structure learned = LearnQhorn1ByInteraction(n, &oracle);
    EXPECT_TRUE(Equivalent(learned.ToQuery(), target.ToQuery()))
        << "target:  " << target.ToString()
        << "\nlearned: " << learned.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, InteractionExhaustiveTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(InteractionLearnerTest, RandomizedLargerN) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    Qhorn1Structure target = RandomQhorn1(20, rng);
    InteractionOracle oracle(target);
    InteractionTrace trace;
    Qhorn1Structure learned = LearnQhorn1ByInteraction(20, &oracle, &trace);
    EXPECT_TRUE(Equivalent(learned.ToQuery(), target.ToQuery()));
    // Question budget: n roles + C(n,2) shares + O(n) causes.
    EXPECT_LE(trace.total(), 20 + 190 + 20);
  }
}

TEST(InteractionLearnerTest, UniversalRolesRecoveredVerbatim) {
  // Universal Horn structure is identified exactly, not just up to
  // equivalence.
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    Qhorn1Options opts;
    opts.universal_head_prob = 0.8;
    Qhorn1Structure target = RandomQhorn1(9, rng, opts);
    InteractionOracle oracle(target);
    Qhorn1Structure learned = LearnQhorn1ByInteraction(9, &oracle);

    auto universal_exprs = [](const Qhorn1Structure& s) {
      std::vector<std::pair<VarSet, VarSet>> out;
      for (const Qhorn1Part& p : s.parts()) {
        if (p.universal_heads != 0) out.push_back({p.body, p.universal_heads});
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(universal_exprs(learned), universal_exprs(target));
  }
}

}  // namespace
}  // namespace qhorn
