// The paper's running chocolate example.

#include "src/relation/chocolate.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

TEST(ChocolateTest, SchemaMatchesThePaper) {
  Schema s = ChocolateSchema();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.IndexOf("isDark"), 0);
  EXPECT_EQ(s.IndexOf("origin"), 4);
}

TEST(ChocolateTest, PropositionsMatchSection2) {
  std::vector<Proposition> props = ChocolatePropositions();
  ASSERT_EQ(props.size(), 3u);
  EXPECT_EQ(props[0].label(), "isDark");
  EXPECT_EQ(props[1].label(), "hasFilling");
  EXPECT_EQ(props[2].label(), "origin = Madagascar");
}

TEST(ChocolateTest, IntroQuerySemantics) {
  // The pedantic server's boxes disappoint: neither Fig. 1 box satisfies
  // query (1) — Global Ground has a non-dark chocolate, Europe's Finest
  // has no filled Madagascar chocolate.
  Query q = IntroChocolateQuery();
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  NestedRelation boxes = Fig1Boxes();
  EXPECT_FALSE(q.Evaluate(binding.ObjectToBoolean(boxes.objects()[0])));
  EXPECT_FALSE(q.Evaluate(binding.ObjectToBoolean(boxes.objects()[1])));

  // A box that the user would accept: all dark, one filled Madagascar.
  NestedObject good;
  good.name = "good";
  good.tuples = FlatRelation(ChocolateSchema());
  good.tuples.AddRow(MakeChocolate(true, true, false, false, "Madagascar"));
  good.tuples.AddRow(MakeChocolate(true, false, true, true, "Belgium"));
  EXPECT_TRUE(q.Evaluate(binding.ObjectToBoolean(good)));
}

TEST(ChocolateTest, RandomDatabaseIsWellTyped) {
  Rng rng(1);
  FlatRelation pool = RandomChocolateDatabase(64, rng);
  EXPECT_EQ(pool.size(), 64u);
  EXPECT_EQ(pool.schema(), ChocolateSchema());
}

}  // namespace
}  // namespace qhorn
