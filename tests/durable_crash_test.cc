// The crash-recovery differential sweep: every seed derives a hostile
// fleet (the same fleets as workload_fuzz_test.cc) and runs it against a
// DurableRouter on an in-memory filesystem while a seeded failing machine
// kills the service at round boundaries and injects mid-append faults
// (torn appends, sync failures). After any number of crashes, each
// session's fingerprint must equal the 1-lane synchronous reference bit
// for bit — and a final crash of the *completed* service must recover
// into a router that reproduces those fingerprints from the log alone.
//
// CI sweeps seeds 1..64 by default; the range and budget are overridable
// without a rebuild (the crash-recovery CI job raises the seed count):
//
//   QHORN_CRASH_SEEDS=256          # seeds 1..256
//   QHORN_CRASH_SEEDS=9000:32      # seeds 9000..9031
//   QHORN_CRASH_SEEDS=1337:1       # one seed — the repro shape
//   QHORN_CRASH_BUDGET_MS=60000
//
// Every failure message carries the one-flag seed repro line.
//
// CTest label: durable (runs under the asan and tsan CI presets).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/durable/crash_harness.h"
#include "src/workload/workload.h"

namespace qhorn {
namespace {

struct SeedRange {
  uint64_t start = 1;
  uint64_t count = 64;
};

/// Parses "COUNT" or "START:COUNT"; anything unparsable keeps defaults.
SeedRange ParseSeedRange(const char* env) {
  SeedRange range;
  if (env == nullptr || env[0] == '\0') return range;
  std::string s(env);
  size_t colon = s.find(':');
  try {
    if (colon == std::string::npos) {
      range.count = std::stoull(s);
    } else {
      range.start = std::stoull(s.substr(0, colon));
      range.count = std::stoull(s.substr(colon + 1));
    }
  } catch (...) {
    ADD_FAILURE() << "unparsable QHORN_CRASH_SEEDS value: " << s;
  }
  if (range.count == 0) range.count = 1;
  return range;
}

int64_t BudgetMs() {
  const char* env = std::getenv("QHORN_CRASH_BUDGET_MS");
  if (env == nullptr || env[0] == '\0') return 240000;
  return std::atoll(env);
}

TEST(DurableCrashTest, SeedRangeParsing) {
  EXPECT_EQ(ParseSeedRange(nullptr).start, 1u);
  EXPECT_EQ(ParseSeedRange(nullptr).count, 64u);
  EXPECT_EQ(ParseSeedRange("256").count, 256u);
  EXPECT_EQ(ParseSeedRange("9000:32").start, 9000u);
  EXPECT_EQ(ParseSeedRange("9000:32").count, 32u);
  EXPECT_EQ(ParseSeedRange("1337:0").count, 1u);
}

TEST(DurableCrashTest, BothResumeProtocolsSurviveCrashesIdentically) {
  // The crash differential under each resume protocol explicitly (the
  // sweep below draws the protocol per seed): the same fleet, the same
  // crash schedule, once with snapshot resume and once with full-prefix
  // replay. Both must recover bit-identical to the synchronous reference
  // — and to *each other* — so the snapshot path cannot hide behind
  // replay's coverage, or vice versa.
  for (uint64_t seed : {5u, 17u, 23u}) {
    WorkloadSpec spec = WorkloadSpec::FromSeed(seed);
    CrashOutcome snapshot = RunCrashDifferential(spec, ResumeMode::kSnapshot);
    ASSERT_TRUE(snapshot.ok) << "snapshot resume: " << snapshot.failure;
    CrashOutcome replay = RunCrashDifferential(spec, ResumeMode::kReplay);
    ASSERT_TRUE(replay.ok) << "full-prefix replay: " << replay.failure;
    for (size_t i = 0; i < snapshot.hostile.fingerprints.size(); ++i) {
      ASSERT_EQ(snapshot.hostile.fingerprints[i],
                replay.hostile.fingerprints[i])
          << "resume protocols diverged across crashes on session " << i
          << " (" << spec.ReproLine() << ")";
    }
  }
}

TEST(DurableCrashTest, CrashedFleetsRecoverBitIdentical) {
  SeedRange range = ParseSeedRange(std::getenv("QHORN_CRASH_SEEDS"));
  const int64_t budget_ms = BudgetMs();
  const auto t0 = std::chrono::steady_clock::now();

  uint64_t swept = 0;
  int64_t crashes = 0;
  int64_t soft_retries = 0;
  int64_t rounds = 0;
  int64_t replayed = 0;
  int64_t duplicates_skipped = 0;
  int64_t torn_truncated = 0;
  for (uint64_t seed = range.start; seed < range.start + range.count; ++seed) {
    CrashOutcome out = RunCrashDifferential(WorkloadSpec::FromSeed(seed));
    // out.failure carries "--seed=N": one flag reproduces the fleet, the
    // delivery schedule, the noise streams and the crash schedule.
    ASSERT_TRUE(out.ok) << out.failure;
    ++swept;
    crashes += out.crashes;
    soft_retries += out.soft_retries;
    rounds += out.hostile.rounds_answered;
    replayed += out.recovery.rounds_replayed + out.final_recovery.rounds_replayed;
    duplicates_skipped += out.recovery.duplicate_records_skipped +
                          out.final_recovery.duplicate_records_skipped;
    torn_truncated += out.recovery.torn_tails_truncated +
                      out.final_recovery.torn_tails_truncated;

    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (elapsed > budget_ms && seed + 1 < range.start + range.count) {
      std::cout << "[durable_crash] TIME BUDGET EXHAUSTED after " << swept
                << "/" << range.count << " seeds (" << elapsed
                << " ms > " << budget_ms
                << " ms) — the remaining seeds were NOT swept\n";
      break;
    }
  }
  std::cout << "[durable_crash] swept " << swept << " seeds: " << crashes
            << " kill+recover cycles, " << soft_retries
            << " sync-failure retries, " << rounds
            << " rounds answered, " << replayed
            << " rounds replayed from the log, " << duplicates_skipped
            << " duplicate records skipped, " << torn_truncated
            << " torn tails truncated\n";
  // A sweep that never crashed, never tore an append and never forced a
  // retry would test nothing this suite exists for — fail loudly rather
  // than report a green nothing.
  EXPECT_GT(rounds, 0);
  EXPECT_GT(crashes, 0) << "no seed ever killed the service";
  EXPECT_GT(replayed, 0) << "no recovery ever replayed a logged round";
  EXPECT_GT(soft_retries + duplicates_skipped + torn_truncated, 0)
      << "the sweep never exercised a mid-append fault path";
}

}  // namespace
}  // namespace qhorn
