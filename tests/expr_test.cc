// Expression types: guarantee variables, violation predicate, formatting.

#include "src/core/expr.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

TEST(UniversalHornTest, GuaranteeVars) {
  UniversalHorn u{VarBit(0) | VarBit(1), 2};
  EXPECT_EQ(u.GuaranteeVars(), VarBit(0) | VarBit(1) | VarBit(2));
  UniversalHorn bodyless{0, 3};
  EXPECT_EQ(bodyless.GuaranteeVars(), VarBit(3));
}

TEST(UniversalHornTest, ViolatedBy) {
  UniversalHorn u{VarBit(0) | VarBit(1), 2};
  EXPECT_TRUE(u.ViolatedBy(ParseTuple("110")));
  EXPECT_FALSE(u.ViolatedBy(ParseTuple("111")));
  EXPECT_FALSE(u.ViolatedBy(ParseTuple("100")));  // body incomplete
  EXPECT_FALSE(u.ViolatedBy(ParseTuple("000")));
}

TEST(UniversalHornTest, BodylessViolatedByAnyFalseHead) {
  UniversalHorn u{0, 1};
  EXPECT_TRUE(u.ViolatedBy(ParseTuple("10")));
  EXPECT_TRUE(u.ViolatedBy(ParseTuple("00")));
  EXPECT_FALSE(u.ViolatedBy(ParseTuple("01")));
}

TEST(UniversalHornTest, ToString) {
  EXPECT_EQ((UniversalHorn{VarBit(0) | VarBit(3), 4}.ToString()),
            "∀x1x4→x5");
  EXPECT_EQ((UniversalHorn{0, 3}.ToString()), "∀x4");
}

TEST(ExistentialConjTest, ToString) {
  EXPECT_EQ((ExistentialConj{VarBit(1) | VarBit(2) | VarBit(4)}.ToString()),
            "∃x2x3x5");
}

TEST(Qhorn1PartTest, Accessors) {
  Qhorn1Part p{VarBit(0) | VarBit(1), VarBit(3), VarBit(4) | VarBit(5)};
  EXPECT_EQ(p.heads(), VarBit(3) | VarBit(4) | VarBit(5));
  EXPECT_EQ(p.vars(), p.body | p.heads());
}

TEST(ExprTest, Ordering) {
  UniversalHorn a{VarBit(0), 1};
  UniversalHorn b{VarBit(0), 2};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, (UniversalHorn{VarBit(0), 1}));
}

}  // namespace
}  // namespace qhorn
