// The QuerySession facade: learning, verification, revision, history
// correction, caching behaviour.

#include "src/session/session.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/core/random_query.h"

namespace qhorn {
namespace {

TEST(SessionTest, LearnProducesTheIntendedQuery) {
  Query intended = Query::Parse("∀x1x2→x4 ∃x3", 4);
  QueryOracle user(intended);
  QuerySession session(4, &user);
  const Query& learned = session.Learn();
  EXPECT_TRUE(Equivalent(learned, intended));
  EXPECT_TRUE(session.current_query().has_value());
  EXPECT_GT(session.questions_asked(), 0);
  EXPECT_FALSE(session.history().empty());
}

TEST(SessionTest, VerifyAcceptsAndInstallsCandidate) {
  Query intended = Query::Parse("∃x1x2 ∃x3", 3);
  QueryOracle user(intended);
  QuerySession session(3, &user);
  VerificationReport report = session.Verify(intended);
  EXPECT_TRUE(report.accepted);
  ASSERT_TRUE(session.current_query().has_value());
  EXPECT_TRUE(Equivalent(*session.current_query(), intended));
}

TEST(SessionTest, VerifyRejectsWrongCandidateWithoutInstalling) {
  QueryOracle user(Query::Parse("∃x1x2 ∃x3", 3));
  QuerySession session(3, &user);
  VerificationReport report = session.Verify(Query::Parse("∃x1 ∃x3", 3));
  EXPECT_FALSE(report.accepted);
  EXPECT_FALSE(session.current_query().has_value());
}

TEST(SessionTest, ReviseConvergesFromACloseGuess) {
  Query intended = Query::Parse("∃x1x2 ∃x4", 4);
  QueryOracle user(intended);
  QuerySession session(4, &user);
  RevisionResult result = session.Revise(Query::Parse("∃x1x2x3 ∃x4", 4));
  EXPECT_TRUE(Equivalent(result.query, intended));
  EXPECT_TRUE(Equivalent(*session.current_query(), intended));
}

TEST(SessionTest, CachingReducesUserQuestions) {
  Query intended = Query::Parse("∀x1x2→x5 ∀x3x4→x5 ∃x1x2x3", 5);
  QueryOracle user1(intended);
  QuerySession::Options cached;
  cached.cache_questions = true;
  QuerySession with_cache(5, &user1, cached);
  with_cache.Learn();

  QueryOracle user2(intended);
  QuerySession::Options uncached;
  uncached.cache_questions = false;
  QuerySession without_cache(5, &user2, uncached);
  without_cache.Learn();

  EXPECT_LE(with_cache.questions_asked(), without_cache.questions_asked());
  EXPECT_TRUE(Equivalent(*with_cache.current_query(),
                         *without_cache.current_query()));
}

TEST(SessionTest, CorrectAndRelearnRecovers) {
  Query intended = Query::Parse("∀x1 ∃x2 ∃x3", 3);
  QueryOracle truth(intended);

  // The user fumbles the 5th question (the first lattice question).
  struct Flaky : MembershipOracle {
    MembershipOracle* inner;
    int64_t at;
    int64_t count = 0;
    bool IsAnswer(const TupleSet& q) override {
      bool v = inner->IsAnswer(q);
      return ++count == at ? !v : v;
    }
  } flaky{};
  flaky.inner = &truth;
  flaky.at = 5;

  QuerySession session(3, &flaky);
  const Query& wrong = session.Learn();
  ASSERT_FALSE(Equivalent(wrong, intended));

  // Find the flipped entry in the history (index 4) and correct it; the
  // user answers truthfully from here on (their mistake was one-off).
  flaky.at = -1;
  const Query& fixed = session.CorrectAndRelearn(4);
  EXPECT_TRUE(Equivalent(fixed, intended)) << fixed.ToString();
  EXPECT_FALSE(session.history().empty());
}

TEST(SessionTest, RandomizedEndToEnd) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = static_cast<int>(rng.Range(0, 2));
    opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
    Query intended = RandomRolePreserving(6, rng, opts);
    QueryOracle user(intended);
    QuerySession session(6, &user);
    EXPECT_TRUE(Equivalent(session.Learn(), intended));
    EXPECT_TRUE(session.Verify(intended).accepted);
  }
}

TEST(SessionDeathTest, ArityMismatchAborts) {
  QueryOracle user(Query::Parse("∃x1", 2));
  QuerySession session(2, &user);
  EXPECT_DEATH(session.Verify(Query::Parse("∃x1", 3)), "arity");
}

}  // namespace
}  // namespace qhorn
