// Distinguishing tuples (Defs. 3.4, 3.5; §4.1): dominant existential
// tuples with guarantee provenance, universal distinguishing tuples,
// violation-free children.

#include "src/verify/distinguishing.h"

#include <gtest/gtest.h>

#include <set>

namespace qhorn {
namespace {

TEST(DistinguishingTest, Section41ExampleTuples) {
  Query q = Query::Parse(
      "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  std::vector<ExistentialTupleInfo> tuples = DominantExistentialTuples(q);
  std::set<Tuple> got;
  std::set<Tuple> guarantee_only;
  for (const ExistentialTupleInfo& info : tuples) {
    got.insert(info.tuple);
    if (info.guarantee_only) guarantee_only.insert(info.tuple);
  }
  // §4.2 A1: the non-dominant guarantees 110001 and 001110 are dropped.
  std::set<Tuple> expected = {ParseTuple("111001"), ParseTuple("011110"),
                              ParseTuple("110011"), ParseTuple("011011"),
                              ParseTuple("100110")};
  EXPECT_EQ(got, expected);
  // Only ∃x1x4x5 = 100110 is a pure guarantee clause.
  EXPECT_EQ(guarantee_only, std::set<Tuple>{ParseTuple("100110")});
}

TEST(DistinguishingTest, UniversalTuplesFromSection41) {
  Query q = Query::Parse(
      "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  VarSet heads = q.UniversalHeadVars();
  EXPECT_EQ(UniversalDistinguishingTuple(
                UniversalHorn{VarBit(0) | VarBit(3), 4}, heads),
            ParseTuple("100101"));
  EXPECT_EQ(UniversalDistinguishingTuple(
                UniversalHorn{VarBit(2) | VarBit(3), 4}, heads),
            ParseTuple("001101"));
  EXPECT_EQ(UniversalDistinguishingTuple(
                UniversalHorn{VarBit(0) | VarBit(1), 5}, heads),
            ParseTuple("110010"));
}

TEST(DistinguishingTest, DominantUniversalHornsDropDominated) {
  Query q = Query::Parse("∀x1x2x3→x4 ∀x1x2→x4 ∀x1→x4");
  std::vector<UniversalHorn> horns = DominantUniversalHorns(q);
  ASSERT_EQ(horns.size(), 1u);
  EXPECT_EQ(horns[0].body, VarBit(0));
  EXPECT_EQ(horns[0].head, 3);
}

TEST(DistinguishingTest, ViolationFreeChildrenMatchWalkthrough) {
  // Children of 111011 under ∀x1x2→x6: 111010 violates and is dropped.
  Query q = Query::Parse("∀x1x2→x6 ∀x3x4→x5 ∀x1x4→x5");
  std::vector<Tuple> children =
      ViolationFreeChildren(ParseTuple("111011"), 6, q.universal());
  std::set<Tuple> got(children.begin(), children.end());
  std::set<Tuple> expected = {ParseTuple("011011"), ParseTuple("101011"),
                              ParseTuple("110011"), ParseTuple("111001")};
  EXPECT_EQ(got, expected);
}

TEST(DistinguishingTest, GuaranteeDominatedByUserConjunctionIsNotFlagged) {
  // The user conjunction ∃x1x2x3 closes over ∀x1→x3 ... user closure equals
  // the guarantee closure, so the tuple is not guarantee-only.
  Query q = Query::Parse("∀x1→x2 ∃x1x2", 2);
  std::vector<ExistentialTupleInfo> tuples = DominantExistentialTuples(q);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].tuple, AllTrue(2));
  EXPECT_FALSE(tuples[0].guarantee_only);
}

TEST(DistinguishingTest, PureHornQueryHasGuaranteeOnlyTuples) {
  Query q = Query::Parse("∀x1→x2", 2);
  std::vector<ExistentialTupleInfo> tuples = DominantExistentialTuples(q);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].guarantee_only);
}

}  // namespace
}  // namespace qhorn
