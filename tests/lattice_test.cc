// The Boolean lattice (§3.2, Fig. 4): children, parents, levels, upsets and
// downsets, violation filtering.

#include "src/bool/lattice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/query.h"

namespace qhorn {
namespace {

TEST(LatticeTest, ChildrenFlipOneTrueVariable) {
  std::vector<Tuple> children = LatticeChildren(ParseTuple("1011"), AllTrue(4));
  std::set<Tuple> got(children.begin(), children.end());
  std::set<Tuple> expected = {ParseTuple("0011"), ParseTuple("1001"),
                              ParseTuple("1010")};
  EXPECT_EQ(got, expected);
}

TEST(LatticeTest, ParentsFlipOneFalseVariable) {
  std::vector<Tuple> parents = LatticeParents(ParseTuple("0011"), AllTrue(4));
  std::set<Tuple> got(parents.begin(), parents.end());
  std::set<Tuple> expected = {ParseTuple("1011"), ParseTuple("0111")};
  EXPECT_EQ(got, expected);
}

TEST(LatticeTest, DegreesMatchFigFour) {
  // Fig. 4: tuples at level l have out-degree n-l and in-degree l.
  int n = 4;
  for (Tuple t = 0; t < (Tuple{1} << n); ++t) {
    int l = Level(t, n);
    EXPECT_EQ(static_cast<int>(LatticeChildren(t, AllTrue(n)).size()), n - l);
    EXPECT_EQ(static_cast<int>(LatticeParents(t, AllTrue(n)).size()), l);
  }
}

TEST(LatticeTest, RestrictedUniversePreservesPinnedBits) {
  // Fig. 5: heads pinned, search within non-heads only.
  VarSet universe = ParseTuple("111100");  // x1..x4 searchable
  Tuple t = ParseTuple("101101");          // x6 pinned true, x5 pinned false
  for (Tuple child : LatticeChildren(t, universe)) {
    EXPECT_TRUE(HasVar(child, 5));
    EXPECT_FALSE(HasVar(child, 4));
  }
  EXPECT_EQ(LatticeChildren(t, universe).size(), 3u);  // x1, x3, x4 flips
}

TEST(LatticeTest, FilteredChildrenDropHornViolations) {
  // §3.2.2: children violating a universal Horn expression are removed.
  Query q = Query::Parse("∀x1x2→x6", 6);
  Tuple t = ParseTuple("111011");
  auto keep = [&](Tuple c) { return !q.ViolatesUniversal(c); };
  std::vector<Tuple> children = LatticeChildrenFiltered(t, AllTrue(6), keep);
  std::set<Tuple> got(children.begin(), children.end());
  // The paper's worked example: {011011, 101011, 110011, 111001}; 111010
  // violates ∀x1x2→x6.
  std::set<Tuple> expected = {ParseTuple("011011"), ParseTuple("101011"),
                              ParseTuple("110011"), ParseTuple("111001")};
  EXPECT_EQ(got, expected);
}

TEST(LatticeTest, LevelEnumeratesCombinations) {
  std::vector<Tuple> level2 = LatticeLevel(AllTrue(4), 2);
  EXPECT_EQ(level2.size(), 6u);  // C(4,2)
  for (Tuple t : level2) EXPECT_EQ(Level(t, 4), 2);
  EXPECT_EQ(LatticeLevel(AllTrue(4), 0),
            std::vector<Tuple>{AllTrue(4)});
}

TEST(LatticeTest, LevelWithFixedBits) {
  // Level over x1..x3 with x4 pinned true.
  std::vector<Tuple> tuples = LatticeLevel(ParseTuple("1110"), 1,
                                           /*fixed=*/ParseTuple("0001"));
  EXPECT_EQ(tuples.size(), 3u);
  for (Tuple t : tuples) EXPECT_TRUE(HasVar(t, 3));
}

TEST(LatticeTest, UpsetDownset) {
  Tuple t = ParseTuple("0011");
  EXPECT_TRUE(InUpset(ParseTuple("1011"), t));
  EXPECT_TRUE(InUpset(t, t));
  EXPECT_FALSE(InUpset(ParseTuple("0001"), t));
  EXPECT_TRUE(InDownset(ParseTuple("0001"), t));
  EXPECT_FALSE(InDownset(ParseTuple("0111"), t));
}

TEST(LatticeTest, DistanceIsSymmetricDifference) {
  EXPECT_EQ(LatticeDistance(ParseTuple("1100"), ParseTuple("1010")), 2);
  EXPECT_EQ(LatticeDistance(ParseTuple("1100"), ParseTuple("1100")), 0);
  EXPECT_EQ(LatticeDistance(ParseTuple("1111"), ParseTuple("0000")), 4);
}

TEST(LatticeTest, CallbackWalkersMatchVectorFormsInOrder) {
  // The allocation-free ForEach* walkers must visit exactly the tuples of
  // the vector forms, in the same (ascending-variable) order — the
  // learners' question composition depends on it.
  for (Tuple t = 0; t < (Tuple{1} << 5); ++t) {
    VarSet universe = ParseTuple("11011");
    std::vector<Tuple> visited;
    ForEachLatticeChild(t, universe,
                        [&visited](Tuple c) { visited.push_back(c); });
    EXPECT_EQ(visited, LatticeChildren(t, universe));
    visited.clear();
    ForEachLatticeParent(t, universe,
                         [&visited](Tuple p) { visited.push_back(p); });
    EXPECT_EQ(visited, LatticeParents(t, universe));
  }
}

TEST(LatticeTest, LevelWalkerMatchesRecursiveReferenceOrder) {
  // Reference: the original depth-first "clear candidates in ascending
  // variable order" recursion.
  struct Ref {
    static void Clears(Tuple base, const std::vector<int>& cand, size_t next,
                       int remaining, std::vector<Tuple>* out) {
      if (remaining == 0) {
        out->push_back(base);
        return;
      }
      if (cand.size() - next < static_cast<size_t>(remaining)) return;
      for (size_t i = next; i < cand.size(); ++i) {
        Clears(base & ~VarBit(cand[i]), cand, i + 1, remaining - 1, out);
      }
    }
  };
  VarSet universe = ParseTuple("110111");
  Tuple fixed = ParseTuple("001000");
  int width = Popcount(universe);
  for (int level = 0; level <= width; ++level) {
    std::vector<Tuple> expected;
    Tuple top = (fixed & ~universe) | universe;
    Ref::Clears(top, VarsOf(universe), 0, level, &expected);
    EXPECT_EQ(LatticeLevel(universe, level, fixed), expected)
        << "level " << level;
  }
}

bool KeepEvenPopcount(Tuple t) { return Popcount(t) % 2 == 0; }

TEST(LatticeTest, FunctionRefBindsFreeFunctions) {
  // FunctionRef accepts plain functions, not just lambdas/functors.
  std::vector<Tuple> kept =
      LatticeChildrenFiltered(ParseTuple("1110"), AllTrue(4),
                              KeepEvenPopcount);
  for (Tuple t : kept) EXPECT_EQ(Popcount(t) % 2, 0);
  EXPECT_EQ(kept.size(), 3u);  // all children of a popcount-3 tuple
}

TEST(LatticeTest, AppendFilteredReusesCallerBuffer) {
  Query q = Query::Parse("∀x1x2→x6", 6);
  std::vector<Tuple> buffer;
  AppendLatticeChildrenFiltered(
      ParseTuple("111011"), AllTrue(6),
      [&q](Tuple c) { return !q.ViolatesUniversal(c); }, &buffer);
  EXPECT_EQ(buffer.size(), 4u);
  size_t first = buffer.size();
  // Appending again extends the same buffer (caller owns clearing).
  AppendLatticeChildrenFiltered(
      ParseTuple("111011"), AllTrue(6),
      [&q](Tuple c) { return !q.ViolatesUniversal(c); }, &buffer);
  EXPECT_EQ(buffer.size(), 2 * first);
}

}  // namespace
}  // namespace qhorn
