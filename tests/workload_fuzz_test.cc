// The hostile-fleet fuzz sweep: every seed in the range derives a
// heterogeneous fleet (WorkloadSpec::FromSeed), runs it through the
// K-lane pending protocol under adversarial delivery, and asserts each
// session's fingerprint is bit-identical to the 1-lane synchronous replay
// of the same seed — fuzz-grade differential testing of the service
// contract.
//
// CI sweeps the fixed default range (seeds 1..64). The range is
// overridable without a rebuild:
//
//   QHORN_FUZZ_SEEDS=256          # seeds 1..256
//   QHORN_FUZZ_SEEDS=9000:32      # seeds 9000..9031
//   QHORN_FUZZ_SEEDS=1337:1       # one seed — the repro shape
//
// A wall-clock budget (QHORN_FUZZ_BUDGET_MS, default 240 s — inside the
// suite's 300 s ctest TIMEOUT) stops a sweep early on slow sanitizer
// runners; a truncated sweep says so loudly instead of silently passing
// as "covered". Every failure message carries the single-flag repro line
// (tools/workload_repro.py --seed=N re-runs exactly that seed).
//
// CTest labels: workload (runs under the asan and tsan CI presets).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/workload/fleet_driver.h"
#include "src/workload/workload.h"

namespace qhorn {
namespace {

struct SeedRange {
  uint64_t start = 1;
  uint64_t count = 64;
};

/// Parses "COUNT" or "START:COUNT"; anything unparsable keeps defaults.
SeedRange ParseSeedRange(const char* env) {
  SeedRange range;
  if (env == nullptr || env[0] == '\0') return range;
  std::string s(env);
  size_t colon = s.find(':');
  try {
    if (colon == std::string::npos) {
      range.count = std::stoull(s);
    } else {
      range.start = std::stoull(s.substr(0, colon));
      range.count = std::stoull(s.substr(colon + 1));
    }
  } catch (...) {
    ADD_FAILURE() << "unparsable QHORN_FUZZ_SEEDS value: " << s;
  }
  if (range.count == 0) range.count = 1;
  return range;
}

int64_t BudgetMs() {
  const char* env = std::getenv("QHORN_FUZZ_BUDGET_MS");
  if (env == nullptr || env[0] == '\0') return 240000;
  return std::atoll(env);
}

TEST(WorkloadFuzzTest, SeedRangeParsing) {
  EXPECT_EQ(ParseSeedRange(nullptr).start, 1u);
  EXPECT_EQ(ParseSeedRange(nullptr).count, 64u);
  EXPECT_EQ(ParseSeedRange("256").count, 256u);
  EXPECT_EQ(ParseSeedRange("9000:32").start, 9000u);
  EXPECT_EQ(ParseSeedRange("9000:32").count, 32u);
  EXPECT_EQ(ParseSeedRange("1337:0").count, 1u);
}

TEST(WorkloadFuzzTest, SnapshotAndReplayResumeArmsAreBitIdentical) {
  // The resume-protocol differential, run explicitly on both protocols
  // (the big sweep below draws the mode per seed; this pins seed-for-seed
  // that snapshot resume and the retired full-prefix replay produce
  // bit-identical fingerprints under the same hostile delivery, and both
  // match the synchronous reference). Also pins the accounting split the
  // protocols exist for: replay's user-boundary re-serving dominates
  // snapshot's.
  int64_t snapshot_replayed = 0;
  int64_t replay_replayed = 0;
  for (uint64_t seed : {3u, 11u, 29u, 41u, 57u}) {
    WorkloadSpec spec = WorkloadSpec::FromSeed(seed);
    Fleet fleet = GenerateFleet(spec);
    FleetDriver driver(fleet);
    FleetResult snapshot = driver.RunPending(0, ResumeMode::kSnapshot);
    FleetResult replay = driver.RunPending(0, ResumeMode::kReplay);
    FleetResult synchronous = driver.RunSynchronous();
    ASSERT_TRUE(snapshot.ok) << snapshot.failure;
    ASSERT_TRUE(replay.ok) << replay.failure;
    ASSERT_TRUE(synchronous.ok) << synchronous.failure;
    for (size_t i = 0; i < fleet.sessions.size(); ++i) {
      ASSERT_EQ(snapshot.fingerprints[i], replay.fingerprints[i])
          << "resume protocols diverged on session " << i << " ("
          << spec.ReproLine() << ")";
    }
    ASSERT_EQ(CompareArmFingerprints(fleet, snapshot, synchronous),
              std::string());
    ASSERT_EQ(CompareArmFingerprints(fleet, replay, synchronous),
              std::string());
    snapshot_replayed += snapshot.stats.replayed_questions;
    replay_replayed += replay.stats.replayed_questions;
  }
  EXPECT_GT(replay_replayed, snapshot_replayed)
      << "full-prefix replay must re-serve strictly more than snapshot "
         "resume across the sample fleets";
}

TEST(WorkloadFuzzTest, ShardedHostileArmsAreBitIdenticalAcrossShardCounts) {
  // The sharding differential, run explicitly at pinned shard counts (the
  // big sweep below draws router_shards per seed; this pins seed-for-seed
  // that the hostile arm behind a 1-, 2- and 8-shard ShardedRouter
  // produces fingerprints bit-identical to the synchronous reference —
  // the shard count changes which mutexes exist, never what a session
  // observes).
  for (uint64_t seed : {5u, 17u, 33u, 49u}) {
    WorkloadSpec spec = WorkloadSpec::FromSeed(seed);
    Fleet fleet = GenerateFleet(spec);
    FleetDriver driver(fleet);
    FleetResult synchronous = driver.RunSynchronous();
    ASSERT_TRUE(synchronous.ok) << synchronous.failure;
    for (int shards : {1, 2, 8}) {
      FleetResult hostile =
          driver.RunPending(0, ResumeMode::kDefault, shards);
      ASSERT_TRUE(hostile.ok)
          << hostile.failure << " (shards=" << shards << ")";
      ASSERT_EQ(CompareArmFingerprints(fleet, hostile, synchronous),
                std::string())
          << "sharded arm diverged at " << shards << " shards ("
          << spec.ReproLine() << ")";
    }
  }
}

TEST(WorkloadFuzzTest, HostileFleetSweepIsReplayEquivalent) {
  SeedRange range = ParseSeedRange(std::getenv("QHORN_FUZZ_SEEDS"));
  const int64_t budget_ms = BudgetMs();
  const auto t0 = std::chrono::steady_clock::now();

  uint64_t swept = 0;
  int64_t rounds = 0;
  int64_t malformed = 0;
  int64_t duplicates = 0;
  int64_t abandoned = 0;
  for (uint64_t seed = range.start; seed < range.start + range.count; ++seed) {
    DifferentialOutcome out = RunDifferential(WorkloadSpec::FromSeed(seed));
    // out.failure always carries "--seed=N": the one flag that reproduces
    // this exact fleet, delivery schedule and noise stream.
    ASSERT_TRUE(out.ok) << out.failure;
    ++swept;
    rounds += out.pending.rounds_answered;
    malformed += out.pending.malformed_injected;
    duplicates += out.pending.duplicates_injected;
    abandoned += out.pending.abandoned_sessions;

    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (elapsed > budget_ms && seed + 1 < range.start + range.count) {
      std::cout << "[workload_fuzz] TIME BUDGET EXHAUSTED after " << swept
                << "/" << range.count << " seeds (" << elapsed
                << " ms > " << budget_ms
                << " ms) — the remaining seeds were NOT swept\n";
      break;
    }
  }
  std::cout << "[workload_fuzz] swept " << swept << " seeds: " << rounds
            << " pending rounds answered, " << malformed
            << " malformed replies rejected, " << duplicates
            << " duplicate deliveries rejected, " << abandoned
            << " sessions abandoned mid-round\n";
  // A sweep that answered no rounds or never injected hostility would be
  // vacuous — fail loudly rather than report a green nothing.
  EXPECT_GT(rounds, 0);
  EXPECT_GT(malformed + duplicates + abandoned, 0)
      << "the sweep never exercised a hostile delivery path";
}

}  // namespace
}  // namespace qhorn
