// Cross-module integration: learn → verify pipelines, learning through the
// data domain with database-backed questions, caching-oracle transparency,
// and end-to-end reproduction of the paper's workflow.

#include <gtest/gtest.h>

#include "src/core/classify.h"
#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/learn/qhorn1_learner.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/transcript.h"
#include "src/relation/chocolate.h"
#include "src/verify/verifier.h"

namespace qhorn {
namespace {

// Learn a query, then verify the learned query against the same user: the
// verification must accept (the learner is exact).
TEST(LearnThenVerifyTest, LearnedQueriesPassVerification) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = static_cast<int>(rng.Range(0, 2));
    opts.theta = static_cast<int>(rng.Range(1, 2));
    opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
    Query target = RandomRolePreserving(6, rng, opts);
    QueryOracle user(target);

    RpLearnerResult learned = LearnRolePreserving(6, &user);
    ASSERT_TRUE(Equivalent(learned.query, target));
    EXPECT_TRUE(VerifyQuery(learned.query, &user).accepted)
        << learned.query.ToString();
  }
}

// The qhorn-1 learner and the role-preserving learner agree on qhorn-1
// targets (qhorn-1 ⊂ role-preserving qhorn).
TEST(LearnerAgreementTest, BothLearnersRecoverQhorn1Targets) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    Qhorn1Structure target = RandomQhorn1(7, rng);
    Query target_query = target.ToQuery();

    QueryOracle o1(target_query);
    Qhorn1Learner learner1(7, &o1);
    Query via_qhorn1 = learner1.Learn().ToQuery();

    QueryOracle o2(target_query);
    Query via_rp = LearnRolePreserving(7, &o2).query;

    EXPECT_TRUE(Equivalent(via_qhorn1, target_query));
    EXPECT_TRUE(Equivalent(via_rp, target_query));
    EXPECT_TRUE(Equivalent(via_qhorn1, via_rp));
  }
}

// Caching changes question counts but never the learned query.
TEST(CachingTransparencyTest, SameResultFewerUserQuestions) {
  Query target = Query::Parse(
      "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  QueryOracle user1(target);
  CountingOracle raw(&user1);
  Query without_cache = LearnRolePreserving(6, &raw).query;

  QueryOracle user2(target);
  CountingOracle counted(&user2);
  CachingOracle cache(&counted);
  Query with_cache = LearnRolePreserving(6, &cache).query;

  EXPECT_TRUE(Equivalent(without_cache, with_cache));
  EXPECT_LE(counted.stats().questions, raw.stats().questions);
}

// The full DataPlay-style loop: the user answers through materialized
// chocolate boxes drawn from a database, with a response history; the
// learned query passes verification and PAC sampling.
TEST(DataPlayPipelineTest, ChocolateEndToEnd) {
  Query intended = IntroChocolateQuery();
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  DataDomainOracle data_user(intended, &binding);
  TranscriptOracle history(&data_user);

  RpLearnerResult learned = LearnRolePreserving(3, &history);
  EXPECT_TRUE(Equivalent(learned.query, intended))
      << learned.query.ToString();
  EXPECT_FALSE(history.entries().empty());

  EXPECT_TRUE(VerifyQuery(learned.query, &data_user).accepted);

  Rng rng(9);
  PacReport pac = PacVerify(learned.query, &data_user, rng);
  EXPECT_TRUE(pac.consistent);
}

// Exhaustive small-world pipeline: for every canonical role-preserving
// query on 2 variables, learn it, verify it, and cross-verify against
// every other query.
TEST(ExhaustivePipelineTest, TwoVariableWorld) {
  std::vector<Query> world = EnumerateRolePreserving(2);
  ASSERT_EQ(world.size(), 7u);
  for (const Query& target : world) {
    QueryOracle user(target);
    Query learned = LearnRolePreserving(2, &user).query;
    ASSERT_TRUE(Equivalent(learned, target));
    for (const Query& other : world) {
      QueryOracle other_user(other);
      EXPECT_EQ(VerifyQuery(learned, &other_user).accepted,
                Equivalent(target, other));
    }
  }
}

// Question sizes stay small (interactive performance, §2.1.2): the
// qhorn-1 learner never builds a question with more than n tuples, the
// role-preserving learner stays within O(n + k).
TEST(QuestionSizeTest, BoundedTuplesPerQuestion) {
  int n = 10;
  Rng rng(21);
  Qhorn1Structure target = RandomQhorn1(n, rng);
  QueryOracle user(target.ToQuery());
  CountingOracle counting(&user);
  Qhorn1Learner learner(n, &counting);
  learner.Learn();
  EXPECT_LE(counting.stats().max_tuples, n);

  RpOptions opts;
  opts.num_conjunctions = 4;
  Query rp_target = RandomRolePreserving(n, rng, opts);
  QueryOracle rp_user(rp_target);
  CountingOracle rp_counting(&rp_user);
  LearnRolePreserving(n, &rp_counting);
  EXPECT_LE(rp_counting.stats().max_tuples,
            n + DominantSize(rp_target) + 2);
}

// Relaxed-guarantee mode (footnote 1): learning still works when the
// oracle accepts empty guarantees, for targets whose semantics differ.
TEST(RelaxedGuaranteeTest, LearnersStillConvergeOnConjunctions) {
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  Query target = Query::Parse("∃x1x2 ∃x3", 3);  // no universal expressions
  QueryOracle user(target, relaxed);
  Query learned = LearnRolePreserving(3, &user).query;
  EXPECT_TRUE(Equivalent(learned, target));
}

}  // namespace
}  // namespace qhorn
