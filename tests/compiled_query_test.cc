// CompiledQuery is the engine behind every membership answer, so its one
// obligation is extensional equality with Query::Evaluate — checked here
// exhaustively (all role-preserving queries × all objects × both guarantee
// modes at n ≤ 3), differentially at n ∈ {16, 64}, and at the behavioral
// level: learners and verifiers driven through the compiled oracle must
// ask bit-identical question counts to the uncompiled evaluation path.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/compiled_query.h"
#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/learn/qhorn1_learner.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"
#include "src/util/rng.h"
#include "src/verify/verifier.h"

namespace qhorn {
namespace {

// The pre-rewire oracle: answers through the interpreted Query::Evaluate.
class UncompiledQueryOracle : public MembershipOracle {
 public:
  explicit UncompiledQueryOracle(Query intended,
                                 EvalOptions opts = EvalOptions())
      : intended_(std::move(intended)), opts_(opts) {}

  bool IsAnswer(const TupleSet& question) override {
    return intended_.Evaluate(question, opts_);
  }

 private:
  Query intended_;
  EvalOptions opts_;
};

std::vector<TupleSet> AllObjects(int n) {
  uint64_t num_tuples = uint64_t{1} << n;
  std::vector<TupleSet> objects;
  objects.reserve(size_t{1} << num_tuples);
  for (uint64_t bits = 0; bits < (uint64_t{1} << num_tuples); ++bits) {
    std::vector<Tuple> tuples;
    for (uint64_t t = 0; t < num_tuples; ++t) {
      if ((bits >> t) & 1) tuples.push_back(t);
    }
    objects.push_back(TupleSet(std::move(tuples)));
  }
  return objects;
}

TEST(CompiledQueryTest, ExhaustiveEquivalenceWithInterpreterUpToN3) {
  for (int n = 1; n <= 3; ++n) {
    std::vector<TupleSet> objects = AllObjects(n);
    for (const Query& q : EnumerateRolePreserving(n)) {
      for (bool require : {true, false}) {
        EvalOptions opts;
        opts.require_guarantees = require;
        CompiledQuery compiled(q, opts);
        for (const TupleSet& object : objects) {
          ASSERT_EQ(compiled.Evaluate(object), q.Evaluate(object, opts))
              << "n=" << n << " query=" << q.ToString()
              << " require_guarantees=" << require
              << " object=" << object.ToString(n);
        }
      }
    }
  }
}

TEST(CompiledQueryTest, DifferentialAtN16AndN64) {
  Rng rng(20260730);
  for (int n : {16, 64}) {
    for (int trial = 0; trial < 200; ++trial) {
      RpOptions qopts;
      qopts.num_heads = static_cast<int>(rng.Below(4));
      qopts.theta = 1 + static_cast<int>(rng.Below(3));
      qopts.num_conjunctions = static_cast<int>(rng.Below(6));
      qopts.bodyless_prob = 0.25;
      Query q = RandomRolePreserving(n, rng, qopts);
      for (bool require : {true, false}) {
        EvalOptions opts;
        opts.require_guarantees = require;
        CompiledQuery compiled(q, opts);
        for (int obj = 0; obj < 20; ++obj) {
          TupleSet object =
              RandomObject(n, rng, 1 + static_cast<int>(rng.Below(20)));
          ASSERT_EQ(compiled.Evaluate(object), q.Evaluate(object, opts))
              << "n=" << n << " query=" << q.ToString()
              << " require_guarantees=" << require
              << " object=" << object.ToString(n);
        }
        // Learner-style question: {1^n, probe}.
        Tuple all = AllTrue(n);
        TupleSet question{
            all, all & ~VarBit(static_cast<int>(
                     rng.Below(static_cast<uint64_t>(n))))};
        ASSERT_EQ(compiled.Evaluate(question), q.Evaluate(question, opts));
        // Empty object.
        TupleSet empty;
        ASSERT_EQ(compiled.Evaluate(empty), q.Evaluate(empty, opts));
      }
    }
  }
}

TEST(CompiledQueryTest, ProbeOrderFollowsTheMaskCountCostModel) {
  // The compile-time probe-order cost model: evaluation scans violations
  // first whenever the pruned violation masks match or outnumber the need
  // masks (a violation scan exits on its first hit; certifying a need
  // absent reads the whole object), and needs first otherwise. The order
  // is a pure cost choice — both orders must agree with the interpreter
  // on every object, whichever one the model picks.
  // Violation-heavy: three Horn expressions, one existential conjunction.
  Query viol_heavy(4);
  viol_heavy.AddUniversal(VarBit(0), 1);
  viol_heavy.AddUniversal(VarBit(1), 2);
  viol_heavy.AddUniversal(VarBit(2), 3);
  viol_heavy.AddExistential(VarBit(0) | VarBit(3));
  EvalOptions no_guarantees;
  no_guarantees.require_guarantees = false;
  CompiledQuery compiled_viol(viol_heavy, no_guarantees);
  EXPECT_EQ(compiled_viol.num_violation_masks(), 3u);
  EXPECT_EQ(compiled_viol.num_need_masks(), 1u);
  EXPECT_TRUE(compiled_viol.violations_first());

  // Needs-heavy: one Horn expression, three dominant conjunctions. With
  // require_guarantees the guarantee clause adds a need; either way needs
  // outnumber violations and the needs phase goes first.
  Query needs_heavy(4);
  needs_heavy.AddUniversal(VarBit(0), 1);
  needs_heavy.AddExistential(VarBit(0) | VarBit(2));
  needs_heavy.AddExistential(VarBit(1) | VarBit(3));
  needs_heavy.AddExistential(VarBit(2) | VarBit(3));
  CompiledQuery compiled_needs(needs_heavy, no_guarantees);
  EXPECT_GT(compiled_needs.num_need_masks(),
            compiled_needs.num_violation_masks());
  EXPECT_FALSE(compiled_needs.violations_first());

  // A query with no universal expressions can never probe violations
  // first, and one with no needs always does.
  Query pure_existential(4);
  pure_existential.AddExistential(VarBit(1));
  EXPECT_FALSE(
      CompiledQuery(pure_existential, no_guarantees).violations_first());
  Query pure_universal(4);
  pure_universal.AddUniversal(VarBit(0), 1);
  EXPECT_TRUE(CompiledQuery(pure_universal, no_guarantees).violations_first());

  // Semantics are order-independent: both compiled forms above agree with
  // the interpreter on every object at n=4.
  for (const TupleSet& object : AllObjects(4)) {
    ASSERT_EQ(compiled_viol.Evaluate(object),
              viol_heavy.Evaluate(object, no_guarantees))
        << "violation-first order broke on " << object.ToString(4);
    ASSERT_EQ(compiled_needs.Evaluate(object),
              needs_heavy.Evaluate(object, no_guarantees))
        << "needs-first order broke on " << object.ToString(4);
  }
}

TEST(CompiledQueryTest, ViolatesUniversalMatchesInterpreter) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    int n = 1 + static_cast<int>(rng.Below(64));
    RpOptions qopts;
    qopts.num_heads = static_cast<int>(
        rng.Below(std::min<uint64_t>(4, static_cast<uint64_t>(n) + 1)));
    qopts.theta = 1 + static_cast<int>(rng.Below(3));
    qopts.bodyless_prob = 0.3;
    Query q = RandomRolePreserving(n, rng, qopts);
    CompiledQuery compiled(q);
    for (int i = 0; i < 50; ++i) {
      Tuple t = rng.Next() & AllTrue(n);
      ASSERT_EQ(compiled.ViolatesUniversal(t), q.ViolatesUniversal(t))
          << q.ToString() << " tuple " << FormatTuple(t, n);
    }
  }
}

TEST(CompiledQueryTest, SimdKernelMatchesScalarReference) {
  Rng rng(4242);
  std::vector<Tuple> tuples;
  for (int trial = 0; trial < 500; ++trial) {
    size_t m = rng.Below(24);
    tuples.clear();
    for (size_t j = 0; j < m; ++j) tuples.push_back(rng.Next());
    uint64_t guard = rng.Next();
    uint64_t want = rng.Next() & guard;
    // Plant an exact match in some trials so both branches are exercised.
    if (m > 0 && trial % 3 == 0) {
      tuples[rng.Below(m)] = want | (rng.Next() & ~guard);
    }
    EXPECT_EQ(internal::AnyTupleMatches(tuples.data(), m, guard, want),
              internal::AnyTupleMatchesScalar(tuples.data(), m, guard, want));
  }
}

TEST(CompiledQueryTest, EvaluateAllMatchesPerObjectEvaluate) {
  Rng rng(11);
  int n = 16;
  RpOptions qopts;
  qopts.num_heads = 2;
  qopts.theta = 2;
  qopts.num_conjunctions = 3;
  Query q = RandomRolePreserving(n, rng, qopts);
  CompiledQuery compiled(q);
  std::vector<TupleSet> objects;
  for (int i = 0; i < 64; ++i) objects.push_back(RandomObject(n, rng, 12));
  std::vector<bool> verdicts = compiled.EvaluateAll(objects);
  ASSERT_EQ(verdicts.size(), objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ(verdicts[i], compiled.Evaluate(objects[i]));
  }
}

TEST(CompiledQueryTest, PrunesDominatedExpressions) {
  // ∀x1x2→x5 dominates ∀x1x2x3→x5 (R2); ∃x1x2x3 dominates ∃x1 (R1); the
  // guarantee of the dominated universal is absorbed by its closure.
  Query q = Query::Parse("∀x1x2→x5 ∀x1x2x3→x5 ∃x1 ∃x1x2x3", 5);
  CompiledQuery compiled(q);
  EXPECT_EQ(compiled.num_violation_masks(), 1u);
  // Needs: closure(x1) ⊂ closure(x1x2x3) and the two guarantee closures
  // x1x2x5 ⊂ x1x2x3x5; the maximal antichain is {x1x2x3x5}.
  EXPECT_EQ(compiled.num_need_masks(), 1u);
  EXPECT_EQ(CompiledQuery(q, EvalOptions{.require_guarantees = false})
                .num_need_masks(),
            1u);  // closure(x1x2x3) = x1x2x3x5 absorbs closure(x1)
}

TEST(CompiledQueryTest, EmptyQueryAcceptsEverything) {
  Query q(4);
  CompiledQuery compiled(q);
  EXPECT_TRUE(compiled.Evaluate(TupleSet{}));
  EXPECT_TRUE(compiled.Evaluate(TupleSet{ParseTuple("0000")}));
  EXPECT_EQ(compiled.num_violation_masks(), 0u);
  EXPECT_EQ(compiled.num_need_masks(), 0u);
}

// The paper's complexity measure is the question count; the engine rewire
// must not change it. Drive every learner and the verifier once through
// the compiled oracle and once through the interpreted evaluator and
// require bit-identical counts (identical answers force identical
// adaptive trajectories, so this is a strong end-to-end check).
TEST(CompiledQueryTest, LearnerQuestionCountsUnchangedByCompiledOracle) {
  Rng rng(987);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 4 + static_cast<int>(rng.Below(13));
    RpOptions qopts;
    qopts.num_heads = static_cast<int>(rng.Below(3));
    qopts.theta = 1 + static_cast<int>(rng.Below(2));
    qopts.num_conjunctions = static_cast<int>(rng.Below(4));
    Query target = RandomRolePreserving(n, rng, qopts);

    QueryOracle compiled_oracle(target);
    CountingOracle compiled_counting(&compiled_oracle);
    RpLearnerResult with_compiled = LearnRolePreserving(n, &compiled_counting);

    UncompiledQueryOracle plain_oracle(target);
    CountingOracle plain_counting(&plain_oracle);
    RpLearnerResult with_plain = LearnRolePreserving(n, &plain_counting);

    EXPECT_EQ(compiled_counting.stats().questions,
              plain_counting.stats().questions)
        << target.ToString();
    EXPECT_EQ(compiled_counting.stats().tuples, plain_counting.stats().tuples);
    EXPECT_EQ(compiled_counting.stats().answers,
              plain_counting.stats().answers);
    EXPECT_EQ(with_compiled.query, with_plain.query);
  }
}

TEST(CompiledQueryTest, Qhorn1QuestionCountsUnchangedByCompiledOracle) {
  Rng rng(654);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 4 + static_cast<int>(rng.Below(29));
    Qhorn1Structure target = RandomQhorn1(n, rng);
    Query target_query = target.ToQuery();

    QueryOracle compiled_oracle(target_query);
    CountingOracle compiled_counting(&compiled_oracle);
    Qhorn1Learner compiled_learner(n, &compiled_counting);
    Qhorn1Structure learned_compiled = compiled_learner.Learn();

    UncompiledQueryOracle plain_oracle(target_query);
    CountingOracle plain_counting(&plain_oracle);
    Qhorn1Learner plain_learner(n, &plain_counting);
    Qhorn1Structure learned_plain = plain_learner.Learn();

    EXPECT_EQ(compiled_counting.stats().questions,
              plain_counting.stats().questions)
        << target.ToString();
    EXPECT_EQ(compiled_counting.stats().answers,
              plain_counting.stats().answers);
    EXPECT_EQ(learned_compiled, learned_plain);
  }
}

TEST(CompiledQueryTest, VerifierQuestionCountsUnchangedByCompiledOracle) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 3 + static_cast<int>(rng.Below(6));
    RpOptions qopts;
    qopts.num_heads = static_cast<int>(rng.Below(3));
    qopts.theta = 1 + static_cast<int>(rng.Below(2));
    qopts.num_conjunctions = static_cast<int>(rng.Below(3));
    Query given = RandomRolePreserving(n, rng, qopts);
    Query intended = RandomRolePreserving(n, rng, qopts);
    if (given.size_k() == 0) continue;

    QueryOracle compiled_user(intended);
    VerificationReport with_compiled = VerifyQuery(given, &compiled_user);

    UncompiledQueryOracle plain_user(intended);
    VerificationReport with_plain = VerifyQuery(given, &plain_user);

    EXPECT_EQ(with_compiled.questions_asked, with_plain.questions_asked);
    EXPECT_EQ(with_compiled.accepted, with_plain.accepted);
    ASSERT_EQ(with_compiled.discrepancies.size(),
              with_plain.discrepancies.size());
    for (size_t i = 0; i < with_compiled.discrepancies.size(); ++i) {
      EXPECT_EQ(with_compiled.discrepancies[i].question_index,
                with_plain.discrepancies[i].question_index);
    }
  }
}

}  // namespace
}  // namespace qhorn
