// The lattice-based existential-conjunction learner (§3.2.2, Algorithms
// 7–8): worked-example fidelity, pruning, the guarantee-downset
// optimization, and the O(k·n·lg n) budget of Theorem 3.8.

#include "src/learn/rp_existential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/classify.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/util/stats.h"

namespace qhorn {
namespace {

std::set<VarSet> LearnConjunctions(const Query& target,
                                   const RpExistentialOptions& opts = {},
                                   int64_t* questions = nullptr) {
  QueryOracle oracle(target);
  CountingOracle counting(&oracle);
  RpExistentialResult r = LearnExistentialConjunctions(
      target.n(), &counting, target.universal(), opts);
  if (questions != nullptr) *questions = counting.stats().questions;
  return std::set<VarSet>(r.conjunctions.begin(), r.conjunctions.end());
}

TEST(RpExistentialTest, PaperWalkthroughTuples) {
  // §3.2.2 walks the lattice for query (2) and terminates with
  // {110011, 100110, 111001, 011011, 011110}.
  Query target = Query::Parse(
      "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  std::set<VarSet> expected = {
      ParseTuple("110011"), ParseTuple("100110"), ParseTuple("111001"),
      ParseTuple("011011"), ParseTuple("011110")};
  EXPECT_EQ(LearnConjunctions(target), expected);
}

TEST(RpExistentialTest, SingleConjunction) {
  Query target = Query::Parse("∃x1x3", 4);
  std::set<VarSet> expected = {VarBit(0) | VarBit(2)};
  EXPECT_EQ(LearnConjunctions(target), expected);
}

TEST(RpExistentialTest, FullConjunctionIsTheTopTuple) {
  Query target = Query::Parse("∃x1x2x3x4", 4);
  std::set<VarSet> expected = {AllTrue(4)};
  EXPECT_EQ(LearnConjunctions(target), expected);
}

TEST(RpExistentialTest, DisjointSingletons) {
  Query target = Query::Parse("∃x1 ∃x2 ∃x3", 3);
  std::set<VarSet> expected = {VarBit(0), VarBit(1), VarBit(2)};
  EXPECT_EQ(LearnConjunctions(target), expected);
}

TEST(RpExistentialTest, DominatedConjunctionsVanish) {
  Query target = Query::Parse("∃x1x2 ∃x1 ∃x2", 2);
  std::set<VarSet> expected = {AllTrue(2)};
  EXPECT_EQ(LearnConjunctions(target), expected);
}

TEST(RpExistentialTest, GuaranteesOfHornsAreDiscovered) {
  // Only a universal Horn expression: its guarantee clause is the sole
  // dominant conjunction.
  Query target = Query::Parse("∀x1x2→x3 ∃x4", 4);
  std::set<VarSet> conjs = LearnConjunctions(target);
  EXPECT_TRUE(conjs.count(VarBit(0) | VarBit(1) | VarBit(2)));
  EXPECT_TRUE(conjs.count(VarBit(3)));
}

TEST(RpExistentialTest, ClosureAppliedToDiscoveredConjunctions) {
  // ∃x2 closes to ∃x2x3 under ∀x2→x3.
  Query target = Query::Parse("∀x2→x3 ∃x1 ∃x2", 3);
  std::set<VarSet> conjs = LearnConjunctions(target);
  EXPECT_TRUE(conjs.count(VarBit(1) | VarBit(2)));
}

TEST(RpExistentialTest, OptimizationOnAndOffAgree) {
  Query target = Query::Parse(
      "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  RpExistentialOptions on;
  on.skip_guarantee_downsets = true;
  RpExistentialOptions off;
  off.skip_guarantee_downsets = false;
  int64_t q_on = 0;
  int64_t q_off = 0;
  EXPECT_EQ(LearnConjunctions(target, on, &q_on),
            LearnConjunctions(target, off, &q_off));
  EXPECT_LE(q_on, q_off);  // the optimization can only save questions
}

TEST(RpExistentialTest, SeededFrontierFindsDeeperTuples) {
  // Seeding the descent at the (already known) dominant tuples must give
  // the same result as starting from the top.
  Query target = Query::Parse("∃x1x2 ∃x3", 3);
  QueryOracle oracle(target);
  std::vector<Tuple> seed = {ParseTuple("110"), ParseTuple("001")};
  RpExistentialResult r = LearnExistentialConjunctions(
      3, &oracle, target.universal(), RpExistentialOptions(), &seed);
  std::set<VarSet> got(r.conjunctions.begin(), r.conjunctions.end());
  EXPECT_EQ(got, (std::set<VarSet>{ParseTuple("110"), ParseTuple("001")}));
}

TEST(RpExistentialTest, QuestionBudgetTheorem38) {
  // O(k·n·lg n) with an empirical constant across a parameter sweep.
  for (int n : {6, 10, 14}) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      Rng rng(seed);
      RpOptions opts;
      opts.num_heads = 0;
      opts.num_conjunctions = static_cast<int>(rng.Range(1, 5));
      opts.conj_size_max = n;
      Query target = RandomRolePreserving(n, rng, opts);
      int64_t questions = 0;
      LearnConjunctions(target, RpExistentialOptions(), &questions);
      double k = static_cast<double>(DominantSize(target));
      EXPECT_LE(static_cast<double>(questions), 12.0 * k * n * Lg(n) + 30.0)
          << "n=" << n << " seed=" << seed << " target=" << target.ToString();
    }
  }
}

TEST(RpExistentialTest, ResultMatchesCanonicalExistentialPart) {
  // The discovered tuples are exactly the canonical (dominant, closed)
  // conjunction sets of the target.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = static_cast<int>(rng.Range(0, 2));
    opts.theta = 1;
    opts.num_conjunctions = static_cast<int>(rng.Range(1, 4));
    Query target = RandomRolePreserving(7, rng, opts);

    QueryOracle oracle(target);
    // Use the target's true dominant horns as the learned universal side.
    Query normalized = Normalize(target);
    RpExistentialResult r = LearnExistentialConjunctions(
        7, &oracle, normalized.universal());
    std::set<VarSet> got(r.conjunctions.begin(), r.conjunctions.end());
    CanonicalForm form = Canonicalize(target);
    std::set<VarSet> expected(form.existential.begin(),
                              form.existential.end());
    EXPECT_EQ(got, expected) << target.ToString();
  }
}

}  // namespace
}  // namespace qhorn
