// End-to-end learning of role-preserving qhorn queries (§3.2): exhaustive
// over every canonical query on n ≤ 3, the paper's worked example, and
// randomized sweeps over n, k, θ with the Theorem 3.5/3.8 budgets.

#include "src/learn/rp_learner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/classify.h"
#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/util/stats.h"

namespace qhorn {
namespace {

RpLearnerResult LearnAndCheck(const Query& target) {
  QueryOracle oracle(target);
  RpLearnerResult result = LearnRolePreserving(target.n(), &oracle);
  EXPECT_TRUE(Equivalent(result.query, target))
      << "target:  " << target.ToString()
      << "\nlearned: " << result.query.ToString();
  return result;
}

TEST(RpLearnerTest, PaperWorkedExample) {
  // §3.2.2's target query (2).
  Query target = Query::Parse(
      "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  RpLearnerResult result = LearnAndCheck(target);

  // The learner must discover exactly the distinguishing tuples the paper
  // lists: {110011, 100110, 111001, 011011, 011110}.
  std::vector<VarSet> conjs;
  for (const ExistentialConj& e : result.query.existential()) {
    conjs.push_back(e.vars);
  }
  std::sort(conjs.begin(), conjs.end());
  std::vector<VarSet> expected = {
      ParseTuple("110011"), ParseTuple("100110"), ParseTuple("111001"),
      ParseTuple("011011"), ParseTuple("011110")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(conjs, expected);

  // And the three universal Horn expressions.
  EXPECT_EQ(result.query.universal().size(), 3u);
}

TEST(RpLearnerTest, RolePreservingExampleFromSection214) {
  // ∀x1x4→x5 ∀x3x4→x5 ∀x2x4→x6 ∃x1x2x3 ∃x1x2x5x6 (§2.1.4's example).
  Query target =
      Query::Parse("∀x1x4→x5 ∀x3x4→x5 ∀x2x4→x6 ∃x1x2x3 ∃x1x2x5x6");
  LearnAndCheck(target);
}

TEST(RpLearnerTest, PureExistential) {
  Query target = Query::Parse("∃x1x2 ∃x2x3 ∃x4", 4);
  LearnAndCheck(target);
}

TEST(RpLearnerTest, PureUniversalBodyless) {
  Query target = Query::Parse("∀x1 ∀x2 ∀x3", 3);
  LearnAndCheck(target);
}

TEST(RpLearnerTest, SingleHornHighDensity) {
  // One head with three incomparable bodies (θ = 3).
  Query target = Query::Parse("∀x1x2→x7 ∀x3x4→x7 ∀x5x6→x7", 7);
  RpLearnerResult result = LearnAndCheck(target);
  EXPECT_EQ(CausalDensity(result.query), 3);
}

TEST(RpLearnerTest, OverlappingBodies) {
  // Incomparable but overlapping bodies.
  Query target = Query::Parse("∀x1x2→x5 ∀x2x3→x5 ∀x3x4→x5", 5);
  LearnAndCheck(target);
}

TEST(RpLearnerTest, SharedBodyAcrossHeads) {
  Query target = Query::Parse("∀x1x2→x4 ∀x1x2→x5 ∃x3", 5);
  LearnAndCheck(target);
}

TEST(RpLearnerTest, MixedBodylessAndBodied) {
  Query target = Query::Parse("∀x3 ∀x1→x4 ∃x2", 4);
  LearnAndCheck(target);
}

TEST(RpLearnerTest, UnmentionedVariableLearnedAsAbsent) {
  // x3 appears nowhere; the learner must not invent constraints on it.
  Query target = Query::Parse("∃x1x2", 3);
  LearnAndCheck(target);
}

TEST(RpLearnerTest, GuaranteeOptimizationOffStillCorrect) {
  Query target = Query::Parse(
      "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  QueryOracle oracle(target);
  RpLearnerOptions opts;
  opts.existential.skip_guarantee_downsets = false;
  RpLearnerResult result = LearnRolePreserving(target.n(), &oracle, opts);
  EXPECT_TRUE(Equivalent(result.query, target));
}

// Exhaustive: every canonical role-preserving query on n variables.
class RpExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(RpExhaustiveTest, LearnsEveryQuery) {
  int n = GetParam();
  std::vector<Query> all = EnumerateRolePreserving(n);
  ASSERT_FALSE(all.empty());
  for (const Query& target : all) {
    LearnAndCheck(target);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, RpExhaustiveTest, ::testing::Values(1, 2, 3));

// Randomized sweep over n with bounded θ; checks the question budget
// O(n^{θ+1} + k n lg n) with an empirical constant.
class RpRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(RpRandomTest, LearnsRandomQueries) {
  auto [n, theta, seed] = GetParam();
  Rng rng(seed);
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(1, std::max(1, n / 3)));
  opts.theta = theta;
  opts.body_size = static_cast<int>(rng.Range(1, 3));
  opts.num_conjunctions = static_cast<int>(rng.Range(1, 4));
  opts.conj_size_max = std::min(4, n);
  Query target = RandomRolePreserving(n, rng, opts);
  ASSERT_TRUE(IsRolePreserving(target));

  QueryOracle oracle(target);
  CountingOracle counting(&oracle);
  RpLearnerResult result = LearnRolePreserving(n, &counting);
  EXPECT_TRUE(Equivalent(result.query, target))
      << "target:  " << target.ToString()
      << "\nlearned: " << result.query.ToString();

  double k = DominantSize(target);
  double budget = 40.0 * (std::pow(n, theta + 1) + k * n * Lg(n)) + 60.0;
  EXPECT_LE(static_cast<double>(counting.stats().questions), budget)
      << "n=" << n << " θ=" << theta << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RpRandomTest,
    ::testing::Combine(::testing::Values(4, 6, 9, 12), ::testing::Values(1, 2),
                       ::testing::Range<uint64_t>(0, 10)));

}  // namespace
}  // namespace qhorn
