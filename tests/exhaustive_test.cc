// Large exhaustive sweeps: every canonical role-preserving query on four
// variables (1 305 of them) and every syntactic qhorn-1 query on five
// variables (3 122) is learned exactly; verification completeness is
// sampled across the n = 4 world.

#include <gtest/gtest.h>

#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/learn/qhorn1_learner.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"
#include "src/util/rng.h"
#include "src/verify/verifier.h"

namespace qhorn {
namespace {

TEST(ExhaustiveTest, EveryRolePreservingQueryOnFourVariablesIsLearned) {
  std::vector<Query> world = EnumerateRolePreserving(4);
  // The canonical class count itself is a regression anchor.
  EXPECT_EQ(world.size(), 1305u);
  for (const Query& target : world) {
    QueryOracle oracle(target);
    RpLearnerResult result = LearnRolePreserving(4, &oracle);
    ASSERT_TRUE(Equivalent(result.query, target))
        << "target:  " << target.ToString()
        << "\nlearned: " << result.query.ToString();
  }
}

TEST(ExhaustiveTest, EveryQhorn1QueryOnFiveVariablesIsLearned) {
  std::vector<Qhorn1Structure> world = EnumerateQhorn1(5);
  EXPECT_EQ(world.size(), 3122u);
  for (const Qhorn1Structure& target : world) {
    Query target_query = target.ToQuery();
    QueryOracle oracle(target_query);
    Qhorn1Learner learner(5, &oracle);
    ASSERT_TRUE(Equivalent(learner.Learn().ToQuery(), target_query))
        << "target: " << target.ToString();
  }
}

TEST(ExhaustiveTest, SampledVerificationCompletenessOnFourVariables) {
  std::vector<Query> world = EnumerateRolePreserving(4);
  Rng rng(424242);
  for (const Query& given : world) {
    VerificationSet set = BuildVerificationSet(given);
    // The query itself always passes…
    QueryOracle self(given);
    ASSERT_TRUE(RunVerification(set, &self).accepted) << given.ToString();
    // …and a random sample of other queries behaves like equivalence.
    for (int trial = 0; trial < 8; ++trial) {
      const Query& intended = world[rng.Below(world.size())];
      QueryOracle user(intended);
      bool accepted = RunVerification(set, &user).accepted;
      ASSERT_EQ(accepted, Equivalent(given, intended))
          << "given:    " << given.ToString()
          << "\nintended: " << intended.ToString();
    }
  }
}

TEST(ExhaustiveTest, LearnedQueriesRoundTripThroughParser) {
  // Printing and reparsing any canonical query is the identity.
  for (const Query& q : EnumerateRolePreserving(3)) {
    Query reparsed = Query::Parse(q.ToString(), q.n());
    EXPECT_TRUE(Equivalent(reparsed, q)) << q.ToString();
  }
}

}  // namespace
}  // namespace qhorn
