// Build-coverage smoke test: instantiates one object from every src/
// subsystem library, so a target silently dropped from the CMake build
// fails tier-1 (at link time) instead of going unnoticed.

#include <gtest/gtest.h>

#include "src/bool/tuple_set.h"
#include "src/core/query.h"
#include "src/learn/rp_learner.h"
#include "src/lower_bounds/alias_class.h"
#include "src/oracle/oracle.h"
#include "src/relation/schema.h"
#include "src/session/session.h"
#include "src/util/rng.h"
#include "src/verify/verification_set.h"

namespace qhorn {
namespace {

TEST(SmokeBuildTest, EverySubsystemLinks) {
  // util
  Rng rng(42);
  EXPECT_NE(rng.Next(), rng.Next());

  // bool
  TupleSet object;
  EXPECT_TRUE(object.empty());

  // core
  Query query = Query::Parse("A x1 -> x2 ; E x3");
  EXPECT_EQ(query.n(), 3);

  // oracle
  QueryOracle oracle(query);
  EXPECT_EQ(oracle.intended().n(), 3);

  // verify
  VerificationSet set = BuildVerificationSet(query);
  (void)set;

  // relation
  Schema schema({{"name", ValueType::kString}});
  EXPECT_EQ(schema.size(), 1u);

  // learn
  RpLearnerResult learned = LearnRolePreserving(2, &oracle, RpLearnerOptions());
  EXPECT_EQ(learned.query.n(), 2);

  // lower_bounds
  EXPECT_FALSE(AliasClass(3).empty());

  // session
  QuerySession session(2, &oracle);
  EXPECT_EQ(session.n(), 2);
}

}  // namespace
}  // namespace qhorn
