// Binary-search primitives (Algorithms 2, 3, 8): FindOne, FindAllVars,
// MinimalSubset — including question-count budgets.

#include "src/learn/find.h"

#include <gtest/gtest.h>

#include "src/util/stats.h"

namespace qhorn {
namespace {

// Oracle over a hidden "hit set": Q(D) is an answer iff D intersects it.
// `eliminate` is therefore non-answer (false).
class HitSetOracle : public MembershipOracle {
 public:
  explicit HitSetOracle(VarSet hits) : hits_(hits) {}

  bool IsAnswer(const TupleSet& probe) override {
    ++questions_;
    // The probed set rides along as the single tuple of the question.
    return (probe.tuples()[0] & hits_) != 0;
  }

  int64_t questions() const { return questions_; }

 private:
  VarSet hits_;
  int64_t questions_ = 0;
};

// The probed set rides along as the single tuple of the question.
void Probe(VarSet v, TupleSet* out) { out->AssignPair(v, v); }

TEST(FindOneTest, FindsAMemberOfTheHitSet) {
  for (VarSet hits : {VarSet{0b1}, VarSet{0b10000}, VarSet{0b1010100}}) {
    HitSetOracle oracle(hits);
    VarSet found = FindOne(oracle, Probe, /*eliminate=*/false, AllTrue(8));
    EXPECT_EQ(Popcount(found), 1);
    EXPECT_NE(found & hits, 0u);
  }
}

TEST(FindOneTest, EmptyHitSetReturnsZeroAfterOneQuestion) {
  HitSetOracle oracle(0);
  EXPECT_EQ(FindOne(oracle, Probe, false, AllTrue(8)), 0u);
  EXPECT_EQ(oracle.questions(), 1);
}

TEST(FindOneTest, EmptyDomainAsksNothing) {
  HitSetOracle oracle(0b1);
  EXPECT_EQ(FindOne(oracle, Probe, false, 0), 0u);
  EXPECT_EQ(oracle.questions(), 0);
}

TEST(FindOneTest, LogarithmicQuestionCount) {
  for (int n : {8, 16, 32, 64}) {
    HitSetOracle oracle(VarBit(n - 1));
    FindOne(oracle, Probe, false, AllTrue(n));
    EXPECT_LE(oracle.questions(), static_cast<int64_t>(Lg(n)) + 2) << n;
  }
}

TEST(FindAllTest, RecoversTheExactHitSet) {
  for (VarSet hits :
       {VarSet{0}, VarSet{0b1}, VarSet{0b11000011}, AllTrue(8)}) {
    HitSetOracle oracle(hits);
    EXPECT_EQ(FindAllVars(oracle, Probe, false, AllTrue(8)), hits);
  }
}

TEST(FindAllTest, QuestionBudgetIsHitsTimesLog) {
  int n = 64;
  for (VarSet hits : {VarSet{0b1}, VarSet{0b101}, VarSet{0xF0F0}}) {
    HitSetOracle oracle(hits);
    FindAllVars(oracle, Probe, false, AllTrue(n));
    int h = Popcount(hits);
    EXPECT_LE(oracle.questions(), 2 * (h + 1) * (static_cast<int64_t>(Lg(n)) + 1))
        << "hits=" << h;
  }
}

TEST(FindAllTest, InvertedEliminationResponse) {
  // The existential-independence questions of §3.1.3 have the opposite
  // polarity: a question on D is a NON-answer iff D contains a sought
  // (dependent) variable, and sets drawing an answer are eliminated.
  struct DependenceOracle : MembershipOracle {
    VarSet dependents;
    bool IsAnswer(const TupleSet& probe) override {
      return (probe.tuples()[0] & dependents) == 0;
    }
  } oracle;
  oracle.dependents = 0b0110;
  VarSet found = FindAllVars(oracle, Probe, /*eliminate=*/true, AllTrue(4));
  EXPECT_EQ(found, 0b0110u);
}

TEST(MinimalSubsetTest, KeepsOnlyNecessaryItems) {
  // pred: the kept set must cover {1, 2, 3} via designated tuples.
  std::vector<Tuple> items = {10, 1, 20, 2, 3, 30};
  auto covers = [](const std::vector<Tuple>& sub) {
    bool a = false, b = false, c = false;
    for (Tuple t : sub) {
      a |= (t == 1 || t == 10);
      b |= (t == 2 || t == 20);
      c |= (t == 3 || t == 30);
    }
    return a && b && c;
  };
  std::vector<Tuple> kept = MinimalSubset(items, covers);
  EXPECT_EQ(kept.size(), 3u);
  EXPECT_TRUE(covers(kept));
  // Minimality: removing any kept element breaks the predicate.
  for (size_t i = 0; i < kept.size(); ++i) {
    std::vector<Tuple> less = kept;
    less.erase(less.begin() + static_cast<long>(i));
    EXPECT_FALSE(covers(less));
  }
}

TEST(MinimalSubsetTest, AlwaysTruePredicateKeepsNothing) {
  auto always = [](const std::vector<Tuple>&) { return true; };
  EXPECT_TRUE(MinimalSubset({1, 2, 3}, always).empty());
}

TEST(MinimalSubsetTest, AllItemsNecessary) {
  std::vector<Tuple> items = {1, 2, 3, 4};
  auto all = [](const std::vector<Tuple>& sub) { return sub.size() == 4; };
  EXPECT_EQ(MinimalSubset(items, all).size(), 4u);
}

TEST(MinimalSubsetTest, LyingPredicateFallsBackToAllItems) {
  // A predicate that is false even on the full set breaks the monotone
  // contract (a mislabelling user); the fallback keeps every item instead
  // of aborting.
  auto never = [](const std::vector<Tuple>&) { return false; };
  EXPECT_EQ(MinimalSubset({1, 2}, never), (std::vector<Tuple>{1, 2}));
}

TEST(MinimalSubsetTest, PredicateCallBudget) {
  // O((|K|+1)·lg|C|) predicate calls.
  std::vector<Tuple> items;
  for (Tuple t = 0; t < 64; ++t) items.push_back(t);
  int64_t calls = 0;
  Tuple needle = 17;
  auto pred = [&](const std::vector<Tuple>& sub) {
    ++calls;
    for (Tuple t : sub) {
      if (t == needle) return true;
    }
    return false;
  };
  std::vector<Tuple> kept = MinimalSubset(items, pred);
  ASSERT_EQ(kept, std::vector<Tuple>{needle});
  EXPECT_LE(calls, 2 * 6 + 4);
}

}  // namespace
}  // namespace qhorn
