// Exact learning of qhorn-1 queries (§3.1, Theorem 3.1): the learner must
// reconstruct a semantically equivalent query for every target, within the
// O(n lg n) question budget.

#include "src/learn/qhorn1_learner.h"

#include <gtest/gtest.h>

#include "src/core/classify.h"
#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/oracle/oracle.h"
#include "src/util/stats.h"

namespace qhorn {
namespace {

// Learns the target and checks semantic equivalence.
Qhorn1Structure LearnAndCheck(const Qhorn1Structure& target,
                              int64_t* questions = nullptr) {
  Query target_query = target.ToQuery();
  QueryOracle oracle(target_query);
  CountingOracle counting(&oracle);
  Qhorn1Learner learner(target.n(), &counting);
  Qhorn1Structure learned = learner.Learn();
  EXPECT_TRUE(Equivalent(learned.ToQuery(), target_query))
      << "target:  " << target.ToString()
      << "\nlearned: " << learned.ToString();
  if (questions != nullptr) *questions = counting.stats().questions;
  return learned;
}

TEST(Qhorn1LearnerTest, SingleUniversalVariable) {
  Qhorn1Structure target(1);
  target.AddPart(Qhorn1Part{0, VarBit(0), 0});  // ∀x1
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, SingleExistentialVariable) {
  Qhorn1Structure target(1);
  target.AddPart(Qhorn1Part{0, 0, VarBit(0)});  // ∃x1
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, PaperShorthandExample) {
  // ∀x1x2→x3 ∀x4 ∃x5 (§2.1's shorthand example).
  Qhorn1Structure target(5);
  target.AddPart(Qhorn1Part{VarBit(0) | VarBit(1), VarBit(2), 0});
  target.AddPart(Qhorn1Part{0, VarBit(3), 0});
  target.AddPart(Qhorn1Part{0, 0, VarBit(4)});
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, Fig2Example) {
  // ∀x1x2→x4 ∃x1x2→x5 ∃x3→x6 (Fig. 2).
  Qhorn1Structure target(6);
  target.AddPart(Qhorn1Part{VarBit(0) | VarBit(1), VarBit(3), VarBit(4)});
  target.AddPart(Qhorn1Part{VarBit(2), 0, VarBit(5)});
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, SharedBodyManyHeads) {
  // One body x1x2, heads x3 (∀), x4 (∃), x5 (∃).
  Qhorn1Structure target(5);
  target.AddPart(Qhorn1Part{VarBit(0) | VarBit(1), VarBit(2),
                            VarBit(3) | VarBit(4)});
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, PartitionConstruction) {
  // §2.1.3's partition example: ∀x1 ∀x2 ∃x3→x4 ∃x5x6→x7 from
  // x1|x2|x3x4|x5x6x7.
  Qhorn1Structure target(7);
  target.AddPart(Qhorn1Part{0, VarBit(0), 0});
  target.AddPart(Qhorn1Part{0, VarBit(1), 0});
  target.AddPart(Qhorn1Part{VarBit(2), 0, VarBit(3)});
  target.AddPart(Qhorn1Part{VarBit(4) | VarBit(5), 0, VarBit(6)});
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, AllSingletonUniversals) {
  Qhorn1Structure target(6);
  for (int v = 0; v < 6; ++v) {
    target.AddPart(Qhorn1Part{0, VarBit(v), 0});
  }
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, AllSingletonExistentials) {
  Qhorn1Structure target(6);
  for (int v = 0; v < 6; ++v) {
    target.AddPart(Qhorn1Part{0, 0, VarBit(v)});
  }
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, OneGiantExistentialBody) {
  // ∃x1x2x3x4x5x6x7→x8.
  Qhorn1Structure target(8);
  target.AddPart(Qhorn1Part{AllTrue(7), 0, VarBit(7)});
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, OneGiantUniversalBody) {
  Qhorn1Structure target(8);
  target.AddPart(Qhorn1Part{AllTrue(7), VarBit(7), 0});
  LearnAndCheck(target);
}

TEST(Qhorn1LearnerTest, UniversalRolesRecoveredExactly) {
  // Universal Horn expressions are uniquely identifiable (not just up to
  // equivalence): check the exact part structure for a mixed target.
  Qhorn1Structure target(6);
  target.AddPart(Qhorn1Part{VarBit(1) | VarBit(4), VarBit(0) | VarBit(5), 0});
  target.AddPart(Qhorn1Part{0, VarBit(2), 0});
  target.AddPart(Qhorn1Part{0, 0, VarBit(3)});
  Qhorn1Structure learned = LearnAndCheck(target);

  VarSet universal_heads = 0;
  VarSet universal_body = 0;
  for (const Qhorn1Part& p : learned.parts()) {
    universal_heads |= p.universal_heads;
    if (p.universal_heads != 0) universal_body |= p.body;
  }
  EXPECT_EQ(universal_heads, VarBit(0) | VarBit(2) | VarBit(5));
  EXPECT_EQ(universal_body, VarBit(1) | VarBit(4));
}

// Exhaustive: every syntactic qhorn-1 query on up to 4 variables.
class Qhorn1ExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(Qhorn1ExhaustiveTest, LearnsEveryQuery) {
  int n = GetParam();
  int64_t max_questions = 0;
  std::vector<Qhorn1Structure> all = EnumerateQhorn1(n);
  ASSERT_FALSE(all.empty());
  for (const Qhorn1Structure& target : all) {
    int64_t questions = 0;
    LearnAndCheck(target, &questions);
    max_questions = std::max(max_questions, questions);
  }
  // Theorem 3.1 budget with a generous constant.
  EXPECT_LE(max_questions,
            static_cast<int64_t>(20.0 * n * Lg(n) + 20));
}

INSTANTIATE_TEST_SUITE_P(SmallN, Qhorn1ExhaustiveTest,
                         ::testing::Values(1, 2, 3, 4));

// Randomized: larger n across seeds and part-size profiles.
class Qhorn1RandomTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(Qhorn1RandomTest, LearnsRandomQueries) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  Qhorn1Options opts;
  opts.max_part_size = 1 + static_cast<int>(seed % 5);
  Qhorn1Structure target = RandomQhorn1(n, rng, opts);
  int64_t questions = 0;
  LearnAndCheck(target, &questions);
  EXPECT_LE(questions, static_cast<int64_t>(20.0 * n * Lg(n) + 20));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Qhorn1RandomTest,
    ::testing::Combine(::testing::Values(5, 8, 12, 17, 24, 33),
                       ::testing::Range<uint64_t>(0, 8)));

// The question count must actually scale like n lg n, not n².
TEST(Qhorn1LearnerTest, QuestionCountScalesQuasilinearly) {
  for (int n : {16, 32, 64}) {
    Rng rng(42);
    Qhorn1Structure target = RandomQhorn1(n, rng);
    int64_t questions = 0;
    LearnAndCheck(target, &questions);
    EXPECT_LE(questions, static_cast<int64_t>(12.0 * n * Lg(n)))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace qhorn
