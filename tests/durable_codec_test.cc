// Durable codec: the byte-identity contract. SessionOpened records carry
// SessionSpecs; recovery re-creates sessions from the decoded spec, so
// encode → decode → re-encode must be the identity on bytes — a recovered
// session is provably the same session. The sweep drives the same
// seed-derived fleets the crash harness replays.
//
// CTest label: durable.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/durable/codec.h"
#include "src/workload/workload.h"

namespace qhorn {
namespace {

TEST(DurableCodecTest, PrimitivesRoundTrip) {
  std::string buf;
  Encoder e(&buf);
  e.PutU8(0xab);
  e.PutU32(0xdeadbeef);
  e.PutU64(0x0123456789abcdefULL);
  e.PutI64(-42);
  e.PutDouble(0.1);
  e.PutDouble(-0.0);
  e.PutBytes("hello");

  Decoder in(buf);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d1, d2;
  std::string bytes;
  ASSERT_TRUE(in.GetU8(&u8));
  ASSERT_TRUE(in.GetU32(&u32));
  ASSERT_TRUE(in.GetU64(&u64));
  ASSERT_TRUE(in.GetI64(&i64));
  ASSERT_TRUE(in.GetDouble(&d1));
  ASSERT_TRUE(in.GetDouble(&d2));
  ASSERT_TRUE(in.GetBytes(&bytes));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d1, 0.1);
  EXPECT_EQ(d2, 0.0);
  EXPECT_TRUE(std::signbit(d2));
  EXPECT_EQ(bytes, "hello");
}

TEST(DurableCodecTest, DecoderRefusesTruncation) {
  std::string buf;
  Encoder e(&buf);
  e.PutU64(7);
  Decoder in(std::string_view(buf).substr(0, 5));
  uint64_t v;
  EXPECT_FALSE(in.GetU64(&v));
  std::string bytes;
  // Length prefix claims 16 bytes but only 3 follow (explicit-length view:
  // the encoding contains NUL bytes).
  Decoder in2(std::string_view("\x10\x00\x00\x00abc", 7));
  EXPECT_FALSE(in2.GetBytes(&bytes));
}

TEST(DurableCodecTest, QueryRoundTripsStructurally) {
  Query q = Query::Parse("A x1x2 -> x4 ; E x3 -> x6 ; A x5", 8);
  std::string buf;
  EncodeQuery(q, &buf);
  Decoder in(buf);
  Query back;
  ASSERT_TRUE(DecodeQuery(in, &back));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(q, back);
}

TEST(DurableCodecTest, QueryDecodeRejectsOversizedSchema) {
  std::string buf;
  Encoder e(&buf);
  e.PutU32(65);  // n > 64 cannot be a VarSet schema
  e.PutU32(0);
  e.PutU32(0);
  Decoder in(buf);
  Query q;
  EXPECT_FALSE(DecodeQuery(in, &q));
}

// The satellite contract: across a seed sweep of generated fleets, spec
// encoding is deterministic and decode inverts it byte for byte.
TEST(DurableCodecTest, SessionSpecReencodeIsByteIdentical64Seeds) {
  int64_t specs = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Fleet fleet = GenerateFleet(WorkloadSpec::FromSeed(seed));
    for (const SessionSpec& spec : fleet.sessions) {
      std::string first;
      EncodeSessionSpec(spec, &first);

      Decoder in(first);
      SessionSpec decoded;
      ASSERT_TRUE(DecodeSessionSpec(in, &decoded))
          << "seed " << seed << ": spec failed to decode";
      ASSERT_TRUE(in.empty()) << "seed " << seed << ": trailing bytes";

      std::string second;
      EncodeSessionSpec(decoded, &second);
      ASSERT_EQ(first, second)
          << "seed " << seed << ": re-encode is not byte-identical";

      // And the decoded spec is semantically the one generated.
      EXPECT_EQ(decoded.query_class, spec.query_class);
      EXPECT_EQ(decoded.n, spec.n);
      EXPECT_EQ(decoded.target, spec.target);
      EXPECT_EQ(decoded.mutant, spec.mutant);
      EXPECT_EQ(decoded.flip_rate, spec.flip_rate);
      EXPECT_EQ(decoded.noise_seed, spec.noise_seed);
      EXPECT_EQ(decoded.jobs, spec.jobs);
      EXPECT_EQ(decoded.abandon, spec.abandon);
      EXPECT_EQ(decoded.abandon_after_rounds, spec.abandon_after_rounds);
      ++specs;
    }
  }
  EXPECT_GT(specs, 64) << "the sweep generated implausibly few sessions";
}

TEST(DurableCodecTest, WorkloadSpecReencodeIsByteIdentical64Seeds) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    WorkloadSpec spec = WorkloadSpec::FromSeed(seed);
    std::string first;
    EncodeWorkloadSpec(spec, &first);

    Decoder in(first);
    WorkloadSpec decoded;
    ASSERT_TRUE(DecodeWorkloadSpec(in, &decoded)) << "seed " << seed;
    ASSERT_TRUE(in.empty());

    std::string second;
    EncodeWorkloadSpec(decoded, &second);
    ASSERT_EQ(first, second) << "seed " << seed;
    EXPECT_EQ(decoded.seed, spec.seed);
    EXPECT_EQ(decoded.sessions, spec.sessions);
    EXPECT_EQ(decoded.lanes, spec.lanes);
    EXPECT_EQ(decoded.ReproLine(), spec.ReproLine());
  }
}

TEST(DurableCodecTest, SessionSpecDecodeRejectsForeignEnums) {
  Fleet fleet = GenerateFleet(WorkloadSpec::FromSeed(3));
  ASSERT_FALSE(fleet.sessions.empty());
  std::string buf;
  EncodeSessionSpec(fleet.sessions[0], &buf);
  // First byte is the query class tag; 0xee is from no known enum.
  buf[0] = static_cast<char>(0xee);
  Decoder in(buf);
  SessionSpec spec;
  EXPECT_FALSE(DecodeSessionSpec(in, &spec));
}

}  // namespace
}  // namespace qhorn
