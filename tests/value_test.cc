// Typed values.

#include "src/relation/value.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(-5).int_value(), -5);
  EXPECT_EQ(Value::Str("Madagascar").string_value(), "Madagascar");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_NE(Value::Bool(true), Value::Int(1));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("Belgium").ToString(), "Belgium");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kBool), "bool");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  EXPECT_DEATH(Value::Int(1).bool_value(), "not a bool");
  EXPECT_DEATH(Value::Bool(true).int_value(), "not an int");
  EXPECT_DEATH(Value::Int(1).string_value(), "not a string");
}

}  // namespace
}  // namespace qhorn
