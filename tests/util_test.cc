// Utility layer: RNG determinism and distribution sanity, text tables,
// accumulators, checked assertions.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace qhorn {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, SampleIsSortedDistinctSubset) {
  Rng rng(23);
  std::vector<int> sample = rng.Sample(20, 8);
  ASSERT_EQ(sample.size(), 8u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
  }
  EXPECT_GE(sample.front(), 0);
  EXPECT_LT(sample.back(), 20);
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, PickReturnsAnElementAndCoversAll) {
  Rng rng(37);
  const std::vector<int> items = {10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    int picked = rng.Pick(items);
    EXPECT_TRUE(picked == 10 || picked == 20 || picked == 30);
    seen.insert(picked);
  }
  EXPECT_EQ(seen.size(), items.size());
}

TEST(RngTest, SampleFullUniverseAndEmpty) {
  Rng rng(41);
  std::vector<int> all = rng.Sample(5, 5);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(rng.Sample(5, 0).empty());
}

TEST(RngTest, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, (std::vector<int>{7}));
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(AccumulatorTest, Statistics) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  for (double v : {2.0, 4.0, 6.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_NEAR(acc.stddev(), 1.632993, 1e-5);
}

TEST(AccumulatorTest, FewSamplesHaveZeroStddev) {
  Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  acc.Add(5.0);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(LgTest, SmallValuesClampToOne) {
  EXPECT_DOUBLE_EQ(Lg(0.0), 1.0);
  EXPECT_DOUBLE_EQ(Lg(1.0), 1.0);
  EXPECT_DOUBLE_EQ(Lg(2.0), 1.0);
  EXPECT_DOUBLE_EQ(Lg(8.0), 3.0);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.Row().Cell(1).Cell("x");
  t.Row().Cell(12345).Cell(3.14159, 2);
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableDeathTest, ArityMismatchAborts) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(CheckDeathTest, MessageIncludesExpression) {
  EXPECT_DEATH(QHORN_CHECK(1 == 2), "1 == 2");
  EXPECT_DEATH(QHORN_CHECK_MSG(false, "custom " << 42), "custom 42");
}

TEST(CheckDeathTest, MessageIncludesFileAndLine) {
  EXPECT_DEATH(QHORN_CHECK(false), "util_test");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  QHORN_CHECK(1 + 1 == 2);
  QHORN_CHECK_MSG(true, "never shown");
  QHORN_DCHECK(1 + 1 == 2);
}

// QHORN_DCHECK aborts in debug builds and compiles out under NDEBUG; this
// pins down both halves of that contract for whichever mode is building.
TEST(CheckDeathTest, DcheckFollowsBuildMode) {
#ifdef NDEBUG
  QHORN_DCHECK(false);  // must be a no-op
#else
  EXPECT_DEATH(QHORN_DCHECK(false), "false");
#endif
}

}  // namespace
}  // namespace qhorn
