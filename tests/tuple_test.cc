// Boolean tuples and variable sets.

#include "src/bool/tuple.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

TEST(TupleTest, VarBitAndHasVar) {
  EXPECT_EQ(VarBit(0), 1u);
  EXPECT_EQ(VarBit(5), 32u);
  EXPECT_TRUE(HasVar(0b101, 0));
  EXPECT_FALSE(HasVar(0b101, 1));
  EXPECT_TRUE(HasVar(0b101, 2));
}

TEST(TupleTest, AllTrue) {
  EXPECT_EQ(AllTrue(0), 0u);
  EXPECT_EQ(AllTrue(1), 1u);
  EXPECT_EQ(AllTrue(4), 0b1111u);
  EXPECT_EQ(AllTrue(64), ~uint64_t{0});
}

TEST(TupleTest, SubsetIncomparable) {
  EXPECT_TRUE(IsSubset(0b010, 0b110));
  EXPECT_TRUE(IsSubset(0, 0b1));
  EXPECT_FALSE(IsSubset(0b110, 0b010));
  EXPECT_TRUE(Incomparable(0b011, 0b101));
  EXPECT_FALSE(Incomparable(0b011, 0b011));
  EXPECT_FALSE(Incomparable(0b011, 0b111));
}

TEST(TupleTest, VarsOfRoundTrip) {
  std::vector<int> vars = {0, 3, 7, 63};
  EXPECT_EQ(VarsOf(MaskOf(vars)), vars);
  EXPECT_TRUE(VarsOf(0).empty());
}

TEST(TupleTest, FormatAndParse) {
  // Paper convention: leftmost character is x1.
  EXPECT_EQ(FormatTuple(ParseTuple("1011"), 4), "1011");
  EXPECT_EQ(ParseTuple("100"), VarBit(0));
  EXPECT_EQ(ParseTuple("001"), VarBit(2));
  EXPECT_EQ(FormatTuple(0, 3), "000");
  EXPECT_EQ(FormatTuple(AllTrue(6), 6), "111111");
}

TEST(TupleTest, FormatVarSet) {
  EXPECT_EQ(FormatVarSet(0), "{}");
  EXPECT_EQ(FormatVarSet(VarBit(0) | VarBit(2) | VarBit(4)), "x1x3x5");
}

TEST(TupleTest, LevelCountsFalseVariables) {
  // Fig. 4: the top tuple is level 0; each level adds one false variable.
  EXPECT_EQ(Level(AllTrue(4), 4), 0);
  EXPECT_EQ(Level(ParseTuple("0011"), 4), 2);
  EXPECT_EQ(Level(0, 4), 4);
}

TEST(TupleTest, PopcountMatches) {
  EXPECT_EQ(Popcount(0), 0);
  EXPECT_EQ(Popcount(0b1011), 3);
  EXPECT_EQ(Popcount(~uint64_t{0}), 64);
}

}  // namespace
}  // namespace qhorn
