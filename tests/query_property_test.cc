// Property tests over the query algebra: monotonicity of answers on
// violation-free objects, closure idempotence, canonicalization laws,
// equivalence as an equivalence relation, semantics preservation under
// normalization (cross-checked by brute force).

#include <gtest/gtest.h>

#include <vector>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/oracle/oracle.h"
#include "src/util/rng.h"

namespace qhorn {
namespace {

Query RandomQuery(Rng& rng, int n) {
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(0, std::max(1, n / 3)));
  opts.theta = static_cast<int>(rng.Range(1, 2));
  opts.body_size = static_cast<int>(rng.Range(1, 3));
  opts.num_conjunctions = static_cast<int>(rng.Range(1, 4));
  opts.conj_size_max = std::min(4, n);
  return RandomRolePreserving(n, rng, opts);
}

class QueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Within violation-free tuple sets, adding tuples never turns an answer
// into a non-answer — the monotonicity Algorithm 8's binary search needs.
TEST_P(QueryPropertyTest, AnswerMonotoneOverViolationFreeSets) {
  Rng rng(GetParam());
  int n = 8;
  Query q = RandomQuery(rng, n);
  // Build a violation-free object.
  std::vector<Tuple> pool;
  for (int i = 0; i < 12; ++i) {
    Tuple t = rng.Below(uint64_t{1} << n);
    if (!q.ViolatesUniversal(t)) pool.push_back(t);
  }
  TupleSet small(pool);
  if (!q.Evaluate(small)) return;  // property only binds answers
  for (int i = 0; i < 8; ++i) {
    Tuple extra = rng.Below(uint64_t{1} << n);
    if (q.ViolatesUniversal(extra)) continue;
    TupleSet bigger = small;
    bigger.Add(extra);
    EXPECT_TRUE(q.Evaluate(bigger))
        << q.ToString() << " lost answer on " << bigger.ToString(n);
  }
}

TEST_P(QueryPropertyTest, HornClosureIsIdempotentAndExtensive) {
  Rng rng(GetParam());
  int n = 10;
  Query q = RandomQuery(rng, n);
  VarSet s = rng.Below(uint64_t{1} << n);
  VarSet closed = q.HornClosure(s);
  EXPECT_TRUE(IsSubset(s, closed));                    // extensive
  EXPECT_EQ(q.HornClosure(closed), closed);            // idempotent
  VarSet bigger = closed | rng.Below(uint64_t{1} << n);
  EXPECT_TRUE(IsSubset(closed, q.HornClosure(bigger)));  // monotone
}

TEST_P(QueryPropertyTest, CanonicalizeIsIdempotent) {
  Rng rng(GetParam());
  Query q = RandomQuery(rng, 9);
  Query once = Normalize(q);
  EXPECT_EQ(Canonicalize(once), Canonicalize(q));
  EXPECT_EQ(Canonicalize(Normalize(once)), Canonicalize(once));
}

TEST_P(QueryPropertyTest, DominatedConjunctionsDoNotChangeCanonicalForm) {
  // R1: a conjunction over a subset of an existing conjunction is
  // semantically void.
  Rng rng(GetParam());
  Query q = RandomQuery(rng, 8);
  if (q.existential().empty()) return;
  Query padded = q;
  VarSet vars = q.existential()[0].vars;
  std::vector<int> members = VarsOf(vars);
  padded.AddExistential(VarBit(members[0]));
  EXPECT_EQ(Canonicalize(padded), Canonicalize(q))
      << "q: " << q.ToString() << "\npadded: " << padded.ToString();
}

TEST_P(QueryPropertyTest, DominatedHornLeavesExactlyItsGuarantee) {
  // R2 (as the paper states it): a universal Horn expression dominated by
  // a smaller body is NOT erasable — it reduces to its guarantee clause:
  //   ∀B→h ∀B'→h ≡ ∀B→h ∃(B' ∧ h)   for B ⊂ B'.
  Rng rng(GetParam());
  Query q = RandomQuery(rng, 8);
  if (q.universal().empty()) return;
  const UniversalHorn& u = q.universal()[0];
  VarSet heads = q.UniversalHeadVars();
  VarSet spare = AllTrue(8) & ~heads & ~u.body & ~VarBit(u.head);
  if (spare == 0) return;
  VarSet bigger_body = u.body | (spare & (~spare + 1));

  Query with_dominated = q;
  with_dominated.AddUniversal(bigger_body, u.head);
  Query with_guarantee = q;
  with_guarantee.AddExistential(bigger_body | VarBit(u.head));

  EXPECT_EQ(Canonicalize(with_dominated), Canonicalize(with_guarantee))
      << "q: " << q.ToString();
}

TEST_P(QueryPropertyTest, EquivalenceIsAnEquivalenceRelation) {
  Rng rng(GetParam());
  Query a = RandomQuery(rng, 6);
  Query b = RandomQuery(rng, 6);
  Query c = RandomQuery(rng, 6);
  EXPECT_TRUE(Equivalent(a, a));
  EXPECT_EQ(Equivalent(a, b), Equivalent(b, a));
  if (Equivalent(a, b) && Equivalent(b, c)) {
    EXPECT_TRUE(Equivalent(a, c));
  }
}

TEST_P(QueryPropertyTest, NormalizationPreservesSemanticsBruteForce) {
  Rng rng(GetParam());
  Query q = RandomQuery(rng, 4);
  EXPECT_TRUE(BruteForceEquivalent(q, Normalize(q))) << q.ToString();
}

TEST_P(QueryPropertyTest, NormalizationPreservesSemanticsSampled) {
  Rng rng(GetParam());
  int n = 12;
  Query q = RandomQuery(rng, n);
  Query normalized = Normalize(q);
  for (int i = 0; i < 200; ++i) {
    TupleSet object = RandomObject(n, rng, 6);
    EXPECT_EQ(q.Evaluate(object), normalized.Evaluate(object))
        << q.ToString() << " on " << object.ToString(n);
  }
}

TEST_P(QueryPropertyTest, GuaranteeRelaxationOnlyWeakens) {
  Rng rng(GetParam());
  int n = 8;
  Query q = RandomQuery(rng, n);
  EvalOptions strict;
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  for (int i = 0; i < 100; ++i) {
    TupleSet object = RandomObject(n, rng, 5);
    if (q.Evaluate(object, strict)) {
      EXPECT_TRUE(q.Evaluate(object, relaxed));
    }
  }
}

// Batched caching invariant: a round containing duplicate questions and
// questions answered in earlier rounds forwards only its unique misses to
// the wrapped oracle, and every served answer matches the ground truth.
TEST_P(QueryPropertyTest, CachingOracleBatchForwardsOnlyUniqueMisses) {
  Rng rng(GetParam());
  int n = 8;
  Query q = RandomQuery(rng, n);
  QueryOracle base(q);
  CountingOracle counting(&base);
  CachingOracle caching(&counting);

  // Warm the cache with a few sequential questions.
  std::vector<TupleSet> warm;
  for (int i = 0; i < 4; ++i) warm.push_back(RandomObject(n, rng, 4));
  for (const TupleSet& w : warm) caching.IsAnswer(w);

  // A batch mixing fresh questions, in-batch duplicates and re-asks of the
  // warm-up questions.
  std::vector<TupleSet> fresh;
  for (int i = 0; i < 5; ++i) fresh.push_back(RandomObject(n, rng, 4));
  std::vector<TupleSet> batch = {fresh[0], warm[0], fresh[1], fresh[0],
                                 warm[1], fresh[2], fresh[1], fresh[3],
                                 warm[0], fresh[4], fresh[4]};

  // Expected forwards: first occurrences not already answered (the warm-up
  // may collide with a fresh draw by chance, so simulate the cache).
  std::vector<TupleSet> seen = warm;
  int64_t expected_misses = 0;
  for (const TupleSet& b : batch) {
    bool found = false;
    for (const TupleSet& s : seen) {
      if (s == b) {
        found = true;
        break;
      }
    }
    if (!found) {
      ++expected_misses;
      seen.push_back(b);
    }
  }

  int64_t inner_before = counting.stats().questions;
  int64_t rounds_before = counting.stats().rounds;
  BitVec answers;
  caching.IsAnswerBatch(batch, answers.Prepare(batch.size()));

  EXPECT_EQ(counting.stats().questions - inner_before, expected_misses)
      << "the wrapped oracle must see each unseen question exactly once";
  EXPECT_LE(counting.stats().rounds - rounds_before, 1)
      << "all forwarded misses must share one round";
  ASSERT_EQ(answers.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(answers.Get(i), q.Evaluate(batch[i])) << "question " << i;
  }
  // Re-asking the whole batch forwards nothing.
  int64_t inner_after = counting.stats().questions;
  caching.IsAnswerBatch(batch, answers.Prepare(batch.size()));
  EXPECT_EQ(counting.stats().questions, inner_after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace qhorn
